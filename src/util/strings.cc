#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>

namespace fieldswap {
namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool IsAsciiPunct(char c) {
  return std::ispunct(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<std::string> SplitString(std::string_view text, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(delim, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) pieces.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsAsciiSpace(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && !IsAsciiSpace(text[i])) ++i;
    if (i > start) pieces.emplace_back(text.substr(start, i - start));
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && IsAsciiSpace(text[begin])) ++begin;
  while (end > begin && IsAsciiSpace(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string_view TrimPunctuation(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         (IsAsciiSpace(text[begin]) || IsAsciiPunct(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         (IsAsciiSpace(text[end - 1]) || IsAsciiPunct(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsAllDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

int ParseInt(const char* text, int fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value > INT_MAX ||
      value < INT_MIN) {
    return fallback;
  }
  return static_cast<int>(value);
}

double ParseDouble(const char* text, double fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return fallback;
  return value;
}

bool TryParseInt(const char* text, int* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value > INT_MAX ||
      value < INT_MIN) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool TryParseDouble(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace fieldswap
