#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "util/thread_annotations.h"

namespace fieldswap {
namespace {

// File-scope sink state (constant-initialized: std::mutex's constexpr
// constructor keeps this safe at any static-init point). nullptr sink
// means "write to stderr".
std::mutex g_sink_mu;
LogSink* g_sink FS_GUARDED_BY(g_sink_mu) = nullptr;

std::atomic<LogSeverity>& MinSeverity() {
  static std::atomic<LogSeverity>* severity = [] {
    LogSeverity initial = LogSeverity::kInfo;
    if (const char* env = std::getenv("FS_LOG_LEVEL");
        env != nullptr && *env != '\0') {
      ParseLogSeverity(env, &initial);
    }
    return new std::atomic<LogSeverity>(initial);
  }();
  return *severity;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

bool EqualsLower(std::string_view a, std::string_view lower) {
  if (a.size() != lower.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char c = a[i] >= 'A' && a[i] <= 'Z' ? static_cast<char>(a[i] + 32) : a[i];
    if (c != lower[i]) return false;
  }
  return true;
}

}  // namespace

LogSeverity MinLogSeverity() { return MinSeverity().load(); }

void SetMinLogSeverity(LogSeverity severity) { MinSeverity().store(severity); }

bool ParseLogSeverity(std::string_view name, LogSeverity* out) {
  if (EqualsLower(name, "info")) {
    *out = LogSeverity::kInfo;
  } else if (EqualsLower(name, "warning") || EqualsLower(name, "warn")) {
    *out = LogSeverity::kWarning;
  } else if (EqualsLower(name, "error")) {
    *out = LogSeverity::kError;
  } else if (EqualsLower(name, "fatal")) {
    *out = LogSeverity::kFatal;
  } else {
    return false;
  }
  return true;
}

LogSink* SetLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  LogSink* previous = g_sink;
  g_sink = sink;
  return previous;
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << SeverityTag(severity) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  bool fatal = severity_ == LogSeverity::kFatal;
  if (fatal || severity_ >= MinLogSeverity()) {
    std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(g_sink_mu);
    if (g_sink != nullptr) {
      g_sink->Write(severity_, line);
    } else {
      std::cerr << line;
      std::cerr.flush();
    }
  }
  if (fatal) {
    std::abort();
  }
}

}  // namespace fieldswap
