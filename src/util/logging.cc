#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace fieldswap {
namespace {

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

// Guarded by SinkMutex(); nullptr means "write to stderr".
LogSink*& ActiveSink() {
  static LogSink* sink = nullptr;
  return sink;
}

std::atomic<LogSeverity>& MinSeverity() {
  static std::atomic<LogSeverity>* severity = [] {
    LogSeverity initial = LogSeverity::kInfo;
    if (const char* env = std::getenv("FS_LOG_LEVEL");
        env != nullptr && *env != '\0') {
      ParseLogSeverity(env, &initial);
    }
    return new std::atomic<LogSeverity>(initial);
  }();
  return *severity;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

bool EqualsLower(std::string_view a, std::string_view lower) {
  if (a.size() != lower.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char c = a[i] >= 'A' && a[i] <= 'Z' ? static_cast<char>(a[i] + 32) : a[i];
    if (c != lower[i]) return false;
  }
  return true;
}

}  // namespace

LogSeverity MinLogSeverity() { return MinSeverity().load(); }

void SetMinLogSeverity(LogSeverity severity) { MinSeverity().store(severity); }

bool ParseLogSeverity(std::string_view name, LogSeverity* out) {
  if (EqualsLower(name, "info")) {
    *out = LogSeverity::kInfo;
  } else if (EqualsLower(name, "warning") || EqualsLower(name, "warn")) {
    *out = LogSeverity::kWarning;
  } else if (EqualsLower(name, "error")) {
    *out = LogSeverity::kError;
  } else if (EqualsLower(name, "fatal")) {
    *out = LogSeverity::kFatal;
  } else {
    return false;
  }
  return true;
}

LogSink* SetLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink* previous = ActiveSink();
  ActiveSink() = sink;
  return previous;
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << SeverityTag(severity) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  bool fatal = severity_ == LogSeverity::kFatal;
  if (fatal || severity_ >= MinLogSeverity()) {
    std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(SinkMutex());
    if (ActiveSink() != nullptr) {
      ActiveSink()->Write(severity_, line);
    } else {
      std::cerr << line;
      std::cerr.flush();
    }
  }
  if (fatal) {
    std::abort();
  }
}

}  // namespace fieldswap
