#ifndef FIELDSWAP_UTIL_STRINGS_H_
#define FIELDSWAP_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace fieldswap {

/// Splits `text` on `delim`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view text, char delim);

/// Splits `text` on runs of whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `pieces` with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

/// Removes leading and trailing ASCII punctuation (and whitespace). Used to
/// clean up OCR-line-derived key phrases, per Sec. II-A3 of the paper.
std::string_view TrimPunctuation(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if every character is an ASCII digit (and text is non-empty).
bool IsAllDigits(std::string_view text);

/// Parses `text` as a base-10 int. Returns `fallback` when `text` is
/// null/empty, has non-numeric trailing characters, or overflows int —
/// unlike atoi (banned by fslint), which silently returns 0 on garbage.
int ParseInt(const char* text, int fallback);

/// Parses `text` as a double. Returns `fallback` when `text` is
/// null/empty or not fully numeric — unlike atof (banned by fslint),
/// which silently returns 0.0 on garbage.
double ParseDouble(const char* text, double fallback);

/// Like ParseInt/ParseDouble but report success explicitly, so callers
/// (util::ArgParser) can distinguish "absent" from "garbage" without a
/// sentinel fallback. `*out` is untouched on failure.
bool TryParseInt(const char* text, int* out);
bool TryParseDouble(const char* text, double* out);

/// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats an integer with thousands separators, e.g. 38081 -> "38,081".
std::string FormatWithCommas(int64_t value);

}  // namespace fieldswap

#endif  // FIELDSWAP_UTIL_STRINGS_H_
