#ifndef FIELDSWAP_UTIL_ARGPARSE_H_
#define FIELDSWAP_UTIL_ARGPARSE_H_

#include <string>
#include <vector>

namespace fieldswap {
namespace util {

/// Minimal typed command-line parser shared by the bench/ binaries, the
/// examples, and tools/fieldswap_serve. Replaces the hand-rolled
/// `argc > 1 ? argv[1] : ...` loops that had been copied between binaries.
///
///   util::ArgParser args("fieldswap_serve", "Serves a corpus ...");
///   std::string domain;
///   args.AddString("domain", "earnings", "evaluation domain", &domain);
///   if (!args.Parse(argc, argv)) return args.help_requested() ? 0 : 2;
///
/// Flags are `--name value` or `--name=value`; `--help` prints usage and
/// makes Parse return false with help_requested() set. Values are parsed
/// with util ParseInt/ParseDouble, so `--steps banana` is a hard error
/// with an actionable message instead of a silent 0.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a typed flag. `*out` receives the default immediately and
  /// the parsed value during Parse. Pointers must outlive Parse.
  void AddInt(const std::string& name, int default_value,
              const std::string& help, int* out);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help, double* out);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help, std::string* out);
  /// Presence flag: `--name` sets true; `--name=false` resets.
  void AddBool(const std::string& name, const std::string& help, bool* out);

  /// Registers a positional argument, filled in declaration order. Missing
  /// optional positionals keep their default.
  void AddPositional(const std::string& name, const std::string& default_value,
                     const std::string& help, std::string* out);

  /// Parses the command line. Returns false on --help (usage printed to
  /// stdout) or on error (message + usage printed to stderr).
  bool Parse(int argc, char** argv);

  bool help_requested() const { return help_requested_; }

  /// The generated usage text.
  std::string Usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    std::string name;
    Kind kind = Kind::kString;
    std::string help;
    std::string default_text;
    int* int_out = nullptr;
    double* double_out = nullptr;
    std::string* string_out = nullptr;
    bool* bool_out = nullptr;
  };
  struct Positional {
    std::string name;
    std::string help;
    std::string default_text;
    std::string* out = nullptr;
  };

  Flag* FindFlag(const std::string& name);
  bool SetFlag(Flag& flag, const std::string& value, std::string* error);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
  bool help_requested_ = false;
};

}  // namespace util
}  // namespace fieldswap

#endif  // FIELDSWAP_UTIL_ARGPARSE_H_
