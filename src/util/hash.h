#ifndef FIELDSWAP_UTIL_HASH_H_
#define FIELDSWAP_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace fieldswap {

/// FNV-1a 64-bit hash of a byte string. Used for deterministic vocabulary
/// hashing (feature hashing of token text) and for string-keyed RNG splits.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Stable bucket id in [0, num_buckets) for feature-hashed embeddings.
inline uint32_t HashBucket(std::string_view text, uint32_t num_buckets) {
  return static_cast<uint32_t>(Fnv1a64(text) % num_buckets);
}

}  // namespace fieldswap

#endif  // FIELDSWAP_UTIL_HASH_H_
