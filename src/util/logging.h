#ifndef FIELDSWAP_UTIL_LOGGING_H_
#define FIELDSWAP_UTIL_LOGGING_H_

#include <sstream>
#include <string_view>

namespace fieldswap {

/// Severity levels for LogMessage.
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// Destination for formatted log lines. Implementations receive the fully
/// formatted line (severity tag, location, message, trailing newline) and
/// must be safe to call from multiple threads: the logger serializes all
/// Write calls behind one mutex.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogSeverity severity, std::string_view line) = 0;
};

/// Minimum severity that reaches the sink. Initialized once from the
/// FS_LOG_LEVEL environment variable ("info", "warning", "error", "fatal";
/// default info). kFatal messages are always emitted and always abort.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

/// Parses a severity name; returns false (and leaves `out` alone) on an
/// unrecognized value. Accepts "info", "warning"/"warn", "error", "fatal"
/// (case-insensitive).
bool ParseLogSeverity(std::string_view name, LogSeverity* out);

/// Replaces the process-wide sink; returns the previous one (nullptr means
/// the default stderr sink was active). Passing nullptr restores the
/// default. The caller keeps ownership of the installed sink and must keep
/// it alive until replaced.
LogSink* SetLogSink(LogSink* sink);

/// Minimal streaming logger. A LogMessage accumulates a line and flushes it
/// to the active sink on destruction (under a mutex, so concurrent log
/// lines never interleave); kFatal additionally aborts the process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows the stream expression in FS_CHECK's success branch. operator&
/// binds looser than << and tighter than ?:, so the whole macro stays one
/// void expression.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace fieldswap

#define FS_LOG(severity)                                                  \
  ::fieldswap::LogMessage(::fieldswap::LogSeverity::k##severity, __FILE__, \
                          __LINE__)                                        \
      .stream()

// CHECK-style assertion that is active in all build modes. On failure it
// logs the failed condition and aborts. Expands to a single void
// expression, so `if (x) FS_CHECK(y); else ...` binds as intended.
#define FS_CHECK(condition)                       \
  (condition) ? (void)0                           \
              : ::fieldswap::LogMessageVoidify() & \
                    FS_LOG(Fatal) << "Check failed: " #condition " "

#define FS_CHECK_OP(op, a, b)                                               \
  ((a)op(b)) ? (void)0                                                      \
             : ::fieldswap::LogMessageVoidify() &                           \
                   FS_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" \
                                 << (a) << " vs " << (b) << ") "

#define FS_CHECK_EQ(a, b) FS_CHECK_OP(==, a, b)
#define FS_CHECK_NE(a, b) FS_CHECK_OP(!=, a, b)
#define FS_CHECK_LT(a, b) FS_CHECK_OP(<, a, b)
#define FS_CHECK_LE(a, b) FS_CHECK_OP(<=, a, b)
#define FS_CHECK_GT(a, b) FS_CHECK_OP(>, a, b)
#define FS_CHECK_GE(a, b) FS_CHECK_OP(>=, a, b)

#endif  // FIELDSWAP_UTIL_LOGGING_H_
