#ifndef FIELDSWAP_UTIL_LOGGING_H_
#define FIELDSWAP_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fieldswap {

/// Severity levels for LogMessage.
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// Minimal streaming log sink. A LogMessage accumulates a line and flushes
/// it to stderr on destruction; kFatal additionally aborts the process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << SeverityTag(severity) << " " << Basename(file) << ":" << line
            << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == LogSeverity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* SeverityTag(LogSeverity severity) {
    switch (severity) {
      case LogSeverity::kInfo:
        return "I";
      case LogSeverity::kWarning:
        return "W";
      case LogSeverity::kError:
        return "E";
      case LogSeverity::kFatal:
        return "F";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace fieldswap

#define FS_LOG(severity)                                                  \
  ::fieldswap::LogMessage(::fieldswap::LogSeverity::k##severity, __FILE__, \
                          __LINE__)                                        \
      .stream()

// CHECK-style assertion that is active in all build modes. On failure it
// logs the failed condition and aborts.
#define FS_CHECK(condition)                                      \
  if (!(condition))                                              \
  FS_LOG(Fatal) << "Check failed: " #condition " "

#define FS_CHECK_OP(op, a, b)                                              \
  if (!((a)op(b)))                                                         \
  FS_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " \
                << (b) << ") "

#define FS_CHECK_EQ(a, b) FS_CHECK_OP(==, a, b)
#define FS_CHECK_NE(a, b) FS_CHECK_OP(!=, a, b)
#define FS_CHECK_LT(a, b) FS_CHECK_OP(<, a, b)
#define FS_CHECK_LE(a, b) FS_CHECK_OP(<=, a, b)
#define FS_CHECK_GT(a, b) FS_CHECK_OP(>, a, b)
#define FS_CHECK_GE(a, b) FS_CHECK_OP(>=, a, b)

#endif  // FIELDSWAP_UTIL_LOGGING_H_
