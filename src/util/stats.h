#ifndef FIELDSWAP_UTIL_STATS_H_
#define FIELDSWAP_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace fieldswap {

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]. Requires non-empty input.
double Quantile(std::vector<double> values, double q);

/// Five-number summary plus outliers, matching the box plots in Fig. 6 of
/// the paper: whiskers extend to the furthest point within 1.5 * IQR of the
/// quartiles; points beyond are outliers.
struct BoxStats {
  double median = 0;
  double q1 = 0;
  double q3 = 0;
  double whisker_lo = 0;
  double whisker_hi = 0;
  std::vector<double> outliers;
  size_t n = 0;
};

/// Computes BoxStats for a non-empty sample.
BoxStats ComputeBoxStats(const std::vector<double>& values);

}  // namespace fieldswap

#endif  // FIELDSWAP_UTIL_STATS_H_
