#ifndef FIELDSWAP_UTIL_THREAD_ANNOTATIONS_H_
#define FIELDSWAP_UTIL_THREAD_ANNOTATIONS_H_

/// Lock-discipline annotations, machine-checked by fslint's flow-aware
/// concurrency rules (src/lint/concurrency.h, DESIGN.md "Concurrency
/// analysis"). The macros expand to nothing — they are declarations of
/// intent that the analyzer (not the compiler) enforces:
///
///   class Server {
///    public:
///     void Submit();                       // takes mu_ itself
///     void RunLocked() FS_REQUIRES(mu_);   // caller must hold mu_
///     void Flush() FS_EXCLUDES(mu_);       // caller must NOT hold mu_
///    private:
///     mutable util::OrderedMutex mu_;
///     std::deque<Request> queue_ FS_GUARDED_BY(mu_);
///   };
///
/// FS_GUARDED_BY(m)  on a data member (or namespace-scope variable): every
///                   read or write must happen in a scope where `m` is held
///                   (std::lock_guard / unique_lock / scoped_lock), or
///                   inside a function annotated FS_REQUIRES(m).
///                   Constructors and destructors are exempt — no other
///                   thread can hold a reference yet/anymore.
/// FS_REQUIRES(m)    on a function: the caller acquires `m` before calling;
///                   the body may touch members guarded by `m` freely. When
///                   the function also takes a std::unique_lock& parameter,
///                   the analyzer binds that parameter to `m`, so
///                   lock.unlock()/lock.lock() toggles are modeled.
/// FS_EXCLUDES(m)    on a function: documents that the body (re-)acquires
///                   `m`, so calling it with `m` held would self-deadlock.
///
/// The annotations pair with util::OrderedMutex (par/lock_validator.h) for
/// runtime acquisition-order validation, and with tools/lock_order.txt for
/// the static lock-order manifest.

#define FS_GUARDED_BY(mutex)
#define FS_REQUIRES(mutex)
#define FS_EXCLUDES(mutex)

#endif  // FIELDSWAP_UTIL_THREAD_ANNOTATIONS_H_
