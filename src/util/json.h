#ifndef FIELDSWAP_UTIL_JSON_H_
#define FIELDSWAP_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fieldswap {
namespace util {

/// Small generic JSON document model used by the perf-observability layer
/// (bench sidecars, BENCH_<n>.json trajectory files) and anything else that
/// needs to *consume* JSON rather than just emit it. Objects are stored in
/// a std::map, so key order is always sorted: Parse -> Dump is a
/// canonicalizing round trip, which is exactly what diff-friendly
/// trajectory files need. Numbers are doubles; integral values within the
/// exact-double range dump without a decimal point, everything else dumps
/// via shortest-round-trip formatting, so Dump(Parse(Dump(x))) == Dump(x).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  /// Strict recursive-descent parse of one JSON document (trailing
  /// whitespace allowed, trailing garbage rejected). Returns nullopt on any
  /// syntax error.
  static std::optional<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_items() const {
    return object_;
  }

  /// Object field access; returns nullptr when this is not an object or
  /// the key is absent.
  const JsonValue* Find(const std::string& key) const;

  /// Mutators for building documents programmatically.
  JsonValue& Set(const std::string& key, JsonValue value);
  JsonValue& Append(JsonValue value);

  /// Serializes deterministically (object keys sorted by std::map).
  /// `indent` < 0 emits one line; >= 0 pretty-prints with that many spaces
  /// per level.
  std::string Dump(int indent = -1) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Shortest-round-trip formatting of a double ("3", "0.25", "1e-09").
/// Integral values inside the exact-double range print without a decimal
/// point. Shared so every perf artifact formats numbers identically.
std::string FormatJsonNumber(double value);

/// JSON string escaping (quotes, backslash, control characters).
std::string JsonEscapeString(const std::string& text);

}  // namespace util
}  // namespace fieldswap

#endif  // FIELDSWAP_UTIL_JSON_H_
