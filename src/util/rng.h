#ifndef FIELDSWAP_UTIL_RNG_H_
#define FIELDSWAP_UTIL_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace fieldswap {

/// Deterministic, splittable pseudo-random number generator.
///
/// Built on SplitMix64. Every source of randomness in this codebase flows
/// through an explicitly-seeded Rng so that corpora, model initialization,
/// training shuffles, and experiment subsets are all reproducible. `Split`
/// derives an independent child stream, which lets one master seed fan out
/// to per-document / per-trial generators without correlation.
///
/// Stream version 2: standard SplitMix64 seeding (state = seed, with one
/// advance burned so the first output is fully mixed). The original
/// `state = seed ^ kGolden` construction aliased seed families (any two
/// seeds related by the XOR constant produced each other's streams, e.g.
/// Rng(kGolden) ran the canonical seed-0 sequence). Every seeded stream —
/// and therefore every generated corpus — changed at this version bump;
/// see the golden-value test in tests/util_test.cc that pins the v2
/// streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + kGolden) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Uniformly chosen index into a container of the given size (size > 0).
  size_t Index(size_t size);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      std::swap(items[i], items[Index(i + 1)]);
    }
  }

  /// Samples k distinct indices from [0, n). Returns fewer if k > n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator keyed by `salt`.
  Rng Split(uint64_t salt);

  /// Derives an independent child generator keyed by a string tag.
  Rng Split(std::string_view tag);

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

  uint64_t state_;
};

}  // namespace fieldswap

#endif  // FIELDSWAP_UTIL_RNG_H_
