#include "util/table.h"

#include <algorithm>

namespace fieldswap {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { separators_.push_back(rows_.size()); }

void TablePrinter::Print(std::ostream& os) const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());

  std::vector<size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto rule = [&]() {
    os << "+";
    for (size_t i = 0; i < cols; ++i) {
      os << std::string(widths[i] + 2, '-') << "+";
    }
    os << "\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  rule();
  emit(header_);
  rule();
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t s : separators_) {
      if (s == r) rule();
    }
    emit(rows_[r]);
  }
  rule();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace fieldswap
