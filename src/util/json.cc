#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace fieldswap {
namespace util {
namespace {

/// Cursor over the input text; all Parse* helpers advance `pos` past what
/// they consume and return false (leaving the output untouched) on error.
struct Cursor {
  const std::string& text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  void SkipWhitespace() {
    while (pos < text.size()) {
      char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }
  bool Consume(char expected) {
    if (AtEnd() || text[pos] != expected) return false;
    ++pos;
    return true;
  }
  bool ConsumeWord(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text.compare(pos, len, word) != 0) return false;
    pos += len;
    return true;
  }
};

bool ParseValue(Cursor& cur, JsonValue* out, int depth);

bool ParseHex4(Cursor& cur, unsigned* out) {
  unsigned value = 0;
  for (int i = 0; i < 4; ++i) {
    if (cur.AtEnd()) return false;
    char c = cur.text[cur.pos++];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<unsigned>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

void AppendUtf8(std::string& out, unsigned code_point) {
  if (code_point < 0x80) {
    out.push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

bool ParseString(Cursor& cur, std::string* out) {
  if (!cur.Consume('"')) return false;
  std::string value;
  while (true) {
    if (cur.AtEnd()) return false;
    char c = cur.text[cur.pos++];
    if (c == '"') break;
    if (c == '\\') {
      if (cur.AtEnd()) return false;
      char esc = cur.text[cur.pos++];
      switch (esc) {
        case '"': value.push_back('"'); break;
        case '\\': value.push_back('\\'); break;
        case '/': value.push_back('/'); break;
        case 'b': value.push_back('\b'); break;
        case 'f': value.push_back('\f'); break;
        case 'n': value.push_back('\n'); break;
        case 'r': value.push_back('\r'); break;
        case 't': value.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(cur, &code)) return false;
          AppendUtf8(value, code);
          break;
        }
        default:
          return false;
      }
    } else {
      value.push_back(c);
    }
  }
  *out = std::move(value);
  return true;
}

bool ParseNumber(Cursor& cur, double* out) {
  size_t start = cur.pos;
  if (!cur.AtEnd() && cur.Peek() == '-') ++cur.pos;
  while (!cur.AtEnd()) {
    char c = cur.Peek();
    if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
        c == '+' || c == '-') {
      ++cur.pos;
    } else {
      break;
    }
  }
  if (cur.pos == start) return false;
  std::string token = cur.text.substr(start, cur.pos - start);
  const char* begin = token.c_str();
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end != begin + token.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

constexpr int kMaxDepth = 64;

bool ParseArray(Cursor& cur, JsonValue* out, int depth) {
  if (!cur.Consume('[')) return false;
  JsonValue array = JsonValue::MakeArray();
  cur.SkipWhitespace();
  if (cur.Consume(']')) {
    *out = std::move(array);
    return true;
  }
  while (true) {
    JsonValue item;
    if (!ParseValue(cur, &item, depth + 1)) return false;
    array.Append(std::move(item));
    cur.SkipWhitespace();
    if (cur.Consume(']')) break;
    if (!cur.Consume(',')) return false;
  }
  *out = std::move(array);
  return true;
}

bool ParseObject(Cursor& cur, JsonValue* out, int depth) {
  if (!cur.Consume('{')) return false;
  JsonValue object = JsonValue::MakeObject();
  cur.SkipWhitespace();
  if (cur.Consume('}')) {
    *out = std::move(object);
    return true;
  }
  while (true) {
    cur.SkipWhitespace();
    std::string key;
    if (!ParseString(cur, &key)) return false;
    cur.SkipWhitespace();
    if (!cur.Consume(':')) return false;
    JsonValue item;
    if (!ParseValue(cur, &item, depth + 1)) return false;
    object.Set(key, std::move(item));
    cur.SkipWhitespace();
    if (cur.Consume('}')) break;
    if (!cur.Consume(',')) return false;
  }
  *out = std::move(object);
  return true;
}

bool ParseValue(Cursor& cur, JsonValue* out, int depth) {
  if (depth > kMaxDepth) return false;
  cur.SkipWhitespace();
  if (cur.AtEnd()) return false;
  char c = cur.Peek();
  if (c == '{') return ParseObject(cur, out, depth);
  if (c == '[') return ParseArray(cur, out, depth);
  if (c == '"') {
    std::string value;
    if (!ParseString(cur, &value)) return false;
    *out = JsonValue::MakeString(std::move(value));
    return true;
  }
  if (c == 't') {
    if (!cur.ConsumeWord("true")) return false;
    *out = JsonValue::MakeBool(true);
    return true;
  }
  if (c == 'f') {
    if (!cur.ConsumeWord("false")) return false;
    *out = JsonValue::MakeBool(false);
    return true;
  }
  if (c == 'n') {
    if (!cur.ConsumeWord("null")) return false;
    *out = JsonValue::MakeNull();
    return true;
  }
  double number = 0;
  if (!ParseNumber(cur, &number)) return false;
  *out = JsonValue::MakeNumber(number);
  return true;
}

void DumpTo(const JsonValue& value, std::string& out, int indent, int level);

void AppendIndent(std::string& out, int indent, int level) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<size_t>(indent) * static_cast<size_t>(level), ' ');
}

void DumpTo(const JsonValue& value, std::string& out, int indent, int level) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.bool_value() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += FormatJsonNumber(value.number_value());
      return;
    case JsonValue::Kind::kString:
      out.push_back('"');
      out += JsonEscapeString(value.string_value());
      out.push_back('"');
      return;
    case JsonValue::Kind::kArray: {
      const std::vector<JsonValue>& items = value.array_items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendIndent(out, indent, level + 1);
        if (indent < 0 && i > 0) out.push_back(' ');
        DumpTo(items[i], out, indent, level + 1);
      }
      AppendIndent(out, indent, level);
      out.push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      const std::map<std::string, JsonValue>& items = value.object_items();
      if (items.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, item] : items) {
        if (!first) out.push_back(',');
        AppendIndent(out, indent, level + 1);
        if (indent < 0 && !first) out.push_back(' ');
        first = false;
        out.push_back('"');
        out += JsonEscapeString(key);
        out += "\": ";
        DumpTo(item, out, indent, level + 1);
      }
      AppendIndent(out, indent, level);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

std::optional<JsonValue> JsonValue::Parse(const std::string& text) {
  Cursor cur{text};
  JsonValue value;
  if (!ParseValue(cur, &value, 0)) return std::nullopt;
  cur.SkipWhitespace();
  if (!cur.AtEnd()) return std::nullopt;
  return value;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  kind_ = Kind::kObject;
  object_[key] = std::move(value);
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
  return *this;
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(*this, out, indent, 0);
  return out;
}

std::string FormatJsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  double rounded = std::nearbyint(value);
  if (rounded == value && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
  }
  return std::string(buf, ptr);
}

std::string JsonEscapeString(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace util
}  // namespace fieldswap
