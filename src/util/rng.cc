#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/hash.h"
#include "util/logging.h"

namespace fieldswap {

uint64_t Rng::Next() {
  state_ += kGolden;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % span);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gaussian() {
  // Box-Muller; u clamped away from zero for the log.
  double u = Uniform();
  if (u < 1e-300) u = 1e-300;
  double v = Uniform();
  return std::sqrt(-2.0 * std::log(u)) * std::cos(2.0 * std::numbers::pi * v);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

size_t Rng::Index(size_t size) {
  FS_CHECK_GT(size, 0u);
  return static_cast<size_t>(Next() % size);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  Shuffle(all);
  if (k < n) all.resize(k);
  return all;
}

Rng Rng::Split(uint64_t salt) {
  // Mix the parent's next output with the salt so sibling splits differ.
  uint64_t child_seed = Next() ^ (salt * 0xd6e8feb86659fd93ULL + kGolden);
  return Rng(child_seed);
}

Rng Rng::Split(std::string_view tag) { return Split(Fnv1a64(tag)); }

}  // namespace fieldswap
