#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fieldswap {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0;
  double m = Mean(values);
  double ss = 0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double Quantile(std::vector<double> values, double q) {
  FS_CHECK(!values.empty());
  FS_CHECK_GE(q, 0.0);
  FS_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

BoxStats ComputeBoxStats(const std::vector<double>& values) {
  FS_CHECK(!values.empty());
  BoxStats stats;
  stats.n = values.size();
  stats.median = Quantile(values, 0.5);
  stats.q1 = Quantile(values, 0.25);
  stats.q3 = Quantile(values, 0.75);
  double iqr = stats.q3 - stats.q1;
  double lo_fence = stats.q1 - 1.5 * iqr;
  double hi_fence = stats.q3 + 1.5 * iqr;
  stats.whisker_lo = stats.q3;
  stats.whisker_hi = stats.q1;
  bool any_in_fence = false;
  for (double v : values) {
    if (v >= lo_fence && v <= hi_fence) {
      if (!any_in_fence) {
        stats.whisker_lo = v;
        stats.whisker_hi = v;
        any_in_fence = true;
      } else {
        stats.whisker_lo = std::min(stats.whisker_lo, v);
        stats.whisker_hi = std::max(stats.whisker_hi, v);
      }
    } else {
      stats.outliers.push_back(v);
    }
  }
  std::sort(stats.outliers.begin(), stats.outliers.end());
  return stats;
}

}  // namespace fieldswap
