#ifndef FIELDSWAP_UTIL_TABLE_H_
#define FIELDSWAP_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace fieldswap {

/// ASCII table printer used by the benchmark harness to render the paper's
/// tables and figure series as aligned rows on stdout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows extend the column count.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator after the most recently added row.
  void AddSeparator();

  /// Renders the table.
  void Print(std::ostream& os) const;

  /// Renders the table as comma-separated values (no alignment).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> separators_;  // row indices after which to draw a rule
};

}  // namespace fieldswap

#endif  // FIELDSWAP_UTIL_TABLE_H_
