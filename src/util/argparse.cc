#include "util/argparse.h"

#include <iostream>
#include <sstream>

#include "util/strings.h"

namespace fieldswap {
namespace util {

namespace {

std::string FormatDefault(const std::string& text) {
  return text.empty() ? std::string("\"\"") : text;
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::AddInt(const std::string& name, int default_value,
                       const std::string& help, int* out) {
  *out = default_value;
  Flag flag;
  flag.name = name;
  flag.kind = Kind::kInt;
  flag.help = help;
  flag.default_text = std::to_string(default_value);
  flag.int_out = out;
  flags_.push_back(std::move(flag));
}

void ArgParser::AddDouble(const std::string& name, double default_value,
                          const std::string& help, double* out) {
  *out = default_value;
  Flag flag;
  flag.name = name;
  flag.kind = Kind::kDouble;
  flag.help = help;
  flag.default_text = FormatDouble(default_value, 3);
  flag.double_out = out;
  flags_.push_back(std::move(flag));
}

void ArgParser::AddString(const std::string& name,
                          const std::string& default_value,
                          const std::string& help, std::string* out) {
  *out = default_value;
  Flag flag;
  flag.name = name;
  flag.kind = Kind::kString;
  flag.help = help;
  flag.default_text = default_value;
  flag.string_out = out;
  flags_.push_back(std::move(flag));
}

void ArgParser::AddBool(const std::string& name, const std::string& help,
                        bool* out) {
  *out = false;
  Flag flag;
  flag.name = name;
  flag.kind = Kind::kBool;
  flag.help = help;
  flag.default_text = "false";
  flag.bool_out = out;
  flags_.push_back(std::move(flag));
}

void ArgParser::AddPositional(const std::string& name,
                              const std::string& default_value,
                              const std::string& help, std::string* out) {
  *out = default_value;
  Positional pos;
  pos.name = name;
  pos.help = help;
  pos.default_text = default_value;
  pos.out = out;
  positionals_.push_back(std::move(pos));
}

ArgParser::Flag* ArgParser::FindFlag(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool ArgParser::SetFlag(Flag& flag, const std::string& value,
                        std::string* error) {
  switch (flag.kind) {
    case Kind::kInt:
      if (!TryParseInt(value.c_str(), flag.int_out)) {
        *error = "--" + flag.name + " expects an integer, got '" + value + "'";
        return false;
      }
      return true;
    case Kind::kDouble:
      if (!TryParseDouble(value.c_str(), flag.double_out)) {
        *error = "--" + flag.name + " expects a number, got '" + value + "'";
        return false;
      }
      return true;
    case Kind::kString:
      *flag.string_out = value;
      return true;
    case Kind::kBool:
      if (EqualsIgnoreCase(value, "true") || value == "1") {
        *flag.bool_out = true;
      } else if (EqualsIgnoreCase(value, "false") || value == "0") {
        *flag.bool_out = false;
      } else {
        *error = "--" + flag.name + " expects true/false, got '" + value + "'";
        return false;
      }
      return true;
  }
  return false;
}

bool ArgParser::Parse(int argc, char** argv) {
  size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::cout << Usage();
      return false;
    }
    std::string error;
    if (StartsWith(arg, "--")) {
      std::string body = arg.substr(2);
      std::string name = body;
      std::string value;
      bool have_value = false;
      size_t eq = body.find('=');
      if (eq != std::string::npos) {
        name = body.substr(0, eq);
        value = body.substr(eq + 1);
        have_value = true;
      }
      Flag* flag = FindFlag(name);
      if (flag == nullptr) {
        std::cerr << program_ << ": unknown flag '--" << name
                  << "' (see --help)\n";
        return false;
      }
      if (!have_value) {
        if (flag->kind == Kind::kBool) {
          *flag->bool_out = true;
          continue;
        }
        if (i + 1 >= argc) {
          std::cerr << program_ << ": --" << name << " needs a value\n";
          return false;
        }
        value = argv[++i];
      }
      if (!SetFlag(*flag, value, &error)) {
        std::cerr << program_ << ": " << error << "\n";
        return false;
      }
    } else {
      if (next_positional >= positionals_.size()) {
        std::cerr << program_ << ": unexpected argument '" << arg
                  << "' (see --help)\n";
        return false;
      }
      *positionals_[next_positional++].out = arg;
    }
  }
  return true;
}

std::string ArgParser::Usage() const {
  std::ostringstream out;
  out << "usage: " << program_;
  for (const Positional& pos : positionals_) out << " [" << pos.name << "]";
  if (!flags_.empty()) out << " [flags]";
  out << "\n";
  if (!description_.empty()) out << "\n" << description_ << "\n";
  if (!positionals_.empty()) {
    out << "\npositional arguments:\n";
    for (const Positional& pos : positionals_) {
      out << "  " << pos.name << "  " << pos.help << " (default: "
          << FormatDefault(pos.default_text) << ")\n";
    }
  }
  out << "\nflags:\n";
  for (const Flag& flag : flags_) {
    out << "  --" << flag.name << "  " << flag.help << " (default: "
        << FormatDefault(flag.default_text) << ")\n";
  }
  out << "  --help  print this message and exit\n";
  return out.str();
}

}  // namespace util
}  // namespace fieldswap
