#ifndef FIELDSWAP_MODEL_DECODER_H_
#define FIELDSWAP_MODEL_DECODER_H_

#include <vector>

#include "nn/matrix.h"

namespace fieldswap {

/// Constrained Viterbi decoding over BIO tag logits.
///
/// Enforces the BIO grammar that greedy per-token argmax can violate:
/// I-f may only follow B-f or I-f of the same field. Transitions that
/// violate the grammar get -inf score; all others are free (no learned
/// transition weights — the constraint is structural).
///
/// `logits` is [T, C] with the class layout of sequence_model.h
/// (0 = O, 2f+1 = B-f, 2f+2 = I-f). Returns the highest-scoring valid tag
/// sequence of length T.
std::vector<int> ViterbiDecodeBio(const Matrix& logits);

/// True if `tag` may follow `prev_tag` under the BIO grammar.
bool BioTransitionAllowed(int prev_tag, int tag);

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_DECODER_H_
