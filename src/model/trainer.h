#ifndef FIELDSWAP_MODEL_TRAINER_H_
#define FIELDSWAP_MODEL_TRAINER_H_

#include <vector>

#include "doc/document.h"
#include "model/options.h"
#include "model/sequence_model.h"
#include "obs/telemetry.h"
#include "util/rng.h"

namespace fieldswap {

/// Training protocol options. The canonical definition (and the shared
/// defaults) live in model/options.h next to the candidate pre-train
/// options; this alias keeps every existing call site source-compatible.
using TrainOptions = SequenceTrainOptions;

/// Outcome of a training run.
struct TrainResult {
  double best_validation_f1 = 0;
  double final_loss = 0;
  int steps = 0;
};

/// Trains `model` on original + synthetic documents per TrainOptions.
/// On return the model holds the best-validation parameters.
TrainResult TrainSequenceModel(SequenceLabelingModel& model,
                               const std::vector<Document>& originals,
                               const std::vector<Document>& synthetics,
                               const TrainOptions& options);

/// Micro-F1 of exact-span predictions on `docs` (used for validation).
double MicroF1OnDocs(const SequenceLabelingModel& model,
                     const std::vector<Document>& docs);

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_TRAINER_H_
