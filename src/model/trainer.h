#ifndef FIELDSWAP_MODEL_TRAINER_H_
#define FIELDSWAP_MODEL_TRAINER_H_

#include <vector>

#include "doc/corpus.h"
#include "doc/document.h"
#include "model/options.h"
#include "model/sequence_model.h"
#include "obs/telemetry.h"
#include "util/rng.h"

namespace fieldswap {

/// Training protocol options. The canonical definition (and the shared
/// defaults) live in model/options.h next to the candidate pre-train
/// options; this alias keeps every existing call site source-compatible.
using TrainOptions = SequenceTrainOptions;

/// Outcome of a training run.
struct TrainResult {
  double best_validation_f1 = 0;
  double final_loss = 0;
  int steps = 0;
};

/// Trains `model` on original + synthetic documents per TrainOptions.
/// On return the model holds the best-validation parameters.
///
/// This is the streaming core (ISSUE 10): documents are pulled from the
/// readers one task at a time during pool encoding, so only the encoded
/// pools — not the raw corpus — are resident. The RNG stream (shuffle,
/// validation split, per-step pool draws) is byte-identical to what the
/// historical vector-based path produced, so golden F1 values are
/// unchanged. Pass null `synthetics` for an empty synthetic pool.
TrainResult TrainSequenceModel(SequenceLabelingModel& model,
                               const doc::CorpusReader& originals,
                               const doc::CorpusReader* synthetics,
                               const TrainOptions& options);

/// Vector entry point, kept as a thin adapter over the reader core —
/// existing call sites and tests stay source-compatible.
TrainResult TrainSequenceModel(SequenceLabelingModel& model,
                               const std::vector<Document>& originals,
                               const std::vector<Document>& synthetics,
                               const TrainOptions& options);

/// Micro-F1 of exact-span predictions on `docs` (used for validation).
double MicroF1OnDocs(const SequenceLabelingModel& model,
                     const std::vector<Document>& docs);

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_TRAINER_H_
