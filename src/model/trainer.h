#ifndef FIELDSWAP_MODEL_TRAINER_H_
#define FIELDSWAP_MODEL_TRAINER_H_

#include <vector>

#include "doc/document.h"
#include "model/sequence_model.h"
#include "obs/telemetry.h"
#include "util/rng.h"

namespace fieldswap {

/// Training protocol options, mirroring the paper's setup (Sec. IV-B):
/// a 90/10 train-validation split of the original documents, synthetic
/// documents added to the training split only, a fixed step budget so the
/// baseline and the augmented model get the same amount of optimization
/// (the paper's equal-training-time control), and best-validation
/// checkpoint selection.
struct TrainOptions {
  int total_steps = 1200;
  float learning_rate = 3e-3f;
  /// Validate (and possibly checkpoint) every this many steps.
  int validate_every = 200;
  /// Fraction of steps drawn from the synthetic pool when synthetics are
  /// present (the rest sample original documents). Balances the union so a
  /// huge synthetic pool cannot drown the handful of real documents under
  /// the fixed step budget.
  double synthetic_fraction = 0.4;
  uint64_t seed = 17;
  /// Optional recorder for per-step loss and validation micro-F1 (not
  /// owned). The trainer also always feeds the global metrics registry
  /// (fieldswap.train.* counters/gauges) and emits trace spans.
  obs::TrainingTelemetry* telemetry = nullptr;
};

/// Outcome of a training run.
struct TrainResult {
  double best_validation_f1 = 0;
  double final_loss = 0;
  int steps = 0;
};

/// Trains `model` on original + synthetic documents per TrainOptions.
/// On return the model holds the best-validation parameters.
TrainResult TrainSequenceModel(SequenceLabelingModel& model,
                               const std::vector<Document>& originals,
                               const std::vector<Document>& synthetics,
                               const TrainOptions& options);

/// Micro-F1 of exact-span predictions on `docs` (used for validation).
double MicroF1OnDocs(const SequenceLabelingModel& model,
                     const std::vector<Document>& docs);

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_TRAINER_H_
