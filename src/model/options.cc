#include "model/options.h"

#include <cmath>

namespace fieldswap {

namespace {

std::string Bad(const std::string& field, const std::string& got,
                const std::string& want) {
  return "TrainOptions." + field + " = " + got + " is invalid: " + want;
}

}  // namespace

std::string SequenceTrainOptions::Validate() const {
  if (total_steps < 1) {
    return Bad("total_steps", std::to_string(total_steps),
               "need >= 1 training step (default " +
                   std::to_string(TrainDefaults::kTotalSteps) + ")");
  }
  if (!(learning_rate > 0.0f) || !std::isfinite(learning_rate)) {
    return Bad("learning_rate", std::to_string(learning_rate),
               "need a finite rate > 0 (default " +
                   std::to_string(TrainDefaults::kLearningRate) + ")");
  }
  if (validate_every < 1) {
    return Bad("validate_every", std::to_string(validate_every),
               "need >= 1; validation drives best-checkpoint selection "
               "(default " +
                   std::to_string(TrainDefaults::kValidateEvery) + ")");
  }
  if (!(synthetic_fraction >= 0.0) || !(synthetic_fraction <= 1.0)) {
    return Bad("synthetic_fraction", std::to_string(synthetic_fraction),
               "need a probability in [0, 1] (default " +
                   std::to_string(TrainDefaults::kSyntheticFraction) + ")");
  }
  return "";
}

std::string CandidatePretrainOptions::Validate() const {
  if (epochs < 1) {
    return "CandidateTrainOptions.epochs = " + std::to_string(epochs) +
           " is invalid: need >= 1 epoch (default " +
           std::to_string(TrainDefaults::kCandidateEpochs) + ")";
  }
  if (!(learning_rate > 0.0f) || !std::isfinite(learning_rate)) {
    return "CandidateTrainOptions.learning_rate = " +
           std::to_string(learning_rate) +
           " is invalid: need a finite rate > 0 (default " +
           std::to_string(TrainDefaults::kCandidateLearningRate) + ")";
  }
  if (negatives_per_positive < 0) {
    return "CandidateTrainOptions.negatives_per_positive = " +
           std::to_string(negatives_per_positive) +
           " is invalid: need >= 0 sampled negatives (default " +
           std::to_string(TrainDefaults::kNegativesPerPositive) + ")";
  }
  return "";
}

}  // namespace fieldswap
