#ifndef FIELDSWAP_MODEL_FEATURES_H_
#define FIELDSWAP_MODEL_FEATURES_H_

#include <string>
#include <string_view>
#include <vector>

#include "doc/document.h"

namespace fieldswap {

/// Compressed word-shape signature: uppercase -> 'X', lowercase -> 'x',
/// digit -> 'd', other kept verbatim; runs collapsed to one symbol.
/// "$3,308.62" -> "$d,d.d", "Overtime" -> "Xx".
std::string TokenShape(std::string_view text);

/// Feature-hash bucket of the lowercased token text.
int TextBucket(std::string_view text, int num_buckets);

/// Feature-hash bucket of the token's shape signature.
int ShapeBucket(std::string_view text, int num_buckets);

/// Normalized absolute position features of a box on a page:
/// {cx/W, cy/H, w/W, h/H}.
std::vector<float> PositionFeatures(const BBox& box, double page_width,
                                    double page_height);
inline constexpr int kNumPositionFeatures = 4;

/// Relative spatial features of `neighbor` w.r.t. `anchor`:
/// {dx/W, dy/H, |dx|/W, |dy|/H, normalized off-axis distance, same-y-band}.
std::vector<float> RelativeFeatures(const BBox& anchor, const BBox& neighbor,
                                    double page_width, double page_height);
inline constexpr int kNumRelativeFeatures = 6;

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_FEATURES_H_
