#ifndef FIELDSWAP_MODEL_SEQUENCE_MODEL_H_
#define FIELDSWAP_MODEL_SEQUENCE_MODEL_H_

#include <string>
#include <vector>

#include "doc/document.h"
#include "doc/schema.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace fieldswap {

/// Configuration of the sequence-labeling extraction backbone (the paper's
/// FormNet-style model, Sec. IV-B, shrunk to CPU scale).
struct SequenceModelConfig {
  int d_model = 32;
  int num_layers = 1;
  /// Tokens attend to this many off-axis-nearest neighbors plus a small
  /// reading-order window (FormNet-style locality).
  int spatial_neighbors = 10;
  int sequence_window = 2;
  int text_buckets = 4096;
  int shape_buckets = 128;
  int max_tokens = 256;
  /// Loss weight of the O class relative to B/I classes (counters extreme
  /// class imbalance on form pages).
  float outside_weight = 0.2f;
  /// Decode with BIO-constrained Viterbi (model/decoder.h) instead of
  /// greedy per-token argmax. Off by default to match the paper's simple
  /// sequence-labeling readout; an extension benchmarked in ablations.
  bool use_viterbi_decoding = false;
  uint64_t seed = 5;
};

/// A document pre-encoded for the model: feature ids, position features,
/// attention neighbor lists, and BIO labels. Computed once per document and
/// reused across training steps.
struct EncodedDoc {
  int num_tokens = 0;
  std::vector<int> text_ids;
  std::vector<int> shape_ids;
  Matrix positions;  // [T, kNumPositionFeatures]
  std::vector<std::vector<int>> neighbors;
  std::vector<int> labels;  // BIO class ids (empty if unannotated)
};

/// BIO tag utilities: class 0 is O; field f has B = 2f+1, I = 2f+2.
int BioNumClasses(int num_fields);
int BioBeginClass(int field_index);
int BioInsideClass(int field_index);
/// Field index of a B/I class, or -1 for O.
int BioFieldOf(int class_id);
bool BioIsBegin(int class_id);

/// Sequence labeling model over document tokens: per-token embeddings
/// (text + shape + projected position), a stack of neighbor-attention
/// transformer blocks, and a per-token BIO classification head.
class SequenceLabelingModel {
 public:
  SequenceLabelingModel(const SequenceModelConfig& config,
                        DomainSchema schema);

  /// Precomputes features, neighbor lists, and labels for a document.
  EncodedDoc EncodeDoc(const Document& doc) const;

  /// Forward pass to per-token class logits ([T, C] graph node).
  Var Logits(const EncodedDoc& encoded) const;

  /// Cross-entropy training loss for one encoded document.
  Var Loss(const EncodedDoc& encoded) const;

  /// Greedy BIO decode to predicted spans, applying the schema constraint
  /// that each field keeps only its highest-confidence span at inference
  /// time (Sec. II-C: constraints are applied at inference, not training).
  std::vector<EntitySpan> Predict(const Document& doc) const;
  std::vector<EntitySpan> PredictEncoded(const EncodedDoc& encoded) const;

  const DomainSchema& schema() const { return schema_; }
  const SequenceModelConfig& config() const { return config_; }
  std::vector<NamedParam> Params() const;

 private:
  SequenceModelConfig config_;
  DomainSchema schema_;
  int num_classes_ = 1;
  std::vector<float> class_weights_;

  Embedding text_emb_;
  Embedding shape_emb_;
  Linear pos_proj_;
  std::vector<TransformerBlock> blocks_;
  LayerNormLayer ln_out_;
  Linear head_;
};

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_SEQUENCE_MODEL_H_
