#ifndef FIELDSWAP_MODEL_SEQUENCE_MODEL_H_
#define FIELDSWAP_MODEL_SEQUENCE_MODEL_H_

#include <string>
#include <vector>

#include "doc/document.h"
#include "doc/schema.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/quant.h"
#include "util/rng.h"

namespace fieldswap {

/// Configuration of the sequence-labeling extraction backbone (the paper's
/// FormNet-style model, Sec. IV-B, shrunk to CPU scale).
struct SequenceModelConfig {
  int d_model = 32;
  int num_layers = 1;
  /// Tokens attend to this many off-axis-nearest neighbors plus a small
  /// reading-order window (FormNet-style locality).
  int spatial_neighbors = 10;
  int sequence_window = 2;
  int text_buckets = 4096;
  int shape_buckets = 128;
  int max_tokens = 256;
  /// Loss weight of the O class relative to B/I classes (counters extreme
  /// class imbalance on form pages).
  float outside_weight = 0.2f;
  /// Decode with BIO-constrained Viterbi (model/decoder.h) instead of
  /// greedy per-token argmax. Off by default to match the paper's simple
  /// sequence-labeling readout; an extension benchmarked in ablations.
  bool use_viterbi_decoding = false;
  uint64_t seed = 5;
};

/// A document pre-encoded for the model: feature ids, position features,
/// attention neighbor lists, and BIO labels. Computed once per document and
/// reused across training steps.
struct EncodedDoc {
  int num_tokens = 0;
  std::vector<int> text_ids;
  std::vector<int> shape_ids;
  Matrix positions;  // [T, kNumPositionFeatures]
  std::vector<std::vector<int>> neighbors;
  std::vector<int> labels;  // BIO class ids (empty if unannotated)
};

/// BIO tag utilities: class 0 is O; field f has B = 2f+1, I = 2f+2.
int BioNumClasses(int num_fields);
int BioBeginClass(int field_index);
int BioInsideClass(int field_index);
/// Field index of a B/I class, or -1 for O.
int BioFieldOf(int class_id);
bool BioIsBegin(int class_id);

/// Inference-only int8 weights of one Linear: the weight pre-transposed and
/// per-tensor symmetrically quantized, the bias kept in float.
struct Int8LinearPlan {
  QuantizedTensor weight_t;  // [out, in]
  Matrix bias;               // [1, out]
};

/// Int8 weights of one transformer block (every GEMM in the block).
struct Int8BlockPlan {
  Int8LinearPlan wq, wk, wv, wo, ff1, ff2;
};

/// Quantized inference plan of a SequenceLabelingModel (ISSUE 7): every
/// Linear's GEMM runs int8 x int8 -> int32 with per-tensor scales, while
/// embeddings, LayerNorms, attention softmax, and residual adds stay float.
/// Built once (at snapshot time); the float model is untouched, so training
/// and the float serving path are unaffected.
struct Int8Plan {
  Int8LinearPlan pos_proj;
  std::vector<Int8BlockPlan> blocks;
  Int8LinearPlan head;
};

/// Sequence labeling model over document tokens: per-token embeddings
/// (text + shape + projected position), a stack of neighbor-attention
/// transformer blocks, and a per-token BIO classification head.
class SequenceLabelingModel {
 public:
  SequenceLabelingModel(const SequenceModelConfig& config,
                        DomainSchema schema);

  /// Precomputes features, neighbor lists, and labels for a document.
  EncodedDoc EncodeDoc(const Document& doc) const;

  /// Forward pass to per-token class logits ([T, C] graph node).
  Var Logits(const EncodedDoc& encoded) const;

  /// Graph-free forward to per-token class logits: the same kernels in the
  /// same order as Logits(), minus the autodiff tape (no node allocation,
  /// no value copies), so the result is bit-identical to Logits()->value
  /// within a kernel backend. This is the serve hot path.
  Matrix InferLogits(const EncodedDoc& encoded) const;

  /// Builds the int8 inference plan from the current float weights.
  Int8Plan MakeInt8Plan() const;

  /// Graph-free int8 forward using a MakeInt8Plan() result.
  Matrix InferLogitsInt8(const Int8Plan& plan,
                         const EncodedDoc& encoded) const;

  /// Cross-entropy training loss for one encoded document.
  Var Loss(const EncodedDoc& encoded) const;

  /// Greedy BIO decode to predicted spans, applying the schema constraint
  /// that each field keeps only its highest-confidence span at inference
  /// time (Sec. II-C: constraints are applied at inference, not training).
  std::vector<EntitySpan> Predict(const Document& doc) const;
  std::vector<EntitySpan> PredictEncoded(const EncodedDoc& encoded) const;
  /// PredictEncoded with the int8 forward instead of the float one. Same
  /// decode; only the logits differ (by the quantization error bounded in
  /// tests/kernels_test.cc).
  std::vector<EntitySpan> PredictEncodedInt8(const Int8Plan& plan,
                                             const EncodedDoc& encoded) const;
  /// The pre-kernel serving path, retained as the benchmark baseline and as
  /// a parity oracle: the autodiff graph forward (Logits) followed by the
  /// same decode as PredictEncoded. Logits()->value is bit-identical to
  /// InferLogits() within a kernel backend, so this must return exactly
  /// what PredictEncoded returns — it is just slower by the tape overhead.
  std::vector<EntitySpan> PredictEncodedGraph(const EncodedDoc& encoded) const;

  const DomainSchema& schema() const { return schema_; }
  const SequenceModelConfig& config() const { return config_; }
  std::vector<NamedParam> Params() const;

 private:
  /// Shared decode tail of every Predict* flavor: softmax, greedy/Viterbi
  /// tags, span assembly, one-span-per-field constraint.
  std::vector<EntitySpan> DecodeLogits(const Matrix& logits) const;
  SequenceModelConfig config_;
  DomainSchema schema_;
  int num_classes_ = 1;
  std::vector<float> class_weights_;

  Embedding text_emb_;
  Embedding shape_emb_;
  Linear pos_proj_;
  std::vector<TransformerBlock> blocks_;
  LayerNormLayer ln_out_;
  Linear head_;
};

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_SEQUENCE_MODEL_H_
