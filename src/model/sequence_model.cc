#include "model/sequence_model.h"

#include <algorithm>
#include <cmath>

#include "model/decoder.h"
#include "model/features.h"
#include "nn/ops.h"
#include "util/logging.h"

namespace fieldswap {

int BioNumClasses(int num_fields) { return 2 * num_fields + 1; }
int BioBeginClass(int field_index) { return 2 * field_index + 1; }
int BioInsideClass(int field_index) { return 2 * field_index + 2; }
int BioFieldOf(int class_id) {
  return class_id <= 0 ? -1 : (class_id - 1) / 2;
}
bool BioIsBegin(int class_id) { return class_id >= 1 && class_id % 2 == 1; }

SequenceLabelingModel::SequenceLabelingModel(const SequenceModelConfig& config,
                                             DomainSchema schema)
    : config_(config), schema_(std::move(schema)) {
  num_classes_ = BioNumClasses(static_cast<int>(schema_.num_fields()));
  class_weights_.assign(static_cast<size_t>(num_classes_), 1.0f);
  class_weights_[0] = config_.outside_weight;

  Rng rng(config_.seed);
  const int d = config_.d_model;
  text_emb_ = Embedding(config_.text_buckets, d, rng, "seq.text_emb");
  shape_emb_ = Embedding(config_.shape_buckets, d, rng, "seq.shape_emb");
  pos_proj_ = Linear(kNumPositionFeatures, d, rng, "seq.pos_proj");
  for (int l = 0; l < config_.num_layers; ++l) {
    blocks_.emplace_back(d, rng, "seq.block" + std::to_string(l));
  }
  ln_out_ = LayerNormLayer(d, "seq.ln_out");
  head_ = Linear(d, num_classes_, rng, "seq.head");
}

EncodedDoc SequenceLabelingModel::EncodeDoc(const Document& doc) const {
  EncodedDoc encoded;
  const int t = std::min(doc.num_tokens(), config_.max_tokens);
  encoded.num_tokens = t;
  encoded.positions = Matrix(t, kNumPositionFeatures);
  encoded.neighbors.resize(static_cast<size_t>(t));

  for (int i = 0; i < t; ++i) {
    const Token& tok = doc.token(i);
    encoded.text_ids.push_back(TextBucket(tok.text, config_.text_buckets));
    encoded.shape_ids.push_back(ShapeBucket(tok.text, config_.shape_buckets));
    std::vector<float> pos =
        PositionFeatures(tok.box, doc.width(), doc.height());
    for (int f = 0; f < kNumPositionFeatures; ++f) {
      encoded.positions.At(i, f) = pos[static_cast<size_t>(f)];
    }
  }

  // Attention pattern: self + reading-order window + off-axis-nearest
  // spatial neighbors (captures both the row label to the left and the
  // column header above, which jointly disambiguate table cells).
  for (int i = 0; i < t; ++i) {
    std::vector<int>& ns = encoded.neighbors[static_cast<size_t>(i)];
    for (int w = -config_.sequence_window; w <= config_.sequence_window; ++w) {
      int j = i + w;
      if (j >= 0 && j < t) ns.push_back(j);
    }
    std::vector<int> spatial =
        doc.NeighborIndices(doc.token(i).box, config_.spatial_neighbors + 1);
    for (int j : spatial) {
      if (j < t && std::find(ns.begin(), ns.end(), j) == ns.end()) {
        ns.push_back(j);
      }
    }
  }

  // BIO labels from annotations (truncated spans are labeled up to t).
  encoded.labels.assign(static_cast<size_t>(t), 0);
  for (const EntitySpan& span : doc.annotations()) {
    int field = schema_.IndexOf(span.field);
    if (field < 0) continue;
    for (int i = span.first_token; i < span.end_token() && i < t; ++i) {
      encoded.labels[static_cast<size_t>(i)] =
          i == span.first_token ? BioBeginClass(field) : BioInsideClass(field);
    }
  }
  return encoded;
}

Var SequenceLabelingModel::Logits(const EncodedDoc& encoded) const {
  Var inputs = Add(Add(text_emb_.Lookup(encoded.text_ids),
                       shape_emb_.Lookup(encoded.shape_ids)),
                   pos_proj_.Apply(Constant(encoded.positions)));
  Var hidden = inputs;
  for (const TransformerBlock& block : blocks_) {
    hidden = block.Apply(hidden, encoded.neighbors);
  }
  return head_.Apply(ln_out_.Apply(hidden));
}

Var SequenceLabelingModel::Loss(const EncodedDoc& encoded) const {
  FS_CHECK_EQ(static_cast<int>(encoded.labels.size()), encoded.num_tokens);
  return SoftmaxCrossEntropy(Logits(encoded), encoded.labels,
                             class_weights_);
}

std::vector<EntitySpan> SequenceLabelingModel::Predict(
    const Document& doc) const {
  return PredictEncoded(EncodeDoc(doc));
}

std::vector<EntitySpan> SequenceLabelingModel::PredictEncoded(
    const EncodedDoc& encoded) const {
  // Graph-free forward: bit-identical to Logits()->value within a kernel
  // backend, without the tape allocation (the serve hot path).
  return DecodeLogits(InferLogits(encoded));
}

std::vector<EntitySpan> SequenceLabelingModel::PredictEncodedGraph(
    const EncodedDoc& encoded) const {
  return DecodeLogits(Logits(encoded)->value);
}

std::vector<EntitySpan> SequenceLabelingModel::PredictEncodedInt8(
    const Int8Plan& plan, const EncodedDoc& encoded) const {
  return DecodeLogits(InferLogitsInt8(plan, encoded));
}

std::vector<EntitySpan> SequenceLabelingModel::DecodeLogits(
    const Matrix& logits) const {
  Matrix probs = RowSoftmax(logits);
  const int t = logits.rows();

  std::vector<int> tags;
  if (config_.use_viterbi_decoding) {
    tags = ViterbiDecodeBio(logits);
  } else {
    // Greedy per-token argmax (the paper's simple readout).
    tags.assign(static_cast<size_t>(t), 0);
    for (int i = 0; i < t; ++i) {
      int best = 0;
      for (int cls = 1; cls < probs.cols(); ++cls) {
        if (probs.At(i, cls) > probs.At(i, best)) best = cls;
      }
      tags[static_cast<size_t>(i)] = best;
    }
  }

  // Decode spans: a B opens a span; following I of the same field extends.
  struct Scored {
    EntitySpan span;
    double confidence = 0;
  };
  std::vector<Scored> spans;
  for (int i = 0; i < t; ++i) {
    int cls = tags[static_cast<size_t>(i)];
    int field = BioFieldOf(cls);
    if (field < 0 || !BioIsBegin(cls)) continue;
    int j = i + 1;
    double conf = probs.At(i, cls);
    while (j < t && tags[static_cast<size_t>(j)] == BioInsideClass(field)) {
      conf += probs.At(j, tags[static_cast<size_t>(j)]);
      ++j;
    }
    Scored scored;
    scored.span = EntitySpan{schema_.fields()[static_cast<size_t>(field)].name,
                             i, j - i};
    scored.confidence = conf / static_cast<double>(j - i);
    spans.push_back(std::move(scored));
    i = j - 1;
  }

  // Schema constraint at inference: one span per field, keep the most
  // confident.
  std::vector<EntitySpan> result;
  for (const FieldSpec& field : schema_.fields()) {
    const Scored* best = nullptr;
    for (const Scored& s : spans) {
      if (s.span.field != field.name) continue;
      if (best == nullptr || s.confidence > best->confidence) best = &s;
    }
    if (best != nullptr) result.push_back(best->span);
  }
  return result;
}

std::vector<NamedParam> SequenceLabelingModel::Params() const {
  std::vector<NamedParam> params;
  text_emb_.CollectParams(params);
  shape_emb_.CollectParams(params);
  pos_proj_.CollectParams(params);
  for (const TransformerBlock& block : blocks_) block.CollectParams(params);
  ln_out_.CollectParams(params);
  head_.CollectParams(params);
  return params;
}

}  // namespace fieldswap
