#ifndef FIELDSWAP_MODEL_CANDIDATE_MODEL_H_
#define FIELDSWAP_MODEL_CANDIDATE_MODEL_H_

#include <string>
#include <vector>

#include "doc/document.h"
#include "doc/schema.h"
#include "model/annotators.h"
#include "model/options.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace fieldswap {

/// Configuration of the candidate-based scoring model (Fig. 2 of the paper;
/// architecture of Majumder et al., ACL 2020).
struct CandidateModelConfig {
  int d_model = 32;
  /// Number of neighboring tokens per candidate, selected by off-axis
  /// distance (the paper uses 100 on full-page documents; our synthetic
  /// pages are smaller).
  int num_neighbors = 24;
  int text_buckets = 2048;
  int shape_buckets = 128;
  uint64_t seed = 7;
};

/// Per-candidate encoding outputs used for both classification and
/// neighbor-importance measurement.
struct CandidateEncoding {
  /// Token indices of the candidate's neighbors, nearest first.
  std::vector<int> neighbor_ids;
  /// Per-neighbor encodings, one row per neighbor ([t, d]).
  Matrix neighbor_encodings;
  /// Max-pooled Neighborhood Encoding ([1, d]).
  Matrix neighborhood;
};

/// Options controlling pre-training of the candidate model. The canonical
/// definition (and the shared defaults) live in model/options.h; this
/// alias keeps every existing call site source-compatible.
using CandidateTrainOptions = CandidatePretrainOptions;

/// The candidate-based extraction model: encodes each neighbor of a
/// candidate (text + shape + relative position), runs self-attention over
/// the neighborhood, max-pools into a Neighborhood Encoding, and scores the
/// candidate against field embeddings. Pre-trained on an out-of-domain
/// corpus and then applied to the target domain for key-phrase inference
/// (the positional cues it learns transfer across domains, Sec. II-A2).
class CandidateScoringModel {
 public:
  /// `fields` are the field names of the *pre-training* schema; the encoder
  /// itself is field-agnostic and transfers to any domain.
  CandidateScoringModel(const CandidateModelConfig& config,
                        std::vector<std::string> fields);

  /// Forward pass producing plain (non-graph) encodings for inference.
  CandidateEncoding Encode(const Document& doc,
                           const Candidate& candidate) const;

  /// Binary logit for "candidate is an instance of fields[field_index]",
  /// given a graph-producing forward pass. Used during pre-training.
  Var ScoreForTraining(const Document& doc, const Candidate& candidate,
                       int field_index);

  /// Pre-trains on a labeled corpus whose schema matches `fields`.
  /// Positives are ground-truth spans; negatives are same-base-type
  /// annotator candidates that do not overlap a positive. Returns the mean
  /// binary cross-entropy of the final epoch.
  double Pretrain(const std::vector<Document>& corpus,
                  const DomainSchema& schema,
                  const CandidateTrainOptions& options);

  const CandidateModelConfig& config() const { return config_; }
  std::vector<NamedParam> Params() const;

 private:
  /// Shared subgraph: neighbor features -> attention -> per-neighbor
  /// encodings [t, d] and pooled neighborhood [1, d].
  struct EncodeGraph {
    std::vector<int> neighbor_ids;
    Var neighbor_encodings;
    Var neighborhood;
  };
  EncodeGraph BuildEncodeGraph(const Document& doc,
                               const Candidate& candidate) const;

  CandidateModelConfig config_;
  std::vector<std::string> fields_;

  Embedding text_emb_;
  Embedding shape_emb_;
  Linear rel_pos_proj_;
  // Single-head self-attention over the neighborhood followed by a ReLU
  // projection. ReLU keeps per-neighbor encodings positive and feature-
  // sparse, so max-pooling composes the Neighborhood Encoding from the most
  // distinctive neighbors — which is what makes the cosine importance
  // measurement of Sec. II-A2 meaningful.
  Linear wq_, wk_, wv_;
  Linear enc_;
  Linear cand_pos_proj_;
  Linear combine_;
  Embedding field_emb_;
};

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_CANDIDATE_MODEL_H_
