#include "model/candidate_model.h"

#include <algorithm>

#include "model/features.h"
#include "nn/ops.h"
#include "util/logging.h"

namespace fieldswap {

CandidateScoringModel::CandidateScoringModel(
    const CandidateModelConfig& config, std::vector<std::string> fields)
    : config_(config), fields_(std::move(fields)) {
  Rng rng(config_.seed);
  const int d = config_.d_model;
  text_emb_ = Embedding(config_.text_buckets, d, rng, "cand.text_emb");
  shape_emb_ = Embedding(config_.shape_buckets, d, rng, "cand.shape_emb");
  rel_pos_proj_ = Linear(kNumRelativeFeatures, d, rng, "cand.rel_pos");
  wq_ = Linear(d, d, rng, "cand.wq");
  wk_ = Linear(d, d, rng, "cand.wk");
  wv_ = Linear(d, d, rng, "cand.wv");
  enc_ = Linear(2 * d, d, rng, "cand.enc");
  cand_pos_proj_ = Linear(kNumPositionFeatures, d, rng, "cand.cand_pos");
  combine_ = Linear(2 * d, d, rng, "cand.combine");
  field_emb_ = Embedding(std::max<int>(1, static_cast<int>(fields_.size())),
                         d, rng, "cand.field_emb");
}

CandidateScoringModel::EncodeGraph CandidateScoringModel::BuildEncodeGraph(
    const Document& doc, const Candidate& candidate) const {
  BBox cand_box = doc.BoxOfRange(candidate.first_token, candidate.num_tokens);

  // Exclude the candidate's own tokens from its neighborhood.
  std::vector<int> exclude;
  for (int i = candidate.first_token; i < candidate.end_token(); ++i) {
    exclude.push_back(i);
  }
  std::vector<int> neighbors =
      doc.NeighborIndices(cand_box, config_.num_neighbors, exclude);
  FS_CHECK(!neighbors.empty()) << "candidate has no neighbors";

  const int t = static_cast<int>(neighbors.size());
  std::vector<int> text_ids, shape_ids;
  Matrix rel(t, kNumRelativeFeatures);
  for (int i = 0; i < t; ++i) {
    const Token& tok = doc.token(neighbors[static_cast<size_t>(i)]);
    text_ids.push_back(TextBucket(tok.text, config_.text_buckets));
    shape_ids.push_back(ShapeBucket(tok.text, config_.shape_buckets));
    std::vector<float> feats =
        RelativeFeatures(cand_box, tok.box, doc.width(), doc.height());
    for (int f = 0; f < kNumRelativeFeatures; ++f) rel.At(i, f) = feats[static_cast<size_t>(f)];
  }

  Var inputs = Add(Add(text_emb_.Lookup(text_ids), shape_emb_.Lookup(shape_ids)),
                   rel_pos_proj_.Apply(Constant(std::move(rel))));
  Var attn = NeighborAttention(wq_.Apply(inputs), wk_.Apply(inputs),
                               wv_.Apply(inputs), FullAttentionNeighbors(t));
  // Per-neighbor encodings: ReLU of [input | attention context].
  Var encoded = Relu(enc_.Apply(ConcatCols(inputs, attn)));

  EncodeGraph graph;
  graph.neighbor_ids = std::move(neighbors);
  graph.neighbor_encodings = encoded;
  graph.neighborhood = MaxPoolRows(encoded);
  return graph;
}

CandidateEncoding CandidateScoringModel::Encode(
    const Document& doc, const Candidate& candidate) const {
  EncodeGraph graph = BuildEncodeGraph(doc, candidate);
  CandidateEncoding encoding;
  encoding.neighbor_ids = graph.neighbor_ids;
  encoding.neighbor_encodings = graph.neighbor_encodings->value;
  encoding.neighborhood = graph.neighborhood->value;
  return encoding;
}

Var CandidateScoringModel::ScoreForTraining(const Document& doc,
                                            const Candidate& candidate,
                                            int field_index) {
  EncodeGraph graph = BuildEncodeGraph(doc, candidate);

  BBox cand_box = doc.BoxOfRange(candidate.first_token, candidate.num_tokens);
  std::vector<float> pos =
      PositionFeatures(cand_box, doc.width(), doc.height());
  Var cand_pos = cand_pos_proj_.Apply(
      Constant(Matrix::FromValues(1, kNumPositionFeatures, std::move(pos))));

  Var features =
      Relu(combine_.Apply(ConcatCols(graph.neighborhood, cand_pos)));
  Var field = field_emb_.Lookup({field_index});
  // Dot product of the two [1, d] rows -> [1, 1] logit.
  return MatMul(Mul(features, field),
                Constant(Matrix::Full(config_.d_model, 1, 1.0f)));
}

double CandidateScoringModel::Pretrain(const std::vector<Document>& corpus,
                                       const DomainSchema& schema,
                                       const CandidateTrainOptions& options) {
  std::string options_error = options.Validate();
  FS_CHECK(options_error.empty()) << options_error;
  std::vector<NamedParam> params = Params();
  AdamOptimizer::Options opt_options;
  opt_options.learning_rate = options.learning_rate;
  AdamOptimizer optimizer(params, opt_options);
  Rng rng(options.seed);

  // Assemble (doc, candidate, field_index, label) examples.
  struct Example {
    const Document* doc;
    Candidate candidate;
    int field_index;
    float label;
  };
  std::vector<Example> examples;
  for (const Document& doc : corpus) {
    std::vector<Candidate> negatives_pool = GenerateCandidates(doc);
    for (int f = 0; f < static_cast<int>(fields_.size()); ++f) {
      FieldType type = schema.TypeOf(fields_[static_cast<size_t>(f)]);
      std::vector<EntitySpan> gold =
          doc.AnnotationsFor(fields_[static_cast<size_t>(f)]);
      if (gold.empty()) continue;
      for (const EntitySpan& span : gold) {
        examples.push_back(
            Example{&doc, CandidateFromSpan(span, type), f, 1.0f});
      }
      // Same-type negatives that do not overlap a gold span of this field.
      std::vector<Candidate> negatives;
      for (const Candidate& c : negatives_pool) {
        if (c.type != type) continue;
        bool overlaps = false;
        for (const EntitySpan& span : gold) {
          if (c.first_token < span.end_token() &&
              span.first_token < c.end_token()) {
            overlaps = true;
          }
        }
        if (!overlaps) negatives.push_back(c);
      }
      rng.Shuffle(negatives);
      int keep = std::min<int>(static_cast<int>(negatives.size()),
                               options.negatives_per_positive *
                                   static_cast<int>(gold.size()));
      for (int i = 0; i < keep; ++i) {
        examples.push_back(Example{&doc, negatives[static_cast<size_t>(i)], f, 0.0f});
      }
    }
  }
  FS_CHECK(!examples.empty()) << "no pre-training examples";

  double last_epoch_loss = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(examples);
    double loss_sum = 0;
    for (const Example& ex : examples) {
      Var logit = ScoreForTraining(*ex.doc, ex.candidate, ex.field_index);
      Var loss = BinaryCrossEntropyWithLogits(logit, {ex.label});
      loss_sum += loss->value.At(0, 0);
      Backward(loss);
      optimizer.Step();
    }
    last_epoch_loss = loss_sum / static_cast<double>(examples.size());
  }
  return last_epoch_loss;
}

std::vector<NamedParam> CandidateScoringModel::Params() const {
  std::vector<NamedParam> params;
  text_emb_.CollectParams(params);
  shape_emb_.CollectParams(params);
  rel_pos_proj_.CollectParams(params);
  wq_.CollectParams(params);
  wk_.CollectParams(params);
  wv_.CollectParams(params);
  enc_.CollectParams(params);
  cand_pos_proj_.CollectParams(params);
  combine_.CollectParams(params);
  field_emb_.CollectParams(params);
  return params;
}

}  // namespace fieldswap
