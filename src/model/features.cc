#include "model/features.h"

#include <cctype>
#include <cmath>

#include "util/hash.h"
#include "util/strings.h"

namespace fieldswap {

std::string TokenShape(std::string_view text) {
  std::string shape;
  char prev = '\0';
  for (char c : text) {
    char symbol;
    if (std::isupper(static_cast<unsigned char>(c))) {
      symbol = 'X';
    } else if (std::islower(static_cast<unsigned char>(c))) {
      symbol = 'x';
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      symbol = 'd';
    } else {
      symbol = c;
    }
    if (symbol != prev) {
      shape.push_back(symbol);
      prev = symbol;
    }
  }
  return shape;
}

int TextBucket(std::string_view text, int num_buckets) {
  return static_cast<int>(
      HashBucket(ToLower(text), static_cast<uint32_t>(num_buckets)));
}

int ShapeBucket(std::string_view text, int num_buckets) {
  return static_cast<int>(
      HashBucket(TokenShape(text), static_cast<uint32_t>(num_buckets)));
}

std::vector<float> PositionFeatures(const BBox& box, double page_width,
                                    double page_height) {
  return {static_cast<float>(box.CenterX() / page_width),
          static_cast<float>(box.CenterY() / page_height),
          static_cast<float>(box.Width() / page_width),
          static_cast<float>(box.Height() / page_height)};
}

std::vector<float> RelativeFeatures(const BBox& anchor, const BBox& neighbor,
                                    double page_width, double page_height) {
  double dx = (neighbor.CenterX() - anchor.CenterX()) / page_width;
  double dy = (neighbor.CenterY() - anchor.CenterY()) / page_height;
  double off_axis = std::fabs(dx) * std::fabs(dy);
  bool same_band = neighbor.VerticalOverlap(anchor) >
                   0.5 * std::min(neighbor.Height(), anchor.Height());
  return {static_cast<float>(dx),
          static_cast<float>(dy),
          static_cast<float>(std::fabs(dx)),
          static_cast<float>(std::fabs(dy)),
          static_cast<float>(off_axis),
          same_band ? 1.0f : 0.0f};
}

}  // namespace fieldswap
