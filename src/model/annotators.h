#ifndef FIELDSWAP_MODEL_ANNOTATORS_H_
#define FIELDSWAP_MODEL_ANNOTATORS_H_

#include <vector>

#include "doc/document.h"
#include "doc/schema.h"

namespace fieldswap {

/// A base-type candidate: a token span that a common off-the-shelf
/// annotator (date / money / number / address / string detector) proposes
/// as a possible field value (Majumder et al. 2020, Sec. II-A2 here).
struct Candidate {
  int first_token = 0;
  int num_tokens = 0;
  FieldType type = FieldType::kString;

  int end_token() const { return first_token + num_tokens; }

  friend bool operator==(const Candidate& a, const Candidate& b) = default;
};

/// True if the token looks like a money amount ("$3,308.62", "1,234.56").
bool IsMoneyToken(std::string_view text);

/// True if the token is a single-token date ("01/15/2024", "2024-01-15").
bool IsDateToken(std::string_view text);

/// True if tokens [i, i+3) spell a month-name date ("Jan", "15,", "2024").
bool IsMonthNameDate(const Document& doc, int i);

/// True if the token is a bare integer with at least `min_digits` digits.
bool IsNumberToken(std::string_view text, int min_digits = 3);

/// True if the token is a 5-digit zip code.
bool IsZipToken(std::string_view text);

/// Runs all base-type annotators over the document and returns candidates
/// sorted by first token. String candidates are capitalized word runs that
/// no other annotator claimed.
std::vector<Candidate> GenerateCandidates(const Document& doc);

/// Candidates of one base type only.
std::vector<Candidate> GenerateCandidates(const Document& doc,
                                          FieldType type);

/// Wraps a ground-truth span as a candidate of the field's base type (the
/// paper generates candidates from ground truth directly when inferring
/// key phrases on the target domain).
Candidate CandidateFromSpan(const EntitySpan& span, FieldType type);

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_ANNOTATORS_H_
