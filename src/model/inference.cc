// Graph-free inference forwards of SequenceLabelingModel (ISSUE 7).
//
// Logits() builds an autodiff tape: every op allocates a Node, copies its
// input matrix, and captures closures — fine for training, pure overhead
// for serving. InferLogits() runs the same kernels in the same order on
// preallocated buffers, so its result is bit-identical to Logits()->value
// within a kernel backend while skipping all tape bookkeeping.
// InferLogitsInt8() swaps every Linear GEMM for the int8 path of an
// Int8Plan; everything else (embeddings, LayerNorm, attention, residuals)
// stays float.

#include <algorithm>

#include "model/sequence_model.h"
#include "nn/ops.h"
#include "util/logging.h"

namespace fieldswap {
namespace {

/// y = x * W + b: the arithmetic of Linear::Apply without the tape.
void LinearInto(const Linear& lin, const Matrix& x, Matrix& out) {
  MatMulInto(x, lin.weight_value(), out);
  const float* brow = lin.bias_value().Row(0);
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    for (int c = 0; c < out.cols(); ++c) row[c] += brow[c];
  }
}

void LayerNormLayerInto(const LayerNormLayer& ln, const Matrix& x,
                        Matrix& out) {
  LayerNormInto(x, ln.gain_value(), ln.bias_value(), out);
}

void ReluInPlace(Matrix& m) {
  float* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) data[i] = std::max(0.0f, data[i]);
}

Int8LinearPlan QuantizeLinear(const Linear& lin) {
  Int8LinearPlan plan;
  plan.weight_t = QuantizeTransposed(lin.weight_value());
  plan.bias = lin.bias_value();
  return plan;
}

void Int8LinearInto(const Int8LinearPlan& lin, const Matrix& x, Matrix& out) {
  QuantizedLinearInto(x, lin.weight_t, lin.bias, out);
}

}  // namespace

Matrix SequenceLabelingModel::InferLogits(const EncodedDoc& encoded) const {
  const int t = encoded.num_tokens;
  const int d = config_.d_model;
  FS_CHECK_GT(t, 0);

  // inputs = text_emb + shape_emb + pos_proj(positions), in the exact
  // association Logits() uses: (text + shape) + pos.
  Matrix x(t, d);
  const Matrix& text_table = text_emb_.table_value();
  const Matrix& shape_table = shape_emb_.table_value();
  for (int i = 0; i < t; ++i) {
    const float* trow = text_table.Row(encoded.text_ids[static_cast<size_t>(i)]);
    const float* srow =
        shape_table.Row(encoded.shape_ids[static_cast<size_t>(i)]);
    float* row = x.Row(i);
    for (int c = 0; c < d; ++c) row[c] = trow[c] + srow[c];
  }
  Matrix pos(t, d);
  LinearInto(pos_proj_, encoded.positions, pos);
  x.AddInPlace(pos);

  Matrix normed(t, d), q(t, d), k(t, d), v(t, d), attn(t, d), proj(t, d);
  for (const TransformerBlock& block : blocks_) {
    // x += wo(Attn(LN(x)))
    LayerNormLayerInto(block.ln_attn(), x, normed);
    LinearInto(block.wq(), normed, q);
    LinearInto(block.wk(), normed, k);
    LinearInto(block.wv(), normed, v);
    NeighborAttentionInto(q, k, v, encoded.neighbors, attn);
    LinearInto(block.wo(), attn, proj);
    x.AddInPlace(proj);
    // x += ff2(relu(ff1(LN(x))))
    LayerNormLayerInto(block.ln_ffn(), x, normed);
    Matrix hidden(t, block.ff1().weight_value().cols());
    LinearInto(block.ff1(), normed, hidden);
    ReluInPlace(hidden);
    LinearInto(block.ff2(), hidden, proj);
    x.AddInPlace(proj);
  }

  LayerNormLayerInto(ln_out_, x, normed);
  Matrix logits(t, num_classes_);
  LinearInto(head_, normed, logits);
  return logits;
}

Int8Plan SequenceLabelingModel::MakeInt8Plan() const {
  Int8Plan plan;
  plan.pos_proj = QuantizeLinear(pos_proj_);
  for (const TransformerBlock& block : blocks_) {
    Int8BlockPlan b;
    b.wq = QuantizeLinear(block.wq());
    b.wk = QuantizeLinear(block.wk());
    b.wv = QuantizeLinear(block.wv());
    b.wo = QuantizeLinear(block.wo());
    b.ff1 = QuantizeLinear(block.ff1());
    b.ff2 = QuantizeLinear(block.ff2());
    plan.blocks.push_back(std::move(b));
  }
  plan.head = QuantizeLinear(head_);
  return plan;
}

Matrix SequenceLabelingModel::InferLogitsInt8(const Int8Plan& plan,
                                              const EncodedDoc& encoded) const {
  const int t = encoded.num_tokens;
  const int d = config_.d_model;
  FS_CHECK_GT(t, 0);
  FS_CHECK_EQ(plan.blocks.size(), blocks_.size());

  Matrix x(t, d);
  const Matrix& text_table = text_emb_.table_value();
  const Matrix& shape_table = shape_emb_.table_value();
  for (int i = 0; i < t; ++i) {
    const float* trow = text_table.Row(encoded.text_ids[static_cast<size_t>(i)]);
    const float* srow =
        shape_table.Row(encoded.shape_ids[static_cast<size_t>(i)]);
    float* row = x.Row(i);
    for (int c = 0; c < d; ++c) row[c] = trow[c] + srow[c];
  }
  Matrix pos(t, d);
  Int8LinearInto(plan.pos_proj, encoded.positions, pos);
  x.AddInPlace(pos);

  Matrix normed(t, d), q(t, d), k(t, d), v(t, d), attn(t, d), proj(t, d);
  for (size_t l = 0; l < blocks_.size(); ++l) {
    const TransformerBlock& block = blocks_[l];
    const Int8BlockPlan& bp = plan.blocks[l];
    LayerNormLayerInto(block.ln_attn(), x, normed);
    Int8LinearInto(bp.wq, normed, q);
    Int8LinearInto(bp.wk, normed, k);
    Int8LinearInto(bp.wv, normed, v);
    NeighborAttentionInto(q, k, v, encoded.neighbors, attn);
    Int8LinearInto(bp.wo, attn, proj);
    x.AddInPlace(proj);
    LayerNormLayerInto(block.ln_ffn(), x, normed);
    Matrix hidden(t, bp.ff1.weight_t.rows);
    Int8LinearInto(bp.ff1, normed, hidden);
    ReluInPlace(hidden);
    Int8LinearInto(bp.ff2, hidden, proj);
    x.AddInPlace(proj);
  }

  LayerNormLayerInto(ln_out_, x, normed);
  Matrix logits(t, num_classes_);
  Int8LinearInto(plan.head, normed, logits);
  return logits;
}

}  // namespace fieldswap
