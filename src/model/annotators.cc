#include "model/annotators.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace fieldswap {
namespace {

bool AllOf(std::string_view text, bool (*pred)(char)) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!pred(c)) return false;
  }
  return true;
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

bool IsMonthAbbrev(std::string_view text) {
  static constexpr std::string_view kMonths[] = {
      "jan", "feb", "mar", "apr", "may", "jun",
      "jul", "aug", "sep", "oct", "nov", "dec"};
  std::string lower = ToLower(text);
  for (std::string_view m : kMonths) {
    if (lower == m) return true;
  }
  return false;
}

bool IsCapitalizedWord(std::string_view text) {
  std::string_view core = TrimPunctuation(text);
  if (core.empty()) return false;
  if (!std::isupper(static_cast<unsigned char>(core[0]))) return false;
  for (char c : core.substr(1)) {
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '\'' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

bool IsStateAbbrev(std::string_view text) {
  std::string_view core = TrimPunctuation(text);
  return core.size() == 2 &&
         std::isupper(static_cast<unsigned char>(core[0])) &&
         std::isupper(static_cast<unsigned char>(core[1]));
}

}  // namespace

bool IsMoneyToken(std::string_view text) {
  if (text.empty()) return false;
  // Accounting negatives wrap the whole amount: "($42.00)".
  if (text.size() >= 2 && text.front() == '(' && text.back() == ')') {
    text = text.substr(1, text.size() - 2);
  }
  if (!text.empty() && text[0] == '$') text.remove_prefix(1);
  // Require digits, optional commas, and a ".dd" suffix.
  auto dot = text.rfind('.');
  if (dot == std::string_view::npos || text.size() - dot != 3) return false;
  if (!IsDigit(text[dot + 1]) || !IsDigit(text[dot + 2])) return false;
  std::string_view whole = text.substr(0, dot);
  if (whole.empty()) return false;
  for (char c : whole) {
    if (!IsDigit(c) && c != ',') return false;
  }
  return IsDigit(whole[0]);
}

bool IsDateToken(std::string_view text) {
  // mm/dd/yyyy or m/d/yy styles.
  int slashes = static_cast<int>(std::count(text.begin(), text.end(), '/'));
  if (slashes == 2) {
    for (char c : text) {
      if (!IsDigit(c) && c != '/') return false;
    }
    return text.size() >= 6;
  }
  // yyyy-mm-dd.
  int dashes = static_cast<int>(std::count(text.begin(), text.end(), '-'));
  if (dashes == 2 && text.size() == 10) {
    for (char c : text) {
      if (!IsDigit(c) && c != '-') return false;
    }
    return true;
  }
  return false;
}

bool IsMonthNameDate(const Document& doc, int i) {
  if (i + 3 > doc.num_tokens()) return false;
  if (!IsMonthAbbrev(doc.token(i).text)) return false;
  std::string_view day = doc.token(i + 1).text;
  if (day.empty() || !IsDigit(day[0])) return false;
  std::string_view core_day = TrimPunctuation(day);
  if (core_day.empty() || core_day.size() > 2 || !AllOf(core_day, IsDigit)) {
    return false;
  }
  std::string_view year = doc.token(i + 2).text;
  return year.size() == 4 && AllOf(year, IsDigit);
}

bool IsNumberToken(std::string_view text, int min_digits) {
  return static_cast<int>(text.size()) >= min_digits && AllOf(text, IsDigit);
}

bool IsZipToken(std::string_view text) {
  return text.size() == 5 && AllOf(text, IsDigit);
}

std::vector<Candidate> GenerateCandidates(const Document& doc) {
  std::vector<Candidate> candidates;
  std::vector<bool> claimed(static_cast<size_t>(doc.num_tokens()), false);

  auto claim = [&](int first, int count, FieldType type) {
    candidates.push_back(Candidate{first, count, type});
    for (int i = first; i < first + count; ++i) {
      claimed[static_cast<size_t>(i)] = true;
    }
  };

  // Addresses: "<number> ... <STATE> <zip>" within a short window.
  for (int i = 0; i < doc.num_tokens(); ++i) {
    const std::string& text = doc.token(i).text;
    if (!IsNumberToken(text, 3) || text.size() > 4) continue;
    int limit = std::min(doc.num_tokens() - 1, i + 8);
    for (int j = i + 2; j < limit; ++j) {
      if (IsStateAbbrev(doc.token(j).text) &&
          IsZipToken(doc.token(j + 1).text)) {
        claim(i, j + 2 - i, FieldType::kAddress);
        i = j + 1;
        break;
      }
    }
  }

  // Dates.
  for (int i = 0; i < doc.num_tokens(); ++i) {
    if (claimed[static_cast<size_t>(i)]) continue;
    if (IsDateToken(doc.token(i).text)) {
      claim(i, 1, FieldType::kDate);
    } else if (IsMonthNameDate(doc, i)) {
      claim(i, 3, FieldType::kDate);
      i += 2;
    }
  }

  // Money.
  for (int i = 0; i < doc.num_tokens(); ++i) {
    if (claimed[static_cast<size_t>(i)]) continue;
    if (IsMoneyToken(doc.token(i).text)) claim(i, 1, FieldType::kMoney);
  }

  // Numbers.
  for (int i = 0; i < doc.num_tokens(); ++i) {
    if (claimed[static_cast<size_t>(i)]) continue;
    if (IsNumberToken(doc.token(i).text)) claim(i, 1, FieldType::kNumber);
  }

  // Strings: maximal runs of 1-4 capitalized words on the same line.
  for (int i = 0; i < doc.num_tokens(); ++i) {
    if (claimed[static_cast<size_t>(i)]) continue;
    if (!IsCapitalizedWord(doc.token(i).text)) continue;
    int j = i;
    while (j < doc.num_tokens() && j - i < 4 &&
           !claimed[static_cast<size_t>(j)] &&
           IsCapitalizedWord(doc.token(j).text) &&
           doc.token(j).line == doc.token(i).line) {
      ++j;
    }
    claim(i, j - i, FieldType::kString);
    i = j - 1;
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.first_token < b.first_token;
            });
  return candidates;
}

std::vector<Candidate> GenerateCandidates(const Document& doc,
                                          FieldType type) {
  std::vector<Candidate> all = GenerateCandidates(doc);
  std::vector<Candidate> filtered;
  for (const Candidate& c : all) {
    if (c.type == type) filtered.push_back(c);
  }
  return filtered;
}

Candidate CandidateFromSpan(const EntitySpan& span, FieldType type) {
  return Candidate{span.first_token, span.num_tokens, type};
}

}  // namespace fieldswap
