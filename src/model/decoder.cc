#include "model/decoder.h"

#include <limits>

#include "model/sequence_model.h"
#include "util/logging.h"

namespace fieldswap {

bool BioTransitionAllowed(int prev_tag, int tag) {
  int field = BioFieldOf(tag);
  if (field < 0 || BioIsBegin(tag)) return true;  // O and B-f always legal
  // I-f requires the previous tag to be B-f or I-f of the same field.
  return BioFieldOf(prev_tag) == field;
}

std::vector<int> ViterbiDecodeBio(const Matrix& logits) {
  const int t = logits.rows();
  const int c = logits.cols();
  if (t == 0) return {};
  FS_CHECK_GE(c, 1);

  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  Matrix score(t, c);
  std::vector<std::vector<int>> backptr(
      static_cast<size_t>(t), std::vector<int>(static_cast<size_t>(c), 0));

  for (int cls = 0; cls < c; ++cls) {
    // An initial I-f is illegal (nothing precedes it).
    bool legal_start = BioFieldOf(cls) < 0 || BioIsBegin(cls);
    score.At(0, cls) = legal_start ? logits.At(0, cls) : kNegInf;
  }

  for (int i = 1; i < t; ++i) {
    for (int cls = 0; cls < c; ++cls) {
      float best = kNegInf;
      int best_prev = 0;
      for (int prev = 0; prev < c; ++prev) {
        if (score.At(i - 1, prev) == kNegInf) continue;
        if (!BioTransitionAllowed(prev, cls)) continue;
        if (score.At(i - 1, prev) > best) {
          best = score.At(i - 1, prev);
          best_prev = prev;
        }
      }
      score.At(i, cls) = best == kNegInf ? kNegInf : best + logits.At(i, cls);
      backptr[static_cast<size_t>(i)][static_cast<size_t>(cls)] = best_prev;
    }
  }

  int best_last = 0;
  for (int cls = 1; cls < c; ++cls) {
    if (score.At(t - 1, cls) > score.At(t - 1, best_last)) best_last = cls;
  }
  std::vector<int> tags(static_cast<size_t>(t));
  tags[static_cast<size_t>(t - 1)] = best_last;
  for (int i = t - 1; i > 0; --i) {
    tags[static_cast<size_t>(i - 1)] =
        backptr[static_cast<size_t>(i)][static_cast<size_t>(tags[static_cast<size_t>(i)])];
  }
  return tags;
}

}  // namespace fieldswap
