#ifndef FIELDSWAP_MODEL_OPTIONS_H_
#define FIELDSWAP_MODEL_OPTIONS_H_

#include <cstdint>
#include <string>

#include "obs/telemetry.h"

namespace fieldswap {

/// Single source of truth for the training-protocol defaults shared by the
/// sequence trainer (model/trainer.h), the candidate pre-trainer
/// (model/candidate_model.h), and ExperimentConfig::train
/// (eval/experiment.h). Before this header existed each struct re-declared
/// its own literals, and a default changed in one place silently drifted
/// from the others.
struct TrainDefaults {
  // Sequence-labeling trainer (paper Sec. IV-B protocol).
  static constexpr int kTotalSteps = 1200;
  static constexpr float kLearningRate = 3e-3f;
  static constexpr int kValidateEvery = 200;
  static constexpr double kSyntheticFraction = 0.4;
  static constexpr uint64_t kSeed = 17;
  // Candidate-model pre-training (out-of-domain invoices, Sec. II-A2).
  static constexpr int kCandidateEpochs = 3;
  static constexpr float kCandidateLearningRate = 2e-3f;
  static constexpr int kNegativesPerPositive = 2;
  static constexpr uint64_t kCandidateSeed = 11;
};

/// Training protocol options, mirroring the paper's setup (Sec. IV-B):
/// a 90/10 train-validation split of the original documents, synthetic
/// documents added to the training split only, a fixed step budget so the
/// baseline and the augmented model get the same amount of optimization
/// (the paper's equal-training-time control), and best-validation
/// checkpoint selection.
///
/// Known to most of the tree as `TrainOptions` (the alias in
/// model/trainer.h); the canonical definition lives here next to the
/// shared defaults.
struct SequenceTrainOptions {
  int total_steps = TrainDefaults::kTotalSteps;
  float learning_rate = TrainDefaults::kLearningRate;
  /// Validate (and possibly checkpoint) every this many steps.
  int validate_every = TrainDefaults::kValidateEvery;
  /// Fraction of steps drawn from the synthetic pool when synthetics are
  /// present (the rest sample original documents). Balances the union so a
  /// huge synthetic pool cannot drown the handful of real documents under
  /// the fixed step budget.
  double synthetic_fraction = TrainDefaults::kSyntheticFraction;
  uint64_t seed = TrainDefaults::kSeed;
  /// Optional recorder for per-step loss and validation micro-F1 (not
  /// owned). The trainer also always feeds the global metrics registry
  /// (fieldswap.train.* counters/gauges) and emits trace spans.
  obs::TrainingTelemetry* telemetry = nullptr;

  /// Returns "" when the options are usable, otherwise one actionable
  /// error string naming the bad field, the value it holds, and the legal
  /// range. TrainSequenceModel FS_CHECKs this.
  std::string Validate() const;
};

/// Options controlling pre-training of the candidate model on an
/// out-of-domain corpus. Known to most of the tree as
/// `CandidateTrainOptions` (the alias in model/candidate_model.h).
struct CandidatePretrainOptions {
  int epochs = TrainDefaults::kCandidateEpochs;
  float learning_rate = TrainDefaults::kCandidateLearningRate;
  /// Negative candidates sampled per positive example.
  int negatives_per_positive = TrainDefaults::kNegativesPerPositive;
  uint64_t seed = TrainDefaults::kCandidateSeed;

  /// Returns "" when usable, otherwise one actionable error string.
  /// CandidateScoringModel::Pretrain FS_CHECKs this.
  std::string Validate() const;
};

}  // namespace fieldswap

#endif  // FIELDSWAP_MODEL_OPTIONS_H_
