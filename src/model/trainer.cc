#include "model/trainer.h"

#include <algorithm>
#include <cmath>

#include "doc/span_match.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "util/logging.h"

namespace fieldswap {

double MicroF1OnDocs(const SequenceLabelingModel& model,
                     const std::vector<Document>& docs) {
  // Prediction fans out across the pool; counts accumulate serially in
  // document order. Matching is the shared one-to-one implementation from
  // doc/span_match.h — the same scoring the eval harness uses — so a
  // duplicated predicted span counts one tp + one fp instead of two tps.
  std::vector<std::vector<EntitySpan>> predictions = par::ParallelMap(
      docs.size(), [&](size_t i) { return model.Predict(docs[i]); });
  SpanMatchCounts counts;
  for (size_t i = 0; i < docs.size(); ++i) {
    counts += MatchSpans(docs[i].annotations(), predictions[i]);
  }
  return F1FromCounts(counts);
}

TrainResult TrainSequenceModel(SequenceLabelingModel& model,
                               const doc::CorpusReader& originals,
                               const doc::CorpusReader* synthetics,
                               const TrainOptions& options) {
  FS_TRACE_SPAN("train.sequence_model");
  obs::CounterAdd("fieldswap.train.runs");
  FS_CHECK(originals.size() > 0);
  std::string options_error = options.Validate();
  FS_CHECK(options_error.empty()) << options_error;
  Rng rng(options.seed);

  // 90/10 split of the originals; synthetics go to the training pool only.
  std::vector<size_t> order = rng.SampleWithoutReplacement(
      originals.size(), originals.size());
  size_t val_count = std::max<size_t>(1, originals.size() / 10);
  if (originals.size() == 1) val_count = 0;  // degenerate: validate on train
  std::vector<size_t> train_indices;
  std::vector<Document> val_docs;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < val_count) {
      val_docs.push_back(doc::ReadDocumentOrDie(originals, order[i]));
    } else {
      train_indices.push_back(order[i]);
    }
  }
  if (val_docs.empty()) val_docs.push_back(doc::ReadDocumentOrDie(originals, 0));

  // Pre-encode original and synthetic pools once. Each task pulls its
  // document from the reader and encodes it independently on the pool, so
  // at most one raw Document per in-flight task is resident; ParallelMap
  // keeps the pool order identical to the serial loop's.
  std::vector<EncodedDoc> encoded_orig;
  std::vector<EncodedDoc> encoded_synth;
  {
    FS_TRACE_SPAN("train.encode_pools");
    encoded_orig = par::ParallelMap(train_indices.size(), [&](size_t i) {
      return model.EncodeDoc(doc::ReadDocumentOrDie(originals, train_indices[i]));
    });
    const size_t synth_count = synthetics != nullptr ? synthetics->size() : 0;
    encoded_synth = par::ParallelMap(synth_count, [&](size_t i) {
      return model.EncodeDoc(doc::ReadDocumentOrDie(*synthetics, i));
    });
  }

  AdamOptimizer::Options opt_options;
  opt_options.learning_rate = options.learning_rate;
  std::vector<NamedParam> params = model.Params();
  AdamOptimizer optimizer(params, opt_options);

  TrainResult result;
  std::vector<Matrix> best_snapshot = SnapshotParams(params);
  double best_f1 = -1.0;

  for (int step = 0; step < options.total_steps; ++step) {
    obs::Stopwatch step_timer;
    // Bernoulli is drawn unconditionally so the training stream is
    // identical whether the synthetic pool is empty or merely unused.
    bool use_synth =
        rng.Bernoulli(options.synthetic_fraction) && !encoded_synth.empty();
    const EncodedDoc& doc = use_synth
                                ? encoded_synth[rng.Index(encoded_synth.size())]
                                : encoded_orig[rng.Index(encoded_orig.size())];
    Var loss = model.Loss(doc);
    result.final_loss = loss->value.At(0, 0);
    Backward(loss);
    obs::GaugeSet("fieldswap.train.grad_norm", GlobalGradNorm(params));
    optimizer.Step();
    ++result.steps;

    double step_ms = step_timer.ElapsedMs();
    obs::CounterAdd("fieldswap.train.steps");
    if (use_synth) obs::CounterAdd("fieldswap.train.synthetic_steps");
    obs::HistogramObserve("fieldswap.train.step_ms", step_ms);
    obs::GaugeSet("fieldswap.train.loss", result.final_loss);
    if (options.telemetry != nullptr) {
      options.telemetry->RecordStep(step + 1, result.final_loss, step_ms);
    }

    if ((step + 1) % options.validate_every == 0 ||
        step + 1 == options.total_steps) {
      FS_TRACE_SPAN("train.validate");
      double f1 = MicroF1OnDocs(model, val_docs);
      obs::CounterAdd("fieldswap.train.validations");
      obs::GaugeSet("fieldswap.train.validation_f1", f1);
      bool improved = f1 > best_f1;
      if (improved) {
        best_f1 = f1;
        best_snapshot = SnapshotParams(params);
      }
      if (options.telemetry != nullptr) {
        options.telemetry->RecordValidation(step + 1, f1, improved);
      }
    }
  }

  RestoreParams(params, best_snapshot);
  result.best_validation_f1 = std::max(best_f1, 0.0);
  return result;
}

TrainResult TrainSequenceModel(SequenceLabelingModel& model,
                               const std::vector<Document>& originals,
                               const std::vector<Document>& synthetics,
                               const TrainOptions& options) {
  doc::VectorCorpusReaderView orig_view(originals);
  doc::VectorCorpusReaderView synth_view(synthetics);
  return TrainSequenceModel(model, orig_view, &synth_view, options);
}

}  // namespace fieldswap
