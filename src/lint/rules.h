#ifndef FIELDSWAP_LINT_RULES_H_
#define FIELDSWAP_LINT_RULES_H_

#include <string>
#include <vector>

#include "lint/layers.h"

namespace fieldswap {
namespace lint {

/// One rule violation, anchored to a file and 1-based line.
struct Diagnostic {
  std::string file;  // repo-relative path
  int line = 0;
  std::string rule;
  std::string message;
};

/// Result of linting a single file.
struct FileLintResult {
  std::vector<Diagnostic> diagnostics;
  /// Number of diagnostics silenced by a justified
  /// `// fslint: allow(<rule>): <why>` suppression.
  int suppressions_used = 0;
};

/// Names of every rule the engine can emit, in stable order. Includes the
/// meta-rule `bad-suppression` (malformed / unjustified / unknown-rule
/// suppression comments).
const std::vector<std::string>& RuleNames();

/// Lints one file's `content`. `rel_path` is the repo-relative path (used
/// both for diagnostics and for per-rule allowlists such as "clocks are
/// fine under src/obs/"). `layers` may be null to skip the layering check
/// (e.g. for fixture snippets with no manifest).
///
/// Suppressions: a comment `// fslint: allow(<rule>): <justification>`
/// silences that rule on the comment's own line(s) and on the line
/// immediately after the comment ends. The justification is mandatory;
/// an allow() without one (or naming an unknown rule) is itself reported
/// as `bad-suppression` and silences nothing.
FileLintResult LintSource(const std::string& rel_path,
                          const std::string& content,
                          const LayerGraph* layers);

}  // namespace lint
}  // namespace fieldswap

#endif  // FIELDSWAP_LINT_RULES_H_
