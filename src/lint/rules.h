#ifndef FIELDSWAP_LINT_RULES_H_
#define FIELDSWAP_LINT_RULES_H_

#include <string>
#include <vector>

#include "lint/layers.h"
#include "lint/lexer.h"

namespace fieldswap {
namespace lint {

/// One rule violation, anchored to a file and 1-based line.
struct Diagnostic {
  std::string file;  // repo-relative path
  int line = 0;
  std::string rule;
  std::string message;
};

/// One parsed `fslint: allow(<rule>): <justification>` comment. Covers the
/// comment's own lines plus the line immediately after it.
struct Suppression {
  std::string rule;
  int first_line = 0;
  int last_line = 0;
};

/// Result of linting a single file.
struct FileLintResult {
  std::vector<Diagnostic> diagnostics;
  /// Number of diagnostics silenced by a justified
  /// `// fslint: allow(<rule>): <why>` suppression.
  int suppressions_used = 0;
};

/// The file-scoped half of a lint run: lexed source, parsed suppressions,
/// and the diagnostics of every per-file rule (the cross-file concurrency
/// rules run separately over many files at once — see
/// lint/concurrency.h).
struct FileAnalysis {
  LexedFile lexed;
  std::vector<Suppression> suppressions;
  std::vector<Diagnostic> diagnostics;
};

/// Names of every rule the engine can emit, in stable order. Includes the
/// meta-rule `bad-suppression` (malformed / unjustified / unknown-rule
/// suppression comments).
const std::vector<std::string>& RuleNames();

/// Runs the per-file rules and parses suppressions, without applying them.
/// `layers` may be null to skip the layering check.
FileAnalysis AnalyzeFileRules(const std::string& rel_path,
                              const std::string& content,
                              const LayerGraph* layers);

/// Removes suppressed diagnostics in place (`bad-suppression` is never
/// suppressible) and returns how many were silenced.
int ApplySuppressions(const std::vector<Suppression>& suppressions,
                      std::vector<Diagnostic>* diagnostics);

/// Sorts diagnostics by (line, rule) for stable per-file output.
void SortDiagnostics(std::vector<Diagnostic>* diagnostics);

/// Lints one file's `content`: per-file rules plus the concurrency rules
/// run in single-file mode (guarded-by / lock-order cycles /
/// no-lock-across-callback, without the manifest conformance check).
/// `rel_path` is the repo-relative path (used both for diagnostics and for
/// per-rule allowlists such as "clocks are fine under src/obs/").
///
/// Suppressions: a comment `// fslint: allow(<rule>): <justification>`
/// silences that rule on the comment's own line(s) and on the line
/// immediately after the comment ends. The justification is mandatory;
/// an allow() without one (or naming an unknown rule) is itself reported
/// as `bad-suppression` and silences nothing.
FileLintResult LintSource(const std::string& rel_path,
                          const std::string& content,
                          const LayerGraph* layers);

}  // namespace lint
}  // namespace fieldswap

#endif  // FIELDSWAP_LINT_RULES_H_
