#ifndef FIELDSWAP_LINT_CST_H_
#define FIELDSWAP_LINT_CST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace fieldswap {
namespace lint {

/// Token kinds over the lexer's `code` view. Strings and comments were
/// already blanked by the lexer, so kString tokens only appear for the
/// quoted paths of #include directives (the one string the lexer keeps).
enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals, including 1e-6 / 0x1f / 1'000 / 2.5f
  kString,  // "..." (include paths) and blanked char literals
  kPunct,   // operators and punctuation, multi-char ops as one token
};

struct CstToken {
  TokKind kind = TokKind::kPunct;
  std::string text;
  size_t offset = 0;  // byte offset into LexedFile.code
};

/// Tokenizes the lexed code view. Multi-character operators (`::`, `->`,
/// `==`, `<=`, `>>`, ...) come out as single tokens; numeric literals keep
/// their suffixes and exponents attached.
std::vector<CstToken> TokenizeCode(const LexedFile& lexed);

/// A data member (or namespace-scope variable) recovered from a
/// declaration, with any FS_GUARDED_BY annotation attached.
struct MemberDecl {
  std::string name;
  int line = 0;
  std::string guard;         // FS_GUARDED_BY argument, "" if unannotated
  bool is_mutex = false;     // std::mutex family or util::OrderedMutex
  bool is_callback = false;  // std::function-typed (user-supplied code)
};

/// FS_REQUIRES / FS_EXCLUDES captured from an in-class method
/// *declaration*, so out-of-line definitions in the .cc inherit them.
struct MethodAnnotation {
  std::string name;
  std::vector<std::string> requires_locks;
  std::vector<std::string> excludes_locks;
};

/// A function definition with a body in this translation unit.
struct FunctionDecl {
  std::string cls;   // enclosing class or `Cls::` qualifier; "" if free
  std::string name;
  int line = 0;
  bool is_ctor_or_dtor = false;
  std::vector<std::string> requires_locks;
  std::vector<std::string> excludes_locks;
  /// Names of `std::unique_lock<...>&` parameters. Under FS_REQUIRES(m)
  /// the analyzer binds them to `m`, so `.unlock()` / `.lock()` toggles
  /// and `cv.wait(lock)` inside the body are modeled.
  std::vector<std::string> lock_params;
  size_t body_begin = 0;  // token index of the opening '{'
  size_t body_end = 0;    // token index of the matching '}'
};

struct ClassDecl {
  std::string name;
  int line = 0;
  std::vector<MemberDecl> members;
  std::vector<MethodAnnotation> method_annotations;
};

/// The declaration-aware view of one file: not a C++ parse, just the
/// bracket-matched subset the concurrency rules need. Nested classes are
/// recorded as separate ClassDecl entries under their own names.
struct CstFile {
  std::vector<CstToken> tokens;
  std::vector<ClassDecl> classes;
  /// Namespace-scope variables that are mutexes or carry FS_GUARDED_BY.
  std::vector<MemberDecl> globals;
  std::vector<FunctionDecl> functions;
};

/// Recovers classes, members, annotations, and function bodies from the
/// token stream. Never fails: constructs it cannot parse are skipped.
CstFile ParseCst(const LexedFile& lexed);

/// Index of the token matching the opener (`(`, `[`, `{`) at `open`;
/// returns tokens.size() - 1 clamped if unbalanced.
size_t MatchingClose(const std::vector<CstToken>& tokens, size_t open);

/// If tokens[i] is `<` opening a plausible template argument list, returns
/// the index just past the matching `>` (`>>` closes two levels). Returns
/// `i` unchanged when the `<` reads as a comparison (hits a statement
/// boundary first).
size_t SkipTemplateArgs(const std::vector<CstToken>& tokens, size_t i);

}  // namespace lint
}  // namespace fieldswap

#endif  // FIELDSWAP_LINT_CST_H_
