#include "lint/layers.h"

#include "util/strings.h"

namespace fieldswap {
namespace lint {

namespace {

/// DFS cycle check over the allowed-dependency edges. `state`: 0 = unseen,
/// 1 = on the current path, 2 = done.
bool HasCycleFrom(const std::string& node,
                  const std::map<std::string, std::set<std::string>>& edges,
                  std::map<std::string, int>& state) {
  state[node] = 1;
  for (const std::string& dep : edges.at(node)) {
    int s = state.count(dep) ? state.at(dep) : 0;
    if (s == 1) return true;
    if (s == 0 && HasCycleFrom(dep, edges, state)) return true;
  }
  state[node] = 2;
  return false;
}

}  // namespace

bool LayerGraph::Parse(const std::string& manifest, LayerGraph* out,
                       std::string* error) {
  LayerGraph graph;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= manifest.size()) {
    size_t eol = manifest.find('\n', pos);
    if (eol == std::string::npos) eol = manifest.size();
    std::string raw = manifest.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    std::string line = raw.substr(0, raw.find('#'));
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      *error = "layers.txt line " + std::to_string(line_no) +
               ": expected '<layer>: <deps...>'";
      return false;
    }
    std::string name(TrimWhitespace(trimmed.substr(0, colon)));
    if (name.empty()) {
      *error = "layers.txt line " + std::to_string(line_no) +
               ": empty layer name";
      return false;
    }
    if (graph.allowed_.count(name)) {
      *error = "layers.txt line " + std::to_string(line_no) +
               ": duplicate layer '" + name + "'";
      return false;
    }
    graph.order_.push_back(name);
    std::set<std::string>& deps = graph.allowed_[name];
    for (const std::string& dep :
         SplitWhitespace(trimmed.substr(colon + 1))) {
      deps.insert(dep);
    }
  }
  if (graph.order_.empty()) {
    *error = "layers.txt declares no layers";
    return false;
  }
  for (const auto& [name, deps] : graph.allowed_) {
    for (const std::string& dep : deps) {
      if (!graph.allowed_.count(dep)) {
        *error = "layer '" + name + "' allows undeclared layer '" + dep + "'";
        return false;
      }
      if (dep == name) {
        *error = "layer '" + name + "' lists itself (self-includes are "
                 "implicit)";
        return false;
      }
    }
  }
  std::map<std::string, int> state;
  for (const std::string& name : graph.order_) {
    if ((state.count(name) ? state[name] : 0) == 0 &&
        HasCycleFrom(name, graph.allowed_, state)) {
      *error = "layer manifest contains a dependency cycle through '" +
               name + "'";
      return false;
    }
  }
  *out = std::move(graph);
  return true;
}

namespace {

/// Longest declared prefix (at '/' boundaries) of `dir`, or "" when no
/// prefix names a layer. `dir` is a directory path with no trailing slash.
std::string LongestDeclaredPrefix(
    const std::string& dir,
    const std::map<std::string, std::set<std::string>>& allowed) {
  std::string candidate = dir;
  while (!candidate.empty()) {
    if (allowed.count(candidate)) return candidate;
    size_t slash = candidate.rfind('/');
    if (slash == std::string::npos) break;
    candidate.resize(slash);
  }
  return "";
}

}  // namespace

std::string LayerGraph::LayerForPath(const std::string& rel_path) const {
  static const std::string kPrefix = "src/";
  std::string dir;
  if (rel_path.compare(0, kPrefix.size(), kPrefix) == 0) {
    size_t last_slash = rel_path.rfind('/');
    if (last_slash <= kPrefix.size()) return "";
    dir = rel_path.substr(kPrefix.size(), last_slash - kPrefix.size());
  } else {
    // Top-level directories (bench/, examples/, tools/) participate in the
    // layer graph when the manifest declares them, so the public-surface
    // policy — only api/serve/obs/util reachable from outside src/ — is
    // machine-checked rather than a review convention.
    size_t last_slash = rel_path.rfind('/');
    if (last_slash == std::string::npos) return "";
    dir = rel_path.substr(0, last_slash);
  }
  return LongestDeclaredPrefix(dir, allowed_);
}

std::string LayerGraph::LayerForInclude(const std::string& include_path) const {
  size_t last_slash = include_path.rfind('/');
  if (last_slash == std::string::npos) return "";
  return LongestDeclaredPrefix(include_path.substr(0, last_slash), allowed_);
}

bool LayerGraph::IsLayer(const std::string& name) const {
  return allowed_.count(name) != 0;
}

bool LayerGraph::Allowed(const std::string& from,
                         const std::string& to) const {
  if (from == to) return true;
  auto it = allowed_.find(from);
  return it != allowed_.end() && it->second.count(to) != 0;
}

}  // namespace lint
}  // namespace fieldswap
