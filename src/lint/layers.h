#ifndef FIELDSWAP_LINT_LAYERS_H_
#define FIELDSWAP_LINT_LAYERS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace fieldswap {
namespace lint {

/// The subsystem dependency DAG, loaded from tools/layers.txt. Manifest
/// format, one layer per line, `#` comments:
///
///   <layer>: <allowed dep> <allowed dep> ...
///
/// A layer may always include itself; every other `#include "<dir>/..."`
/// whose path prefix names a declared layer must appear in the layer's
/// allowed list, or fslint reports a `layering` back-edge. The allowed
/// lists are direct (not transitive) on purpose: every edge a subsystem
/// actually uses must be spelled out in the manifest.
///
/// Layers may nest ("nn/kernels" inside "nn"): ownership is decided by the
/// longest declared prefix, so src/nn/kernels/*.cc belong to "nn/kernels"
/// while src/nn/kernels.h (a file, not the subdirectory) stays in "nn".
/// Undeclared nested directories inherit the parent layer.
class LayerGraph {
 public:
  /// Parses manifest text. Returns false (with a human-readable `error`)
  /// on duplicate layers, deps naming undeclared layers, or cycles.
  static bool Parse(const std::string& manifest, LayerGraph* out,
                    std::string* error);

  /// Layer owning `rel_path` ("src/<layer>/..."), or "" for paths outside
  /// src/ and for src/ subdirectories not declared in the manifest.
  /// Longest declared prefix wins, so nested layers own their subtree.
  std::string LayerForPath(const std::string& rel_path) const;

  /// Layer targeted by an `#include "<path>"`, decided by the longest
  /// declared prefix of the include's directory part ("nn/kernels/x.h" ->
  /// "nn/kernels" when declared, else "nn"); "" when no prefix is a layer.
  std::string LayerForInclude(const std::string& include_path) const;

  bool IsLayer(const std::string& name) const;

  /// True when a file in layer `from` may include headers of layer `to`.
  bool Allowed(const std::string& from, const std::string& to) const;

  /// Declared layers in manifest order.
  const std::vector<std::string>& layers() const { return order_; }

 private:
  std::vector<std::string> order_;
  std::map<std::string, std::set<std::string>> allowed_;
};

}  // namespace lint
}  // namespace fieldswap

#endif  // FIELDSWAP_LINT_LAYERS_H_
