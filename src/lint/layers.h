#ifndef FIELDSWAP_LINT_LAYERS_H_
#define FIELDSWAP_LINT_LAYERS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace fieldswap {
namespace lint {

/// The subsystem dependency DAG, loaded from tools/layers.txt. Manifest
/// format, one layer per line, `#` comments:
///
///   <layer>: <allowed dep> <allowed dep> ...
///
/// A layer may always include itself; every other `#include "<dir>/..."`
/// whose first path segment names a declared layer must appear in the
/// layer's allowed list, or fslint reports a `layering` back-edge. The
/// allowed lists are direct (not transitive) on purpose: every edge a
/// subsystem actually uses must be spelled out in the manifest.
class LayerGraph {
 public:
  /// Parses manifest text. Returns false (with a human-readable `error`)
  /// on duplicate layers, deps naming undeclared layers, or cycles.
  static bool Parse(const std::string& manifest, LayerGraph* out,
                    std::string* error);

  /// Layer owning `rel_path` ("src/<layer>/..."), or "" for paths outside
  /// src/ and for src/ subdirectories not declared in the manifest.
  std::string LayerForPath(const std::string& rel_path) const;

  bool IsLayer(const std::string& name) const;

  /// True when a file in layer `from` may include headers of layer `to`.
  bool Allowed(const std::string& from, const std::string& to) const;

  /// Declared layers in manifest order.
  const std::vector<std::string>& layers() const { return order_; }

 private:
  std::vector<std::string> order_;
  std::map<std::string, std::set<std::string>> allowed_;
};

}  // namespace lint
}  // namespace fieldswap

#endif  // FIELDSWAP_LINT_LAYERS_H_
