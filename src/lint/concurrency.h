#ifndef FIELDSWAP_LINT_CONCURRENCY_H_
#define FIELDSWAP_LINT_CONCURRENCY_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/cst.h"
#include "lint/rules.h"

namespace fieldswap {
namespace lint {

/// The declared lock acquisition order (tools/lock_order.txt). Each line
/// `A -> B` permits acquiring B while A is held; `#` starts a comment.
/// The declared edges must themselves be acyclic.
class LockOrderManifest {
 public:
  /// Parses manifest text. Returns false and fills *error on a malformed
  /// line or if the declared order contains a cycle.
  bool Parse(const std::string& text, std::string* error);

  bool Allows(const std::string& from, const std::string& to) const;
  size_t edge_count() const { return edges_.size(); }

 private:
  std::set<std::pair<std::string, std::string>> edges_;
};

/// Whole-tree flow-aware concurrency analysis over the CST layer:
///
///  * `guarded-by`   — a member annotated FS_GUARDED_BY(m) is touched in a
///                     scope where `m` is not held (and the function is not
///                     FS_REQUIRES(m), nor a constructor/destructor).
///  * `lock-order`   — the nested-acquisition graph observed across every
///                     registered file contains a cycle (potential
///                     deadlock, reported with both acquisition chains), a
///                     src/ file acquires nested locks in an order not
///                     declared in the manifest, or a method annotated
///                     FS_EXCLUDES(m) is called with `m` held.
///  * `no-lock-across-callback` — a user-supplied std::function member is
///                     invoked while any lock is held (re-entrancy
///                     deadlock: the callback may call back into the
///                     locked object).
///
/// Register every file first (annotations in headers apply to method
/// definitions in .cc files), then call Analyze() once.
class ConcurrencyAnalyzer {
 public:
  /// Parses and registers one file.
  void AddFile(const std::string& rel_path, const LexedFile& lexed);

  /// Runs the analysis over everything registered. `manifest` may be null
  /// to skip the declared-order check (cycle detection still runs).
  std::vector<Diagnostic> Analyze(const LockOrderManifest* manifest) const;

  /// The observed nested-acquisition edges from the last Analyze() run,
  /// formatted `A -> B`, sorted — the exact lines a complete
  /// tools/lock_order.txt needs (used by fslint --dump-lock-order).
  const std::vector<std::string>& observed_edges() const {
    return observed_edges_;
  }

 private:
  struct FileEntry {
    std::string rel_path;
    CstFile cst;
    std::vector<size_t> line_starts;
  };
  std::vector<FileEntry> files_;
  mutable std::vector<std::string> observed_edges_;
};

}  // namespace lint
}  // namespace fieldswap

#endif  // FIELDSWAP_LINT_CONCURRENCY_H_
