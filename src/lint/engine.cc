#include "lint/engine.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>

#include "lint/concurrency.h"
#include "obs/metrics.h"

namespace fieldswap {
namespace lint {

namespace fs = std::filesystem;

namespace {

bool HasLintableExtension(const fs::path& path) {
  static const std::vector<std::string> kExts = {".cc",  ".h",  ".cpp",
                                                 ".hpp", ".hh", ".cxx"};
  std::string ext = path.extension().string();
  return std::find(kExts.begin(), kExts.end(), ext) != kExts.end();
}

bool IsExcluded(const std::string& rel_path, const LintConfig& config) {
  for (const std::string& needle : config.exclude_substrings) {
    if (rel_path.find(needle) != std::string::npos) return true;
  }
  return false;
}

/// Forward-slashed path of `path` relative to root (or lexically normal
/// `path` when it does not live under root).
std::string RelPath(const fs::path& path, const fs::path& root) {
  fs::path rel = path.lexically_normal().lexically_relative(root);
  if (rel.empty() || *rel.begin() == "..") rel = path.lexically_normal();
  return rel.generic_string();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

LintReport LintPaths(const LintConfig& config,
                     const std::vector<std::string>& paths) {
  const fs::path root = fs::path(config.root).lexically_normal();

  // Expand directories, filter, and sort so the report is deterministic
  // regardless of directory-iteration order.
  std::vector<fs::path> files;
  for (const std::string& raw : paths) {
    fs::path p(raw);
    if (p.is_relative()) p = root / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && HasLintableExtension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else {
      files.push_back(p);
    }
  }
  std::vector<std::pair<std::string, fs::path>> rel_files;
  rel_files.reserve(files.size());
  for (const fs::path& file : files) {
    std::string rel = RelPath(file, root);
    if (!IsExcluded(rel, config)) rel_files.emplace_back(rel, file);
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()),
                  rel_files.end());

  // Phase 1: per-file rules. Every file is also registered with the
  // concurrency analyzer so annotations in headers reach the method
  // definitions in their .cc files.
  LintReport report;
  ConcurrencyAnalyzer analyzer;
  struct AnalyzedFile {
    std::string rel;
    FileAnalysis analysis;
  };
  std::vector<AnalyzedFile> analyzed;
  for (const auto& [rel, file] : rel_files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      report.unreadable_files.push_back(rel);
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    AnalyzedFile af;
    af.rel = rel;
    af.analysis = AnalyzeFileRules(rel, content.str(), config.layers);
    analyzer.AddFile(rel, af.analysis.lexed);
    analyzed.push_back(std::move(af));
    ++report.files_scanned;
  }

  // Phase 2: whole-tree concurrency analysis against the lock-order
  // manifest (when one is present).
  LockOrderManifest manifest;
  bool have_manifest = false;
  std::vector<Diagnostic> manifest_errors;
  if (config.check_lock_order) {
    fs::path manifest_path = config.lock_order_path.empty()
                                 ? root / "tools" / "lock_order.txt"
                                 : fs::path(config.lock_order_path);
    if (manifest_path.is_relative()) manifest_path = root / manifest_path;
    std::ifstream min(manifest_path, std::ios::binary);
    if (min) {
      std::ostringstream text;
      text << min.rdbuf();
      std::string error;
      if (manifest.Parse(text.str(), &error)) {
        have_manifest = true;
      } else {
        manifest_errors.push_back(Diagnostic{
            RelPath(manifest_path, root), 1, "lock-order",
            "invalid lock-order manifest: " + error});
      }
    } else if (!config.lock_order_path.empty()) {
      manifest_errors.push_back(Diagnostic{
          RelPath(manifest_path, root), 1, "lock-order",
          "cannot read lock-order manifest"});
    }
  }
  std::vector<Diagnostic> concurrency =
      analyzer.Analyze(have_manifest ? &manifest : nullptr);
  report.observed_lock_edges = analyzer.observed_edges();
  std::map<std::string, std::vector<Diagnostic>> concurrency_by_file;
  for (Diagnostic& diag : concurrency) {
    concurrency_by_file[diag.file].push_back(std::move(diag));
  }

  // Phase 3: each file's suppressions silence both rule families, then
  // everything aggregates in sorted file order.
  for (AnalyzedFile& af : analyzed) {
    auto extra = concurrency_by_file.find(af.rel);
    if (extra != concurrency_by_file.end()) {
      af.analysis.diagnostics.insert(
          af.analysis.diagnostics.end(),
          std::make_move_iterator(extra->second.begin()),
          std::make_move_iterator(extra->second.end()));
    }
    report.suppressions_used +=
        ApplySuppressions(af.analysis.suppressions, &af.analysis.diagnostics);
    SortDiagnostics(&af.analysis.diagnostics);
    for (Diagnostic& diag : af.analysis.diagnostics) {
      ++report.violations_by_rule[diag.rule];
      report.diagnostics.push_back(std::move(diag));
    }
  }
  for (Diagnostic& diag : manifest_errors) {
    ++report.violations_by_rule[diag.rule];
    report.diagnostics.push_back(std::move(diag));
  }
  return report;
}

std::string RenderText(const LintReport& report) {
  std::ostringstream out;
  for (const Diagnostic& diag : report.diagnostics) {
    out << diag.file << ":" << diag.line << ": error[" << diag.rule
        << "]: " << diag.message << "\n";
  }
  for (const std::string& file : report.unreadable_files) {
    out << file << ":0: error[io]: could not read file\n";
  }
  out << "fslint: " << report.diagnostics.size() << " violation(s), "
      << report.files_scanned << " file(s) scanned, "
      << report.suppressions_used << " justified suppression(s)";
  if (report.clean()) out << " — clean";
  out << "\n";
  return out.str();
}

std::string RenderJson(const LintReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"violations\": " << report.diagnostics.size() << ",\n";
  out << "  \"suppressions_used\": " << report.suppressions_used << ",\n";
  out << "  \"clean\": " << (report.clean() ? "true" : "false") << ",\n";
  out << "  \"by_rule\": {";
  bool first = true;
  for (const auto& [rule, count] : report.violations_by_rule) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(rule) << "\": " << count;
  }
  out << "},\n";
  out << "  \"unreadable_files\": [";
  first = true;
  for (const std::string& file : report.unreadable_files) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(file) << "\"";
  }
  out << "],\n";
  out << "  \"diagnostics\": [";
  first = true;
  for (const Diagnostic& diag : report.diagnostics) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"file\": \"" << JsonEscape(diag.file)
        << "\", \"line\": " << diag.line << ", \"rule\": \""
        << JsonEscape(diag.rule) << "\", \"message\": \""
        << JsonEscape(diag.message) << "\"}";
  }
  if (!first) out << "\n  ";
  out << "]\n";
  out << "}\n";
  return out.str();
}

void PublishLintMetrics(const LintReport& report) {
  obs::CounterAdd("fieldswap.lint.files_scanned", report.files_scanned);
  obs::CounterAdd("fieldswap.lint.violations",
                  static_cast<int64_t>(report.diagnostics.size()));
  obs::CounterAdd("fieldswap.lint.suppressions_used",
                  report.suppressions_used);
  obs::GaugeSet("fieldswap.lint.clean", report.clean() ? 1.0 : 0.0);
  for (const auto& [rule, count] : report.violations_by_rule) {
    obs::CounterAdd("fieldswap.lint.rule." + rule, count);
  }
}

}  // namespace lint
}  // namespace fieldswap
