#include "lint/lexer.h"

#include <algorithm>
#include <cctype>

namespace fieldswap {
namespace lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when the quote at `pos` opens a raw string: the identifier token
/// ending just before it must be exactly R, u8R, uR, UR, or LR.
bool IsRawStringQuote(const std::string& text, size_t pos) {
  if (pos == 0 || text[pos - 1] != 'R') return false;
  size_t start = pos - 1;
  while (start > 0 && IsIdentChar(text[start - 1])) --start;
  std::string prefix = text.substr(start, pos - start);
  return prefix == "R" || prefix == "u8R" || prefix == "uR" ||
         prefix == "UR" || prefix == "LR";
}

/// True when the quote at `pos` opens the path of `#include "..."`: every
/// byte between the start of the line and the quote must spell the
/// directive. Those paths stay visible in the code view for the layering
/// checker.
bool IsIncludePathQuote(const std::string& text, size_t pos) {
  size_t line_start = text.rfind('\n', pos == 0 ? 0 : pos - 1);
  line_start = (line_start == std::string::npos) ? 0 : line_start + 1;
  std::string head = text.substr(line_start, pos - line_start);
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < head.size() && (head[i] == ' ' || head[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= head.size() || head[i] != '#') return false;
  ++i;
  skip_ws();
  static const std::string kInclude = "include";
  if (head.compare(i, kInclude.size(), kInclude) != 0) return false;
  i += kInclude.size();
  skip_ws();
  return i == head.size();
}

/// True when the quote at `pos` is a C++14 digit separator (1'000'000)
/// rather than a char-literal delimiter.
bool IsDigitSeparator(const std::string& text, size_t pos) {
  return pos > 0 &&
         std::isalnum(static_cast<unsigned char>(text[pos - 1])) != 0;
}

}  // namespace

int LexedFile::LineAt(size_t offset) const {
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<int>(it - line_starts.begin());
}

LexedFile LexCppSource(const std::string& text) {
  LexedFile out;
  out.code = text;
  out.line_starts.push_back(0);
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') out.line_starts.push_back(i + 1);
  }

  auto blank = [&](size_t from, size_t to_exclusive) {
    for (size_t i = from; i < to_exclusive && i < out.code.size(); ++i) {
      if (out.code[i] != '\n') out.code[i] = ' ';
    }
  };
  // True when only whitespace precedes `pos` on its line (the comment is a
  // standalone line, not trailing after code).
  auto standalone_at = [&](size_t pos) {
    size_t ls = text.rfind('\n', pos == 0 ? 0 : pos - 1);
    ls = (ls == std::string::npos) ? 0 : ls + 1;
    for (size_t i = ls; i < pos; ++i) {
      if (text[i] != ' ' && text[i] != '\t') return false;
    }
    return true;
  };
  struct RawComment {
    Comment comment;
    bool is_line = false;
    bool standalone = false;
  };
  std::vector<RawComment> raw_comments;

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      RawComment raw;
      raw.comment.start_line = out.LineAt(i);
      raw.comment.end_line = raw.comment.start_line;
      raw.comment.text = text.substr(i, end - i);
      raw.is_line = true;
      raw.standalone = standalone_at(i);
      raw_comments.push_back(std::move(raw));
      blank(i, end);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t end = text.find("*/", i + 2);
      size_t stop = (end == std::string::npos) ? n : end + 2;
      RawComment raw;
      raw.comment.start_line = out.LineAt(i);
      raw.comment.end_line = out.LineAt(stop == 0 ? 0 : stop - 1);
      raw.comment.text = text.substr(i, stop - i);
      raw_comments.push_back(std::move(raw));
      blank(i, stop);
      i = stop;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == '"' && IsRawStringQuote(text, i)) {
      size_t paren = text.find('(', i + 1);
      if (paren == std::string::npos) {  // malformed; blank to end of file
        blank(i + 1, n);
        break;
      }
      std::string delim = text.substr(i + 1, paren - i - 1);
      std::string closer = ")" + delim + "\"";
      size_t end = text.find(closer, paren + 1);
      size_t stop = (end == std::string::npos) ? n : end + closer.size();
      blank(i + 1, stop == n ? n : stop - 1);  // keep both quote marks
      i = stop;
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      bool is_include = IsIncludePathQuote(text, i);
      size_t j = i + 1;
      while (j < n && text[j] != '"' && text[j] != '\n') {
        if (text[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      size_t stop = (j < n && text[j] == '"') ? j + 1 : j;
      if (!is_include) blank(i + 1, stop == 0 ? 0 : stop - 1);
      i = stop == i ? i + 1 : stop;
      continue;
    }
    // Char literal (skipping digit separators like 1'000).
    if (c == '\'' && !IsDigitSeparator(text, i)) {
      size_t j = i + 1;
      while (j < n && text[j] != '\'' && text[j] != '\n') {
        if (text[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      size_t stop = (j < n && text[j] == '\'') ? j + 1 : j;
      blank(i + 1, stop == 0 ? 0 : stop - 1);
      i = stop == i ? i + 1 : stop;
      continue;
    }
    ++i;
  }

  // Merge runs of adjacent standalone `//` lines into one logical comment
  // block, so a suppression whose justification wraps onto following
  // comment lines still covers the code line right after the block.
  bool prev_mergeable = false;
  for (RawComment& raw : raw_comments) {
    bool mergeable = raw.is_line && raw.standalone;
    if (prev_mergeable && mergeable && !out.comments.empty() &&
        raw.comment.start_line == out.comments.back().end_line + 1) {
      Comment& prev = out.comments.back();
      prev.end_line = raw.comment.end_line;
      prev.text += "\n" + raw.comment.text;
    } else {
      out.comments.push_back(std::move(raw.comment));
    }
    prev_mergeable = mergeable;
  }
  return out;
}

}  // namespace lint
}  // namespace fieldswap
