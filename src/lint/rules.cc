#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <set>

#include "lint/concurrency.h"
#include "lint/cst.h"
#include "lint/lexer.h"
#include "util/strings.h"

namespace fieldswap {
namespace lint {

namespace {

bool PathHasPrefix(const std::string& path, const std::string& prefix) {
  return path.compare(0, prefix.size(), prefix) == 0;
}

bool PathIsExempt(const std::string& rel_path,
                  const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (PathHasPrefix(rel_path, prefix)) return true;
  }
  return false;
}

/// Source text between two tokens (inclusive), cleaned up for a one-line
/// diagnostic.
std::string Snippet(const LexedFile& lexed, const CstToken& first,
                    const CstToken& last) {
  size_t begin = first.offset;
  size_t end = last.offset + last.text.size();
  std::string out;
  for (size_t i = begin; i < end && i < lexed.code.size(); ++i) {
    char c = lexed.code[i];
    out.push_back(c == '\n' ? ' ' : c);
  }
  std::string result(TrimWhitespace(out));
  if (result.size() > 48) result = result.substr(0, 45) + "...";
  return result;
}

/// Shared token-cursor helpers for the rule scanners.
struct TokenView {
  const LexedFile& lexed;
  const std::vector<CstToken>& toks;

  bool Ident(size_t i) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent;
  }
  bool Ident(size_t i, const char* text) const {
    return Ident(i) && toks[i].text == text;
  }
  bool Punct(size_t i, const char* text) const {
    return i < toks.size() && toks[i].kind == TokKind::kPunct &&
           toks[i].text == text;
  }
  int Line(size_t i) const { return lexed.LineAt(toks[i].offset); }
};

void Report(const TokenView& v, const std::string& rel_path, size_t first,
            size_t last, const char* rule, const char* message,
            std::vector<Diagnostic>* diagnostics) {
  diagnostics->push_back(Diagnostic{
      rel_path, v.Line(first), rule,
      std::string(message) + ": '" +
          Snippet(v.lexed, v.toks[first], v.toks[std::min(
                                              last, v.toks.size() - 1)]) +
          "'"});
}

// ------------------------------------------------------------ rng rule --

void RunRngRule(const TokenView& v, const std::string& rel_path,
                std::vector<Diagnostic>* diagnostics) {
  if (PathIsExempt(rel_path, {"src/util/rng"})) return;
  static const char* kMessage =
      "unseeded or ambient randomness; use util/rng's Rng with an "
      "explicit seed so runs are reproducible";
  const auto& t = v.toks;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!v.Ident(i)) continue;
    const std::string& w = t[i].text;
    if ((w == "rand" || w == "srand") && v.Punct(i + 1, "(")) {
      Report(v, rel_path, i, i + 1, "no-unseeded-rng", kMessage, diagnostics);
      continue;
    }
    if (w == "random_device") {
      Report(v, rel_path, i, i, "no-unseeded-rng", kMessage, diagnostics);
      continue;
    }
    if (w == "mt19937" || w == "mt19937_64") {
      // Default-constructed temporary: mt19937{} / mt19937().
      if ((v.Punct(i + 1, "{") && v.Punct(i + 2, "}")) ||
          (v.Punct(i + 1, "(") && v.Punct(i + 2, ")"))) {
        Report(v, rel_path, i, i + 2, "no-unseeded-rng", kMessage,
               diagnostics);
        continue;
      }
      // Default-constructed named engine: mt19937 gen; / mt19937 gen{}.
      if (v.Ident(i + 1) &&
          (v.Punct(i + 2, ";") ||
           (v.Punct(i + 2, "{") && v.Punct(i + 3, "}")))) {
        Report(v, rel_path, i, i + 2, "no-unseeded-rng", kMessage,
               diagnostics);
      }
    }
  }
}

// ----------------------------------------------------- wall-clock rule --

void RunWallClockRule(const TokenView& v, const std::string& rel_path,
                      std::vector<Diagnostic>* diagnostics) {
  if (PathIsExempt(rel_path, {"src/obs/", "src/par/", "bench/"})) return;
  static const char* kMessage =
      "wall-clock read outside the obs timing layer; use obs::Stopwatch "
      "(src/obs/timing.h) so timing stays out of deterministic code paths";
  const auto& t = v.toks;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!v.Ident(i)) continue;
    const std::string& w = t[i].text;
    if (w == "system_clock" || w == "steady_clock" ||
        w == "high_resolution_clock") {
      Report(v, rel_path, i, i, "no-wall-clock", kMessage, diagnostics);
      continue;
    }
    if ((w == "gettimeofday" || w == "time" || w == "clock") &&
        v.Punct(i + 1, "(")) {
      Report(v, rel_path, i, i + 1, "no-wall-clock", kMessage, diagnostics);
    }
  }
}

// ----------------------------------------------------- raw-thread rule --

void RunRawThreadRule(const TokenView& v, const std::string& rel_path,
                      std::vector<Diagnostic>* diagnostics) {
  if (PathIsExempt(rel_path, {"src/par/"})) return;
  static const char* kMessage =
      "raw threading primitive outside src/par; use par::ParallelFor / "
      "par::ParallelMap so execution stays deterministic and pooled";
  const auto& t = v.toks;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (v.Ident(i, "std") && v.Punct(i + 1, "::") && v.Ident(i + 2) &&
        (t[i + 2].text == "thread" || t[i + 2].text == "jthread" ||
         t[i + 2].text == "async")) {
      Report(v, rel_path, i, i + 2, "no-raw-thread", kMessage, diagnostics);
    }
  }
}

// ------------------------------------------------- float-equality rule --

bool IsFloatLiteral(const std::string& text) {
  if (text.size() > 1 && (text[1] == 'x' || text[1] == 'X')) return false;
  if (text.find('.') != std::string::npos) return true;
  return text.find('e') != std::string::npos ||
         text.find('E') != std::string::npos;
}

void RunFloatEqualityRule(const TokenView& v, const std::string& rel_path,
                          std::vector<Diagnostic>* diagnostics) {
  static const char* kMessage =
      "== / != against a floating-point literal; compare with an epsilon "
      "or justify the exact-value comparison";
  const auto& t = v.toks;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct ||
        (t[i].text != "==" && t[i].text != "!=")) {
      continue;
    }
    size_t rhs = i + 1;
    if (v.Punct(rhs, "+") || v.Punct(rhs, "-")) ++rhs;
    bool rhs_float = rhs < t.size() && t[rhs].kind == TokKind::kNumber &&
                     IsFloatLiteral(t[rhs].text);
    bool lhs_float = i >= 1 && t[i - 1].kind == TokKind::kNumber &&
                     IsFloatLiteral(t[i - 1].text);
    if (rhs_float) {
      Report(v, rel_path, i, rhs, "no-float-equality", kMessage, diagnostics);
    } else if (lhs_float) {
      Report(v, rel_path, i - 1, i, "no-float-equality", kMessage,
             diagnostics);
    }
  }
}

// ------------------------------------------------ banned-function rule --

void RunBannedFunctionRule(const TokenView& v, const std::string& rel_path,
                           std::vector<Diagnostic>* diagnostics) {
  static const char* kMessage =
      "banned unsafe/locale-silent C function; use snprintf / "
      "std::string / util ParseInt instead";
  static const std::set<std::string> kBanned = {
      "sprintf", "vsprintf", "strcpy", "strcat", "gets",
      "atoi",    "atol",     "atof",
  };
  const auto& t = v.toks;
  for (size_t i = 0; i < t.size(); ++i) {
    if (v.Ident(i) && kBanned.count(t[i].text) != 0 && v.Punct(i + 1, "(")) {
      Report(v, rel_path, i, i + 1, "banned-function", kMessage, diagnostics);
    }
  }
}

// -------------------------------------------- unordered-iteration rule --

bool IsUnorderedContainer(const std::string& text) {
  return text == "unordered_map" || text == "unordered_set" ||
         text == "unordered_multimap" || text == "unordered_multiset";
}

/// Flags range-for loops over std::unordered_{map,set,...}: both inline
/// (`for (auto& x : obj.unordered_member())`) and over variables this file
/// declares with an unordered type. Iteration order of unordered
/// containers is unspecified, which is exactly the hazard behind golden
/// drift.
void RunUnorderedIterationRule(const TokenView& v, const std::string& rel_path,
                               std::vector<Diagnostic>* diagnostics) {
  static const char* kMessage =
      "range-for over an unordered container; iteration order is "
      "unspecified and breaks bit-identical output — use std::map/std::set "
      "or sort the keys first";
  const auto& t = v.toks;

  // Names declared (anywhere in the file) with an unordered type:
  // `unordered_map<...>[&] name` followed by a declarator-ending token.
  std::set<std::string> unordered_vars;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!v.Ident(i) || !IsUnorderedContainer(t[i].text)) continue;
    size_t j = SkipTemplateArgs(t, i + 1);
    if (j == i + 1) continue;  // no template arguments: not a declaration
    if (v.Punct(j, "&")) ++j;
    if (!v.Ident(j)) continue;
    if (v.Punct(j + 1, ";") || v.Punct(j + 1, "=") || v.Punct(j + 1, "{") ||
        v.Punct(j + 1, "(") || v.Punct(j + 1, ")") || v.Punct(j + 1, ",")) {
      unordered_vars.insert(t[j].text);
    }
  }

  for (size_t i = 0; i < t.size(); ++i) {
    if (!v.Ident(i, "for") || !v.Punct(i + 1, "(")) continue;
    size_t close = MatchingClose(t, i + 1);
    // Find the range-for ':' at paren depth 1 (skipping nested brackets;
    // `::` is a single distinct token, so a lone ':' is unambiguous).
    size_t colon = 0;
    for (size_t j = i + 2; j < close; ++j) {
      if (v.Punct(j, "(") || v.Punct(j, "[") || v.Punct(j, "{")) {
        j = MatchingClose(t, j);
        continue;
      }
      if (v.Punct(j, ";")) break;  // classic three-clause for
      if (v.Punct(j, ":")) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    // Inline: the range expression names an unordered container type.
    bool flagged = false;
    for (size_t j = colon + 1; j < close; ++j) {
      if (v.Ident(j) && IsUnorderedContainer(t[j].text)) {
        Report(v, rel_path, i, close, "no-unordered-iteration", kMessage,
               diagnostics);
        flagged = true;
        break;
      }
    }
    if (flagged) continue;
    // Tracked variable: the range expression is exactly `[&]var`.
    size_t j = colon + 1;
    if (v.Punct(j, "&")) ++j;
    if (v.Ident(j) && j + 1 == close &&
        unordered_vars.count(t[j].text) != 0) {
      Report(v, rel_path, i, close, "no-unordered-iteration", kMessage,
             diagnostics);
    }
  }
}

// --------------------------------------------------------- layering rule --

/// Checks `#include "<layer>/..."` lines of src/ files against the layer
/// manifest: any edge not explicitly allowed is a back-edge.
void RunLayeringRule(const TokenView& v, const std::string& rel_path,
                     const LayerGraph& layers,
                     std::vector<Diagnostic>* diagnostics) {
  std::string layer = layers.LayerForPath(rel_path);
  if (layer.empty()) {
    // Only src/ subsystems are required to be declared; top-level dirs
    // (tests/, scripts/) opt in by appearing in the manifest.
    if (!PathHasPrefix(rel_path, "src/")) return;
    size_t slash = rel_path.find('/', 4);
    if (slash != std::string::npos) {
      diagnostics->push_back(Diagnostic{
          rel_path, 1, "layering",
          "subsystem 'src/" + rel_path.substr(4, slash - 4) +
              "' is not declared in tools/layers.txt; add it to the "
              "manifest with its allowed dependencies"});
    }
    return;
  }
  const auto& t = v.toks;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (!v.Punct(i, "#") || !v.Ident(i + 1, "include") ||
        t[i + 2].kind != TokKind::kString) {
      continue;
    }
    const std::string& lit = t[i + 2].text;
    if (lit.size() < 2 || lit.front() != '"') continue;
    std::string path = lit.substr(1, lit.size() - 2);
    // Longest declared prefix decides the target, so nested layers
    // ("nn/kernels") guard their internals while "nn/kernels.h" — a file
    // of the parent layer, not the subdirectory — still resolves to "nn".
    std::string target = layers.LayerForInclude(path);
    if (target.empty()) continue;
    if (layers.Allowed(layer, target)) continue;
    diagnostics->push_back(Diagnostic{
        rel_path, v.Line(i), "layering",
        "back-edge: layer '" + layer + "' may not include '" + target +
            "/...' (see tools/layers.txt); including '" + path + "'"});
  }
}

// ------------------------------------------------------- suppressions --

void ParseSuppressions(const LexedFile& lexed, const std::string& rel_path,
                       std::vector<Suppression>* suppressions,
                       std::vector<Diagnostic>* diagnostics) {
  for (const Comment& comment : lexed.comments) {
    const std::string& text = comment.text;
    size_t pos = 0;
    while ((pos = text.find("fslint:", pos)) != std::string::npos) {
      size_t p = pos + 7;
      pos = p;  // resume after this marker next iteration
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      if (text.compare(p, 6, "allow(") != 0) continue;
      p += 6;
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      size_t rule_start = p;
      while (p < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[p])) ||
              text[p] == '_' || text[p] == '-')) {
        ++p;
      }
      std::string rule = text.substr(rule_start, p - rule_start);
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      if (rule.empty() || p >= text.size() || text[p] != ')') continue;
      ++p;
      const std::vector<std::string>& known = RuleNames();
      bool known_rule =
          std::find(known.begin(), known.end(), rule) != known.end();
      if (!known_rule || rule == "bad-suppression") {
        diagnostics->push_back(Diagnostic{
            rel_path, comment.start_line, "bad-suppression",
            "allow() names unknown or unsuppressible rule '" + rule + "'"});
        continue;
      }
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      std::string justification;
      if (p < text.size() && text[p] == ':') {
        // Justification runs to the next `fslint:` marker (several allow
        // comments may share one merged comment block) or the comment end.
        size_t next = text.find("fslint:", p + 1);
        size_t end = next == std::string::npos ? text.size() : next;
        justification = std::string(TrimWhitespace(text.substr(p + 1,
                                                               end - p - 1)));
        // Block comments carry a trailing `*/` that is not justification.
        if (EndsWith(justification, "*/")) {
          justification = std::string(TrimWhitespace(
              justification.substr(0, justification.size() - 2)));
        }
        // Strip a leading `//` continuation from merged line comments.
        while (EndsWith(justification, "//")) {
          justification = std::string(TrimWhitespace(
              justification.substr(0, justification.size() - 2)));
        }
      }
      if (justification.empty()) {
        diagnostics->push_back(Diagnostic{
            rel_path, comment.start_line, "bad-suppression",
            "suppression of '" + rule +
                "' lacks a justification; write "
                "fslint: allow(" + rule + "): <why this is safe>"});
        continue;
      }
      suppressions->push_back(
          Suppression{rule, comment.start_line, comment.end_line + 1});
    }
  }
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kNames = {
      "no-unseeded-rng",        "no-wall-clock",
      "no-raw-thread",          "no-unordered-iteration",
      "no-float-equality",      "banned-function",
      "layering",               "guarded-by",
      "lock-order",             "no-lock-across-callback",
      "bad-suppression",
  };
  return kNames;
}

FileAnalysis AnalyzeFileRules(const std::string& rel_path,
                              const std::string& content,
                              const LayerGraph* layers) {
  FileAnalysis analysis;
  analysis.lexed = LexCppSource(content);
  TokenView view{analysis.lexed, TokenizeCode(analysis.lexed)};

  ParseSuppressions(analysis.lexed, rel_path, &analysis.suppressions,
                    &analysis.diagnostics);
  RunRngRule(view, rel_path, &analysis.diagnostics);
  RunWallClockRule(view, rel_path, &analysis.diagnostics);
  RunRawThreadRule(view, rel_path, &analysis.diagnostics);
  RunFloatEqualityRule(view, rel_path, &analysis.diagnostics);
  RunBannedFunctionRule(view, rel_path, &analysis.diagnostics);
  RunUnorderedIterationRule(view, rel_path, &analysis.diagnostics);
  if (layers != nullptr) {
    RunLayeringRule(view, rel_path, *layers, &analysis.diagnostics);
  }
  return analysis;
}

int ApplySuppressions(const std::vector<Suppression>& suppressions,
                      std::vector<Diagnostic>* diagnostics) {
  int used = 0;
  auto suppressed = [&](const Diagnostic& diag) {
    if (diag.rule == "bad-suppression") return false;
    for (const Suppression& s : suppressions) {
      if (s.rule == diag.rule && diag.line >= s.first_line &&
          diag.line <= s.last_line) {
        return true;
      }
    }
    return false;
  };
  auto it = std::remove_if(diagnostics->begin(), diagnostics->end(),
                           suppressed);
  used = static_cast<int>(diagnostics->end() - it);
  diagnostics->erase(it, diagnostics->end());
  return used;
}

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::sort(diagnostics->begin(), diagnostics->end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

FileLintResult LintSource(const std::string& rel_path,
                          const std::string& content,
                          const LayerGraph* layers) {
  FileAnalysis analysis = AnalyzeFileRules(rel_path, content, layers);

  // Single-file concurrency analysis: class tables come from this file
  // alone, and the manifest conformance check is skipped (no tree).
  ConcurrencyAnalyzer analyzer;
  analyzer.AddFile(rel_path, analysis.lexed);
  std::vector<Diagnostic> concurrency = analyzer.Analyze(nullptr);
  analysis.diagnostics.insert(analysis.diagnostics.end(),
                              std::make_move_iterator(concurrency.begin()),
                              std::make_move_iterator(concurrency.end()));

  FileLintResult result;
  result.suppressions_used =
      ApplySuppressions(analysis.suppressions, &analysis.diagnostics);
  result.diagnostics = std::move(analysis.diagnostics);
  SortDiagnostics(&result.diagnostics);
  return result;
}

}  // namespace lint
}  // namespace fieldswap
