#include "lint/rules.h"

#include <algorithm>
#include <regex>
#include <set>

#include "lint/lexer.h"
#include "util/strings.h"

namespace fieldswap {
namespace lint {

namespace {

bool PathHasPrefix(const std::string& path, const std::string& prefix) {
  return path.compare(0, prefix.size(), prefix) == 0;
}

/// Matched source text cleaned up for a one-line diagnostic.
std::string Snippet(const std::string& matched) {
  std::string out;
  for (char c : matched) out.push_back(c == '\n' ? ' ' : c);
  std::string_view trimmed = TrimWhitespace(out);
  std::string result(trimmed);
  if (result.size() > 48) result = result.substr(0, 45) + "...";
  return result;
}

/// A rule expressed as a single regex over the lexed code view, with path
/// prefixes where the pattern is sanctioned and the rule stays quiet.
struct RegexRule {
  const char* name;
  const char* message;
  std::regex pattern;
  std::vector<std::string> exempt_prefixes;
};

const std::vector<RegexRule>& RegexRules() {
  static const std::vector<RegexRule>* rules = [] {
    auto* r = new std::vector<RegexRule>;
    r->push_back(RegexRule{
        "no-unseeded-rng",
        "unseeded or ambient randomness; use util/rng's Rng with an "
        "explicit seed so runs are reproducible",
        std::regex(
            R"(\b(srand|rand)\s*\(|\brandom_device\b)"
            R"(|\bmt19937(_64)?\s*(\{\s*\}|\(\s*\)))"
            R"(|\bmt19937(_64)?\s+[A-Za-z_]\w*\s*(;|\{\s*\}))"),
        {"src/util/rng"}});
    r->push_back(RegexRule{
        "no-wall-clock",
        "wall-clock read outside the obs timing layer; use obs::Stopwatch "
        "(src/obs/timing.h) so timing stays out of deterministic code paths",
        std::regex(
            R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"
            R"(|\bgettimeofday\s*\(|\btime\s*\(|\bclock\s*\()"),
        {"src/obs/", "src/par/", "bench/"}});
    r->push_back(RegexRule{
        "no-raw-thread",
        "raw threading primitive outside src/par; use par::ParallelFor / "
        "par::ParallelMap so execution stays deterministic and pooled",
        std::regex(R"(\bstd\s*::\s*(jthread|thread|async)\b)"),
        {"src/par/"}});
    r->push_back(RegexRule{
        "no-float-equality",
        "== / != against a floating-point literal; compare with an epsilon "
        "or justify the exact-value comparison",
        std::regex(
            R"([=!]=\s*[+-]?(\d+\.\d*|\.\d+|\d+\.?\d*[eE][+-]?\d+)[fFlL]?)"
            R"(|(\d+\.\d*|\.\d+|\d+\.?\d*[eE][+-]?\d+)[fFlL]?\s*[=!]=)"),
        {}});
    r->push_back(RegexRule{
        "banned-function",
        "banned unsafe/locale-silent C function; use snprintf / "
        "std::string / util ParseInt instead",
        std::regex(
            R"(\b(sprintf|vsprintf|strcpy|strcat|gets|atoi|atol|atof)\s*\()"),
        {}});
    return r;
  }();
  return *rules;
}

/// One parsed `fslint: allow(<rule>): <justification>` comment. Covers the
/// comment's own lines plus the line immediately after it.
struct Suppression {
  std::string rule;
  int first_line = 0;
  int last_line = 0;
  bool justified = false;
};

void ParseSuppressions(const LexedFile& lexed, const std::string& rel_path,
                       std::vector<Suppression>* suppressions,
                       std::vector<Diagnostic>* diagnostics) {
  static const std::regex kAllow(
      R"(fslint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\)(\s*:\s*(\S[\s\S]*))?)");
  for (const Comment& comment : lexed.comments) {
    for (std::sregex_iterator it(comment.text.begin(), comment.text.end(),
                                 kAllow),
         end;
         it != end; ++it) {
      const std::smatch& m = *it;
      std::string rule = m[1].str();
      const std::vector<std::string>& known = RuleNames();
      bool known_rule =
          std::find(known.begin(), known.end(), rule) != known.end();
      if (!known_rule || rule == "bad-suppression") {
        diagnostics->push_back(Diagnostic{
            rel_path, comment.start_line, "bad-suppression",
            "allow() names unknown or unsuppressible rule '" + rule + "'"});
        continue;
      }
      std::string justification(TrimWhitespace(m[3].str()));
      // Block comments carry a trailing `*/` that is not justification.
      if (EndsWith(justification, "*/")) {
        justification = std::string(TrimWhitespace(
            justification.substr(0, justification.size() - 2)));
      }
      if (justification.empty()) {
        diagnostics->push_back(Diagnostic{
            rel_path, comment.start_line, "bad-suppression",
            "suppression of '" + rule +
                "' lacks a justification; write "
                "fslint: allow(" + rule + "): <why this is safe>"});
        continue;
      }
      suppressions->push_back(Suppression{rule, comment.start_line,
                                          comment.end_line + 1, true});
    }
  }
}

void RunRegexRules(const LexedFile& lexed, const std::string& rel_path,
                   std::vector<Diagnostic>* diagnostics) {
  for (const RegexRule& rule : RegexRules()) {
    bool exempt = false;
    for (const std::string& prefix : rule.exempt_prefixes) {
      if (PathHasPrefix(rel_path, prefix)) exempt = true;
    }
    if (exempt) continue;
    for (std::sregex_iterator it(lexed.code.begin(), lexed.code.end(),
                                 rule.pattern),
         end;
         it != end; ++it) {
      size_t offset = static_cast<size_t>(it->position());
      diagnostics->push_back(Diagnostic{
          rel_path, lexed.LineAt(offset), rule.name,
          std::string(rule.message) + ": '" + Snippet(it->str()) + "'"});
    }
  }
}

/// Flags range-for loops over std::unordered_{map,set,...}: both inline
/// (`for (auto& x : some.unordered_map_expr)`) and over variables the file
/// itself declares with an unordered type. Iteration order of unordered
/// containers is unspecified, which is exactly the hazard behind golden
/// drift.
void RunUnorderedIterationRule(const LexedFile& lexed,
                               const std::string& rel_path,
                               std::vector<Diagnostic>* diagnostics) {
  static const char* kMessage =
      "range-for over an unordered container; iteration order is "
      "unspecified and breaks bit-identical output — use std::map/std::set "
      "or sort the keys first";
  static const std::regex kInline(
      R"(for\s*\([^;{}]*:[^;{})]*\bunordered_(map|set|multimap|multiset)\b)");
  for (std::sregex_iterator it(lexed.code.begin(), lexed.code.end(), kInline),
       end;
       it != end; ++it) {
    size_t offset = static_cast<size_t>(it->position());
    diagnostics->push_back(Diagnostic{
        rel_path, lexed.LineAt(offset), "no-unordered-iteration",
        std::string(kMessage) + ": '" + Snippet(it->str()) + "'"});
  }

  static const std::regex kDecl(
      R"(\bunordered_(map|set|multimap|multiset)\s*<[^;{}()]*>\s*&?\s*([A-Za-z_]\w*)\s*[;={(),])");
  std::set<std::string> unordered_vars;
  for (std::sregex_iterator it(lexed.code.begin(), lexed.code.end(), kDecl),
       end;
       it != end; ++it) {
    unordered_vars.insert((*it)[2].str());
  }
  for (const std::string& var : unordered_vars) {
    std::regex loop(R"(for\s*\([^;{})]*:\s*&?\s*)" + var + R"(\s*\))");
    for (std::sregex_iterator it(lexed.code.begin(), lexed.code.end(), loop),
         end;
         it != end; ++it) {
      size_t offset = static_cast<size_t>(it->position());
      diagnostics->push_back(Diagnostic{
          rel_path, lexed.LineAt(offset), "no-unordered-iteration",
          std::string(kMessage) + ": '" + Snippet(it->str()) + "'"});
    }
  }
}

/// Checks `#include "<layer>/..."` lines of src/ files against the layer
/// manifest: any edge not explicitly allowed is a back-edge.
void RunLayeringRule(const LexedFile& lexed, const std::string& rel_path,
                     const LayerGraph& layers,
                     std::vector<Diagnostic>* diagnostics) {
  std::string layer = layers.LayerForPath(rel_path);
  if (layer.empty()) {
    // Only src/ subsystems are required to be declared; top-level dirs
    // (tests/, scripts/) opt in by appearing in the manifest.
    if (!PathHasPrefix(rel_path, "src/")) return;
    size_t slash = rel_path.find('/', 4);
    if (slash != std::string::npos) {
      diagnostics->push_back(Diagnostic{
          rel_path, 1, "layering",
          "subsystem 'src/" + rel_path.substr(4, slash - 4) +
              "' is not declared in tools/layers.txt; add it to the "
              "manifest with its allowed dependencies"});
    }
    return;
  }
  static const std::regex kInclude(
      R"re(#[ \t]*include[ \t]*"([^"\n]+)")re");
  for (std::sregex_iterator it(lexed.code.begin(), lexed.code.end(),
                               kInclude),
       end;
       it != end; ++it) {
    std::string path = (*it)[1].str();
    // Longest declared prefix decides the target, so nested layers
    // ("nn/kernels") guard their internals while "nn/kernels.h" — a file
    // of the parent layer, not the subdirectory — still resolves to "nn".
    std::string target = layers.LayerForInclude(path);
    if (target.empty()) continue;
    if (layers.Allowed(layer, target)) continue;
    size_t offset = static_cast<size_t>(it->position());
    diagnostics->push_back(Diagnostic{
        rel_path, lexed.LineAt(offset), "layering",
        "back-edge: layer '" + layer + "' may not include '" + target +
            "/...' (see tools/layers.txt); including '" + path + "'"});
  }
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kNames = {
      "no-unseeded-rng",        "no-wall-clock",     "no-raw-thread",
      "no-unordered-iteration", "no-float-equality", "banned-function",
      "layering",               "bad-suppression",
  };
  return kNames;
}

FileLintResult LintSource(const std::string& rel_path,
                          const std::string& content,
                          const LayerGraph* layers) {
  LexedFile lexed = LexCppSource(content);

  std::vector<Suppression> suppressions;
  std::vector<Diagnostic> raw;
  ParseSuppressions(lexed, rel_path, &suppressions, &raw);
  RunRegexRules(lexed, rel_path, &raw);
  RunUnorderedIterationRule(lexed, rel_path, &raw);
  if (layers != nullptr) RunLayeringRule(lexed, rel_path, *layers, &raw);

  FileLintResult result;
  for (Diagnostic& diag : raw) {
    bool suppressed = false;
    if (diag.rule != "bad-suppression") {
      for (const Suppression& s : suppressions) {
        if (s.rule == diag.rule && diag.line >= s.first_line &&
            diag.line <= s.last_line) {
          suppressed = true;
          break;
        }
      }
    }
    if (suppressed) {
      ++result.suppressions_used;
    } else {
      result.diagnostics.push_back(std::move(diag));
    }
  }
  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

}  // namespace lint
}  // namespace fieldswap
