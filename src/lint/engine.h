#ifndef FIELDSWAP_LINT_ENGINE_H_
#define FIELDSWAP_LINT_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "lint/layers.h"
#include "lint/rules.h"

namespace fieldswap {
namespace lint {

/// Configuration for a lint run over a source tree.
struct LintConfig {
  /// Absolute repo root; scanned paths and diagnostics are relative to it.
  std::string root;
  /// Paths containing any of these substrings are skipped. The default
  /// keeps the deliberately-violating fixture files out of the real gate.
  std::vector<std::string> exclude_substrings = {"lint_fixtures"};
  /// Layer manifest; layering checks are skipped when null.
  const LayerGraph* layers = nullptr;
  /// Lock-order manifest for the concurrency rules (see
  /// lint/concurrency.h). Empty means ROOT/tools/lock_order.txt when that
  /// file exists. Relative paths resolve against `root`.
  std::string lock_order_path;
  /// When false, skip the manifest-conformance half of `lock-order`
  /// (deadlock-cycle detection still runs).
  bool check_lock_order = true;
};

/// Aggregate result of linting many files.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  int files_scanned = 0;
  int suppressions_used = 0;
  std::map<std::string, int> violations_by_rule;
  /// Paths that could not be read (reported and counted as failures).
  std::vector<std::string> unreadable_files;
  /// Every nested lock acquisition observed across the scanned tree,
  /// formatted `A -> B` and sorted — the exact lines a complete
  /// tools/lock_order.txt needs (`fslint --dump-lock-order`).
  std::vector<std::string> observed_lock_edges;

  bool clean() const {
    return diagnostics.empty() && unreadable_files.empty();
  }
};

/// Lints every C++ source file (.cc/.h/.cpp/.hpp/.hh/.cxx) under `paths`
/// (files or directories, absolute or relative to `config.root`). File
/// order — and therefore diagnostic order — is sorted and deterministic.
LintReport LintPaths(const LintConfig& config,
                     const std::vector<std::string>& paths);

/// `file:line: error[rule]: message` lines plus a one-line summary.
std::string RenderText(const LintReport& report);

/// Machine-readable report:
///   {"files_scanned", "violations", "suppressions_used",
///    "by_rule": {...}, "diagnostics": [{file, line, rule, message}...]}
std::string RenderJson(const LintReport& report);

/// Publishes fieldswap.lint.* counters/gauges to the global obs registry
/// so lint health lands in the same metric sidecars as everything else.
void PublishLintMetrics(const LintReport& report);

}  // namespace lint
}  // namespace fieldswap

#endif  // FIELDSWAP_LINT_ENGINE_H_
