#ifndef FIELDSWAP_LINT_LEXER_H_
#define FIELDSWAP_LINT_LEXER_H_

#include <string>
#include <vector>

namespace fieldswap {
namespace lint {

/// One comment (line or block) from the original source, with the physical
/// lines it covers. `text` keeps the delimiters (`//`, `/* */`) so callers
/// can distinguish comment kinds if they care.
struct Comment {
  int start_line = 0;  // 1-based
  int end_line = 0;    // == start_line for `//` comments
  std::string text;
};

/// A C++ translation unit reduced to the parts the rule engine may match
/// against. Both views are byte-for-byte the same length as the input with
/// newlines preserved, so any byte offset maps to the same file:line in the
/// original.
struct LexedFile {
  /// Comments and string/char-literal *contents* replaced by spaces.
  /// Exception: the quoted path of an `#include "..."` directive survives,
  /// so the layering checker can read it without seeing ordinary strings.
  std::string code;
  /// All comments, in file order, for suppression parsing.
  std::vector<Comment> comments;
  /// Byte offset of the start of each line; line_starts[0] == 0.
  std::vector<size_t> line_starts;

  /// 1-based line containing byte `offset` of `code`.
  int LineAt(size_t offset) const;
};

/// Scans `text` as C++ source. Handles `//` and `/* */` comments, ordinary
/// string literals with escapes, char literals, and raw strings
/// (`R"delim(...)delim"`, including u8R/uR/UR/LR prefixes), so rule
/// patterns never fire on quoted or commented text.
LexedFile LexCppSource(const std::string& text);

}  // namespace lint
}  // namespace fieldswap

#endif  // FIELDSWAP_LINT_LEXER_H_
