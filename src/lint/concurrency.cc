#include "lint/concurrency.h"

#include <algorithm>
#include <iterator>
#include <tuple>

#include "util/strings.h"

namespace fieldswap {
namespace lint {

namespace {

int LineForOffset(const std::vector<size_t>& line_starts, size_t offset) {
  return static_cast<int>(
      std::upper_bound(line_starts.begin(), line_starts.end(), offset) -
      line_starts.begin());
}

/// "src/util/logging.cc" -> "logging" — used to qualify file-scope and
/// function-local mutexes so equal names in different files never alias.
std::string FileStem(const std::string& rel_path) {
  size_t slash = rel_path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? rel_path : rel_path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  return base;
}

/// "Cls::mu_" -> "mu_"; "PoolMutex()" -> "PoolMutex".
std::string BaseName(const std::string& qual) {
  std::string s = qual;
  if (EndsWith(s, "()")) s = s.substr(0, s.size() - 2);
  size_t pos = s.rfind("::");
  if (pos != std::string::npos) s = s.substr(pos + 2);
  while (!s.empty() && (s.front() == '&' || s.front() == '*')) s.erase(0, 1);
  return s;
}

bool IsCppKeywordish(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "else",    "for",     "while",  "do",      "switch",
      "case",   "return",  "break",   "continue", "sizeof", "new",
      "delete", "this",    "true",    "false",  "nullptr", "const",
      "static", "auto",    "void",    "int",    "bool",    "char",
      "float",  "double",  "long",    "short",  "unsigned", "signed",
      "struct", "class",   "enum",    "union",  "namespace", "using",
      "typedef", "template", "typename", "operator", "try", "catch",
      "throw",  "default", "public",  "private", "protected", "std",
      "constexpr", "mutable", "volatile", "inline", "friend", "goto",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "noexcept", "decltype", "co_await", "co_return", "co_yield",
  };
  return kw.count(s) != 0;
}

const std::set<std::string>& MutexHeads() {
  static const std::set<std::string> heads = {
      "mutex",       "recursive_mutex",     "timed_mutex",
      "shared_mutex", "shared_timed_mutex", "recursive_timed_mutex",
      "OrderedMutex",
  };
  return heads;
}

/// Cross-file symbol tables merged from every registered CstFile.
struct Tables {
  // class -> member name -> decl (variables only; methods are separate).
  std::map<std::string, std::map<std::string, MemberDecl>> class_members;
  // class -> method name -> FS_REQUIRES / FS_EXCLUDES annotations.
  std::map<std::string, std::map<std::string, MethodAnnotation>> method_ann;
  // member name -> guard base names, across every class annotating it.
  std::map<std::string, std::set<std::string>> guards_by_member;
  // member names that some class defines WITHOUT a guard — dotted accesses
  // to these are ambiguous (cannot tell the owning class), so skipped.
  std::set<std::string> unannotated_somewhere;
  // mutex-typed member name -> classes declaring it.
  std::map<std::string, std::set<std::string>> mutex_member_classes;
  // member names that are std::function-typed in some class / any class.
  std::set<std::string> callback_members;
  std::set<std::string> noncallback_members;
  // rel_path -> file-scope variable name -> decl.
  std::map<std::string, std::map<std::string, MemberDecl>> globals;
};

struct Witness {
  std::string file;
  int line = 0;
  std::string chain;  // human-readable acquisition chain with anchors
};

using EdgeMap = std::map<std::pair<std::string, std::string>, Witness>;

struct ResolvedMutex {
  std::string qual;
  std::string base;
};

/// Walks one function body, tracking the held-lock stack.
class FunctionWalker {
 public:
  FunctionWalker(const Tables& tables, const std::string& rel_path,
                 const CstFile& cst, const std::vector<size_t>& line_starts,
                 const FunctionDecl& fn, EdgeMap* edges,
                 std::vector<Diagnostic>* diags)
      : tables_(tables),
        rel_path_(rel_path),
        toks_(cst.tokens),
        line_starts_(line_starts),
        fn_(fn),
        edges_(edges),
        diags_(diags) {}

  void Run() {
    SeedRequiredLocks();
    const size_t end = std::min(fn_.body_end, toks_.size());
    for (size_t j = fn_.body_begin + 1; j < end; ++j) {
      const CstToken& t = toks_[j];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") {
          ++depth_;
        } else if (t.text == "}") {
          ReleaseScope(depth_);
          --depth_;
        }
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      const std::string& word = t.text;
      if (word == "lock_guard" || word == "scoped_lock" ||
          word == "unique_lock" || word == "shared_lock") {
        j = HandleLockDecl(j, word);
        continue;
      }
      if (MutexHeads().count(word) != 0) {
        // Function-local mutex declaration: `std::mutex m;`.
        if (IsIdent(j + 1) && !IsPunct(j + 2, "(")) {
          local_mutexes_[toks_[j + 1].text] =
              FileStem(rel_path_) + "::" + fn_.name + "::" + toks_[j + 1].text;
          j += 1;
        }
        continue;
      }
      if (word == "function" || word == "move_only_function") {
        size_t k = SkipTemplateArgs(toks_, j + 1);
        if (k != j + 1 && IsIdent(k)) local_callbacks_.insert(toks_[k].text);
        if (k > j) j = k;
        continue;
      }
      if ((word == "lock" || word == "unlock") && IsPrevAccess(j) &&
          IsPunct(j + 1, "(")) {
        HandleLockToggle(j, word == "lock");
        j = MatchingClose(toks_, j + 1);
        continue;
      }
      if ((word == "wait" || word == "wait_for" || word == "wait_until") &&
          IsPrevAccess(j) && IsPunct(j + 1, "(")) {
        HandleCvWait(j);
        // Keep walking inside the call: wait predicates read guarded state.
        continue;
      }
      CheckAccess(j, word);
    }
  }

 private:
  bool IsIdent(size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kIdent;
  }
  bool IsPunct(size_t i, const char* p) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kPunct &&
           toks_[i].text == p;
  }
  bool IsPrevAccess(size_t i) const {
    return i >= 1 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->"));
  }
  int LineOf(size_t i) const {
    return LineForOffset(line_starts_, toks_[i].offset);
  }

  struct Held {
    std::string qual;
    std::string base;
    std::string file;
    int line = 0;
    int depth = 0;   // -1: held on entry via FS_REQUIRES, never released
    int group = -1;  // scoped_lock group: no edges within one group
  };

  void SeedRequiredLocks() {
    std::vector<std::string> reqs = fn_.requires_locks;
    auto cit = tables_.method_ann.find(fn_.cls);
    if (cit != tables_.method_ann.end()) {
      auto mit = cit->second.find(fn_.name);
      if (mit != cit->second.end()) {
        for (const std::string& r : mit->second.requires_locks) {
          if (std::find(reqs.begin(), reqs.end(), r) == reqs.end()) {
            reqs.push_back(r);
          }
        }
      }
    }
    for (const std::string& r : reqs) {
      ResolvedMutex m = QualifyAnnotationArg(r);
      held_.push_back(Held{m.qual, m.base, rel_path_, fn_.line, -1, -1});
      // Bind unique_lock& parameters to the required mutex: the caller
      // passed in the lock object that owns it.
      for (const std::string& p : fn_.lock_params) {
        if (lock_vars_.count(p) == 0) {
          lock_vars_[p] = m;
          break;
        }
      }
    }
  }

  ResolvedMutex QualifyAnnotationArg(const std::string& arg) const {
    ResolvedMutex m;
    m.base = BaseName(arg);
    if (arg.find("::") != std::string::npos) {
      m.qual = arg;
    } else if (!fn_.cls.empty() && MemberOf(fn_.cls, m.base) != nullptr) {
      m.qual = fn_.cls + "::" + m.base;
    } else {
      m.qual = arg;
    }
    return m;
  }

  const MemberDecl* MemberOf(const std::string& cls,
                             const std::string& name) const {
    auto cit = tables_.class_members.find(cls);
    if (cit == tables_.class_members.end()) return nullptr;
    auto mit = cit->second.find(name);
    return mit == cit->second.end() ? nullptr : &mit->second;
  }

  const MemberDecl* FileGlobal(const std::string& name) const {
    auto fit = tables_.globals.find(rel_path_);
    if (fit == tables_.globals.end()) return nullptr;
    auto git = fit->second.find(name);
    return git == fit->second.end() ? nullptr : &git->second;
  }

  /// Resolves the mutex expression in token range [s, e).
  ResolvedMutex ResolveMutexExpr(size_t s, size_t e) const {
    size_t last_ident = toks_.size();
    for (size_t k = s; k < e && k < toks_.size(); ++k) {
      if (toks_[k].kind == TokKind::kIdent && toks_[k].text != "std" &&
          toks_[k].text != "this") {
        last_ident = k;
      }
    }
    ResolvedMutex m;
    if (last_ident == toks_.size()) return m;
    m.base = toks_[last_ident].text;
    bool call_form = last_ident + 1 < e && IsPunct(last_ident + 1, "(");
    if (call_form) {
      m.qual = FileStem(rel_path_) + "::" + m.base + "()";
      return m;
    }
    if (last_ident >= 2 && IsPunct(last_ident - 1, "::") &&
        IsIdent(last_ident - 2)) {
      m.qual = toks_[last_ident - 2].text + "::" + m.base;
      return m;
    }
    if (last_ident >= 1 && IsPrevAccess(last_ident)) {
      // obj.mu_ / ptr->mu_ — attribute to the unique class declaring a
      // mutex member of this name, if there is exactly one.
      auto it = tables_.mutex_member_classes.find(m.base);
      if (it != tables_.mutex_member_classes.end() && it->second.size() == 1) {
        m.qual = *it->second.begin() + "::" + m.base;
      } else if (!fn_.cls.empty() && MemberOf(fn_.cls, m.base) != nullptr) {
        m.qual = fn_.cls + "::" + m.base;
      } else {
        m.qual = m.base;
      }
      return m;
    }
    // Bare identifier.
    auto lit = local_mutexes_.find(m.base);
    if (lit != local_mutexes_.end()) {
      m.qual = lit->second;
      return m;
    }
    if (!fn_.cls.empty() && MemberOf(fn_.cls, m.base) != nullptr) {
      m.qual = fn_.cls + "::" + m.base;
      return m;
    }
    if (FileGlobal(m.base) != nullptr) {
      m.qual = FileStem(rel_path_) + "::" + m.base;
      return m;
    }
    auto it = tables_.mutex_member_classes.find(m.base);
    if (it != tables_.mutex_member_classes.end() && it->second.size() == 1) {
      m.qual = *it->second.begin() + "::" + m.base;
      return m;
    }
    // Unknown: qualify by file+function so names never alias across files.
    m.qual = FileStem(rel_path_) + "::" + fn_.name + "::" + m.base;
    return m;
  }

  std::string ChainString(const ResolvedMutex& m, int line) const {
    std::string chain;
    for (const Held& h : held_) {
      chain += h.qual + " (" + h.file + ":" + std::to_string(h.line) + ") -> ";
    }
    chain += m.qual + " (" + rel_path_ + ":" + std::to_string(line) + ")";
    return chain;
  }

  void Acquire(const ResolvedMutex& m, int line, int group) {
    if (m.qual.empty()) return;
    for (const Held& h : held_) {
      if (h.qual == m.qual) continue;
      if (group >= 0 && h.group == group) continue;
      auto key = std::make_pair(h.qual, m.qual);
      if (edges_->count(key) == 0) {
        (*edges_)[key] = Witness{rel_path_, line, ChainString(m, line)};
      }
    }
    held_.push_back(Held{m.qual, m.base, rel_path_, line, depth_, group});
  }

  void Release(const std::string& qual) {
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      if (it->qual == qual && it->depth >= 0) {
        held_.erase(std::next(it).base());
        return;
      }
    }
  }

  void ReleaseScope(int depth) {
    held_.erase(std::remove_if(held_.begin(), held_.end(),
                               [depth](const Held& h) {
                                 return h.depth == depth;
                               }),
                held_.end());
  }

  bool HoldsBase(const std::string& base) const {
    for (const Held& h : held_) {
      if (h.base == base) return true;
    }
    return false;
  }

  /// toks_[j] is lock_guard / scoped_lock / unique_lock / shared_lock.
  /// Handles the declaration and returns the index to resume after.
  size_t HandleLockDecl(size_t j, const std::string& kind) {
    size_t k = SkipTemplateArgs(toks_, j + 1);
    std::string var;
    if (IsIdent(k)) {
      var = toks_[k].text;
      ++k;
    }
    if (!IsPunct(k, "(") && !IsPunct(k, "{")) return k - 1;
    size_t close = MatchingClose(toks_, k);
    // Split arguments at top-level commas.
    std::vector<std::pair<size_t, size_t>> args;
    size_t arg_start = k + 1;
    for (size_t p = k + 1; p < close; ++p) {
      if (IsPunct(p, "(") || IsPunct(p, "[") || IsPunct(p, "{")) {
        p = MatchingClose(toks_, p);
        continue;
      }
      if (IsPunct(p, "<")) {
        size_t q = SkipTemplateArgs(toks_, p);
        if (q != p) p = q - 1;
        continue;
      }
      if (IsPunct(p, ",")) {
        args.emplace_back(arg_start, p);
        arg_start = p + 1;
      }
    }
    if (arg_start < close) args.emplace_back(arg_start, close);
    bool defer = false;
    std::vector<std::pair<size_t, size_t>> mutex_args;
    for (const auto& a : args) {
      bool tag = false;
      for (size_t p = a.first; p < a.second; ++p) {
        if (IsIdent(p) && (toks_[p].text == "defer_lock" ||
                           toks_[p].text == "adopt_lock" ||
                           toks_[p].text == "try_to_lock")) {
          tag = true;
          if (toks_[p].text == "defer_lock") defer = true;
        }
      }
      if (!tag) mutex_args.push_back(a);
    }
    int line = LineOf(j);
    if (kind == "unique_lock" || kind == "shared_lock") {
      if (!mutex_args.empty()) {
        ResolvedMutex m = ResolveMutexExpr(mutex_args[0].first,
                                           mutex_args[0].second);
        if (!var.empty()) lock_vars_[var] = m;
        if (!defer) Acquire(m, line, -1);
      }
      return close;
    }
    // lock_guard: one mutex; scoped_lock: several, acquired as one group
    // (no ordering among them — std::scoped_lock deadlock-avoids).
    int group = kind == "scoped_lock" ? next_group_++ : -1;
    for (const auto& a : mutex_args) {
      Acquire(ResolveMutexExpr(a.first, a.second), line, group);
    }
    return close;
  }

  /// v.lock() / v.unlock() on a bound lock object, or m.lock()/m.unlock()
  /// directly on a known mutex.
  void HandleLockToggle(size_t j, bool is_lock) {
    if (j < 2 || !IsIdent(j - 2)) return;
    const std::string& owner = toks_[j - 2].text;
    int line = LineOf(j);
    auto vit = lock_vars_.find(owner);
    if (vit != lock_vars_.end()) {
      if (is_lock) {
        Acquire(vit->second, line, -1);
      } else {
        Release(vit->second.qual);
      }
      return;
    }
    // Direct mutex .lock()/.unlock(): only when it resolves to something
    // we know is a mutex (member, file global, or local).
    const MemberDecl* mem =
        fn_.cls.empty() ? nullptr : MemberOf(fn_.cls, owner);
    const MemberDecl* glob = FileGlobal(owner);
    bool known_mutex = (mem != nullptr && mem->is_mutex) ||
                       (glob != nullptr && glob->is_mutex) ||
                       local_mutexes_.count(owner) != 0;
    if (!known_mutex) return;
    ResolvedMutex m = ResolveMutexExpr(j - 2, j - 1);
    if (is_lock) {
      Acquire(m, line, -1);
    } else {
      Release(m.qual);
    }
  }

  /// cv.wait(lock, ...) — the lock is released while waiting and
  /// re-acquired on wake-up, so every *other* held lock gains an edge to
  /// the waited mutex (the re-acquisition nests under them).
  void HandleCvWait(size_t j) {
    size_t open = j + 1;
    size_t first = open + 1;
    if (!IsIdent(first)) return;
    auto vit = lock_vars_.find(toks_[first].text);
    if (vit == lock_vars_.end()) return;
    const ResolvedMutex& m = vit->second;
    int line = LineOf(j);
    for (const Held& h : held_) {
      if (h.qual == m.qual) continue;
      auto key = std::make_pair(h.qual, m.qual);
      if (edges_->count(key) == 0) {
        (*edges_)[key] =
            Witness{rel_path_, line,
                    h.qual + " (" + h.file + ":" + std::to_string(h.line) +
                        ") -> " + m.qual + " (re-acquired after wait, " +
                        rel_path_ + ":" + std::to_string(line) + ")"};
      }
    }
  }

  void Emit(const std::string& rule, int line, const std::string& message) {
    auto key = std::make_tuple(rule, line, message);
    if (!emitted_.insert(key).second) return;
    diags_->push_back(Diagnostic{rel_path_, line, rule, message});
  }

  void CheckGuard(const std::string& member, const std::set<std::string>& guards,
                  int line) {
    if (fn_.is_ctor_or_dtor) return;
    for (const std::string& g : guards) {
      if (HoldsBase(g)) return;
    }
    const std::string& g = *guards.begin();
    Emit("guarded-by", line,
         "member '" + member + "' is annotated FS_GUARDED_BY(" + g +
             ") but is accessed without holding '" + g +
             "'; acquire the mutex or annotate the enclosing function "
             "FS_REQUIRES(" + g + ")");
  }

  void CheckCallback(const std::string& name, int line) {
    if (held_.empty()) return;
    Emit("no-lock-across-callback", line,
         "invokes user-supplied callback '" + name + "' while holding '" +
             held_.back().qual +
             "'; a callback that re-enters the locked object deadlocks — "
             "copy the callback and invoke it after releasing the lock");
  }

  void CheckExcludesCall(const std::string& method, const std::string& cls,
                         int line) {
    std::vector<std::string> excludes;
    if (!cls.empty()) {
      auto cit = tables_.method_ann.find(cls);
      if (cit != tables_.method_ann.end()) {
        auto mit = cit->second.find(method);
        if (mit != cit->second.end()) excludes = mit->second.excludes_locks;
      }
    } else {
      for (const auto& kv : tables_.method_ann) {
        auto mit = kv.second.find(method);
        if (mit != kv.second.end()) {
          excludes.insert(excludes.end(), mit->second.excludes_locks.begin(),
                          mit->second.excludes_locks.end());
        }
      }
    }
    for (const std::string& e : excludes) {
      std::string base = BaseName(e);
      if (HoldsBase(base)) {
        Emit("lock-order", line,
             "calls '" + method + "()' annotated FS_EXCLUDES(" + e +
                 ") while holding '" + base +
                 "'; the callee re-acquires it — self-deadlock");
        return;
      }
    }
  }

  void CheckAccess(size_t j, const std::string& word) {
    if (IsCppKeywordish(word)) return;
    if (word == "FS_GUARDED_BY" || word == "FS_REQUIRES" ||
        word == "FS_EXCLUDES") {
      return;
    }
    if (j >= 1 && IsPunct(j - 1, "::")) return;  // qualified: Cls::kConst
    if (IsPunct(j + 1, "::")) return;            // namespace/class qualifier
    bool is_call = IsPunct(j + 1, "(");
    int line = LineOf(j);
    if (IsPrevAccess(j)) {
      bool owner_this = j >= 2 && IsIdent(j - 2) && toks_[j - 2].text == "this";
      if (is_call) {
        if (tables_.callback_members.count(word) != 0 &&
            tables_.noncallback_members.count(word) == 0 &&
            !fn_.is_ctor_or_dtor) {
          CheckCallback(word, line);
        } else {
          CheckExcludesCall(word, owner_this ? fn_.cls : std::string(), line);
        }
        return;
      }
      if (owner_this) {
        const MemberDecl* m =
            fn_.cls.empty() ? nullptr : MemberOf(fn_.cls, word);
        if (m != nullptr && !m->guard.empty()) {
          CheckGuard(word, {BaseName(m->guard)}, line);
        }
        return;
      }
      auto git = tables_.guards_by_member.find(word);
      if (git != tables_.guards_by_member.end() &&
          tables_.unannotated_somewhere.count(word) == 0) {
        std::set<std::string> bases;
        for (const std::string& g : git->second) bases.insert(BaseName(g));
        CheckGuard(word, bases, line);
      }
      return;
    }
    // Bare identifier.
    if (local_callbacks_.count(word) != 0 && is_call && !held_.empty()) {
      CheckCallback(word, line);
      return;
    }
    if (!fn_.cls.empty()) {
      const MemberDecl* m = MemberOf(fn_.cls, word);
      if (m != nullptr) {
        if (m->is_callback && is_call && !fn_.is_ctor_or_dtor) {
          CheckCallback(word, line);
        } else if (!is_call && !m->guard.empty()) {
          CheckGuard(word, {BaseName(m->guard)}, line);
        }
        return;
      }
      if (is_call) {
        CheckExcludesCall(word, fn_.cls, line);
        return;
      }
    }
    const MemberDecl* g = FileGlobal(word);
    if (g != nullptr && !is_call && !g->guard.empty()) {
      CheckGuard(word, {BaseName(g->guard)}, line);
    }
  }

  const Tables& tables_;
  const std::string& rel_path_;
  const std::vector<CstToken>& toks_;
  const std::vector<size_t>& line_starts_;
  const FunctionDecl& fn_;
  EdgeMap* edges_;
  std::vector<Diagnostic>* diags_;

  std::vector<Held> held_;
  std::map<std::string, ResolvedMutex> lock_vars_;
  std::map<std::string, std::string> local_mutexes_;
  std::set<std::string> local_callbacks_;
  std::set<std::tuple<std::string, int, std::string>> emitted_;
  int depth_ = 0;
  int next_group_ = 0;
};

/// Tarjan strongly-connected components over the observed edge graph.
class SccFinder {
 public:
  explicit SccFinder(const std::map<std::string, std::vector<std::string>>& adj)
      : adj_(adj) {}

  std::vector<std::vector<std::string>> Find() {
    for (const auto& kv : adj_) {
      if (index_.count(kv.first) == 0) Strong(kv.first);
    }
    return sccs_;
  }

 private:
  void Strong(const std::string& v) {
    index_[v] = low_[v] = next_++;
    stack_.push_back(v);
    on_stack_.insert(v);
    auto it = adj_.find(v);
    if (it != adj_.end()) {
      for (const std::string& w : it->second) {
        if (index_.count(w) == 0) {
          Strong(w);
          low_[v] = std::min(low_[v], low_[w]);
        } else if (on_stack_.count(w) != 0) {
          low_[v] = std::min(low_[v], index_[w]);
        }
      }
    }
    if (low_[v] == index_[v]) {
      std::vector<std::string> scc;
      std::string w;
      do {
        w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        scc.push_back(w);
      } while (w != v);
      if (scc.size() > 1) {
        std::sort(scc.begin(), scc.end());
        sccs_.push_back(std::move(scc));
      }
    }
  }

  const std::map<std::string, std::vector<std::string>>& adj_;
  std::map<std::string, int> index_;
  std::map<std::string, int> low_;
  std::vector<std::string> stack_;
  std::set<std::string> on_stack_;
  std::vector<std::vector<std::string>> sccs_;
  int next_ = 0;
};

}  // namespace

bool LockOrderManifest::Parse(const std::string& text, std::string* error) {
  edges_.clear();
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    size_t line_end = nl == std::string::npos ? text.size() : nl;
    std::string line = text.substr(pos, line_end - pos);
    pos = line_end + 1;
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    size_t arrow = trimmed.find("->");
    if (arrow == std::string_view::npos) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": expected '<held> -> <acquired>', got '" +
                 std::string(trimmed) + "'";
      }
      return false;
    }
    std::string from(TrimWhitespace(trimmed.substr(0, arrow)));
    std::string to(TrimWhitespace(trimmed.substr(arrow + 2)));
    if (from.empty() || to.empty() || from == to) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": malformed edge";
      }
      return false;
    }
    edges_.insert({from, to});
  }
  // The declared order must be a DAG: a cycle in the manifest would bless
  // the very deadlock the rule exists to prevent.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& e : edges_) adj[e.first].push_back(e.second);
  for (auto& kv : adj) std::sort(kv.second.begin(), kv.second.end());
  SccFinder finder(adj);
  std::vector<std::vector<std::string>> sccs = finder.Find();
  if (!sccs.empty()) {
    if (error != nullptr) {
      std::string names;
      for (const std::string& n : sccs.front()) {
        if (!names.empty()) names += ", ";
        names += n;
      }
      *error = "declared acquisition order contains a cycle among {" + names +
               "}";
    }
    return false;
  }
  return true;
}

bool LockOrderManifest::Allows(const std::string& from,
                               const std::string& to) const {
  return edges_.count({from, to}) != 0;
}

void ConcurrencyAnalyzer::AddFile(const std::string& rel_path,
                                  const LexedFile& lexed) {
  FileEntry entry;
  entry.rel_path = rel_path;
  entry.cst = ParseCst(lexed);
  entry.line_starts = lexed.line_starts;
  files_.push_back(std::move(entry));
}

std::vector<Diagnostic> ConcurrencyAnalyzer::Analyze(
    const LockOrderManifest* manifest) const {
  Tables tables;
  for (const FileEntry& f : files_) {
    for (const ClassDecl& cd : f.cst.classes) {
      auto& members = tables.class_members[cd.name];
      for (const MemberDecl& m : cd.members) {
        MemberDecl& slot = members[m.name];
        // Merge across declarations (header + cc see the same class).
        if (slot.name.empty()) slot = m;
        if (!m.guard.empty()) slot.guard = m.guard;
        slot.is_mutex = slot.is_mutex || m.is_mutex;
        slot.is_callback = slot.is_callback || m.is_callback;
      }
      auto& anns = tables.method_ann[cd.name];
      for (const MethodAnnotation& ma : cd.method_annotations) {
        MethodAnnotation& slot = anns[ma.name];
        slot.name = ma.name;
        for (const std::string& r : ma.requires_locks) {
          if (std::find(slot.requires_locks.begin(), slot.requires_locks.end(),
                        r) == slot.requires_locks.end()) {
            slot.requires_locks.push_back(r);
          }
        }
        for (const std::string& e : ma.excludes_locks) {
          if (std::find(slot.excludes_locks.begin(), slot.excludes_locks.end(),
                        e) == slot.excludes_locks.end()) {
            slot.excludes_locks.push_back(e);
          }
        }
      }
    }
    for (const MemberDecl& g : f.cst.globals) {
      tables.globals[f.rel_path][g.name] = g;
    }
  }
  for (const auto& ckv : tables.class_members) {
    for (const auto& mkv : ckv.second) {
      const MemberDecl& m = mkv.second;
      if (!m.guard.empty()) {
        tables.guards_by_member[m.name].insert(m.guard);
      } else {
        tables.unannotated_somewhere.insert(m.name);
      }
      if (m.is_mutex) tables.mutex_member_classes[m.name].insert(ckv.first);
      if (m.is_callback) {
        tables.callback_members.insert(m.name);
      } else {
        tables.noncallback_members.insert(m.name);
      }
    }
  }

  EdgeMap edges;
  std::vector<Diagnostic> diags;
  for (const FileEntry& f : files_) {
    for (const FunctionDecl& fn : f.cst.functions) {
      FunctionWalker walker(tables, f.rel_path, f.cst, f.line_starts, fn,
                            &edges, &diags);
      walker.Run();
    }
  }

  observed_edges_.clear();
  for (const auto& e : edges) {
    observed_edges_.push_back(e.first.first + " -> " + e.first.second);
  }

  // Deadlock cycles over the observed nested-acquisition graph.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& e : edges) adj[e.first.first].push_back(e.first.second);
  for (auto& kv : adj) std::sort(kv.second.begin(), kv.second.end());
  SccFinder finder(adj);
  for (const std::vector<std::string>& scc : finder.Find()) {
    std::set<std::string> in_scc(scc.begin(), scc.end());
    // Collect the witnesses of every edge inside the cycle, ordered by
    // their source location so the anchor is deterministic.
    std::vector<std::pair<const std::pair<std::string, std::string>*,
                          const Witness*>> cyc;
    for (const auto& e : edges) {
      if (in_scc.count(e.first.first) != 0 &&
          in_scc.count(e.first.second) != 0) {
        cyc.push_back({&e.first, &e.second});
      }
    }
    std::sort(cyc.begin(), cyc.end(),
              [](const auto& a, const auto& b) {
                if (a.second->file != b.second->file) {
                  return a.second->file < b.second->file;
                }
                if (a.second->line != b.second->line) {
                  return a.second->line < b.second->line;
                }
                return *a.first < *b.first;
              });
    if (cyc.empty()) continue;
    std::string names;
    for (const std::string& n : scc) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    std::string msg = "potential deadlock: lock acquisition cycle among {" +
                      names + "}";
    int chain_no = 0;
    for (const auto& c : cyc) {
      msg += "; chain " + std::to_string(++chain_no) + ": " + c.second->chain;
    }
    msg += " — establish one acquisition order (see tools/lock_order.txt)";
    diags.push_back(Diagnostic{cyc.front().second->file,
                               cyc.front().second->line, "lock-order", msg});
  }

  // Manifest conformance: every nested acquisition observed in src/ must be
  // declared. (Fixtures and tests exercise inversions on purpose.)
  if (manifest != nullptr) {
    for (const auto& e : edges) {
      const Witness& w = e.second;
      if (w.file.compare(0, 4, "src/") != 0) continue;
      if (manifest->Allows(e.first.first, e.first.second)) continue;
      diags.push_back(Diagnostic{
          w.file, w.line, "lock-order",
          "nested acquisition '" + e.first.first + " -> " + e.first.second +
              "' is not declared in tools/lock_order.txt; declare it (keeping "
              "the manifest acyclic) or restructure the locking"});
    }
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return diags;
}

}  // namespace lint
}  // namespace fieldswap
