#include "lint/cst.h"

#include <cctype>
#include <set>

namespace fieldswap {
namespace lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character operators, longest first within each leading char.
const char* const kMultiPunct[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  ".*", "##",
};

}  // namespace

std::vector<CstToken> TokenizeCode(const LexedFile& lexed) {
  const std::string& s = lexed.code;
  std::vector<CstToken> out;
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(s[j])) ++j;
      out.push_back({TokKind::kIdent, s.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(s[i + 1]))) {
      size_t j = i + 1;
      while (j < n) {
        char d = s[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (s[j - 1] == 'e' || s[j - 1] == 'E' || s[j - 1] == 'p' ||
                    s[j - 1] == 'P')) {
          ++j;  // exponent sign: 1e-6, 0x1p+3
        } else {
          break;
        }
      }
      out.push_back({TokKind::kNumber, s.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (c == '"') {
      // The lexer blanked string contents (except #include paths), so the
      // next '"' closes the literal.
      size_t j = s.find('"', i + 1);
      if (j == std::string::npos) j = n - 1;
      out.push_back({TokKind::kString, s.substr(i, j - i + 1), i});
      i = j + 1;
      continue;
    }
    if (c == '\'') {
      size_t j = s.find('\'', i + 1);
      if (j == std::string::npos) j = n - 1;
      out.push_back({TokKind::kString, s.substr(i, j - i + 1), i});
      i = j + 1;
      continue;
    }
    bool matched = false;
    for (const char* op : kMultiPunct) {
      size_t len = (op[2] == '\0') ? 2 : 3;
      if (s.compare(i, len, op) == 0) {
        out.push_back({TokKind::kPunct, std::string(op), i});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back({TokKind::kPunct, std::string(1, c), i});
      ++i;
    }
  }
  return out;
}

size_t MatchingClose(const std::vector<CstToken>& tokens, size_t open) {
  char o = tokens[open].text[0];
  char close = o == '(' ? ')' : (o == '[' ? ']' : '}');
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    const CstToken& t = tokens[i];
    if (t.kind != TokKind::kPunct || t.text.size() != 1) continue;
    char c = t.text[0];
    if (c == o) {
      ++depth;
    } else if (c == close) {
      if (--depth == 0) return i;
    }
  }
  return tokens.empty() ? 0 : tokens.size() - 1;
}

size_t SkipTemplateArgs(const std::vector<CstToken>& tokens, size_t i) {
  if (i >= tokens.size() || tokens[i].kind != TokKind::kPunct ||
      tokens[i].text != "<") {
    return i;
  }
  int depth = 0;
  for (size_t j = i; j < tokens.size(); ++j) {
    const CstToken& t = tokens[j];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return j + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t.text == "(") {
      j = MatchingClose(tokens, j);
    } else if (t.text == ";" || t.text == "{" || t.text == "}" ||
               t.text == "&&" || t.text == "||") {
      return i;  // statement boundary: it was a comparison after all
    }
  }
  return i;
}

namespace {

const std::set<std::string>& CppKeywords() {
  static const std::set<std::string> kw = {
      "alignas",  "alignof",  "auto",     "bool",      "break",    "case",
      "catch",    "char",     "class",    "const",     "constexpr",
      "consteval", "constinit", "continue", "decltype", "default",  "delete",
      "do",       "double",   "else",     "enum",      "explicit", "export",
      "extern",   "false",    "float",    "for",       "friend",   "goto",
      "if",       "inline",   "int",      "long",      "mutable",  "namespace",
      "new",      "noexcept", "nullptr",  "operator",  "private",  "protected",
      "public",   "register", "requires", "return",    "short",    "signed",
      "sizeof",   "static",   "struct",   "switch",    "template", "this",
      "thread_local", "throw", "true",    "try",       "typedef",  "typeid",
      "typename", "union",    "unsigned", "using",     "virtual",  "void",
      "volatile", "while",    "co_await", "co_return", "co_yield", "final",
      "override",
  };
  return kw;
}

bool IsAnnotationMacro(const std::string& name) {
  return name == "FS_GUARDED_BY" || name == "FS_REQUIRES" ||
         name == "FS_EXCLUDES";
}

const std::set<std::string>& MutexTypeHeads() {
  static const std::set<std::string> heads = {
      "mutex",       "recursive_mutex",     "timed_mutex",
      "shared_mutex", "shared_timed_mutex", "recursive_timed_mutex",
      "OrderedMutex",
  };
  return heads;
}

/// Recursive-descent recoverer over the token stream.
class CstParser {
 public:
  CstParser(const LexedFile& lexed, CstFile* out)
      : lexed_(lexed), toks_(out->tokens), out_(out) {}

  void Run() { ParseRegion(0, toks_.size(), /*cls=*/nullptr); }

 private:
  int LineOf(size_t idx) const {
    return lexed_.LineAt(toks_[idx].offset);
  }

  bool IsPunct(size_t i, const char* p) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kPunct &&
           toks_[i].text == p;
  }

  bool IsIdent(size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kIdent;
  }

  bool IsIdent(size_t i, const char* name) const {
    return IsIdent(i) && toks_[i].text == name;
  }

  size_t TrySkipTemplateArgs(size_t i) const {
    return SkipTemplateArgs(toks_, i);
  }

  /// Reads the arguments of an annotation macro at `i` (the macro ident).
  /// Returns index past the closing ')'. Each comma-separated argument is
  /// flattened to its token texts joined without spaces ("Cls::mu_").
  size_t ReadAnnotationArgs(size_t i, std::vector<std::string>* args) const {
    size_t open = i + 1;
    if (!IsPunct(open, "(")) return i + 1;
    size_t close = MatchingClose(toks_, open);
    std::string cur;
    for (size_t j = open + 1; j < close; ++j) {
      if (IsPunct(j, ",")) {
        if (!cur.empty()) args->push_back(cur);
        cur.clear();
      } else {
        cur += toks_[j].text;
      }
    }
    if (!cur.empty()) args->push_back(cur);
    return close + 1;
  }

  /// Parses declarations in [begin, end). `cls` is the enclosing class, or
  /// null at namespace scope.
  void ParseRegion(size_t begin, size_t end, ClassDecl* cls) {
    size_t i = begin;
    while (i < end && i < toks_.size()) {
      const CstToken& t = toks_[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == ";" || t.text == ":") {
          ++i;
          continue;
        }
        if (t.text == "{") {  // stray block (e.g. extern "C")
          size_t close = MatchingClose(toks_, i);
          ParseRegion(i + 1, close, cls);
          i = close + 1;
          continue;
        }
        if (t.text == "}") {
          ++i;
          continue;
        }
        if (t.text == "#") {  // preprocessor: skip the directive line
          int line = LineOf(i);
          size_t j = i + 1;
          while (j < end && LineOf(j) == line) ++j;
          i = j;
          continue;
        }
        ++i;
        continue;
      }
      if (t.kind != TokKind::kIdent) {
        ++i;
        continue;
      }
      const std::string& word = t.text;
      if (word == "template") {
        ++i;
        i = TrySkipTemplateArgs(i);
        continue;
      }
      if (word == "public" || word == "private" || word == "protected") {
        ++i;
        if (IsPunct(i, ":")) ++i;
        continue;
      }
      if (word == "using" || word == "typedef" || word == "friend" ||
          word == "static_assert" || word == "goto") {
        i = SkipToSemicolon(i, end);
        continue;
      }
      if (word == "namespace") {
        size_t j = i + 1;
        while (j < end && !IsPunct(j, "{") && !IsPunct(j, ";") &&
               !IsPunct(j, "=")) {
          ++j;
        }
        if (IsPunct(j, "{")) {
          size_t close = MatchingClose(toks_, j);
          ParseRegion(j + 1, close, cls);
          i = close + 1;
        } else {
          i = SkipToSemicolon(j, end);
        }
        continue;
      }
      if (word == "extern" && i + 1 < end &&
          toks_[i + 1].kind == TokKind::kString) {
        i += 2;  // extern "C" — fall through to whatever follows
        continue;
      }
      if (word == "enum") {
        i = SkipToSemicolon(i, end);
        continue;
      }
      if (word == "class" || word == "struct" || word == "union") {
        i = ParseClass(i, end);
        continue;
      }
      // Generic declaration (variable, member, function, ...).
      i = ParseDeclaration(i, end, cls);
    }
  }

  /// Skips to just past the next ';' at the current nesting level,
  /// skipping balanced (), [], {}.
  size_t SkipToSemicolon(size_t i, size_t end) const {
    while (i < end && i < toks_.size()) {
      if (IsPunct(i, ";")) return i + 1;
      if (IsPunct(i, "(") || IsPunct(i, "[") || IsPunct(i, "{")) {
        i = MatchingClose(toks_, i) + 1;
        continue;
      }
      ++i;
    }
    return i;
  }

  /// toks_[i] is `class` / `struct` / `union`. Parses (possibly) a class
  /// definition; returns the index to resume at.
  size_t ParseClass(size_t i, size_t end) {
    size_t j = i + 1;
    // Find the body '{' or a ';' (forward declaration), skipping template
    // arguments in base-class names.
    size_t brace = 0;
    while (j < end && j < toks_.size()) {
      if (IsPunct(j, ";")) return j + 1;
      if (IsPunct(j, "(")) {
        // `struct X foo(...)` — a declaration using an elaborated type;
        // re-parse generically from the type name.
        return SkipToSemicolon(j, end);
      }
      if (IsPunct(j, "<")) {
        size_t k = TrySkipTemplateArgs(j);
        if (k == j) ++j; else j = k;
        continue;
      }
      if (IsPunct(j, "{")) {
        brace = j;
        break;
      }
      if (IsPunct(j, "=")) {  // `class C = ...` in template params — bail
        return SkipToSemicolon(j, end);
      }
      ++j;
    }
    if (brace == 0) return j;
    // Name: last identifier before ':' (base clause) or before the brace,
    // skipping `final` and attribute-ish tokens.
    std::string name;
    for (size_t k = i + 1; k < brace; ++k) {
      if (IsPunct(k, ":")) break;
      if (IsIdent(k) && toks_[k].text != "final" &&
          toks_[k].text != "alignas") {
        name = toks_[k].text;
      }
    }
    size_t close = MatchingClose(toks_, brace);
    ClassDecl cd;
    cd.name = name;
    cd.line = LineOf(i);
    ParseRegion(brace + 1, close, &cd);
    if (!cd.name.empty()) out_->classes.push_back(std::move(cd));
    // `} trailing_declarator ;` — let the main loop skip it harmlessly.
    return close + 1;
  }

  /// Scans a generic declaration starting at `i`. Records member/global
  /// variables, method annotations, and function definitions (with body
  /// ranges). Returns the resume index.
  size_t ParseDeclaration(size_t i, size_t end, ClassDecl* cls) {
    size_t j = i;
    bool saw_eq = false;
    bool saw_arrow_after_params = false;
    size_t name_idx = 0;    // function name candidate (ident before params)
    size_t params_open = 0;  // '(' of the candidate parameter list
    size_t params_close = 0;
    while (j < end && j < toks_.size()) {
      const CstToken& t = toks_[j];
      if (t.kind == TokKind::kIdent) {
        if (t.text == "operator") {
          // Consume the operator symbol(s) so `operator()` / `operator<`
          // don't confuse the scan; treat as an unnamed function.
          size_t k = j + 1;
          while (k < end && toks_[k].kind == TokKind::kPunct &&
                 !IsPunct(k, "(") && !IsPunct(k, ";") && !IsPunct(k, "{")) {
            ++k;
          }
          if (IsPunct(k, "(") && params_open == 0) {
            // operator()(...) — the FIRST parens are the operator symbol
            // for call operators; peek: if next after close is '(',
            // that second group is the params.
            size_t close = MatchingClose(toks_, k);
            if (close == k + 1 && IsPunct(close + 1, "(")) {
              params_open = close + 1;
              params_close = MatchingClose(toks_, params_open);
              name_idx = j;
              j = params_close + 1;
              continue;
            }
            params_open = k;
            params_close = MatchingClose(toks_, k);
            name_idx = j;
            j = params_close + 1;
            continue;
          }
          j = k;
          continue;
        }
        ++j;
        continue;
      }
      if (t.kind != TokKind::kPunct) {
        ++j;
        continue;
      }
      const std::string& p = t.text;
      if (p == ";") {
        // Plain declaration.
        if (params_open != 0 && name_idx != 0) {
          RecordMethodAnnotation(i, j, name_idx, params_close, cls);
        } else {
          RecordVariable(i, j, cls);
        }
        return j + 1;
      }
      if (p == "}") return j;  // malformed; let caller see the close
      if (p == "=") {
        saw_eq = true;
        ++j;
        continue;
      }
      if (p == "(") {
        size_t close = MatchingClose(toks_, j);
        if (params_open == 0 && !saw_eq && j > i && IsIdent(j - 1) &&
            !IsAnnotationMacro(toks_[j - 1].text) &&
            CppKeywords().count(toks_[j - 1].text) == 0) {
          name_idx = j - 1;
          params_open = j;
          params_close = close;
        }
        j = close + 1;
        continue;
      }
      if (p == "[") {
        j = MatchingClose(toks_, j) + 1;
        continue;
      }
      if (p == "<") {
        size_t k = TrySkipTemplateArgs(j);
        if (k == j) ++j; else j = k;
        continue;
      }
      if (p == "->") {
        if (params_close != 0 && j > params_close) {
          saw_arrow_after_params = true;
        }
        ++j;
        continue;
      }
      if (p == ":") {
        // Constructor initializer list (or bit-field). If we have params,
        // treat as ctor-init: skip `name(args)` / `name{args}` pairs.
        if (params_close != 0 && j > params_close) {
          size_t k = j + 1;
          while (k < end && k < toks_.size()) {
            if (IsPunct(k, "(") || IsPunct(k, "{")) {
              // Init entries are `name(...)` / `name{...}`, so a '{' whose
              // predecessor is not an identifier (or template '>') must be
              // the function body.
              bool is_body =
                  IsPunct(k, "{") && !(IsIdent(k - 1) || IsPunct(k - 1, ">") ||
                                       IsPunct(k - 1, ">>"));
              if (is_body) break;
              k = MatchingClose(toks_, k) + 1;
              continue;
            }
            if (IsPunct(k, ",") || IsIdent(k) || IsPunct(k, "::") ||
                IsPunct(k, "<") || IsPunct(k, ">") || IsPunct(k, ">>") ||
                toks_[k].kind == TokKind::kNumber ||
                IsPunct(k, "...")) {
              if (IsPunct(k, "<")) {
                size_t m = TrySkipTemplateArgs(k);
                if (m != k) { k = m; continue; }
              }
              ++k;
              continue;
            }
            break;
          }
          j = k;
          continue;
        }
        ++j;
        continue;
      }
      if (p == "{") {
        bool initializer = saw_eq || params_open == 0;
        if (!initializer && j > 0 && IsIdent(j - 1) &&
            !saw_arrow_after_params && j - 1 > params_close &&
            !IsFunctionQualifier(toks_[j - 1].text)) {
          // `Type var(x), other{y};` — brace-init directly on a declarator,
          // not a function body (bodies follow ')', qualifiers, or '->T').
          initializer = true;
        }
        if (initializer) {
          j = MatchingClose(toks_, j) + 1;
          continue;
        }
        size_t close = MatchingClose(toks_, j);
        RecordFunction(i, j, close, name_idx, params_open, params_close, cls);
        return close + 1;
      }
      ++j;
    }
    return j;
  }

  static bool IsFunctionQualifier(const std::string& s) {
    return s == "const" || s == "noexcept" || s == "override" ||
           s == "final" || s == "mutable" || s == "try" || s == "volatile";
  }

  /// Member/global variable declaration in [begin, semi).
  void RecordVariable(size_t begin, size_t semi, ClassDecl* cls) {
    MemberDecl m;
    m.line = LineOf(begin);
    size_t name_idx = 0;
    // Find annotation + the declared name. The name is the identifier
    // right before FS_GUARDED_BY, or the last top-level identifier before
    // `=` / `{` / `[` / the semicolon.
    bool stop_names = false;
    std::string type_head;
    for (size_t k = begin; k < semi && k < toks_.size(); ++k) {
      const CstToken& t = toks_[k];
      if (t.kind == TokKind::kIdent) {
        if (t.text == "FS_GUARDED_BY") {
          std::vector<std::string> args;
          k = ReadAnnotationArgs(k, &args) - 1;
          if (!args.empty()) m.guard = args[0];
          stop_names = true;
          continue;
        }
        if (type_head.empty() && t.text != "std" && t.text != "util" &&
            CppKeywords().count(t.text) == 0) {
          type_head = t.text;
        }
        if (!stop_names) name_idx = k;
        continue;
      }
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") {
          size_t n = TrySkipTemplateArgs(k);
          if (n != k) k = n - 1;
          continue;
        }
        if (t.text == "(" || t.text == "[") {
          k = MatchingClose(toks_, k);
          continue;
        }
        if (t.text == "=" || t.text == "{") stop_names = true;
        continue;
      }
    }
    if (name_idx == 0 || !IsIdent(name_idx)) return;
    m.name = toks_[name_idx].text;
    if (CppKeywords().count(m.name) != 0) return;
    m.line = LineOf(name_idx);
    m.is_mutex = MutexTypeHeads().count(type_head) != 0;
    m.is_callback = type_head == "function" || type_head == "move_only_function";
    if (cls != nullptr) {
      cls->members.push_back(std::move(m));
    } else if (m.is_mutex || !m.guard.empty()) {
      out_->globals.push_back(std::move(m));
    }
  }

  /// In-class method declaration `ret name(params) quals FS_REQUIRES(m);` —
  /// keep the annotations so out-of-line definitions inherit them.
  void RecordMethodAnnotation(size_t begin, size_t semi, size_t name_idx,
                              size_t params_close, ClassDecl* cls) {
    (void)begin;
    if (cls == nullptr) return;
    MethodAnnotation ma;
    ma.name = toks_[name_idx].text;
    for (size_t k = params_close + 1; k < semi && k < toks_.size(); ++k) {
      if (IsIdent(k, "FS_REQUIRES")) {
        k = ReadAnnotationArgs(k, &ma.requires_locks) - 1;
      } else if (IsIdent(k, "FS_EXCLUDES")) {
        k = ReadAnnotationArgs(k, &ma.excludes_locks) - 1;
      }
    }
    if (!ma.requires_locks.empty() || !ma.excludes_locks.empty()) {
      cls->method_annotations.push_back(std::move(ma));
    }
  }

  void RecordFunction(size_t begin, size_t brace, size_t close,
                      size_t name_idx, size_t params_open,
                      size_t params_close, ClassDecl* cls) {
    FunctionDecl fn;
    if (name_idx == 0 || !IsIdent(name_idx)) {
      // Body with no recoverable name (operator, lambda-ish) — still walk
      // it if we know the class, under an anonymous name.
      fn.name = "(anonymous)";
    } else {
      fn.name = toks_[name_idx].text;
    }
    fn.line = name_idx != 0 ? LineOf(name_idx) : LineOf(begin);
    // Class qualifier: `Cls::name(` — possibly `Outer::Cls::name`.
    if (name_idx >= 2 && IsPunct(name_idx - 1, "::") &&
        IsIdent(name_idx - 2)) {
      fn.cls = toks_[name_idx - 2].text;
    } else if (cls != nullptr) {
      fn.cls = cls->name;
    }
    bool is_dtor = name_idx >= 1 && IsPunct(name_idx - 1, "~");
    fn.is_ctor_or_dtor = !fn.cls.empty() && (fn.name == fn.cls || is_dtor);
    // Annotations between ')' and '{' (before any ctor-init ':').
    for (size_t k = params_close + 1; k < brace; ++k) {
      if (IsIdent(k, "FS_REQUIRES")) {
        k = ReadAnnotationArgs(k, &fn.requires_locks) - 1;
      } else if (IsIdent(k, "FS_EXCLUDES")) {
        k = ReadAnnotationArgs(k, &fn.excludes_locks) - 1;
      }
    }
    // unique_lock<...>& parameters.
    for (size_t k = params_open + 1; k < params_close; ++k) {
      if (IsIdent(k, "unique_lock")) {
        size_t m = TrySkipTemplateArgs(k + 1);
        if (IsPunct(m, "&") && IsIdent(m + 1)) {
          fn.lock_params.push_back(toks_[m + 1].text);
        }
      }
    }
    fn.body_begin = brace;
    fn.body_end = close;
    out_->functions.push_back(std::move(fn));
  }

  const LexedFile& lexed_;
  const std::vector<CstToken>& toks_;
  CstFile* out_;
};

}  // namespace

CstFile ParseCst(const LexedFile& lexed) {
  CstFile out;
  out.tokens = TokenizeCode(lexed);
  CstParser parser(lexed, &out);
  parser.Run();
  return out;
}

}  // namespace lint
}  // namespace fieldswap
