#ifndef FIELDSWAP_DOC_DOCUMENT_H_
#define FIELDSWAP_DOC_DOCUMENT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "doc/bbox.h"
#include "doc/schema.h"

namespace fieldswap {

/// A single OCR word: its text and spatial position on the page.
struct Token {
  std::string text;
  BBox box;

  /// Index of the OCR line containing this token; -1 before line detection
  /// has run (see ocr/line_detector.h).
  int line = -1;

  friend bool operator==(const Token& a, const Token& b) = default;
};

/// An OCR line: a maximal group of tokens sharing a y-band and separated
/// from other groups by visual gaps (Sec. II-A1).
struct Line {
  std::vector<int> token_indices;  // in reading order (left to right)
  BBox box;
};

/// A labeled field instance: the ground-truth (or predicted) value span of
/// a schema field, as a run of consecutive token indices.
struct EntitySpan {
  std::string field;
  int first_token = 0;  // inclusive
  int num_tokens = 0;

  int end_token() const { return first_token + num_tokens; }

  bool Covers(int token_index) const {
    return token_index >= first_token && token_index < end_token();
  }

  friend bool operator==(const EntitySpan& a, const EntitySpan& b) = default;
};

/// A contiguous occurrence of a word sequence inside one OCR line.
struct PhraseMatch {
  int first_token = 0;  // inclusive
  int num_tokens = 0;
  int line = -1;
};

/// A visually rich document: page geometry, OCR tokens and lines, and
/// field annotations. This is the unit FieldSwap operates on — synthetic
/// documents are produced by editing tokens and relabeling spans in place.
class Document {
 public:
  Document() = default;
  Document(std::string id, std::string domain, double width, double height)
      : id_(std::move(id)),
        domain_(std::move(domain)),
        width_(width),
        height_(height) {}

  const std::string& id() const { return id_; }
  const std::string& domain() const { return domain_; }
  double width() const { return width_; }
  double height() const { return height_; }

  void set_id(std::string id) { id_ = std::move(id); }

  const std::vector<Token>& tokens() const { return tokens_; }
  std::vector<Token>& mutable_tokens() { return tokens_; }
  const Token& token(int i) const { return tokens_[static_cast<size_t>(i)]; }
  int num_tokens() const { return static_cast<int>(tokens_.size()); }

  const std::vector<Line>& lines() const { return lines_; }
  void set_lines(std::vector<Line> lines);

  const std::vector<EntitySpan>& annotations() const { return annotations_; }
  std::vector<EntitySpan>& mutable_annotations() { return annotations_; }

  /// Appends a token; returns its index.
  int AddToken(std::string text, const BBox& box);

  /// Appends a ground-truth annotation.
  void AddAnnotation(EntitySpan span);

  /// Space-joined text of a token range.
  std::string TextOfRange(int first_token, int num_tokens) const;

  /// Space-joined text of an annotation span.
  std::string TextOf(const EntitySpan& span) const {
    return TextOfRange(span.first_token, span.num_tokens);
  }

  /// Union bounding box of a token range (empty box for num_tokens == 0).
  BBox BoxOfRange(int first_token, int num_tokens) const;

  /// All annotations for a given field name.
  std::vector<EntitySpan> AnnotationsFor(std::string_view field) const;

  /// True if the document has at least one annotation for `field`.
  bool HasField(std::string_view field) const;

  /// Indices of the `t` tokens nearest to `center` by off-axis distance
  /// between bounding-box centers (Sec. II-A2), excluding any token indices
  /// listed in `exclude`. Results are sorted by increasing distance.
  std::vector<int> NeighborIndices(const BBox& center, int t,
                                   const std::vector<int>& exclude = {}) const;

  /// Finds every occurrence of `words` as consecutive tokens within a single
  /// OCR line, comparing token text case-insensitively. Requires line
  /// detection to have run (tokens have line ids).
  std::vector<PhraseMatch> FindPhrase(
      const std::vector<std::string>& words) const;

  /// Replaces the token range [first_token, first_token + old_count) with
  /// `new_texts`. New tokens inherit the replaced range's total bounding box,
  /// split proportionally to text length, and the replaced range's line id.
  /// Annotation and line indices are remapped. Annotations overlapping the
  /// replaced range are dropped (FieldSwap never replaces value tokens, so
  /// this only triggers defensively).
  void ReplaceTokenRange(int first_token, int old_count,
                         const std::vector<std::string>& new_texts);

  /// True iff all token texts equal `other`'s (geometry ignored). Used to
  /// implement the paper's discard-unchanged-synthetics rule (Sec. II-C).
  bool SameTokenTexts(const Document& other) const;

  std::string DebugString() const;

 private:
  void RemapAfterSplice(int first_token, int old_count, int new_count);

  std::string id_;
  std::string domain_;
  double width_ = 0;
  double height_ = 0;
  std::vector<Token> tokens_;
  std::vector<Line> lines_;
  std::vector<EntitySpan> annotations_;
};

}  // namespace fieldswap

#endif  // FIELDSWAP_DOC_DOCUMENT_H_
