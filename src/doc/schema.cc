#include "doc/schema.h"

#include "util/logging.h"

namespace fieldswap {

std::string_view FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kAddress:
      return "address";
    case FieldType::kDate:
      return "date";
    case FieldType::kMoney:
      return "money";
    case FieldType::kNumber:
      return "number";
    case FieldType::kString:
      return "string";
  }
  return "unknown";
}

std::optional<FieldType> ParseFieldType(std::string_view name) {
  for (FieldType type : kAllFieldTypes) {
    if (FieldTypeName(type) == name) return type;
  }
  return std::nullopt;
}

DomainSchema::DomainSchema(std::string domain, std::vector<FieldSpec> fields)
    : domain_(std::move(domain)), fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    auto [it, inserted] = index_.emplace(fields_[i].name, i);
    FS_CHECK(inserted) << "duplicate field name: " << fields_[i].name;
  }
}

const FieldSpec* DomainSchema::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &fields_[it->second];
}

int DomainSchema::IndexOf(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

FieldType DomainSchema::TypeOf(std::string_view name) const {
  const FieldSpec* spec = Find(name);
  return spec != nullptr ? spec->type : FieldType::kString;
}

std::vector<std::string> DomainSchema::FieldsOfType(FieldType type) const {
  std::vector<std::string> names;
  for (const FieldSpec& spec : fields_) {
    if (spec.type == type) names.push_back(spec.name);
  }
  return names;
}

std::map<FieldType, size_t> DomainSchema::CountByType() const {
  std::map<FieldType, size_t> counts;
  for (FieldType type : kAllFieldTypes) counts[type] = 0;
  for (const FieldSpec& spec : fields_) ++counts[spec.type];
  return counts;
}

}  // namespace fieldswap
