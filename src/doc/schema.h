#ifndef FIELDSWAP_DOC_SCHEMA_H_
#define FIELDSWAP_DOC_SCHEMA_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fieldswap {

/// Base types of schema fields (Sec. I). `kString` is the catch-all for
/// fields that are none of the other four.
enum class FieldType { kAddress, kDate, kMoney, kNumber, kString };

/// All base types, in the order used by the paper's Table II columns.
inline constexpr FieldType kAllFieldTypes[] = {
    FieldType::kAddress, FieldType::kDate, FieldType::kMoney,
    FieldType::kNumber, FieldType::kString};

/// Human-readable name ("address", "date", ...).
std::string_view FieldTypeName(FieldType type);

/// Inverse of FieldTypeName; nullopt for unknown names.
std::optional<FieldType> ParseFieldType(std::string_view name);

/// A single extractable field in a document schema.
struct FieldSpec {
  std::string name;
  FieldType type = FieldType::kString;

  /// Fraction of documents in the domain that contain this field. Drives
  /// the rare-field phenomena studied in Table IV. 1.0 = on every document.
  double frequency = 1.0;

  friend bool operator==(const FieldSpec& a, const FieldSpec& b) = default;
};

/// Schema for one document type (domain): the blueprint of fields to
/// extract, each with a base type (Sec. I).
class DomainSchema {
 public:
  DomainSchema() = default;
  DomainSchema(std::string domain, std::vector<FieldSpec> fields);

  const std::string& domain() const { return domain_; }
  const std::vector<FieldSpec>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }

  /// Field spec by name, or nullptr if absent.
  const FieldSpec* Find(std::string_view name) const;

  /// True if the schema declares a field with this name.
  bool Has(std::string_view name) const { return Find(name) != nullptr; }

  /// Index of a field in fields(), or -1 if absent.
  int IndexOf(std::string_view name) const;

  /// Base type of a named field; kString if the field is unknown.
  FieldType TypeOf(std::string_view name) const;

  /// Names of all fields with the given base type.
  std::vector<std::string> FieldsOfType(FieldType type) const;

  /// Count of fields per base type (Table II rows).
  std::map<FieldType, size_t> CountByType() const;

 private:
  std::string domain_;
  std::vector<FieldSpec> fields_;
  std::map<std::string, size_t, std::less<>> index_;
};

}  // namespace fieldswap

#endif  // FIELDSWAP_DOC_SCHEMA_H_
