#ifndef FIELDSWAP_DOC_CORPUS_H_
#define FIELDSWAP_DOC_CORPUS_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "doc/document.h"
#include "par/lock_validator.h"
#include "par/parallel.h"
#include "util/logging.h"
#include "util/thread_annotations.h"

namespace fieldswap {
namespace doc {

/// Streaming corpus access behind pluggable format drivers (ISSUE 10).
///
/// A corpus used to mean `std::vector<Document>`, which caps every
/// workload at RAM size and hard-codes one input shape. This header
/// replaces that with three small contracts:
///
///   CorpusReader  — sized random access: `Get(i)` materializes one
///                   document on demand. Thread-safe by contract, so the
///                   parallel layer can fan out over blocks of indices.
///   CorpusWriter  — append-only streaming sink with an explicit
///                   `Finish()` (native/JSONL writers land the file
///                   atomically via temp + rename there).
///   FormatDriver  — names a format, identifies files by magic bytes or
///                   extension, and opens readers / creates writers. The
///                   process-global FormatDriverRegistry hosts the
///                   drivers (native binary, JSONL, and — registered by
///                   src/synth — the lazy synthetic generator).
///
/// Determinism contract: `BlockedMapDocuments` is the one iteration
/// primitive every migrated consumer (trainer, eval, attacks, checksums)
/// builds on. Within a block the map runs on the src/par pool, one task
/// per document; consumption is serial in document order. Because each
/// task is a pure function of (document, index), results are bit-identical
/// at any FIELDSWAP_THREADS value — the same contract src/par documents —
/// while memory stays bounded by one block.

/// Why an operation failed, with enough context to act on: the message
/// carries the parse/IO reason and `line` the 1-based line (JSONL) or
/// record number (native) when one is known.
struct CorpusStatus {
  std::string message;  // empty == success
  long line = 0;        // 1-based; 0 when no position applies

  bool ok() const { return message.empty(); }

  /// "line 12: unterminated token array" or the bare message.
  std::string ToString() const;
};

/// Sized random access to documents. Implementations must make `Get`
/// safe for concurrent calls (the blocked iteration below relies on it).
class CorpusReader {
 public:
  virtual ~CorpusReader() = default;

  virtual size_t size() const = 0;

  /// Materializes document `index` into `*doc`. False with the reason in
  /// `*status` (when non-null) on decode/IO failure.
  virtual bool Get(size_t index, Document* doc,
                   CorpusStatus* status = nullptr) const = 0;

  /// Driver name this reader came from ("native", "jsonl", "synthetic",
  /// "vector", ...).
  virtual std::string format() const = 0;

  /// Human-readable storage details (header fields, byte counts) for
  /// `fieldswap_corpus info`; empty when the backing has none.
  virtual std::string storage_info() const { return ""; }

  /// File extent of record `index` for `fieldswap_corpus index`: absolute
  /// byte offset and stored size. False when the backing store has no
  /// per-record extents (vector, synthetic).
  virtual bool RecordSpan(size_t index, uint64_t* offset,
                          uint64_t* bytes) const {
    (void)index;
    (void)offset;
    (void)bytes;
    return false;
  }
};

/// Append-only streaming sink. Writers buffer at most one document; call
/// `Finish()` to land the output (file-backed writers write a temp
/// sibling and rename it into place there, so a reader never sees a
/// half-written corpus).
class CorpusWriter {
 public:
  virtual ~CorpusWriter() = default;

  /// False on failure (reason in status()); further Adds are no-ops.
  virtual bool Add(const Document& doc) = 0;

  /// Finalizes the output. Idempotent; false on failure.
  virtual bool Finish() = 0;

  virtual const CorpusStatus& status() const = 0;
  virtual std::string format() const = 0;
  virtual uint64_t docs_written() const = 0;
};

/// Reader over an in-memory vector the reader owns.
class VectorCorpusReader : public CorpusReader {
 public:
  explicit VectorCorpusReader(std::vector<Document> docs)
      : docs_(std::move(docs)) {}

  size_t size() const override { return docs_.size(); }
  bool Get(size_t index, Document* doc,
           CorpusStatus* status = nullptr) const override;
  std::string format() const override { return "vector"; }

 private:
  std::vector<Document> docs_;
};

/// Reader over a vector the caller keeps alive — the adapter that lets
/// every legacy `std::vector<Document>&` entry point delegate to the
/// reader-based core without copying.
class VectorCorpusReaderView : public CorpusReader {
 public:
  explicit VectorCorpusReaderView(const std::vector<Document>& docs)
      : docs_(&docs) {}

  size_t size() const override { return docs_->size(); }
  bool Get(size_t index, Document* doc,
           CorpusStatus* status = nullptr) const override;
  std::string format() const override { return "vector"; }

 private:
  const std::vector<Document>* docs_;
};

/// Writer that collects into an in-memory vector (the adapter for legacy
/// APIs that return `std::vector<Document>`).
class VectorCorpusWriter : public CorpusWriter {
 public:
  bool Add(const Document& doc) override;
  bool Finish() override { return true; }
  const CorpusStatus& status() const override { return status_; }
  std::string format() const override { return "vector"; }
  uint64_t docs_written() const override { return docs_.size(); }

  std::vector<Document>& docs() { return docs_; }
  std::vector<Document> TakeDocs() { return std::move(docs_); }

 private:
  std::vector<Document> docs_;
  CorpusStatus status_;
};

/// Prefix view over another reader (`fieldswap_corpus convert --limit`,
/// capped eval legs in bench/corpus_stream). The base must outlive it.
class CorpusSlice : public CorpusReader {
 public:
  CorpusSlice(const CorpusReader& base, size_t limit)
      : base_(&base), limit_(std::min(limit, base.size())) {}

  size_t size() const override { return limit_; }
  bool Get(size_t index, Document* doc,
           CorpusStatus* status = nullptr) const override {
    return index < limit_ && base_->Get(index, doc, status);
  }
  std::string format() const override { return base_->format(); }

 private:
  const CorpusReader* base_;
  size_t limit_;
};

/// One pluggable corpus format. Drivers are stateless and registered once
/// with the global registry; `Identify` gets the file's first bytes plus
/// its path so magic sniffing can fall back to the extension.
class FormatDriver {
 public:
  virtual ~FormatDriver() = default;

  virtual std::string name() const = 0;
  virtual std::string extension() const = 0;  // with the dot, e.g. ".fsc"
  virtual std::string description() const = 0;
  virtual bool can_write() const = 0;

  /// True when `magic` (up to kMagicProbeBytes leading bytes of the file)
  /// or the path's extension marks the file as this format.
  virtual bool Identify(std::string_view magic,
                        const std::string& path) const = 0;

  /// Opens a reader; null with the reason in `*status` on failure.
  virtual std::unique_ptr<CorpusReader> Open(const std::string& path,
                                             CorpusStatus* status) const = 0;

  /// Creates a streaming writer; null with the reason in `*status`.
  /// Default: the format is read-only.
  virtual std::unique_ptr<CorpusWriter> Create(const std::string& path,
                                               CorpusStatus* status) const;
};

/// Registry row for api::ListFormats / `--list-formats`.
struct FormatInfo {
  std::string name;
  std::string extension;
  std::string description;
  bool can_write = false;
};

/// Leading bytes handed to FormatDriver::Identify.
inline constexpr size_t kMagicProbeBytes = 64;

/// Process-global driver registry (GDAL-style register/identify/open).
/// The native and JSONL drivers self-register on first use; the synthetic
/// driver is registered by synth::RegisterSyntheticCorpusDriver() (called
/// from every api:: corpus entry point) because doc cannot depend on the
/// generator layer.
class FormatDriverRegistry {
 public:
  static FormatDriverRegistry& Global();

  /// Registers a driver. Idempotent by name: a duplicate registration is
  /// ignored (never swapped), so driver pointers handed out by Find or
  /// IdentifyFile stay valid for the life of the process.
  void Register(std::unique_ptr<FormatDriver> driver);

  /// Driver by name, or null. Registered drivers live for the process.
  const FormatDriver* Find(const std::string& name) const;

  /// Sniffs the file's leading bytes and asks each driver (registration
  /// order) to identify it; falls back to extension matching inside the
  /// drivers. Null with an actionable message — including the known
  /// format names — in `*status`.
  const FormatDriver* IdentifyFile(const std::string& path,
                                   CorpusStatus* status) const;

  /// Registration-order metadata for every driver.
  std::vector<FormatInfo> ListFormats() const;

 private:
  FormatDriverRegistry();

  mutable util::OrderedMutex mu_{"FormatDriverRegistry::mu_"};
  std::vector<std::unique_ptr<FormatDriver>> drivers_ FS_GUARDED_BY(mu_);
};

/// Opens `path` through the registry. Empty `format` auto-identifies by
/// magic/extension; otherwise the named driver is used. Null with the
/// reason (unknown format names list the registered ones) in `*status`.
std::unique_ptr<CorpusReader> OpenCorpus(const std::string& path,
                                         const std::string& format = "",
                                         CorpusStatus* status = nullptr);

/// Creates a streaming writer at `path`. Empty `format` picks the driver
/// whose extension matches, defaulting to the native format.
std::unique_ptr<CorpusWriter> CreateCorpus(const std::string& path,
                                           const std::string& format = "",
                                           CorpusStatus* status = nullptr);

/// The native binary Document codec (raw f64 geometry, so write->read->
/// write is byte-identical). Exposed for tests; the native driver is the
/// normal consumer.
void EncodeDocumentBinary(const Document& doc, std::string* out);

/// Bounds-checked decode of EncodeDocumentBinary output. Hostile input
/// yields false with a reason, never UB.
bool DecodeDocumentBinary(std::string_view bytes, Document* doc,
                          CorpusStatus* status = nullptr);

/// `Get` that treats failure as a program error. Readers validate their
/// backing at open, so a mid-iteration decode failure is corruption the
/// caller cannot meaningfully continue past.
Document ReadDocumentOrDie(const CorpusReader& reader, size_t index);

/// Block size that keeps streaming memory in the low MB at typical
/// document sizes while giving the pool enough per-block parallelism.
inline constexpr size_t kDefaultStreamBlock = 256;

/// The deterministic sharded-iteration primitive. Streams `reader` in
/// blocks of `block_size`: within a block, `map(doc, index)` runs on the
/// src/par pool (one pure task per document); then `consume(index,
/// result)` runs serially in document order before the next block starts.
/// At most one block of documents + results is live, and the consume
/// sequence is bit-identical at any FIELDSWAP_THREADS — including 1.
template <typename Map, typename Consume>
void BlockedMapDocuments(const CorpusReader& reader, size_t block_size,
                         Map&& map, Consume&& consume) {
  const size_t n = reader.size();
  if (block_size == 0) block_size = kDefaultStreamBlock;
  for (size_t base = 0; base < n; base += block_size) {
    const size_t count = std::min(block_size, n - base);
    auto results = par::ParallelMap(count, [&](size_t i) {
      Document doc = ReadDocumentOrDie(reader, base + i);
      return map(doc, base + i);
    });
    for (size_t i = 0; i < count; ++i) {
      consume(base + i, results[i]);
    }
  }
}

/// Serial in-order visit (convert loops, exporters).
template <typename Fn>
void ForEachDocument(const CorpusReader& reader, Fn&& fn) {
  for (size_t i = 0; i < reader.size(); ++i) {
    Document doc = ReadDocumentOrDie(reader, i);
    fn(doc, i);
  }
}

/// Order-preserving FNV fold over DocumentToJson of every document — the
/// same value the pre-streaming vector checksum produced (golden.json and
/// examples/corpus_checksum pin it). JSON rendering fans out per block;
/// the fold itself is serial in document order, so the value is identical
/// at any thread count.
uint64_t CorpusChecksum(const CorpusReader& reader,
                        size_t block_size = kDefaultStreamBlock);

/// Materializes the whole corpus — the bridge back to vector-based call
/// sites. Deliberately unbounded; prefer BlockedMapDocuments for large
/// corpora.
std::vector<Document> ReadAllDocuments(const CorpusReader& reader);

/// Rough in-memory footprint of a materialized document (strings, tokens,
/// lines, annotations). bench/corpus_stream sums this over a streamed
/// corpus to estimate the materialized-vector RSS baseline its bounded-
/// memory assertion compares against.
uint64_t ApproxMemoryBytes(const Document& doc);

}  // namespace doc
}  // namespace fieldswap

#endif  // FIELDSWAP_DOC_CORPUS_H_
