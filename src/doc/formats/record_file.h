#ifndef FIELDSWAP_DOC_FORMATS_RECORD_FILE_H_
#define FIELDSWAP_DOC_FORMATS_RECORD_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fieldswap {
namespace doc {
namespace formats {

/// The native corpus container (ISSUE 10): a length-prefixed record file
/// with an FNV-checksummed body and a random-access offset index, built on
/// the same hostile-input discipline as serve/flat — every offset and size
/// is validated before use, so a truncated or bit-flipped file yields a
/// clean error, never UB (tests/corpus_test.cc holds this under
/// ASan/UBSan). This layer stores opaque byte records; the Document codec
/// lives one layer up in doc/corpus.{h,cc}.
///
/// Layout (all integers little-endian, the only byte order this repo
/// targets):
///
///   [0]  u32 magic            'FSCR' (0x52435346)
///   [4]  u32 format_version   1 — readers reject versions they don't know
///   [8]  u64 file_size        total bytes; must equal the on-disk size
///   [16] u64 checksum         FNV-1a over bytes [kRecordHeaderSize, size)
///   [24] u64 record_count
///   [32] u64 index_offset     record_count x u64 absolute record offsets
///   [40] u64 index_size       bytes (== record_count * 8)
///   [48] u64 records_offset   first record byte (== kRecordHeaderSize)
///   [56] u64 records_size     bytes of the record region
///
/// Records are packed back to back: [u32 payload_len][payload bytes]. The
/// index makes random access O(1) and lets the reader derive every
/// record's extent from consecutive offsets without touching the record
/// bytes at open.
///
/// Writes are streaming and atomic: records go to a temp sibling as they
/// arrive (the checksum accumulates incrementally, only the 8-byte-per-
/// record index is buffered in memory), then Finish() appends the index,
/// patches the header, and renames the temp into place — a concurrent
/// reader opens either the old complete file or the new one, never a torn
/// write.

inline constexpr uint32_t kRecordMagic = 0x52435346;  // 'FSCR'
inline constexpr uint32_t kRecordFormatVersion = 1;
inline constexpr size_t kRecordHeaderSize = 64;

/// FNV-1a 64-bit over a byte span, exposed for tests that corrupt files
/// and assert rejection. Matches serve/flat's checksum primitive.
uint64_t RecordFnv1a(const uint8_t* data, size_t size);

/// Streams records into `<path>.tmp`; Finish() lands the file atomically.
class RecordFileWriter {
 public:
  /// Opens the temp sibling for writing. Null with the reason in `*error`
  /// on I/O failure.
  static std::unique_ptr<RecordFileWriter> Create(const std::string& path,
                                                  std::string* error);

  /// Removes the temp file if Finish() was never reached.
  ~RecordFileWriter();
  RecordFileWriter(const RecordFileWriter&) = delete;
  RecordFileWriter& operator=(const RecordFileWriter&) = delete;

  /// Appends one record. False on I/O failure (reason in error()); further
  /// calls after a failure are no-ops.
  bool Append(std::string_view payload);

  /// Writes index + header and renames the temp into place. Idempotent;
  /// false on failure with the reason in error().
  bool Finish();

  const std::string& error() const { return error_; }
  uint64_t record_count() const { return offsets_.size(); }

  /// Bytes of the record region written so far (header/index excluded).
  uint64_t payload_bytes_written() const { return cursor_ - kRecordHeaderSize; }

 private:
  RecordFileWriter(std::string path, std::string tmp_path, int fd)
      : path_(std::move(path)), tmp_path_(std::move(tmp_path)), fd_(fd) {}

  bool WriteRaw(const void* data, size_t size);
  bool Fail(const std::string& reason);

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  uint64_t cursor_ = kRecordHeaderSize;  // next write position
  uint64_t checksum_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::vector<uint64_t> offsets_;
  std::string error_;
  bool finished_ = false;
};

/// Random-access reader. Open() validates the header, the body checksum
/// (one streaming pass), and the full index (monotone, in-bounds,
/// gap-free); Read() is stateless pread, safe to call concurrently from
/// the parallel pool.
class RecordFileReader {
 public:
  /// Null with the reason in `*error` on any validation failure.
  static std::unique_ptr<RecordFileReader> Open(const std::string& path,
                                                std::string* error);

  ~RecordFileReader();
  RecordFileReader(const RecordFileReader&) = delete;
  RecordFileReader& operator=(const RecordFileReader&) = delete;

  size_t size() const { return offsets_.size(); }
  uint64_t file_size() const { return file_size_; }
  uint64_t checksum() const { return checksum_; }
  uint64_t index_offset() const { return index_offset_; }

  /// Absolute offset / payload length of record `i` (i < size()).
  uint64_t offset(size_t i) const { return offsets_[i]; }
  uint64_t payload_length(size_t i) const;

  /// Reads record `i` into `*payload`. False with the reason in `*error`
  /// when the stored length prefix disagrees with the index or the pread
  /// fails. Thread-safe.
  bool Read(size_t i, std::string* payload, std::string* error) const;

 private:
  RecordFileReader(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  uint64_t file_size_ = 0;
  uint64_t checksum_ = 0;
  uint64_t index_offset_ = 0;
  std::vector<uint64_t> offsets_;
};

}  // namespace formats
}  // namespace doc
}  // namespace fieldswap

#endif  // FIELDSWAP_DOC_FORMATS_RECORD_FILE_H_
