#include "doc/formats/record_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace fieldswap {
namespace doc {
namespace formats {

namespace {

// Header field offsets (bytes). Fixed-size header with room to grow
// (kRecordHeaderSize = 64; unused tail bytes are zero).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffFileSize = 8;
constexpr size_t kOffChecksum = 16;
constexpr size_t kOffRecordCount = 24;
constexpr size_t kOffIndexOffset = 32;
constexpr size_t kOffIndexSize = 40;
constexpr size_t kOffRecordsOffset = 48;
constexpr size_t kOffRecordsSize = 56;

constexpr size_t kChecksumChunk = 1 << 20;  // streaming-verify buffer

void PutU32(uint8_t* buf, size_t offset, uint32_t v) {
  std::memcpy(buf + offset, &v, sizeof(v));
}

void PutU64(uint8_t* buf, size_t offset, uint64_t v) {
  std::memcpy(buf + offset, &v, sizeof(v));
}

uint64_t Fnv1aAccumulate(uint64_t hash, const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Full pread (retries short reads). False on error or EOF-short result.
bool PreadAll(int fd, void* out, size_t size, uint64_t offset) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (size > 0) {
    ssize_t n = pread(fd, dst, size, static_cast<off_t>(offset));
    if (n <= 0) return false;
    dst += n;
    size -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return true;
}

bool FailOpen(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

uint64_t RecordFnv1a(const uint8_t* data, size_t size) {
  return Fnv1aAccumulate(0xcbf29ce484222325ULL, data, size);
}

// ------------------------------------------------------------- writer --

std::unique_ptr<RecordFileWriter> RecordFileWriter::Create(
    const std::string& path, std::string* error) {
  std::string tmp = path + ".tmp";
  int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    FailOpen(error, "cannot open " + tmp + " for writing");
    return nullptr;
  }
  std::unique_ptr<RecordFileWriter> writer(
      new RecordFileWriter(path, std::move(tmp), fd));
  // Reserve the header region; it is patched in Finish() once the sizes
  // and checksum are known.
  uint8_t zeros[kRecordHeaderSize] = {0};
  writer->cursor_ = 0;
  if (!writer->WriteRaw(zeros, sizeof(zeros))) {
    if (error != nullptr) *error = writer->error_;
    return nullptr;
  }
  return writer;
}

RecordFileWriter::~RecordFileWriter() {
  if (fd_ >= 0) close(fd_);
  if (!finished_) std::remove(tmp_path_.c_str());
}

bool RecordFileWriter::Fail(const std::string& reason) {
  if (error_.empty()) error_ = reason;
  return false;
}

bool RecordFileWriter::WriteRaw(const void* data, size_t size) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  uint64_t offset = cursor_;
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = pwrite(fd_, src, remaining, static_cast<off_t>(offset));
    if (n <= 0) return Fail("short write to " + tmp_path_);
    src += n;
    remaining -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  cursor_ += size;
  return true;
}

bool RecordFileWriter::Append(std::string_view payload) {
  if (!error_.empty()) return false;
  if (finished_) return Fail("Append after Finish on " + path_);
  if (payload.size() > UINT32_MAX) {
    return Fail("record too large for the u32 length prefix");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  offsets_.push_back(cursor_);
  uint8_t prefix[sizeof(len)];
  std::memcpy(prefix, &len, sizeof(len));
  if (!WriteRaw(prefix, sizeof(prefix))) return false;
  if (!payload.empty() && !WriteRaw(payload.data(), payload.size())) {
    return false;
  }
  checksum_ = Fnv1aAccumulate(checksum_, prefix, sizeof(prefix));
  checksum_ = Fnv1aAccumulate(
      checksum_, reinterpret_cast<const uint8_t*>(payload.data()),
      payload.size());
  return true;
}

bool RecordFileWriter::Finish() {
  if (finished_) return error_.empty();
  if (!error_.empty()) return false;

  const uint64_t index_offset = cursor_;
  const uint64_t records_size = index_offset - kRecordHeaderSize;
  const uint64_t index_size = offsets_.size() * sizeof(uint64_t);
  if (!offsets_.empty()) {
    const uint8_t* index_bytes =
        reinterpret_cast<const uint8_t*>(offsets_.data());
    if (!WriteRaw(index_bytes, index_size)) return false;
    checksum_ = Fnv1aAccumulate(checksum_, index_bytes, index_size);
  }

  uint8_t header[kRecordHeaderSize] = {0};
  PutU32(header, kOffMagic, kRecordMagic);
  PutU32(header, kOffVersion, kRecordFormatVersion);
  PutU64(header, kOffFileSize, cursor_);
  PutU64(header, kOffChecksum, checksum_);
  PutU64(header, kOffRecordCount, offsets_.size());
  PutU64(header, kOffIndexOffset, index_offset);
  PutU64(header, kOffIndexSize, index_size);
  PutU64(header, kOffRecordsOffset, kRecordHeaderSize);
  PutU64(header, kOffRecordsSize, records_size);
  const uint64_t end_cursor = cursor_;
  cursor_ = 0;
  bool ok = WriteRaw(header, sizeof(header));
  cursor_ = end_cursor;
  if (!ok) return false;

  if (fsync(fd_) != 0) return Fail("fsync failed for " + tmp_path_);
  close(fd_);
  fd_ = -1;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Fail("cannot rename " + tmp_path_ + " into place");
  }
  finished_ = true;
  return true;
}

// ------------------------------------------------------------- reader --

RecordFileReader::~RecordFileReader() {
  if (fd_ >= 0) close(fd_);
}

uint64_t RecordFileReader::payload_length(size_t i) const {
  const uint64_t next =
      i + 1 < offsets_.size() ? offsets_[i + 1] : index_offset_;
  return next - offsets_[i] - sizeof(uint32_t);
}

std::unique_ptr<RecordFileReader> RecordFileReader::Open(
    const std::string& path, std::string* error) {
  auto fail = [error](const std::string& reason) {
    if (error != nullptr) *error = reason;
    return nullptr;
  };

  int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return fail("cannot open " + path);
  std::unique_ptr<RecordFileReader> reader(new RecordFileReader(path, fd));

  struct stat st;
  if (fstat(fd, &st) != 0) return fail("cannot stat " + path);
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kRecordHeaderSize) {
    return fail(path + ": too small for a corpus header (" +
                std::to_string(size) + " bytes)");
  }

  uint8_t header[kRecordHeaderSize];
  if (!PreadAll(fd, header, sizeof(header), 0)) {
    return fail(path + ": cannot read header");
  }
  uint32_t magic = 0, version = 0;
  uint64_t file_size = 0, checksum = 0, record_count = 0, index_offset = 0,
           index_size = 0, records_offset = 0, records_size = 0;
  std::memcpy(&magic, header + kOffMagic, sizeof(magic));
  std::memcpy(&version, header + kOffVersion, sizeof(version));
  std::memcpy(&file_size, header + kOffFileSize, sizeof(file_size));
  std::memcpy(&checksum, header + kOffChecksum, sizeof(checksum));
  std::memcpy(&record_count, header + kOffRecordCount, sizeof(record_count));
  std::memcpy(&index_offset, header + kOffIndexOffset, sizeof(index_offset));
  std::memcpy(&index_size, header + kOffIndexSize, sizeof(index_size));
  std::memcpy(&records_offset, header + kOffRecordsOffset,
              sizeof(records_offset));
  std::memcpy(&records_size, header + kOffRecordsSize, sizeof(records_size));

  if (magic != kRecordMagic) {
    return fail(path + ": not a native corpus file (bad magic)");
  }
  if (version != kRecordFormatVersion) {
    return fail(path + ": corpus format version " + std::to_string(version) +
                " unsupported (reader knows " +
                std::to_string(kRecordFormatVersion) + ")");
  }
  if (file_size != size) {
    return fail(path + ": header claims " + std::to_string(file_size) +
                " bytes but the file has " + std::to_string(size));
  }
  if (records_offset != kRecordHeaderSize) {
    return fail(path + ": record region out of place");
  }
  // All u64 header fields are hostile until proven consistent; every
  // comparison is phrased to avoid overflow.
  if (index_offset < kRecordHeaderSize || index_offset > size ||
      index_size > size - index_offset ||
      index_offset + index_size != size) {
    return fail(path + ": index out of bounds");
  }
  if (record_count > index_size / sizeof(uint64_t) ||
      record_count * sizeof(uint64_t) != index_size) {
    return fail(path + ": index size disagrees with record count");
  }
  if (records_size != index_offset - kRecordHeaderSize) {
    return fail(path + ": record region size disagrees with index offset");
  }

  // One streaming pass verifies the body checksum; a corrupted byte
  // anywhere in records or index is caught here, before any record is
  // trusted.
  {
    std::vector<uint8_t> chunk(kChecksumChunk);
    uint64_t hash = 0xcbf29ce484222325ULL;
    uint64_t pos = kRecordHeaderSize;
    while (pos < size) {
      const size_t want =
          static_cast<size_t>(std::min<uint64_t>(chunk.size(), size - pos));
      if (!PreadAll(fd, chunk.data(), want, pos)) {
        return fail(path + ": short read while verifying checksum");
      }
      hash = Fnv1aAccumulate(hash, chunk.data(), want);
      pos += want;
    }
    if (hash != checksum) {
      return fail(path + ": checksum mismatch (corrupted or torn file)");
    }
  }

  // Load and validate the index: offsets must be strictly increasing,
  // gap-free (each record starts where the previous one ended), and leave
  // room for every length prefix. With that established, record extents
  // derive from consecutive offsets and Read() needs no per-open scan of
  // the record bytes.
  reader->offsets_.resize(record_count);
  if (record_count > 0 &&
      !PreadAll(fd, reader->offsets_.data(), index_size, index_offset)) {
    return fail(path + ": cannot read index");
  }
  uint64_t expected = kRecordHeaderSize;
  for (uint64_t i = 0; i < record_count; ++i) {
    const uint64_t off = reader->offsets_[i];
    if (off != expected) {
      return fail(path + ": index entry " + std::to_string(i) +
                  " breaks the record chain");
    }
    const uint64_t next =
        i + 1 < record_count ? reader->offsets_[i + 1] : index_offset;
    if (next < off + sizeof(uint32_t) || next > index_offset) {
      return fail(path + ": index entry " + std::to_string(i) +
                  " out of bounds");
    }
    expected = next;
  }
  if (expected != index_offset) {
    return fail(path + ": record region has trailing bytes no index entry "
                       "covers");
  }

  reader->file_size_ = size;
  reader->checksum_ = checksum;
  reader->index_offset_ = index_offset;
  return reader;
}

bool RecordFileReader::Read(size_t i, std::string* payload,
                            std::string* error) const {
  if (i >= offsets_.size()) {
    return FailOpen(error, path_ + ": record index out of range");
  }
  const uint64_t off = offsets_[i];
  const uint64_t payload_len = payload_length(i);
  std::string buf(static_cast<size_t>(payload_len) + sizeof(uint32_t), '\0');
  if (!PreadAll(fd_, buf.data(), buf.size(), off)) {
    return FailOpen(error, path_ + ": short read at record " +
                               std::to_string(i));
  }
  uint32_t stored_len = 0;
  std::memcpy(&stored_len, buf.data(), sizeof(stored_len));
  if (stored_len != payload_len) {
    return FailOpen(error, path_ + ": record " + std::to_string(i) +
                               " length prefix disagrees with the index");
  }
  payload->assign(buf.data() + sizeof(uint32_t),
                  static_cast<size_t>(payload_len));
  return true;
}

}  // namespace formats
}  // namespace doc
}  // namespace fieldswap
