#ifndef FIELDSWAP_DOC_SPAN_MATCH_H_
#define FIELDSWAP_DOC_SPAN_MATCH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "doc/document.h"

namespace fieldswap {

/// Span-level true/false positive and false negative counts.
struct SpanMatchCounts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;

  SpanMatchCounts& operator+=(const SpanMatchCounts& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
    return *this;
  }
};

/// One-to-one greedy matching of predicted spans against gold spans: a
/// predicted span is a true positive iff an *unmatched* gold span has the
/// same field and the exact same token range, and each gold span can
/// satisfy at most one prediction. Duplicate predictions of one gold span
/// therefore count one tp + (k-1) fp, and duplicated gold spans need
/// duplicated predictions — `std::find`-style set membership would count
/// both sides multiple times and inflate F1. This is the single scoring
/// implementation shared by trainer validation (MicroF1OnDocs) and the
/// eval harness (AccumulateSpanScores).
SpanMatchCounts MatchSpans(const std::vector<EntitySpan>& gold,
                           const std::vector<EntitySpan>& predicted);

/// Same matching, accumulated per field name into `counts`.
void MatchSpansPerField(const std::vector<EntitySpan>& gold,
                        const std::vector<EntitySpan>& predicted,
                        std::map<std::string, SpanMatchCounts>& counts);

/// F1 = 2tp / (2tp + fp + fn); 0 when the denominator is 0.
double F1FromCounts(const SpanMatchCounts& counts);

}  // namespace fieldswap

#endif  // FIELDSWAP_DOC_SPAN_MATCH_H_
