#include "doc/span_match.h"

namespace fieldswap {

void MatchSpansPerField(const std::vector<EntitySpan>& gold,
                        const std::vector<EntitySpan>& predicted,
                        std::map<std::string, SpanMatchCounts>& counts) {
  std::vector<bool> gold_matched(gold.size(), false);
  for (const EntitySpan& p : predicted) {
    bool hit = false;
    for (size_t g = 0; g < gold.size(); ++g) {
      if (!gold_matched[g] && gold[g] == p) {
        gold_matched[g] = true;
        hit = true;
        break;
      }
    }
    if (hit) {
      ++counts[p.field].tp;
    } else {
      ++counts[p.field].fp;
    }
  }
  for (size_t g = 0; g < gold.size(); ++g) {
    if (!gold_matched[g]) ++counts[gold[g].field].fn;
  }
}

SpanMatchCounts MatchSpans(const std::vector<EntitySpan>& gold,
                           const std::vector<EntitySpan>& predicted) {
  std::map<std::string, SpanMatchCounts> per_field;
  MatchSpansPerField(gold, predicted, per_field);
  SpanMatchCounts total;
  for (const auto& [field, counts] : per_field) total += counts;
  return total;
}

double F1FromCounts(const SpanMatchCounts& counts) {
  double denom = 2.0 * static_cast<double>(counts.tp) +
                 static_cast<double>(counts.fp) +
                 static_cast<double>(counts.fn);
  return denom == 0 ? 0.0 : 2.0 * static_cast<double>(counts.tp) / denom;
}

}  // namespace fieldswap
