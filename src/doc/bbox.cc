#include "doc/bbox.h"

#include <cmath>
#include <cstdio>

namespace fieldswap {

std::string BBox::DebugString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%.1f,%.1f %.1fx%.1f]", x_min, y_min,
                Width(), Height());
  return buf;
}

double OffAxisDistance(double ax, double ay, double bx, double by) {
  return std::fabs(ax - bx) * std::fabs(ay - by);
}

double OffAxisDistance(const BBox& a, const BBox& b) {
  return OffAxisDistance(a.CenterX(), a.CenterY(), b.CenterX(), b.CenterY());
}

}  // namespace fieldswap
