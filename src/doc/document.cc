#include "doc/document.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace fieldswap {

void Document::set_lines(std::vector<Line> lines) {
  lines_ = std::move(lines);
  for (size_t li = 0; li < lines_.size(); ++li) {
    for (int ti : lines_[li].token_indices) {
      FS_CHECK_GE(ti, 0);
      FS_CHECK_LT(ti, num_tokens());
      tokens_[static_cast<size_t>(ti)].line = static_cast<int>(li);
    }
  }
}

int Document::AddToken(std::string text, const BBox& box) {
  tokens_.push_back(Token{std::move(text), box, /*line=*/-1});
  return num_tokens() - 1;
}

void Document::AddAnnotation(EntitySpan span) {
  FS_CHECK_GE(span.first_token, 0);
  FS_CHECK_LE(span.end_token(), num_tokens());
  FS_CHECK_GT(span.num_tokens, 0);
  annotations_.push_back(std::move(span));
}

std::string Document::TextOfRange(int first_token, int num) const {
  std::string out;
  for (int i = first_token; i < first_token + num; ++i) {
    if (i > first_token) out.push_back(' ');
    out += token(i).text;
  }
  return out;
}

BBox Document::BoxOfRange(int first_token, int num) const {
  if (num <= 0) return BBox{};
  BBox box = token(first_token).box;
  for (int i = first_token + 1; i < first_token + num; ++i) {
    box = box.Union(token(i).box);
  }
  return box;
}

std::vector<EntitySpan> Document::AnnotationsFor(std::string_view field) const {
  std::vector<EntitySpan> result;
  for (const EntitySpan& span : annotations_) {
    if (span.field == field) result.push_back(span);
  }
  return result;
}

bool Document::HasField(std::string_view field) const {
  for (const EntitySpan& span : annotations_) {
    if (span.field == field) return true;
  }
  return false;
}

std::vector<int> Document::NeighborIndices(
    const BBox& center, int t, const std::vector<int>& exclude) const {
  std::vector<std::pair<double, int>> scored;
  scored.reserve(tokens_.size());
  for (int i = 0; i < num_tokens(); ++i) {
    if (std::find(exclude.begin(), exclude.end(), i) != exclude.end()) {
      continue;
    }
    scored.emplace_back(OffAxisDistance(center, token(i).box), i);
  }
  size_t keep = std::min(scored.size(), static_cast<size_t>(std::max(t, 0)));
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(keep),
                    scored.end());
  std::vector<int> result;
  result.reserve(keep);
  for (size_t i = 0; i < keep; ++i) result.push_back(scored[i].second);
  return result;
}

std::vector<PhraseMatch> Document::FindPhrase(
    const std::vector<std::string>& words) const {
  std::vector<PhraseMatch> matches;
  if (words.empty()) return matches;
  int n = static_cast<int>(words.size());
  for (int start = 0; start + n <= num_tokens(); ++start) {
    bool ok = true;
    int line_id = token(start).line;
    for (int j = 0; j < n; ++j) {
      const Token& tok = token(start + j);
      // Punctuation-tolerant match: template styling may attach ":" or
      // parentheses to label tokens, which inferred key phrases have had
      // stripped (Sec. II-A3).
      if (tok.line != line_id ||
          !EqualsIgnoreCase(TrimPunctuation(tok.text),
                            TrimPunctuation(words[j]))) {
        ok = false;
        break;
      }
    }
    // Tokens must also be consecutive within the line, not merely share it.
    if (ok && line_id >= 0) {
      const Line& line = lines_[static_cast<size_t>(line_id)];
      auto it = std::find(line.token_indices.begin(), line.token_indices.end(),
                          start);
      if (it == line.token_indices.end()) {
        ok = false;
      } else {
        for (int j = 1; j < n && ok; ++j) {
          ++it;
          if (it == line.token_indices.end() || *it != start + j) ok = false;
        }
      }
    }
    if (ok) matches.push_back(PhraseMatch{start, n, line_id});
  }
  return matches;
}

void Document::RemapAfterSplice(int first_token, int old_count,
                                int new_count) {
  int delta = new_count - old_count;
  int old_end = first_token + old_count;

  // Remap annotations. Spans entirely before are untouched; spans entirely
  // after shift by delta; overlapping spans are dropped.
  std::vector<EntitySpan> kept;
  kept.reserve(annotations_.size());
  for (EntitySpan span : annotations_) {
    if (span.end_token() <= first_token) {
      kept.push_back(span);
    } else if (span.first_token >= old_end) {
      span.first_token += delta;
      kept.push_back(span);
    }
    // else: overlaps the replaced range; drop.
  }
  annotations_ = std::move(kept);

  // Remap line token lists: indices in the replaced range become the new
  // range; later indices shift.
  for (Line& line : lines_) {
    std::vector<int> remapped;
    remapped.reserve(line.token_indices.size());
    bool inserted_new = false;
    for (int ti : line.token_indices) {
      if (ti < first_token) {
        remapped.push_back(ti);
      } else if (ti < old_end) {
        if (!inserted_new) {
          for (int j = 0; j < new_count; ++j) {
            remapped.push_back(first_token + j);
          }
          inserted_new = true;
        }
      } else {
        remapped.push_back(ti + delta);
      }
    }
    line.token_indices = std::move(remapped);
  }
}

void Document::ReplaceTokenRange(int first_token, int old_count,
                                 const std::vector<std::string>& new_texts) {
  FS_CHECK_GE(first_token, 0);
  FS_CHECK_GT(old_count, 0);
  FS_CHECK_LE(first_token + old_count, num_tokens());
  FS_CHECK(!new_texts.empty());

  BBox total = BoxOfRange(first_token, old_count);
  int line_id = token(first_token).line;

  // Build replacement tokens: split the old range's box horizontally in
  // proportion to each new token's text length, with a fixed inter-token gap.
  size_t total_chars = 0;
  for (const std::string& text : new_texts) total_chars += text.size();
  if (total_chars == 0) total_chars = 1;
  const double gap = std::min(4.0, total.Width() * 0.02);
  double usable =
      std::max(1.0, total.Width() - gap * static_cast<double>(new_texts.size() - 1));
  std::vector<Token> replacement;
  replacement.reserve(new_texts.size());
  double x = total.x_min;
  for (const std::string& text : new_texts) {
    double w = usable * static_cast<double>(std::max<size_t>(text.size(), 1)) /
               static_cast<double>(total_chars);
    Token tok;
    tok.text = text;
    tok.box = BBox{x, total.y_min, x + w, total.y_max};
    tok.line = line_id;
    replacement.push_back(std::move(tok));
    x += w + gap;
  }

  int new_count = static_cast<int>(replacement.size());
  RemapAfterSplice(first_token, old_count, new_count);

  auto begin = tokens_.begin() + first_token;
  tokens_.erase(begin, begin + old_count);
  tokens_.insert(tokens_.begin() + first_token,
                 std::make_move_iterator(replacement.begin()),
                 std::make_move_iterator(replacement.end()));
}

bool Document::SameTokenTexts(const Document& other) const {
  if (num_tokens() != other.num_tokens()) return false;
  for (int i = 0; i < num_tokens(); ++i) {
    if (token(i).text != other.token(i).text) return false;
  }
  return true;
}

std::string Document::DebugString() const {
  std::ostringstream os;
  os << "Document{" << id_ << " domain=" << domain_ << " tokens=" << num_tokens()
     << " lines=" << lines_.size() << " annotations=" << annotations_.size()
     << "}";
  return os.str();
}

}  // namespace fieldswap
