#include "doc/serialize.h"
#include <cstring>

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace fieldswap {
namespace {

void AppendEscaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
}

void AppendDouble(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out += buf;
}

/// Minimal cursor-based parser for the subset of JSON emitted above.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Literal(const char* expected) {
    SkipSpace();
    size_t len = std::strlen(expected);
    if (text_.compare(pos_, len, expected) != 0) return false;
    pos_ += len;
    return true;
  }

  bool String(std::string& out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            out.push_back(esc);
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number(double& out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out = ParseDouble(text_.substr(start, pos_ - start).c_str(), 0.0);
    return true;
  }

  bool Int(int& out) {
    double value = 0;
    if (!Number(value)) return false;
    out = static_cast<int>(value);
    return true;
  }

  bool PeekIs(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  size_t pos() const { return pos_; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string DocumentToJson(const Document& doc) {
  std::string out;
  out += "{\"id\":";
  AppendEscaped(out, doc.id());
  out += ",\"domain\":";
  AppendEscaped(out, doc.domain());
  out += ",\"width\":";
  AppendDouble(out, doc.width());
  out += ",\"height\":";
  AppendDouble(out, doc.height());

  out += ",\"tokens\":[";
  for (int i = 0; i < doc.num_tokens(); ++i) {
    const Token& tok = doc.token(i);
    if (i > 0) out.push_back(',');
    out += "{\"text\":";
    AppendEscaped(out, tok.text);
    out += ",\"box\":[";
    AppendDouble(out, tok.box.x_min);
    out.push_back(',');
    AppendDouble(out, tok.box.y_min);
    out.push_back(',');
    AppendDouble(out, tok.box.x_max);
    out.push_back(',');
    AppendDouble(out, tok.box.y_max);
    out += "],\"line\":" + std::to_string(tok.line) + "}";
  }
  out += "]";

  out += ",\"lines\":[";
  for (size_t l = 0; l < doc.lines().size(); ++l) {
    if (l > 0) out.push_back(',');
    out.push_back('[');
    const Line& line = doc.lines()[l];
    for (size_t i = 0; i < line.token_indices.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(line.token_indices[i]);
    }
    out.push_back(']');
  }
  out += "]";

  out += ",\"annotations\":[";
  for (size_t a = 0; a < doc.annotations().size(); ++a) {
    const EntitySpan& span = doc.annotations()[a];
    if (a > 0) out.push_back(',');
    out += "{\"field\":";
    AppendEscaped(out, span.field);
    out += ",\"first\":" + std::to_string(span.first_token);
    out += ",\"count\":" + std::to_string(span.num_tokens) + "}";
  }
  out += "]}";
  return out;
}

std::optional<Document> DocumentFromJson(const std::string& json) {
  return DocumentFromJson(json, nullptr);
}

std::optional<Document> DocumentFromJson(const std::string& json,
                                         std::string* error) {
  Parser parser(json);
  // Every failure names the section being parsed and where the parser
  // stopped, so a bad corpus line is diagnosable without bisecting JSON by
  // hand.
  auto fail = [&](const std::string& what) -> std::optional<Document> {
    if (error != nullptr) {
      *error = what + " near byte " + std::to_string(parser.pos());
    }
    return std::nullopt;
  };

  std::string id, domain;
  double width = 0, height = 0;
  if (!parser.Literal("{\"id\":") || !parser.String(id)) {
    return fail("malformed document header (expected {\"id\":...)");
  }
  if (!parser.Literal(",\"domain\":") || !parser.String(domain)) {
    return fail("malformed \"domain\" field");
  }
  if (!parser.Literal(",\"width\":") || !parser.Number(width)) {
    return fail("malformed \"width\" field");
  }
  if (!parser.Literal(",\"height\":") || !parser.Number(height)) {
    return fail("malformed \"height\" field");
  }

  Document doc(id, domain, width, height);

  if (!parser.Literal(",\"tokens\":[")) {
    return fail("missing \"tokens\" array");
  }
  while (!parser.PeekIs(']')) {
    std::string text;
    double x0, y0, x1, y1;
    int line;
    if (!parser.Literal("{\"text\":") || !parser.String(text) ||
        !parser.Literal(",\"box\":[") || !parser.Number(x0) ||
        !parser.Literal(",") || !parser.Number(y0) || !parser.Literal(",") ||
        !parser.Number(x1) || !parser.Literal(",") || !parser.Number(y1) ||
        !parser.Literal("],\"line\":") || !parser.Int(line) ||
        !parser.Literal("}")) {
      return fail("malformed token " + std::to_string(doc.num_tokens()));
    }
    doc.AddToken(text, BBox{x0, y0, x1, y1});
    parser.Literal(",");  // optional separator
  }
  if (!parser.Literal("]")) return fail("unterminated \"tokens\" array");

  if (!parser.Literal(",\"lines\":[")) {
    return fail("missing \"lines\" array");
  }
  std::vector<Line> lines;
  while (!parser.PeekIs(']')) {
    if (!parser.Literal("[")) {
      return fail("malformed line " + std::to_string(lines.size()));
    }
    Line line;
    while (!parser.PeekIs(']')) {
      int index;
      if (!parser.Int(index)) {
        return fail("malformed line " + std::to_string(lines.size()));
      }
      line.token_indices.push_back(index);
      parser.Literal(",");
    }
    if (!parser.Literal("]")) {
      return fail("unterminated line " + std::to_string(lines.size()));
    }
    for (int ti : line.token_indices) {
      if (ti < 0 || ti >= doc.num_tokens()) {
        return fail("line " + std::to_string(lines.size()) +
                    " references token " + std::to_string(ti) +
                    " out of range [0, " + std::to_string(doc.num_tokens()) +
                    ")");
      }
      line.box = line.token_indices.front() == ti
                     ? doc.token(ti).box
                     : line.box.Union(doc.token(ti).box);
    }
    lines.push_back(std::move(line));
    parser.Literal(",");
  }
  if (!parser.Literal("]")) return fail("unterminated \"lines\" array");
  doc.set_lines(std::move(lines));

  if (!parser.Literal(",\"annotations\":[")) {
    return fail("missing \"annotations\" array");
  }
  while (!parser.PeekIs(']')) {
    std::string field;
    int first, count;
    if (!parser.Literal("{\"field\":") || !parser.String(field) ||
        !parser.Literal(",\"first\":") || !parser.Int(first) ||
        !parser.Literal(",\"count\":") || !parser.Int(count) ||
        !parser.Literal("}")) {
      return fail("malformed annotation " +
                  std::to_string(doc.annotations().size()));
    }
    if (first < 0 || count <= 0 || first + count > doc.num_tokens()) {
      return fail("annotation \"" + field + "\" span [" +
                  std::to_string(first) + ", " + std::to_string(first + count) +
                  ") out of bounds for " + std::to_string(doc.num_tokens()) +
                  " tokens");
    }
    doc.AddAnnotation(EntitySpan{field, first, count});
    parser.Literal(",");
  }
  if (!parser.Literal("]}")) {
    return fail("unterminated \"annotations\" array");
  }
  return doc;
}

bool SaveCorpusJsonl(const std::string& path,
                     const std::vector<Document>& docs) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  for (const Document& doc : docs) {
    os << DocumentToJson(doc) << "\n";
  }
  return os.good();
}

std::optional<std::vector<Document>> LoadCorpusJsonl(const std::string& path) {
  return LoadCorpusJsonl(path, nullptr);
}

std::optional<std::vector<Document>> LoadCorpusJsonl(
    const std::string& path, doc::CorpusStatus* status) {
  std::ifstream is(path);
  if (!is) {
    if (status != nullptr) *status = {"cannot open " + path, 0};
    return std::nullopt;
  }
  std::vector<Document> docs;
  std::string line;
  long line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string parse_error;
    std::optional<Document> doc = DocumentFromJson(line, &parse_error);
    if (!doc.has_value()) {
      if (status != nullptr) *status = {parse_error, line_number};
      return std::nullopt;
    }
    docs.push_back(std::move(*doc));
  }
  return docs;
}

}  // namespace fieldswap
