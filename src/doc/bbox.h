#ifndef FIELDSWAP_DOC_BBOX_H_
#define FIELDSWAP_DOC_BBOX_H_

#include <algorithm>
#include <string>

namespace fieldswap {

/// Axis-aligned bounding box in page coordinates. The page coordinate
/// system has the origin at the top-left corner, x growing rightward and
/// y growing downward, matching the output of OCR engines.
struct BBox {
  double x_min = 0;
  double y_min = 0;
  double x_max = 0;
  double y_max = 0;

  double Width() const { return x_max - x_min; }
  double Height() const { return y_max - y_min; }
  double CenterX() const { return 0.5 * (x_min + x_max); }
  double CenterY() const { return 0.5 * (y_min + y_max); }
  double Area() const { return Width() * Height(); }

  bool Contains(double x, double y) const {
    return x >= x_min && x <= x_max && y >= y_min && y <= y_max;
  }

  bool Intersects(const BBox& other) const {
    return x_min <= other.x_max && other.x_min <= x_max &&
           y_min <= other.y_max && other.y_min <= y_max;
  }

  /// Smallest box covering both boxes.
  BBox Union(const BBox& other) const {
    return BBox{std::min(x_min, other.x_min), std::min(y_min, other.y_min),
                std::max(x_max, other.x_max), std::max(y_max, other.y_max)};
  }

  /// Vertical overlap length with `other` (0 if disjoint in y).
  double VerticalOverlap(const BBox& other) const {
    return std::max(0.0, std::min(y_max, other.y_max) -
                             std::max(y_min, other.y_min));
  }

  std::string DebugString() const;

  friend bool operator==(const BBox& a, const BBox& b) = default;
};

/// The paper's off-axis distance between two points (Sec. II-A2):
/// |a_x - b_x| * |a_y - b_y|. Near zero when the points are aligned on
/// either axis; large when they are diagonal to each other.
double OffAxisDistance(double ax, double ay, double bx, double by);

/// Off-axis distance between box centers.
double OffAxisDistance(const BBox& a, const BBox& b);

}  // namespace fieldswap

#endif  // FIELDSWAP_DOC_BBOX_H_
