#include "doc/corpus.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>

#include "doc/formats/record_file.h"
#include "doc/serialize.h"
#include "util/hash.h"

namespace fieldswap {
namespace doc {

namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool SetStatus(CorpusStatus* status, std::string message, long line = 0) {
  if (status != nullptr) {
    status->message = std::move(message);
    status->line = line;
  }
  return false;
}

// --------------------------------------------- binary Document codec --

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendI32(std::string& out, int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendF64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendStr(std::string& out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out += s;
}

/// Bounds-checked reader over a hostile record payload — same discipline
/// as serve/flat's directory cursor: every Read* fails cleanly instead of
/// touching bytes past the end.
class ByteCursor {
 public:
  explicit ByteCursor(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadStr(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len) || len > remaining()) return false;
    out->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  bool ReadRaw(void* out, size_t len) {
    if (len > remaining()) return false;
    std::memcpy(out, bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

// Minimum encoded sizes, used to bound hostile element counts before any
// allocation: a claimed count can never exceed remaining_bytes / minimum.
constexpr size_t kMinTokenBytes = 4 + 4 * 8 + 4;  // text len + box + line
constexpr size_t kMinLineBytes = 4;               // index count
constexpr size_t kMinAnnotationBytes = 4 + 4 + 4; // field len + first + count

}  // namespace

std::string CorpusStatus::ToString() const {
  if (line <= 0) return message;
  return "line " + std::to_string(line) + ": " + message;
}

void EncodeDocumentBinary(const Document& doc, std::string* out) {
  out->clear();
  AppendStr(*out, doc.id());
  AppendStr(*out, doc.domain());
  AppendF64(*out, doc.width());
  AppendF64(*out, doc.height());

  AppendU32(*out, static_cast<uint32_t>(doc.num_tokens()));
  for (int i = 0; i < doc.num_tokens(); ++i) {
    const Token& tok = doc.token(i);
    AppendStr(*out, tok.text);
    AppendF64(*out, tok.box.x_min);
    AppendF64(*out, tok.box.y_min);
    AppendF64(*out, tok.box.x_max);
    AppendF64(*out, tok.box.y_max);
    AppendI32(*out, tok.line);
  }

  AppendU32(*out, static_cast<uint32_t>(doc.lines().size()));
  for (const Line& line : doc.lines()) {
    AppendU32(*out, static_cast<uint32_t>(line.token_indices.size()));
    for (int ti : line.token_indices) AppendI32(*out, ti);
  }

  AppendU32(*out, static_cast<uint32_t>(doc.annotations().size()));
  for (const EntitySpan& span : doc.annotations()) {
    AppendStr(*out, span.field);
    AppendI32(*out, span.first_token);
    AppendI32(*out, span.num_tokens);
  }
}

bool DecodeDocumentBinary(std::string_view bytes, Document* doc,
                          CorpusStatus* status) {
  ByteCursor cursor(bytes);
  std::string id, domain;
  double width = 0, height = 0;
  if (!cursor.ReadStr(&id) || !cursor.ReadStr(&domain) ||
      !cursor.ReadF64(&width) || !cursor.ReadF64(&height)) {
    return SetStatus(status, "truncated document header");
  }
  Document result(id, domain, width, height);

  uint32_t token_count = 0;
  if (!cursor.ReadU32(&token_count) ||
      token_count > cursor.remaining() / kMinTokenBytes) {
    return SetStatus(status, "token count out of bounds");
  }
  for (uint32_t i = 0; i < token_count; ++i) {
    std::string text;
    double x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    int32_t line = -1;
    if (!cursor.ReadStr(&text) || !cursor.ReadF64(&x0) ||
        !cursor.ReadF64(&y0) || !cursor.ReadF64(&x1) || !cursor.ReadF64(&y1) ||
        !cursor.ReadI32(&line)) {
      return SetStatus(status, "truncated token " + std::to_string(i));
    }
    result.AddToken(std::move(text), BBox{x0, y0, x1, y1});
  }

  uint32_t line_count = 0;
  if (!cursor.ReadU32(&line_count) ||
      line_count > cursor.remaining() / kMinLineBytes) {
    return SetStatus(status, "line count out of bounds");
  }
  std::vector<Line> lines;
  lines.reserve(line_count);
  for (uint32_t li = 0; li < line_count; ++li) {
    uint32_t index_count = 0;
    if (!cursor.ReadU32(&index_count) ||
        index_count > cursor.remaining() / sizeof(int32_t)) {
      return SetStatus(status, "line " + std::to_string(li) +
                                   " index count out of bounds");
    }
    Line line;
    line.token_indices.reserve(index_count);
    for (uint32_t i = 0; i < index_count; ++i) {
      int32_t ti = 0;
      if (!cursor.ReadI32(&ti)) {
        return SetStatus(status, "truncated line " + std::to_string(li));
      }
      if (ti < 0 || ti >= result.num_tokens()) {
        return SetStatus(status, "line " + std::to_string(li) +
                                     " references token " +
                                     std::to_string(ti) + " out of range");
      }
      // Recompute the line box from member tokens, exactly as the JSONL
      // path does — the box is derived state, not stored.
      line.box = line.token_indices.empty()
                     ? result.token(ti).box
                     : line.box.Union(result.token(ti).box);
      line.token_indices.push_back(ti);
    }
    lines.push_back(std::move(line));
  }
  result.set_lines(std::move(lines));

  uint32_t annotation_count = 0;
  if (!cursor.ReadU32(&annotation_count) ||
      annotation_count > cursor.remaining() / kMinAnnotationBytes) {
    return SetStatus(status, "annotation count out of bounds");
  }
  for (uint32_t i = 0; i < annotation_count; ++i) {
    std::string field;
    int32_t first = 0, count = 0;
    if (!cursor.ReadStr(&field) || !cursor.ReadI32(&first) ||
        !cursor.ReadI32(&count)) {
      return SetStatus(status, "truncated annotation " + std::to_string(i));
    }
    if (first < 0 || count <= 0 ||
        static_cast<int64_t>(first) + count > result.num_tokens()) {
      return SetStatus(status, "annotation \"" + field +
                                   "\" span out of bounds");
    }
    result.AddAnnotation(EntitySpan{std::move(field), first, count});
  }
  if (!cursor.AtEnd()) {
    return SetStatus(status, "trailing bytes after document payload");
  }
  *doc = std::move(result);
  return true;
}

// -------------------------------------------------- vector adapters --

bool VectorCorpusReader::Get(size_t index, Document* doc,
                             CorpusStatus* status) const {
  if (index >= docs_.size()) {
    return SetStatus(status, "document index out of range");
  }
  *doc = docs_[index];
  return true;
}

bool VectorCorpusReaderView::Get(size_t index, Document* doc,
                                 CorpusStatus* status) const {
  if (index >= docs_->size()) {
    return SetStatus(status, "document index out of range");
  }
  *doc = (*docs_)[index];
  return true;
}

bool VectorCorpusWriter::Add(const Document& doc) {
  docs_.push_back(doc);
  return true;
}

// --------------------------------------------------- native driver --

namespace {

class NativeCorpusReader : public CorpusReader {
 public:
  explicit NativeCorpusReader(std::unique_ptr<formats::RecordFileReader> file)
      : file_(std::move(file)) {}

  size_t size() const override { return file_->size(); }

  bool Get(size_t index, Document* doc,
           CorpusStatus* status) const override {
    std::string payload, error;
    if (!file_->Read(index, &payload, &error)) {
      return SetStatus(status, error, static_cast<long>(index) + 1);
    }
    CorpusStatus decode_status;
    if (!DecodeDocumentBinary(payload, doc, &decode_status)) {
      return SetStatus(status, decode_status.message,
                       static_cast<long>(index) + 1);
    }
    return true;
  }

  std::string format() const override { return "native"; }

  std::string storage_info() const override {
    const uint64_t records_size = file_->index_offset() - formats::kRecordHeaderSize;
    std::string info;
    info += "format_version " + std::to_string(formats::kRecordFormatVersion) + "\n";
    info += "file_size " + std::to_string(file_->file_size()) + "\n";
    char checksum_hex[32];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(file_->checksum()));
    info += "checksum " + std::string(checksum_hex) + "\n";
    info += "record_count " + std::to_string(file_->size()) + "\n";
    info += "records_bytes " + std::to_string(records_size) + "\n";
    info += "index_offset " + std::to_string(file_->index_offset()) + "\n";
    return info;
  }

  bool RecordSpan(size_t index, uint64_t* offset,
                  uint64_t* bytes) const override {
    if (index >= file_->size()) return false;
    *offset = file_->offset(index);
    *bytes = file_->payload_length(index) + sizeof(uint32_t);
    return true;
  }

 private:
  std::unique_ptr<formats::RecordFileReader> file_;
};

class NativeCorpusWriter : public CorpusWriter {
 public:
  explicit NativeCorpusWriter(std::unique_ptr<formats::RecordFileWriter> file)
      : file_(std::move(file)) {}

  bool Add(const Document& doc) override {
    if (!status_.ok()) return false;
    EncodeDocumentBinary(doc, &scratch_);
    if (!file_->Append(scratch_)) {
      SetStatus(&status_, file_->error(),
                static_cast<long>(file_->record_count()) + 1);
      return false;
    }
    return true;
  }

  bool Finish() override {
    if (!status_.ok()) return false;
    if (!file_->Finish()) {
      SetStatus(&status_, file_->error());
      return false;
    }
    return true;
  }

  const CorpusStatus& status() const override { return status_; }
  std::string format() const override { return "native"; }
  uint64_t docs_written() const override { return file_->record_count(); }

 private:
  std::unique_ptr<formats::RecordFileWriter> file_;
  std::string scratch_;
  CorpusStatus status_;
};

class NativeFormatDriver : public FormatDriver {
 public:
  std::string name() const override { return "native"; }
  std::string extension() const override { return ".fsc"; }
  std::string description() const override {
    return "native binary records ('FSCR'): length-prefixed, "
           "FNV-checksummed, O(1) random access";
  }
  bool can_write() const override { return true; }

  bool Identify(std::string_view magic,
                const std::string& path) const override {
    if (magic.size() >= 4 && magic.substr(0, 4) == "FSCR") return true;
    return EndsWith(path, extension());
  }

  std::unique_ptr<CorpusReader> Open(const std::string& path,
                                     CorpusStatus* status) const override {
    std::string error;
    std::unique_ptr<formats::RecordFileReader> file =
        formats::RecordFileReader::Open(path, &error);
    if (file == nullptr) {
      SetStatus(status, error);
      return nullptr;
    }
    return std::make_unique<NativeCorpusReader>(std::move(file));
  }

  std::unique_ptr<CorpusWriter> Create(const std::string& path,
                                       CorpusStatus* status) const override {
    std::string error;
    std::unique_ptr<formats::RecordFileWriter> file =
        formats::RecordFileWriter::Create(path, &error);
    if (file == nullptr) {
      SetStatus(status, error);
      return nullptr;
    }
    return std::make_unique<NativeCorpusWriter>(std::move(file));
  }
};

// ---------------------------------------------------- jsonl driver --

/// Byte extent (plus source line number) of one non-empty JSONL line.
struct JsonlLineRef {
  uint64_t offset = 0;
  uint32_t length = 0;    // without the newline
  uint32_t line_number = 0;  // 1-based, blank lines counted
};

class JsonlCorpusReader : public CorpusReader {
 public:
  JsonlCorpusReader(std::string path, int fd, std::vector<JsonlLineRef> lines)
      : path_(std::move(path)), fd_(fd), lines_(std::move(lines)) {}

  ~JsonlCorpusReader() override { close(fd_); }

  size_t size() const override { return lines_.size(); }

  bool Get(size_t index, Document* doc,
           CorpusStatus* status) const override {
    if (index >= lines_.size()) {
      return SetStatus(status, "document index out of range");
    }
    const JsonlLineRef& ref = lines_[index];
    std::string line(ref.length, '\0');
    size_t got = 0;
    while (got < line.size()) {
      ssize_t n = pread(fd_, line.data() + got, line.size() - got,
                        static_cast<off_t>(ref.offset + got));
      if (n <= 0) {
        return SetStatus(status, path_ + ": short read",
                         static_cast<long>(ref.line_number));
      }
      got += static_cast<size_t>(n);
    }
    std::string error;
    std::optional<Document> parsed = DocumentFromJson(line, &error);
    if (!parsed.has_value()) {
      return SetStatus(status, error, static_cast<long>(ref.line_number));
    }
    *doc = std::move(*parsed);
    return true;
  }

  std::string format() const override { return "jsonl"; }

  std::string storage_info() const override {
    uint64_t bytes = 0;
    if (!lines_.empty()) {
      bytes = lines_.back().offset + lines_.back().length;
    }
    return "document_lines " + std::to_string(lines_.size()) + "\n" +
           "data_bytes " + std::to_string(bytes) + "\n";
  }

  bool RecordSpan(size_t index, uint64_t* offset,
                  uint64_t* bytes) const override {
    if (index >= lines_.size()) return false;
    *offset = lines_[index].offset;
    *bytes = lines_[index].length;
    return true;
  }

 private:
  std::string path_;
  int fd_;
  std::vector<JsonlLineRef> lines_;
};

class JsonlCorpusWriter : public CorpusWriter {
 public:
  JsonlCorpusWriter(std::string path, std::ofstream out)
      : path_(std::move(path)), tmp_path_(path_ + ".tmp"),
        out_(std::move(out)) {}

  ~JsonlCorpusWriter() override {
    if (!finished_) {
      out_.close();
      std::remove(tmp_path_.c_str());
    }
  }

  bool Add(const Document& doc) override {
    if (!status_.ok()) return false;
    out_ << DocumentToJson(doc) << "\n";
    if (!out_.good()) {
      return SetStatus(&status_, "short write to " + tmp_path_,
                       static_cast<long>(docs_) + 1);
    }
    ++docs_;
    return true;
  }

  bool Finish() override {
    if (finished_) return status_.ok();
    if (!status_.ok()) return false;
    out_.close();
    if (out_.fail()) return SetStatus(&status_, "cannot close " + tmp_path_);
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      std::remove(tmp_path_.c_str());
      return SetStatus(&status_, "cannot rename " + tmp_path_ +
                                     " into place");
    }
    finished_ = true;
    return true;
  }

  const CorpusStatus& status() const override { return status_; }
  std::string format() const override { return "jsonl"; }
  uint64_t docs_written() const override { return docs_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  uint64_t docs_ = 0;
  bool finished_ = false;
  CorpusStatus status_;
};

class JsonlFormatDriver : public FormatDriver {
 public:
  std::string name() const override { return "jsonl"; }
  std::string extension() const override { return ".jsonl"; }
  std::string description() const override {
    return "one DocumentToJson document per line (the interchange format "
           "SaveCorpusJsonl always wrote)";
  }
  bool can_write() const override { return true; }

  bool Identify(std::string_view magic,
                const std::string& path) const override {
    // Every DocumentToJson line starts with this exact prefix.
    if (magic.size() >= 6 && magic.substr(0, 6) == "{\"id\":") return true;
    return EndsWith(path, extension());
  }

  std::unique_ptr<CorpusReader> Open(const std::string& path,
                                     CorpusStatus* status) const override {
    int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      SetStatus(status, "cannot open " + path);
      return nullptr;
    }
    // One buffered pass indexes the byte extent of every non-empty line;
    // parsing stays lazy (Get), so opening a huge corpus is I/O-bound and
    // memory stays at 16 bytes per document.
    std::vector<JsonlLineRef> lines;
    std::vector<char> buffer(1 << 20);
    uint64_t file_pos = 0, line_start = 0;
    uint32_t line_number = 1;
    bool line_has_bytes = false;
    for (;;) {
      ssize_t n = read(fd, buffer.data(), buffer.size());
      if (n < 0) {
        close(fd);
        SetStatus(status, "read error in " + path);
        return nullptr;
      }
      if (n == 0) break;
      for (ssize_t i = 0; i < n; ++i) {
        if (buffer[static_cast<size_t>(i)] == '\n') {
          const uint64_t line_len = file_pos - line_start;
          if (line_has_bytes) {
            if (line_len > UINT32_MAX) {
              close(fd);
              SetStatus(status, path + ": line too long",
                        static_cast<long>(line_number));
              return nullptr;
            }
            lines.push_back({line_start, static_cast<uint32_t>(line_len),
                             line_number});
          }
          line_start = file_pos + 1;
          line_has_bytes = false;
          ++line_number;
        } else {
          line_has_bytes = true;
        }
        ++file_pos;
      }
    }
    if (line_has_bytes) {  // final line without trailing newline
      const uint64_t line_len = file_pos - line_start;
      if (line_len > UINT32_MAX) {
        close(fd);
        SetStatus(status, path + ": line too long",
                  static_cast<long>(line_number));
        return nullptr;
      }
      lines.push_back({line_start, static_cast<uint32_t>(line_len),
                       line_number});
    }
    return std::make_unique<JsonlCorpusReader>(path, fd, std::move(lines));
  }

  std::unique_ptr<CorpusWriter> Create(const std::string& path,
                                       CorpusStatus* status) const override {
    std::ofstream out(path + ".tmp", std::ios::trunc);
    if (!out) {
      SetStatus(status, "cannot open " + path + ".tmp for writing");
      return nullptr;
    }
    return std::make_unique<JsonlCorpusWriter>(path, std::move(out));
  }
};

}  // namespace

// -------------------------------------------------------- registry --

std::unique_ptr<CorpusWriter> FormatDriver::Create(const std::string& path,
                                                   CorpusStatus* status) const {
  (void)path;
  SetStatus(status, "format '" + name() + "' is read-only");
  return nullptr;
}

FormatDriverRegistry::FormatDriverRegistry() {
  // The built-in file formats register here rather than via static
  // initializers, which static-library linking is free to drop.
  drivers_.push_back(std::make_unique<NativeFormatDriver>());
  drivers_.push_back(std::make_unique<JsonlFormatDriver>());
}

FormatDriverRegistry& FormatDriverRegistry::Global() {
  static FormatDriverRegistry* registry = new FormatDriverRegistry();
  return *registry;
}

void FormatDriverRegistry::Register(std::unique_ptr<FormatDriver> driver) {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  for (const std::unique_ptr<FormatDriver>& existing : drivers_) {
    // First registration wins: callers holding a driver pointer must never
    // see it invalidated, so re-registration is a no-op, not a swap.
    if (existing->name() == driver->name()) return;
  }
  drivers_.push_back(std::move(driver));
}

const FormatDriver* FormatDriverRegistry::Find(const std::string& name) const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  for (const std::unique_ptr<FormatDriver>& driver : drivers_) {
    if (driver->name() == name) return driver.get();
  }
  return nullptr;
}

std::vector<FormatInfo> FormatDriverRegistry::ListFormats() const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  std::vector<FormatInfo> infos;
  infos.reserve(drivers_.size());
  for (const std::unique_ptr<FormatDriver>& driver : drivers_) {
    infos.push_back({driver->name(), driver->extension(),
                     driver->description(), driver->can_write()});
  }
  return infos;
}

const FormatDriver* FormatDriverRegistry::IdentifyFile(
    const std::string& path, CorpusStatus* status) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetStatus(status, "cannot open " + path);
    return nullptr;
  }
  char probe_bytes[kMagicProbeBytes] = {0};
  in.read(probe_bytes, sizeof(probe_bytes));
  std::string_view probe(probe_bytes,
                         static_cast<size_t>(std::max<std::streamsize>(
                             in.gcount(), 0)));

  // Snapshot under the lock, probe outside it: Identify is driver code
  // this registry must not call while holding its own mutex.
  std::vector<const FormatDriver*> drivers;
  {
    std::lock_guard<util::OrderedMutex> lock(mu_);
    drivers.reserve(drivers_.size());
    for (const std::unique_ptr<FormatDriver>& driver : drivers_) {
      drivers.push_back(driver.get());
    }
  }
  for (const FormatDriver* driver : drivers) {
    if (driver->Identify(probe, path)) return driver;
  }
  std::string known;
  for (const FormatDriver* driver : drivers) {
    if (!known.empty()) known += ", ";
    known += driver->name();
  }
  SetStatus(status, "unrecognized corpus format for " + path +
                        "; registered formats: " + known);
  return nullptr;
}

std::unique_ptr<CorpusReader> OpenCorpus(const std::string& path,
                                         const std::string& format,
                                         CorpusStatus* status) {
  FormatDriverRegistry& registry = FormatDriverRegistry::Global();
  const FormatDriver* driver = nullptr;
  if (format.empty()) {
    driver = registry.IdentifyFile(path, status);
  } else {
    driver = registry.Find(format);
    if (driver == nullptr) {
      std::string known;
      for (const FormatInfo& info : registry.ListFormats()) {
        if (!known.empty()) known += ", ";
        known += info.name;
      }
      SetStatus(status, "unknown corpus format '" + format +
                            "'; registered formats: " + known);
    }
  }
  if (driver == nullptr) return nullptr;
  return driver->Open(path, status);
}

std::unique_ptr<CorpusWriter> CreateCorpus(const std::string& path,
                                           const std::string& format,
                                           CorpusStatus* status) {
  FormatDriverRegistry& registry = FormatDriverRegistry::Global();
  const FormatDriver* driver = nullptr;
  if (!format.empty()) {
    driver = registry.Find(format);
    if (driver == nullptr) {
      SetStatus(status, "unknown corpus format '" + format + "'");
      return nullptr;
    }
  } else {
    // Pick by extension among writable drivers; default to native.
    for (const FormatInfo& info : registry.ListFormats()) {
      if (info.can_write && EndsWith(path, info.extension)) {
        driver = registry.Find(info.name);
        break;
      }
    }
    if (driver == nullptr) driver = registry.Find("native");
    if (driver == nullptr) {
      SetStatus(status, "no writable corpus driver registered");
      return nullptr;
    }
  }
  if (!driver->can_write()) {
    SetStatus(status, "format '" + driver->name() + "' is read-only");
    return nullptr;
  }
  return driver->Create(path, status);
}

// --------------------------------------------------------- helpers --

Document ReadDocumentOrDie(const CorpusReader& reader, size_t index) {
  Document doc;
  CorpusStatus status;
  bool ok = reader.Get(index, &doc, &status);
  FS_CHECK(ok) << "corpus document " << index << " unreadable: "
               << status.ToString();
  return doc;
}

uint64_t CorpusChecksum(const CorpusReader& reader, size_t block_size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  BlockedMapDocuments(
      reader, block_size,
      [](const Document& doc, size_t) { return Fnv1a64(DocumentToJson(doc)); },
      [&hash](size_t, uint64_t doc_hash) { hash = hash * 31 + doc_hash; });
  return hash;
}

std::vector<Document> ReadAllDocuments(const CorpusReader& reader) {
  std::vector<Document> docs;
  docs.reserve(reader.size());
  for (size_t i = 0; i < reader.size(); ++i) {
    docs.push_back(ReadDocumentOrDie(reader, i));
  }
  return docs;
}

uint64_t ApproxMemoryBytes(const Document& doc) {
  uint64_t bytes = sizeof(Document);
  bytes += doc.id().capacity() + doc.domain().capacity();
  for (const Token& tok : doc.tokens()) {
    bytes += sizeof(Token) + tok.text.capacity();
  }
  for (const Line& line : doc.lines()) {
    bytes += sizeof(Line) + line.token_indices.capacity() * sizeof(int);
  }
  for (const EntitySpan& span : doc.annotations()) {
    bytes += sizeof(EntitySpan) + span.field.capacity();
  }
  return bytes;
}

}  // namespace doc
}  // namespace fieldswap
