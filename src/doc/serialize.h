#ifndef FIELDSWAP_DOC_SERIALIZE_H_
#define FIELDSWAP_DOC_SERIALIZE_H_

#include <optional>
#include <string>
#include <vector>

#include "doc/corpus.h"
#include "doc/document.h"

namespace fieldswap {

/// Serializes a document (tokens, boxes, lines, annotations) to a JSON
/// string. The format is self-describing and stable, intended for
/// exporting synthetic corpora to other tools and for golden-file tests.
std::string DocumentToJson(const Document& doc);

/// Parses a document from DocumentToJson output. Returns nullopt on
/// malformed input. Only the exact subset of JSON this library emits is
/// supported (no general JSON parsing).
std::optional<Document> DocumentFromJson(const std::string& json);

/// As above, but reports *why* parsing failed: `*error` (when non-null)
/// receives which section was malformed and the byte position, e.g.
/// "malformed token 3 near byte 214".
std::optional<Document> DocumentFromJson(const std::string& json,
                                         std::string* error);

/// Writes one document per line (JSONL). Returns false on I/O error.
bool SaveCorpusJsonl(const std::string& path,
                     const std::vector<Document>& docs);

/// Reads a JSONL corpus written by SaveCorpusJsonl. Returns nullopt on I/O
/// or parse error.
std::optional<std::vector<Document>> LoadCorpusJsonl(const std::string& path);

/// As above, but on failure fills `*status` (when non-null) with the
/// 1-based line number and the parse error for that line — the message the
/// JSONL format driver threads through its Open/Get error path, so a bad
/// corpus names the offending line instead of a bare nullopt.
std::optional<std::vector<Document>> LoadCorpusJsonl(
    const std::string& path, doc::CorpusStatus* status);

}  // namespace fieldswap

#endif  // FIELDSWAP_DOC_SERIALIZE_H_
