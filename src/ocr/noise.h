#ifndef FIELDSWAP_OCR_NOISE_H_
#define FIELDSWAP_OCR_NOISE_H_

#include "doc/document.h"
#include "util/rng.h"

namespace fieldswap {

/// OCR error model. The paper excludes OCR accuracy from study, relying on
/// a robust engine; this model lets us inject controlled imperfections to
/// test that claim (robustness ablation) — character confusions, box
/// jitter, and token splits, applied only to tokens outside ground-truth
/// value spans so annotations remain exact.
struct OcrNoiseOptions {
  /// Per-character probability of substituting a visually confusable glyph
  /// (O<->0, l<->1, S<->5, ...).
  double char_substitution_prob = 0.0;

  /// Per-token probability of splitting a multi-character token in two.
  double token_split_prob = 0.0;

  /// Standard deviation of bounding-box corner jitter, as a fraction of the
  /// token's height.
  double box_jitter_frac = 0.0;
};

/// Applies OCR noise in place. Line detection should be re-run afterwards,
/// since geometry may have changed.
void ApplyOcrNoise(Document& doc, const OcrNoiseOptions& options, Rng& rng);

}  // namespace fieldswap

#endif  // FIELDSWAP_OCR_NOISE_H_
