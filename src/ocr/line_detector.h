#ifndef FIELDSWAP_OCR_LINE_DETECTOR_H_
#define FIELDSWAP_OCR_LINE_DETECTOR_H_

#include <vector>

#include "doc/document.h"

namespace fieldswap {

/// Configuration for OCR line detection.
struct LineDetectorOptions {
  /// Two tokens belong to the same y-band when their vertical overlap is at
  /// least this fraction of the shorter token's height.
  double min_vertical_overlap = 0.5;

  /// Within a y-band, a horizontal gap wider than gap_factor * band height
  /// splits the band into separate lines ("long horizontal stretches of
  /// whitespace", Sec. II-A1).
  double gap_factor = 2.0;
};

/// Detects OCR lines: clusters tokens into y-bands, orders each band left to
/// right, and splits bands at wide horizontal gaps. This reproduces the two
/// OCR signals the paper consumes — word bounding boxes are given on input,
/// line grouping is computed here.
std::vector<Line> DetectLines(const Document& doc,
                              const LineDetectorOptions& options = {});

/// Runs DetectLines and installs the result on the document (assigning each
/// token its line id).
void DetectAndAssignLines(Document& doc,
                          const LineDetectorOptions& options = {});

}  // namespace fieldswap

#endif  // FIELDSWAP_OCR_LINE_DETECTOR_H_
