#include "ocr/noise.h"

#include <string>
#include <vector>

namespace fieldswap {
namespace {

// Visually confusable glyph pairs typical of OCR errors.
char ConfusableFor(char c) {
  switch (c) {
    case 'O':
      return '0';
    case '0':
      return 'O';
    case 'l':
      return '1';
    case '1':
      return 'l';
    case 'S':
      return '5';
    case '5':
      return 'S';
    case 'B':
      return '8';
    case '8':
      return 'B';
    case 'e':
      return 'c';
    case 'm':
      return 'n';
    case 'u':
      return 'v';
    default:
      return c;
  }
}

bool IsAnnotated(const Document& doc, int token_index) {
  for (const EntitySpan& span : doc.annotations()) {
    if (span.Covers(token_index)) return true;
  }
  return false;
}

}  // namespace

void ApplyOcrNoise(Document& doc, const OcrNoiseOptions& options, Rng& rng) {
  // Character substitutions and box jitter (index-stable, applied first).
  for (int i = 0; i < doc.num_tokens(); ++i) {
    if (IsAnnotated(doc, i)) continue;
    Token& tok = doc.mutable_tokens()[static_cast<size_t>(i)];
    if (options.char_substitution_prob > 0) {
      for (char& c : tok.text) {
        if (rng.Bernoulli(options.char_substitution_prob)) {
          c = ConfusableFor(c);
        }
      }
    }
    if (options.box_jitter_frac > 0) {
      double sigma = options.box_jitter_frac * tok.box.Height();
      tok.box.x_min += rng.Gaussian(0, sigma);
      tok.box.x_max += rng.Gaussian(0, sigma);
      tok.box.y_min += rng.Gaussian(0, sigma);
      tok.box.y_max += rng.Gaussian(0, sigma);
      if (tok.box.x_max < tok.box.x_min) std::swap(tok.box.x_min, tok.box.x_max);
      if (tok.box.y_max < tok.box.y_min) std::swap(tok.box.y_min, tok.box.y_max);
    }
  }

  // Token splits (change indices; walk back to front so earlier indices
  // stay valid).
  if (options.token_split_prob > 0) {
    for (int i = doc.num_tokens() - 1; i >= 0; --i) {
      if (IsAnnotated(doc, i)) continue;
      const std::string text = doc.token(i).text;
      if (text.size() < 2) continue;
      if (!rng.Bernoulli(options.token_split_prob)) continue;
      size_t cut = 1 + rng.Index(text.size() - 1);
      doc.ReplaceTokenRange(i, 1, {text.substr(0, cut), text.substr(cut)});
    }
  }
}

}  // namespace fieldswap
