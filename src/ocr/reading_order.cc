#include "ocr/reading_order.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace fieldswap {

void SortReadingOrder(Document& doc) {
  const int n = doc.num_tokens();
  // New order: concatenate line token lists (lines are already top-to-bottom,
  // tokens within a line left-to-right per DetectLines).
  std::vector<int> new_to_old;
  new_to_old.reserve(static_cast<size_t>(n));
  for (const Line& line : doc.lines()) {
    for (int ti : line.token_indices) new_to_old.push_back(ti);
  }
  // Tokens not assigned to any line (shouldn't happen post-detection) keep
  // relative order at the end.
  if (static_cast<int>(new_to_old.size()) < n) {
    std::vector<bool> seen(static_cast<size_t>(n), false);
    for (int ti : new_to_old) seen[static_cast<size_t>(ti)] = true;
    for (int i = 0; i < n; ++i) {
      if (!seen[static_cast<size_t>(i)]) new_to_old.push_back(i);
    }
  }
  FS_CHECK_EQ(static_cast<int>(new_to_old.size()), n);

  std::vector<int> old_to_new(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    old_to_new[static_cast<size_t>(new_to_old[static_cast<size_t>(i)])] = i;
  }

  // Permute tokens.
  std::vector<Token> new_tokens;
  new_tokens.reserve(static_cast<size_t>(n));
  for (int old_index : new_to_old) {
    new_tokens.push_back(doc.token(old_index));
  }
  doc.mutable_tokens() = std::move(new_tokens);

  // Remap line lists (token order within a line is preserved).
  std::vector<Line> lines = doc.lines();
  for (Line& line : lines) {
    for (int& ti : line.token_indices) ti = old_to_new[static_cast<size_t>(ti)];
  }
  doc.set_lines(std::move(lines));

  // Remap annotations; keep only spans that remain contiguous ascending runs.
  std::vector<EntitySpan> kept;
  for (const EntitySpan& span : doc.annotations()) {
    std::vector<int> mapped;
    mapped.reserve(static_cast<size_t>(span.num_tokens));
    for (int i = span.first_token; i < span.end_token(); ++i) {
      mapped.push_back(old_to_new[static_cast<size_t>(i)]);
    }
    std::sort(mapped.begin(), mapped.end());
    bool contiguous = true;
    for (size_t i = 1; i < mapped.size(); ++i) {
      if (mapped[i] != mapped[i - 1] + 1) {
        contiguous = false;
        break;
      }
    }
    if (contiguous && !mapped.empty()) {
      kept.push_back(EntitySpan{span.field, mapped.front(),
                                static_cast<int>(mapped.size())});
    }
  }
  doc.mutable_annotations() = std::move(kept);
}

}  // namespace fieldswap
