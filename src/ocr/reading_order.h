#ifndef FIELDSWAP_OCR_READING_ORDER_H_
#define FIELDSWAP_OCR_READING_ORDER_H_

#include "doc/document.h"

namespace fieldswap {

/// Reorders the document's tokens into reading order (top-to-bottom by
/// detected line, left-to-right within a line) and remaps line token lists
/// and annotations accordingly. Requires line detection to have run.
///
/// Annotations whose tokens are no longer contiguous after the permutation
/// are dropped; with a layout whose value tokens are horizontally adjacent
/// (as produced by the synth generator) spans always stay contiguous.
void SortReadingOrder(Document& doc);

}  // namespace fieldswap

#endif  // FIELDSWAP_OCR_READING_ORDER_H_
