#include "ocr/line_detector.h"

#include <algorithm>
#include <numeric>

namespace fieldswap {
namespace {

struct Band {
  BBox box;
  std::vector<int> token_indices;
};

double OverlapRatio(const BBox& a, const BBox& b) {
  double overlap = a.VerticalOverlap(b);
  double shorter = std::min(a.Height(), b.Height());
  if (shorter <= 0) return 0;
  return overlap / shorter;
}

}  // namespace

std::vector<Line> DetectLines(const Document& doc,
                              const LineDetectorOptions& options) {
  const auto& tokens = doc.tokens();
  std::vector<int> order(tokens.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return tokens[static_cast<size_t>(a)].box.CenterY() <
           tokens[static_cast<size_t>(b)].box.CenterY();
  });

  // Greedy y-band clustering in vertical order.
  std::vector<Band> bands;
  for (int ti : order) {
    const BBox& box = tokens[static_cast<size_t>(ti)].box;
    Band* best = nullptr;
    double best_ratio = options.min_vertical_overlap;
    for (Band& band : bands) {
      double ratio = OverlapRatio(band.box, box);
      if (ratio >= best_ratio) {
        best_ratio = ratio;
        best = &band;
      }
    }
    if (best != nullptr) {
      best->token_indices.push_back(ti);
      best->box = best->box.Union(box);
    } else {
      bands.push_back(Band{box, {ti}});
    }
  }

  // Order bands top to bottom, tokens within a band left to right, then
  // split each band at wide horizontal gaps.
  std::sort(bands.begin(), bands.end(), [](const Band& a, const Band& b) {
    return a.box.CenterY() < b.box.CenterY();
  });

  std::vector<Line> lines;
  for (Band& band : bands) {
    std::sort(band.token_indices.begin(), band.token_indices.end(),
              [&](int a, int b) {
                return tokens[static_cast<size_t>(a)].box.x_min <
                       tokens[static_cast<size_t>(b)].box.x_min;
              });
    double max_gap = options.gap_factor * band.box.Height();
    Line current;
    for (int ti : band.token_indices) {
      const BBox& box = tokens[static_cast<size_t>(ti)].box;
      if (!current.token_indices.empty() &&
          box.x_min - current.box.x_max > max_gap) {
        lines.push_back(std::move(current));
        current = Line{};
      }
      if (current.token_indices.empty()) {
        current.box = box;
      } else {
        current.box = current.box.Union(box);
      }
      current.token_indices.push_back(ti);
    }
    if (!current.token_indices.empty()) lines.push_back(std::move(current));
  }
  return lines;
}

void DetectAndAssignLines(Document& doc, const LineDetectorOptions& options) {
  doc.set_lines(DetectLines(doc, options));
}

}  // namespace fieldswap
