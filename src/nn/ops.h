#ifndef FIELDSWAP_NN_OPS_H_
#define FIELDSWAP_NN_OPS_H_

#include <vector>

#include "nn/autodiff.h"

namespace fieldswap {

/// Row-wise layer normalization with learned gain/bias (each [1, d]).
/// Fused forward/backward for speed (one graph node instead of ~10).
Var LayerNorm(const Var& x, const Var& gain, const Var& bias,
              float epsilon = 1e-5f);

/// Sparse single-head scaled dot-product attention.
///
/// q, k, v are [T, d]. For each row i, attention is computed only over the
/// key/value rows listed in neighbors[i] (which should include i itself for
/// self-attention). Passing every index in each list degenerates to full
/// self-attention; restricted lists implement the off-axis-neighborhood
/// attention used by the extraction models. Output is [T, d].
Var NeighborAttention(const Var& q, const Var& k, const Var& v,
                      std::vector<std::vector<int>> neighbors);

/// Mean softmax cross-entropy over rows of `logits` [N, C] against integer
/// `labels` (size N). `class_weights` (size C, optional) rescales each
/// row's loss by the weight of its true class — used to counter extreme
/// O-tag imbalance in sequence labeling. Returns a [1,1] loss.
Var SoftmaxCrossEntropy(const Var& logits, std::vector<int> labels,
                        std::vector<float> class_weights = {});

/// Mean binary cross-entropy with logits. `logits` is [N, 1]; `targets`
/// holds N values in {0, 1}. Returns a [1,1] loss.
Var BinaryCrossEntropyWithLogits(const Var& logits,
                                 std::vector<float> targets);

/// Row-wise softmax probabilities of a plain matrix (inference helper; not
/// differentiable).
Matrix RowSoftmax(const Matrix& logits);

/// Graph-free fused LayerNorm forward: the exact arithmetic of
/// LayerNorm(...)->value without the tape. `out` preshaped like `x`.
void LayerNormInto(const Matrix& x, const Matrix& gain, const Matrix& bias,
                   Matrix& out, float epsilon = 1e-5f);

/// Graph-free neighbor-attention forward: the exact arithmetic of
/// NeighborAttention(...)->value without the tape. `out` preshaped [T, d].
void NeighborAttentionInto(const Matrix& q, const Matrix& k, const Matrix& v,
                           const std::vector<std::vector<int>>& neighbors,
                           Matrix& out);

}  // namespace fieldswap

#endif  // FIELDSWAP_NN_OPS_H_
