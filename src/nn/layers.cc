#include "nn/layers.h"

#include <numeric>

namespace fieldswap {

Linear::Linear(int in_dim, int out_dim, Rng& rng, std::string name)
    : name_(std::move(name)),
      weight_(Parameter(Matrix::Xavier(in_dim, out_dim, rng))),
      bias_(Parameter(Matrix::Zeros(1, out_dim))) {}

Var Linear::Apply(const Var& x) const {
  return AddRowBroadcast(MatMul(x, weight_), bias_);
}

void Linear::CollectParams(std::vector<NamedParam>& out) const {
  out.push_back({name_ + ".weight", weight_});
  out.push_back({name_ + ".bias", bias_});
}

Embedding::Embedding(int vocab, int dim, Rng& rng, std::string name)
    : name_(std::move(name)),
      table_(Parameter(Matrix::Gaussian(vocab, dim, 0.1f, rng))) {}

Var Embedding::Lookup(std::vector<int> ids) const {
  return GatherRows(table_, std::move(ids));
}

void Embedding::CollectParams(std::vector<NamedParam>& out) const {
  out.push_back({name_ + ".table", table_});
}

LayerNormLayer::LayerNormLayer(int dim, std::string name)
    : name_(std::move(name)),
      gain_(Parameter(Matrix::Full(1, dim, 1.0f))),
      bias_(Parameter(Matrix::Zeros(1, dim))) {}

void LayerNormLayer::CollectParams(std::vector<NamedParam>& out) const {
  out.push_back({name_ + ".gain", gain_});
  out.push_back({name_ + ".bias", bias_});
}

TransformerBlock::TransformerBlock(int dim, Rng& rng, std::string name)
    : name_(std::move(name)),
      ln_attn_(dim, name_ + ".ln_attn"),
      wq_(dim, dim, rng, name_ + ".wq"),
      wk_(dim, dim, rng, name_ + ".wk"),
      wv_(dim, dim, rng, name_ + ".wv"),
      wo_(dim, dim, rng, name_ + ".wo"),
      ln_ffn_(dim, name_ + ".ln_ffn"),
      ff1_(dim, 2 * dim, rng, name_ + ".ff1"),
      ff2_(2 * dim, dim, rng, name_ + ".ff2") {}

Var TransformerBlock::Apply(
    const Var& x, const std::vector<std::vector<int>>& neighbors) const {
  Var normed = ln_attn_.Apply(x);
  Var attn = NeighborAttention(wq_.Apply(normed), wk_.Apply(normed),
                               wv_.Apply(normed), neighbors);
  Var with_attn = Add(x, wo_.Apply(attn));
  Var ff = ff2_.Apply(Relu(ff1_.Apply(ln_ffn_.Apply(with_attn))));
  return Add(with_attn, ff);
}

void TransformerBlock::CollectParams(std::vector<NamedParam>& out) const {
  ln_attn_.CollectParams(out);
  wq_.CollectParams(out);
  wk_.CollectParams(out);
  wv_.CollectParams(out);
  wo_.CollectParams(out);
  ln_ffn_.CollectParams(out);
  ff1_.CollectParams(out);
  ff2_.CollectParams(out);
}

std::vector<std::vector<int>> FullAttentionNeighbors(int t) {
  std::vector<int> all(static_cast<size_t>(t));
  std::iota(all.begin(), all.end(), 0);
  return std::vector<std::vector<int>>(static_cast<size_t>(t), all);
}

}  // namespace fieldswap
