#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>

namespace fieldswap {
namespace {

constexpr uint32_t kMagic = 0x46535750;  // "FSWP"

void WriteU32(std::ofstream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& is, uint32_t& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return is.good();
}

}  // namespace

bool SaveCheckpoint(const std::string& path,
                    const std::vector<NamedParam>& params) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  WriteU32(os, kMagic);
  WriteU32(os, static_cast<uint32_t>(params.size()));
  for (const NamedParam& np : params) {
    WriteU32(os, static_cast<uint32_t>(np.name.size()));
    os.write(np.name.data(), static_cast<std::streamsize>(np.name.size()));
    const Matrix& m = np.param->value;
    WriteU32(os, static_cast<uint32_t>(m.rows()));
    WriteU32(os, static_cast<uint32_t>(m.cols()));
    os.write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(float)));
  }
  return os.good();
}

bool LoadCheckpoint(const std::string& path,
                    const std::vector<NamedParam>& params) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  uint32_t magic = 0, count = 0;
  if (!ReadU32(is, magic) || magic != kMagic) return false;
  if (!ReadU32(is, count)) return false;

  std::map<std::string, Matrix> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0, rows = 0, cols = 0;
    if (!ReadU32(is, name_len)) return false;
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is.good()) return false;
    if (!ReadU32(is, rows) || !ReadU32(is, cols)) return false;
    Matrix m(static_cast<int>(rows), static_cast<int>(cols));
    is.read(reinterpret_cast<char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
    if (!is.good()) return false;
    loaded.emplace(std::move(name), std::move(m));
  }

  for (const NamedParam& np : params) {
    auto it = loaded.find(np.name);
    if (it == loaded.end()) return false;
    if (it->second.rows() != np.param->value.rows() ||
        it->second.cols() != np.param->value.cols()) {
      return false;
    }
    np.param->value = it->second;
  }
  return true;
}

}  // namespace fieldswap
