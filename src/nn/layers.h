#ifndef FIELDSWAP_NN_LAYERS_H_
#define FIELDSWAP_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/autodiff.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace fieldswap {

/// A named trainable parameter, for optimizer registration and
/// checkpointing.
struct NamedParam {
  std::string name;
  Var param;
};

/// Fully connected layer: y = x * W + b.
class Linear {
 public:
  Linear() = default;
  Linear(int in_dim, int out_dim, Rng& rng, std::string name);

  Var Apply(const Var& x) const;

  /// Raw parameter values, for graph-free inference and quantized-plan
  /// construction (read-only; the tape never sees these reads).
  const Matrix& weight_value() const { return weight_->value; }
  const Matrix& bias_value() const { return bias_->value; }

  void CollectParams(std::vector<NamedParam>& out) const;

 private:
  std::string name_;
  Var weight_;  // [in, out]
  Var bias_;    // [1, out]
};

/// Embedding table with row lookup.
class Embedding {
 public:
  Embedding() = default;
  Embedding(int vocab, int dim, Rng& rng, std::string name);

  Var Lookup(std::vector<int> ids) const;
  int vocab() const { return table_->value.rows(); }
  int dim() const { return table_->value.cols(); }
  const Matrix& table_value() const { return table_->value; }

  void CollectParams(std::vector<NamedParam>& out) const;

 private:
  std::string name_;
  Var table_;  // [vocab, dim]
};

/// Layer normalization with learned gain and bias.
class LayerNormLayer {
 public:
  LayerNormLayer() = default;
  LayerNormLayer(int dim, std::string name);

  Var Apply(const Var& x) const { return LayerNorm(x, gain_, bias_); }

  const Matrix& gain_value() const { return gain_->value; }
  const Matrix& bias_value() const { return bias_->value; }

  void CollectParams(std::vector<NamedParam>& out) const;

 private:
  std::string name_;
  Var gain_;  // [1, dim]
  Var bias_;  // [1, dim]
};

/// Pre-LN transformer encoder block with sparse (neighbor-restricted)
/// single-head self-attention and a 2x feed-forward:
///   x += Attn(LN(x));  x += FFN(LN(x)).
class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(int dim, Rng& rng, std::string name);

  /// neighbors[i] lists the rows token i may attend to (include i itself).
  Var Apply(const Var& x, const std::vector<std::vector<int>>& neighbors) const;

  /// Sub-layer access for graph-free inference (model/inference.cc walks
  /// the same structure Apply() builds on the tape).
  const LayerNormLayer& ln_attn() const { return ln_attn_; }
  const Linear& wq() const { return wq_; }
  const Linear& wk() const { return wk_; }
  const Linear& wv() const { return wv_; }
  const Linear& wo() const { return wo_; }
  const LayerNormLayer& ln_ffn() const { return ln_ffn_; }
  const Linear& ff1() const { return ff1_; }
  const Linear& ff2() const { return ff2_; }

  void CollectParams(std::vector<NamedParam>& out) const;

 private:
  std::string name_;
  LayerNormLayer ln_attn_;
  Linear wq_, wk_, wv_, wo_;
  LayerNormLayer ln_ffn_;
  Linear ff1_, ff2_;
};

/// Builds a full self-attention neighbor list: every row attends to all rows.
std::vector<std::vector<int>> FullAttentionNeighbors(int t);

}  // namespace fieldswap

#endif  // FIELDSWAP_NN_LAYERS_H_
