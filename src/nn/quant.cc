#include "nn/quant.h"

#include <cmath>

#include "nn/kernels/backend.h"
#include "util/logging.h"

namespace fieldswap {

QuantizedTensor QuantizeTransposed(const Matrix& w) {
  QuantizedTensor q;
  q.rows = w.cols();
  q.cols = w.rows();
  q.data.assign(static_cast<size_t>(q.rows) * q.cols, 0);

  float maxabs = 0.0f;
  const float* wd = w.data();
  for (size_t i = 0; i < w.size(); ++i) {
    maxabs = std::max(maxabs, std::fabs(wd[i]));
  }
  q.scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;

  // Transpose into a float staging row, then quantize with the backend
  // kernel so scalar and SIMD produce identical bytes.
  const float inv_scale = 1.0f / q.scale;
  std::vector<float> staging(static_cast<size_t>(q.cols));
  const nn::Kernels& kernels = nn::ActiveKernels();
  for (int r = 0; r < q.rows; ++r) {
    for (int c = 0; c < q.cols; ++c) {
      staging[static_cast<size_t>(c)] = w.At(c, r);
    }
    kernels.quantize_i8(staging.data(), q.cols, inv_scale,
                        q.data.data() + static_cast<size_t>(r) * q.cols);
  }
  return q;
}

void QuantizedLinearInto(const Matrix& x, const QuantizedTensor& wt,
                         const Matrix& bias, Matrix& out) {
  FS_CHECK_EQ(x.cols(), wt.cols);
  FS_CHECK_EQ(bias.rows(), 1);
  FS_CHECK_EQ(bias.cols(), wt.rows);
  FS_CHECK_EQ(out.rows(), x.rows());
  FS_CHECK_EQ(out.cols(), wt.rows);
  const int m = x.rows();
  const int k = x.cols();
  const int n = wt.rows;
  const nn::Kernels& kernels = nn::ActiveKernels();

  float maxabs = 0.0f;
  const float* xd = x.data();
  for (size_t i = 0; i < x.size(); ++i) {
    maxabs = std::max(maxabs, std::fabs(xd[i]));
  }
  const float x_scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;

  // Serving calls this once per Linear per document; thread-local staging
  // keeps the hot path free of allocator traffic (and stays deterministic —
  // the buffers carry no state across calls, they are fully overwritten).
  thread_local std::vector<int8_t> xq;
  thread_local std::vector<int32_t> acc;
  xq.resize(static_cast<size_t>(m) * k);
  acc.resize(static_cast<size_t>(m) * n);
  kernels.quantize_i8(x.data(), m * k, 1.0f / x_scale, xq.data());
  kernels.gemm_i8(xq.data(), wt.ptr(), acc.data(), m, k, n);

  const float dequant = x_scale * wt.scale;
  const float* brow = bias.Row(0);
  for (int i = 0; i < m; ++i) {
    const int32_t* arow = acc.data() + static_cast<size_t>(i) * n;
    float* orow = out.Row(i);
    for (int j = 0; j < n; ++j) {
      orow[j] = static_cast<float>(arow[j]) * dequant + brow[j];
    }
  }
}

}  // namespace fieldswap
