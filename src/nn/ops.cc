#include "nn/ops.h"

#include <cmath>

#include "nn/kernels/backend.h"
#include "util/logging.h"

namespace fieldswap {
namespace {

bool AnyNeedsGrad(const std::vector<Var>& vars) {
  for (const Var& v : vars) {
    if (v->requires_grad || !v->parents.empty()) return true;
  }
  return false;
}

Var MakeFusedOp(Matrix value, std::vector<Var> parents,
                std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  if (AnyNeedsGrad(parents)) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

bool WantsGrad(const Var& v) { return v->requires_grad || !v->parents.empty(); }

}  // namespace

Var LayerNorm(const Var& x, const Var& gain, const Var& bias, float epsilon) {
  const int rows = x->value.rows();
  const int d = x->value.cols();
  FS_CHECK_EQ(gain->value.rows(), 1);
  FS_CHECK_EQ(gain->value.cols(), d);
  FS_CHECK_EQ(bias->value.rows(), 1);
  FS_CHECK_EQ(bias->value.cols(), d);

  Matrix out(rows, d);
  // Saved for backward: per-row inverse stddev and normalized values.
  auto inv_std = std::make_shared<std::vector<float>>(static_cast<size_t>(rows));
  auto normed = std::make_shared<Matrix>(rows, d);

  nn::ActiveKernels().layer_norm(x->value.data(), gain->value.Row(0),
                                 bias->value.Row(0), rows, d, epsilon,
                                 out.data(), normed->data(), inv_std->data());

  return MakeFusedOp(
      std::move(out), {x, gain, bias},
      [x, gain, bias, inv_std, normed, rows, d](Node& self) {
        const float* g = gain->value.Row(0);
        if (WantsGrad(gain)) gain->EnsureGrad();
        if (WantsGrad(bias)) bias->EnsureGrad();
        if (WantsGrad(x)) x->EnsureGrad();
        for (int r = 0; r < rows; ++r) {
          const float* grow = self.grad.Row(r);
          const float* nrow = normed->Row(r);
          if (WantsGrad(gain)) {
            float* gg = gain->grad.Row(0);
            for (int c = 0; c < d; ++c) gg[c] += grow[c] * nrow[c];
          }
          if (WantsGrad(bias)) {
            float* bg = bias->grad.Row(0);
            for (int c = 0; c < d; ++c) bg[c] += grow[c];
          }
          if (WantsGrad(x)) {
            // dl/dn = grow * gain; then layernorm backward:
            // dx = inv_std * (dn - mean(dn) - n * mean(dn * n))
            float mean_dn = 0, mean_dn_n = 0;
            for (int c = 0; c < d; ++c) {
              float dn = grow[c] * g[c];
              mean_dn += dn;
              mean_dn_n += dn * nrow[c];
            }
            mean_dn /= static_cast<float>(d);
            mean_dn_n /= static_cast<float>(d);
            float is = (*inv_std)[static_cast<size_t>(r)];
            float* xg = x->grad.Row(r);
            for (int c = 0; c < d; ++c) {
              float dn = grow[c] * g[c];
              xg[c] += is * (dn - mean_dn - nrow[c] * mean_dn_n);
            }
          }
        }
      });
}

Var NeighborAttention(const Var& q, const Var& k, const Var& v,
                      std::vector<std::vector<int>> neighbors) {
  const int t = q->value.rows();
  const int d = q->value.cols();
  FS_CHECK_EQ(k->value.cols(), d);
  FS_CHECK_EQ(v->value.cols(), d);
  FS_CHECK_EQ(k->value.rows(), v->value.rows());
  FS_CHECK_EQ(static_cast<int>(neighbors.size()), t);

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  Matrix out(t, d);
  // Attention weights per query row, saved for backward.
  auto weights = std::make_shared<std::vector<std::vector<float>>>(
      static_cast<size_t>(t));
  auto nbrs = std::make_shared<std::vector<std::vector<int>>>(
      std::move(neighbors));

  const nn::Kernels& kernels = nn::ActiveKernels();
  for (int i = 0; i < t; ++i) {
    const auto& ns = (*nbrs)[static_cast<size_t>(i)];
    FS_CHECK(!ns.empty()) << "empty neighbor list for row " << i;
    std::vector<float>& a = (*weights)[static_cast<size_t>(i)];
    a.resize(ns.size());
    kernels.attention_row(q->value.Row(i), k->value.data(), v->value.data(),
                          ns.data(), static_cast<int>(ns.size()), d,
                          inv_sqrt_d, a.data(), out.Row(i));
  }

  return MakeFusedOp(
      std::move(out), {q, k, v},
      [q, k, v, weights, nbrs, t, d, inv_sqrt_d](Node& self) {
        const bool gq = WantsGrad(q);
        const bool gk = WantsGrad(k);
        const bool gv = WantsGrad(v);
        if (gq) q->EnsureGrad();
        if (gk) k->EnsureGrad();
        if (gv) v->EnsureGrad();
        const nn::Kernels& kernels = nn::ActiveKernels();
        std::vector<float> da;
        for (int i = 0; i < t; ++i) {
          const auto& ns = (*nbrs)[static_cast<size_t>(i)];
          const auto& a = (*weights)[static_cast<size_t>(i)];
          const float* grow = self.grad.Row(i);
          da.assign(ns.size(), 0.0f);
          float dot_a_da = 0;
          for (size_t j = 0; j < ns.size(); ++j) {
            if (gv) {
              kernels.axpy(a[j], grow, v->grad.Row(ns[j]), d);
            }
            da[j] = kernels.dot(grow, v->value.Row(ns[j]), d);
            dot_a_da += a[j] * da[j];
          }
          if (!gq && !gk) continue;
          const float* qrow = q->value.Row(i);
          float* qg = gq ? q->grad.Row(i) : nullptr;
          // Every score gradient is applied unconditionally: skipping
          // bit-exact zeros would make the executed FLOP sequence
          // data-dependent, breaking scalar-vs-SIMD comparability (ISSUE 7).
          for (size_t j = 0; j < ns.size(); ++j) {
            float ds = a[j] * (da[j] - dot_a_da) * inv_sqrt_d;
            const float* krow = k->value.Row(ns[j]);
            if (gq) {
              kernels.axpy(ds, krow, qg, d);
            }
            if (gk) {
              kernels.axpy(ds, qrow, k->grad.Row(ns[j]), d);
            }
          }
        }
      });
}

Var SoftmaxCrossEntropy(const Var& logits, std::vector<int> labels,
                        std::vector<float> class_weights) {
  const int n = logits->value.rows();
  const int c = logits->value.cols();
  FS_CHECK_EQ(static_cast<int>(labels.size()), n);
  FS_CHECK_GT(n, 0);
  if (!class_weights.empty()) {
    FS_CHECK_EQ(static_cast<int>(class_weights.size()), c);
  }

  auto probs = std::make_shared<Matrix>(RowSoftmax(logits->value));
  auto row_weights = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n), 1.0f);
  double total_weight = 0;
  double loss_sum = 0;
  for (int i = 0; i < n; ++i) {
    int y = labels[static_cast<size_t>(i)];
    FS_CHECK_GE(y, 0);
    FS_CHECK_LT(y, c);
    float w = class_weights.empty() ? 1.0f
                                    : class_weights[static_cast<size_t>(y)];
    (*row_weights)[static_cast<size_t>(i)] = w;
    total_weight += w;
    float p = std::max(probs->At(i, y), 1e-12f);
    loss_sum -= static_cast<double>(w) * std::log(p);
  }
  if (total_weight <= 0) total_weight = 1;
  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(loss_sum / total_weight);

  return MakeFusedOp(
      std::move(out), {logits},
      [logits, probs, row_weights, labels = std::move(labels), n, c,
       total_weight](Node& self) {
        if (!WantsGrad(logits)) return;
        logits->EnsureGrad();
        float g = self.grad.At(0, 0) / static_cast<float>(total_weight);
        for (int i = 0; i < n; ++i) {
          float w = (*row_weights)[static_cast<size_t>(i)] * g;
          const float* prow = probs->Row(i);
          float* lrow = logits->grad.Row(i);
          int y = labels[static_cast<size_t>(i)];
          // A row whose true-class probability was clamped in the forward
          // (p_y < 1e-12) sits on the flat part of -log(max(p, 1e-12)), so
          // its gradient is exactly zero; the unclamped formula would push
          // a huge spurious gradient through logits the loss never saw.
          if (prow[y] < 1e-12f) continue;
          for (int j = 0; j < c; ++j) {
            lrow[j] += w * (prow[j] - (j == y ? 1.0f : 0.0f));
          }
        }
      });
}

Var BinaryCrossEntropyWithLogits(const Var& logits,
                                 std::vector<float> targets) {
  const int n = logits->value.rows();
  FS_CHECK_EQ(logits->value.cols(), 1);
  FS_CHECK_EQ(static_cast<int>(targets.size()), n);
  FS_CHECK_GT(n, 0);

  auto sigm = std::make_shared<std::vector<float>>(static_cast<size_t>(n));
  double loss_sum = 0;
  for (int i = 0; i < n; ++i) {
    float z = logits->value.At(i, 0);
    float p = 1.0f / (1.0f + std::exp(-z));
    (*sigm)[static_cast<size_t>(i)] = p;
    float y = targets[static_cast<size_t>(i)];
    // Numerically stable: max(z,0) - z*y + log(1 + exp(-|z|)).
    loss_sum += std::max(z, 0.0f) - z * y +
                std::log1p(std::exp(-std::fabs(z)));
  }
  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(loss_sum / n);

  return MakeFusedOp(std::move(out), {logits},
                     [logits, sigm, targets = std::move(targets), n](Node& self) {
                       if (!WantsGrad(logits)) return;
                       logits->EnsureGrad();
                       float g = self.grad.At(0, 0) / static_cast<float>(n);
                       for (int i = 0; i < n; ++i) {
                         logits->grad.At(i, 0) +=
                             g * ((*sigm)[static_cast<size_t>(i)] -
                                  targets[static_cast<size_t>(i)]);
                       }
                     });
}

void LayerNormInto(const Matrix& x, const Matrix& gain, const Matrix& bias,
                   Matrix& out, float epsilon) {
  FS_CHECK_EQ(gain.rows(), 1);
  FS_CHECK_EQ(gain.cols(), x.cols());
  FS_CHECK_EQ(bias.rows(), 1);
  FS_CHECK_EQ(bias.cols(), x.cols());
  FS_CHECK_EQ(out.rows(), x.rows());
  FS_CHECK_EQ(out.cols(), x.cols());
  nn::ActiveKernels().layer_norm(x.data(), gain.Row(0), bias.Row(0), x.rows(),
                                 x.cols(), epsilon, out.data(),
                                 /*normed=*/nullptr, /*inv_std=*/nullptr);
}

void NeighborAttentionInto(const Matrix& q, const Matrix& k, const Matrix& v,
                           const std::vector<std::vector<int>>& neighbors,
                           Matrix& out) {
  const int t = q.rows();
  const int d = q.cols();
  FS_CHECK_EQ(k.cols(), d);
  FS_CHECK_EQ(v.cols(), d);
  FS_CHECK_EQ(k.rows(), v.rows());
  FS_CHECK_EQ(static_cast<int>(neighbors.size()), t);
  FS_CHECK_EQ(out.rows(), t);
  FS_CHECK_EQ(out.cols(), d);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  const nn::Kernels& kernels = nn::ActiveKernels();
  std::vector<float> weights;
  for (int i = 0; i < t; ++i) {
    const auto& ns = neighbors[static_cast<size_t>(i)];
    FS_CHECK(!ns.empty()) << "empty neighbor list for row " << i;
    weights.resize(ns.size());
    kernels.attention_row(q.Row(i), k.data(), v.data(), ns.data(),
                          static_cast<int>(ns.size()), d, inv_sqrt_d,
                          weights.data(), out.Row(i));
  }
}

Matrix RowSoftmax(const Matrix& logits) {
  Matrix probs(logits.rows(), logits.cols());
  for (int r = 0; r < logits.rows(); ++r) {
    const float* in = logits.Row(r);
    float* out = probs.Row(r);
    float max_v = -1e30f;
    for (int c = 0; c < logits.cols(); ++c) max_v = std::max(max_v, in[c]);
    float sum = 0;
    for (int c = 0; c < logits.cols(); ++c) {
      out[c] = std::exp(in[c] - max_v);
      sum += out[c];
    }
    for (int c = 0; c < logits.cols(); ++c) out[c] /= sum;
  }
  return probs;
}

}  // namespace fieldswap
