#include "nn/ops.h"

#include <cmath>

#include "util/logging.h"

namespace fieldswap {
namespace {

bool AnyNeedsGrad(const std::vector<Var>& vars) {
  for (const Var& v : vars) {
    if (v->requires_grad || !v->parents.empty()) return true;
  }
  return false;
}

Var MakeFusedOp(Matrix value, std::vector<Var> parents,
                std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  if (AnyNeedsGrad(parents)) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

bool WantsGrad(const Var& v) { return v->requires_grad || !v->parents.empty(); }

}  // namespace

Var LayerNorm(const Var& x, const Var& gain, const Var& bias, float epsilon) {
  const int rows = x->value.rows();
  const int d = x->value.cols();
  FS_CHECK_EQ(gain->value.rows(), 1);
  FS_CHECK_EQ(gain->value.cols(), d);
  FS_CHECK_EQ(bias->value.rows(), 1);
  FS_CHECK_EQ(bias->value.cols(), d);

  Matrix out(rows, d);
  // Saved for backward: per-row inverse stddev and normalized values.
  auto inv_std = std::make_shared<std::vector<float>>(static_cast<size_t>(rows));
  auto normed = std::make_shared<Matrix>(rows, d);

  for (int r = 0; r < rows; ++r) {
    const float* row = x->value.Row(r);
    double mean = 0;
    for (int c = 0; c < d; ++c) mean += row[c];
    mean /= d;
    double var = 0;
    for (int c = 0; c < d; ++c) {
      double diff = row[c] - mean;
      var += diff * diff;
    }
    var /= d;
    float is = 1.0f / std::sqrt(static_cast<float>(var) + epsilon);
    (*inv_std)[static_cast<size_t>(r)] = is;
    float* nrow = normed->Row(r);
    float* orow = out.Row(r);
    const float* g = gain->value.Row(0);
    const float* b = bias->value.Row(0);
    for (int c = 0; c < d; ++c) {
      float n = (row[c] - static_cast<float>(mean)) * is;
      nrow[c] = n;
      orow[c] = n * g[c] + b[c];
    }
  }

  return MakeFusedOp(
      std::move(out), {x, gain, bias},
      [x, gain, bias, inv_std, normed, rows, d](Node& self) {
        const float* g = gain->value.Row(0);
        if (WantsGrad(gain)) gain->EnsureGrad();
        if (WantsGrad(bias)) bias->EnsureGrad();
        if (WantsGrad(x)) x->EnsureGrad();
        for (int r = 0; r < rows; ++r) {
          const float* grow = self.grad.Row(r);
          const float* nrow = normed->Row(r);
          if (WantsGrad(gain)) {
            float* gg = gain->grad.Row(0);
            for (int c = 0; c < d; ++c) gg[c] += grow[c] * nrow[c];
          }
          if (WantsGrad(bias)) {
            float* bg = bias->grad.Row(0);
            for (int c = 0; c < d; ++c) bg[c] += grow[c];
          }
          if (WantsGrad(x)) {
            // dl/dn = grow * gain; then layernorm backward:
            // dx = inv_std * (dn - mean(dn) - n * mean(dn * n))
            float mean_dn = 0, mean_dn_n = 0;
            for (int c = 0; c < d; ++c) {
              float dn = grow[c] * g[c];
              mean_dn += dn;
              mean_dn_n += dn * nrow[c];
            }
            mean_dn /= static_cast<float>(d);
            mean_dn_n /= static_cast<float>(d);
            float is = (*inv_std)[static_cast<size_t>(r)];
            float* xg = x->grad.Row(r);
            for (int c = 0; c < d; ++c) {
              float dn = grow[c] * g[c];
              xg[c] += is * (dn - mean_dn - nrow[c] * mean_dn_n);
            }
          }
        }
      });
}

Var NeighborAttention(const Var& q, const Var& k, const Var& v,
                      std::vector<std::vector<int>> neighbors) {
  const int t = q->value.rows();
  const int d = q->value.cols();
  FS_CHECK_EQ(k->value.cols(), d);
  FS_CHECK_EQ(v->value.cols(), d);
  FS_CHECK_EQ(k->value.rows(), v->value.rows());
  FS_CHECK_EQ(static_cast<int>(neighbors.size()), t);

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
  Matrix out(t, d);
  // Attention weights per query row, saved for backward.
  auto weights = std::make_shared<std::vector<std::vector<float>>>(
      static_cast<size_t>(t));
  auto nbrs = std::make_shared<std::vector<std::vector<int>>>(
      std::move(neighbors));

  for (int i = 0; i < t; ++i) {
    const auto& ns = (*nbrs)[static_cast<size_t>(i)];
    FS_CHECK(!ns.empty()) << "empty neighbor list for row " << i;
    std::vector<float>& a = (*weights)[static_cast<size_t>(i)];
    a.resize(ns.size());
    const float* qrow = q->value.Row(i);
    float max_s = -1e30f;
    for (size_t j = 0; j < ns.size(); ++j) {
      a[j] = DotSpan(qrow, k->value.Row(ns[j]), d) * inv_sqrt_d;
      max_s = std::max(max_s, a[j]);
    }
    float sum = 0;
    for (float& s : a) {
      s = std::exp(s - max_s);
      sum += s;
    }
    float* orow = out.Row(i);
    for (size_t j = 0; j < ns.size(); ++j) {
      a[j] /= sum;
      const float* vrow = v->value.Row(ns[j]);
      for (int c = 0; c < d; ++c) orow[c] += a[j] * vrow[c];
    }
  }

  return MakeFusedOp(
      std::move(out), {q, k, v},
      [q, k, v, weights, nbrs, t, d, inv_sqrt_d](Node& self) {
        const bool gq = WantsGrad(q);
        const bool gk = WantsGrad(k);
        const bool gv = WantsGrad(v);
        if (gq) q->EnsureGrad();
        if (gk) k->EnsureGrad();
        if (gv) v->EnsureGrad();
        std::vector<float> da;
        for (int i = 0; i < t; ++i) {
          const auto& ns = (*nbrs)[static_cast<size_t>(i)];
          const auto& a = (*weights)[static_cast<size_t>(i)];
          const float* grow = self.grad.Row(i);
          da.assign(ns.size(), 0.0f);
          float dot_a_da = 0;
          for (size_t j = 0; j < ns.size(); ++j) {
            if (gv) {
              float* vg = v->grad.Row(ns[j]);
              for (int c = 0; c < d; ++c) vg[c] += a[j] * grow[c];
            }
            da[j] = DotSpan(grow, v->value.Row(ns[j]), d);
            dot_a_da += a[j] * da[j];
          }
          if (!gq && !gk) continue;
          const float* qrow = q->value.Row(i);
          float* qg = gq ? q->grad.Row(i) : nullptr;
          for (size_t j = 0; j < ns.size(); ++j) {
            float ds = a[j] * (da[j] - dot_a_da) * inv_sqrt_d;
            // fslint: allow(no-float-equality): exact-zero sparsity skip —
            // only bit-exact zeros carry no gradient, so == is the point.
            if (ds == 0.0f) continue;
            const float* krow = k->value.Row(ns[j]);
            if (gq) {
              for (int c = 0; c < d; ++c) qg[c] += ds * krow[c];
            }
            if (gk) {
              float* kg = k->grad.Row(ns[j]);
              for (int c = 0; c < d; ++c) kg[c] += ds * qrow[c];
            }
          }
        }
      });
}

Var SoftmaxCrossEntropy(const Var& logits, std::vector<int> labels,
                        std::vector<float> class_weights) {
  const int n = logits->value.rows();
  const int c = logits->value.cols();
  FS_CHECK_EQ(static_cast<int>(labels.size()), n);
  FS_CHECK_GT(n, 0);
  if (!class_weights.empty()) {
    FS_CHECK_EQ(static_cast<int>(class_weights.size()), c);
  }

  auto probs = std::make_shared<Matrix>(RowSoftmax(logits->value));
  auto row_weights = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n), 1.0f);
  double total_weight = 0;
  double loss_sum = 0;
  for (int i = 0; i < n; ++i) {
    int y = labels[static_cast<size_t>(i)];
    FS_CHECK_GE(y, 0);
    FS_CHECK_LT(y, c);
    float w = class_weights.empty() ? 1.0f
                                    : class_weights[static_cast<size_t>(y)];
    (*row_weights)[static_cast<size_t>(i)] = w;
    total_weight += w;
    float p = std::max(probs->At(i, y), 1e-12f);
    loss_sum -= static_cast<double>(w) * std::log(p);
  }
  if (total_weight <= 0) total_weight = 1;
  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(loss_sum / total_weight);

  return MakeFusedOp(
      std::move(out), {logits},
      [logits, probs, row_weights, labels = std::move(labels), n, c,
       total_weight](Node& self) {
        if (!WantsGrad(logits)) return;
        logits->EnsureGrad();
        float g = self.grad.At(0, 0) / static_cast<float>(total_weight);
        for (int i = 0; i < n; ++i) {
          float w = (*row_weights)[static_cast<size_t>(i)] * g;
          const float* prow = probs->Row(i);
          float* lrow = logits->grad.Row(i);
          int y = labels[static_cast<size_t>(i)];
          for (int j = 0; j < c; ++j) {
            lrow[j] += w * (prow[j] - (j == y ? 1.0f : 0.0f));
          }
        }
      });
}

Var BinaryCrossEntropyWithLogits(const Var& logits,
                                 std::vector<float> targets) {
  const int n = logits->value.rows();
  FS_CHECK_EQ(logits->value.cols(), 1);
  FS_CHECK_EQ(static_cast<int>(targets.size()), n);
  FS_CHECK_GT(n, 0);

  auto sigm = std::make_shared<std::vector<float>>(static_cast<size_t>(n));
  double loss_sum = 0;
  for (int i = 0; i < n; ++i) {
    float z = logits->value.At(i, 0);
    float p = 1.0f / (1.0f + std::exp(-z));
    (*sigm)[static_cast<size_t>(i)] = p;
    float y = targets[static_cast<size_t>(i)];
    // Numerically stable: max(z,0) - z*y + log(1 + exp(-|z|)).
    loss_sum += std::max(z, 0.0f) - z * y +
                std::log1p(std::exp(-std::fabs(z)));
  }
  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(loss_sum / n);

  return MakeFusedOp(std::move(out), {logits},
                     [logits, sigm, targets = std::move(targets), n](Node& self) {
                       if (!WantsGrad(logits)) return;
                       logits->EnsureGrad();
                       float g = self.grad.At(0, 0) / static_cast<float>(n);
                       for (int i = 0; i < n; ++i) {
                         logits->grad.At(i, 0) +=
                             g * ((*sigm)[static_cast<size_t>(i)] -
                                  targets[static_cast<size_t>(i)]);
                       }
                     });
}

Matrix RowSoftmax(const Matrix& logits) {
  Matrix probs(logits.rows(), logits.cols());
  for (int r = 0; r < logits.rows(); ++r) {
    const float* in = logits.Row(r);
    float* out = probs.Row(r);
    float max_v = -1e30f;
    for (int c = 0; c < logits.cols(); ++c) max_v = std::max(max_v, in[c]);
    float sum = 0;
    for (int c = 0; c < logits.cols(); ++c) {
      out[c] = std::exp(in[c] - max_v);
      sum += out[c];
    }
    for (int c = 0; c < logits.cols(); ++c) out[c] /= sum;
  }
  return probs;
}

}  // namespace fieldswap
