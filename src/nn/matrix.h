#ifndef FIELDSWAP_NN_MATRIX_H_
#define FIELDSWAP_NN_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fieldswap {

/// Dense row-major float matrix — the sole tensor type of the nn library.
/// Vectors are 1xN or Nx1 matrices; scalars are 1x1. Sized for the small
/// models this reproduction trains (d_model 16-64, <=256 tokens), so all
/// kernels are simple loops.
///
/// A Matrix either owns its storage (the default) or is a read-only *view*
/// over external row-major floats (Matrix::View). Views exist for the
/// mmap-able flat-snapshot serving path (serve/flat_snapshot.h): N server
/// shards map one weight file and every shard's model reads the same
/// physical pages. Views are shallow-copied (copies alias the same
/// storage, which must outlive them) and reject every mutating entry
/// point with an FS_CHECK — a flat-loaded model is inference-only.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {}

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Full(int rows, int cols, float value);
  /// Uniform(-limit, limit) with Xavier/Glorot limit sqrt(6/(rows+cols)).
  static Matrix Xavier(int rows, int cols, Rng& rng);
  /// Gaussian(0, stddev).
  static Matrix Gaussian(int rows, int cols, float stddev, Rng& rng);
  static Matrix FromValues(int rows, int cols, std::vector<float> values);
  /// Non-owning read-only view over `rows * cols` external row-major
  /// floats. The storage must outlive the view and every copy of it.
  static Matrix View(const float* values, int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const {
    return static_cast<size_t>(rows_) * static_cast<size_t>(cols_);
  }
  bool empty() const { return size() == 0; }
  bool is_view() const { return view_ != nullptr; }

  float& At(int r, int c) {
    return MutableData()[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                         static_cast<size_t>(c)];
  }
  float At(int r, int c) const {
    return data()[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                  static_cast<size_t>(c)];
  }

  float* Row(int r) {
    return MutableData() + static_cast<size_t>(r) * static_cast<size_t>(cols_);
  }
  const float* Row(int r) const {
    return data() + static_cast<size_t>(r) * static_cast<size_t>(cols_);
  }

  float* data() { return MutableData(); }
  const float* data() const {
    return view_ != nullptr ? view_ : data_.data();
  }
  /// Owned storage only (views FS_CHECK): use data()/size() to read
  /// storage-agnostically.
  const std::vector<float>& values() const;

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  /// this += other (same shape).
  void AddInPlace(const Matrix& other);
  /// this += scale * other (same shape).
  void AxpyInPlace(float scale, const Matrix& other);
  /// this *= scale.
  void ScaleInPlace(float scale);

  /// Frobenius norm.
  float Norm() const;

  std::string DebugString() const;

  /// Deep equality: same shape and element bytes, regardless of whether
  /// either side owns its storage or views external memory.
  friend bool operator==(const Matrix& a, const Matrix& b);

 private:
  /// Mutation doorway: every non-const accessor funnels here so a view can
  /// never be written through (the mapped file is PROT_READ; a stray write
  /// would be a SIGSEGV at best and silent UB at worst).
  float* MutableData();

  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
  const float* view_ = nullptr;  // aliases external storage when non-null
};

/// GEMM entry points. One shared contract (ISSUE 7): `out` is always a
/// caller-prepared matrix of the exact result shape (FS_CHECKed — never
/// resized here), and whether the product overwrites or accumulates is
/// explicit in the function name, never implied by buffer state. All four
/// dispatch to the active kernel backend (see nn/kernels.h).

/// out = a * b, shapes [m,k] x [k,n] -> [m,n]. Overwrites.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out);

/// out += a * b, shapes [m,k] x [k,n] -> [m,n].
void MatMulAccumInto(const Matrix& a, const Matrix& b, Matrix& out);

/// out += a^T * b, shapes [k,m]^T x [k,n] -> [m,n].
void MatMulTransAAccumInto(const Matrix& a, const Matrix& b, Matrix& out);

/// out += a * b^T, shapes [m,k] x [n,k]^T -> [m,n].
void MatMulTransBAccumInto(const Matrix& a, const Matrix& b, Matrix& out);

/// Dot product of two equal-length float spans (backend-dispatched).
float DotSpan(const float* a, const float* b, int n);

}  // namespace fieldswap

#endif  // FIELDSWAP_NN_MATRIX_H_
