#include "nn/autodiff.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace fieldswap {

void Node::EnsureGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    grad = Matrix(value.rows(), value.cols());
  }
}

void Node::AccumulateGrad(const Matrix& delta) {
  EnsureGrad();
  grad.AddInPlace(delta);
}

Var Constant(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return node;
}

Var Parameter(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->EnsureGrad();
  return node;
}

namespace {

/// True if gradient needs to flow into any ancestor of this node.
bool NeedsGrad(const Var& v) {
  return v->requires_grad || !v->parents.empty();
}

Var MakeOp(Matrix value, std::vector<Var> parents,
           std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  // Only record edges that gradient must traverse; this prunes the tape.
  bool any = false;
  for (const Var& p : parents) {
    if (NeedsGrad(p)) any = true;
  }
  if (any) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

void TopoSort(const Var& root, std::vector<Node*>& order) {
  // Iterative DFS post-order.
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& loss) {
  std::vector<Node*> order;
  TopoSort(loss, order);
  loss->EnsureGrad();
  loss->grad.Fill(1.0f);
  // Post-order puts the loss last; walk in reverse topological order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->grad.rows() == node->value.rows() &&
        node->grad.cols() == node->value.cols()) {
      node->backward_fn(*node);
    }
  }
}

Var Add(const Var& a, const Var& b) {
  FS_CHECK_EQ(a->value.rows(), b->value.rows());
  FS_CHECK_EQ(a->value.cols(), b->value.cols());
  Matrix out = a->value;
  out.AddInPlace(b->value);
  return MakeOp(std::move(out), {a, b}, [a, b](Node& self) {
    if (NeedsGrad(a)) a->AccumulateGrad(self.grad);
    if (NeedsGrad(b)) b->AccumulateGrad(self.grad);
  });
}

Var AddRowBroadcast(const Var& a, const Var& b) {
  FS_CHECK_EQ(b->value.rows(), 1);
  FS_CHECK_EQ(a->value.cols(), b->value.cols());
  Matrix out = a->value;
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    const float* brow = b->value.Row(0);
    for (int c = 0; c < out.cols(); ++c) row[c] += brow[c];
  }
  return MakeOp(std::move(out), {a, b}, [a, b](Node& self) {
    if (NeedsGrad(a)) a->AccumulateGrad(self.grad);
    if (NeedsGrad(b)) {
      b->EnsureGrad();
      float* brow = b->grad.Row(0);
      for (int r = 0; r < self.grad.rows(); ++r) {
        const float* grow = self.grad.Row(r);
        for (int c = 0; c < self.grad.cols(); ++c) brow[c] += grow[c];
      }
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  FS_CHECK_EQ(a->value.rows(), b->value.rows());
  FS_CHECK_EQ(a->value.cols(), b->value.cols());
  Matrix out = a->value;
  out.AxpyInPlace(-1.0f, b->value);
  return MakeOp(std::move(out), {a, b}, [a, b](Node& self) {
    if (NeedsGrad(a)) a->AccumulateGrad(self.grad);
    if (NeedsGrad(b)) {
      b->EnsureGrad();
      b->grad.AxpyInPlace(-1.0f, self.grad);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  FS_CHECK_EQ(a->value.rows(), b->value.rows());
  FS_CHECK_EQ(a->value.cols(), b->value.cols());
  Matrix out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] *= b->value.data()[i];
  }
  return MakeOp(std::move(out), {a, b}, [a, b](Node& self) {
    if (NeedsGrad(a)) {
      a->EnsureGrad();
      for (size_t i = 0; i < self.grad.size(); ++i) {
        a->grad.data()[i] += self.grad.data()[i] * b->value.data()[i];
      }
    }
    if (NeedsGrad(b)) {
      b->EnsureGrad();
      for (size_t i = 0; i < self.grad.size(); ++i) {
        b->grad.data()[i] += self.grad.data()[i] * a->value.data()[i];
      }
    }
  });
}

Var Scale(const Var& a, float s) {
  Matrix out = a->value;
  out.ScaleInPlace(s);
  return MakeOp(std::move(out), {a}, [a, s](Node& self) {
    if (NeedsGrad(a)) {
      a->EnsureGrad();
      a->grad.AxpyInPlace(s, self.grad);
    }
  });
}

Var Relu(const Var& a) {
  Matrix out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::max(0.0f, out.data()[i]);
  }
  return MakeOp(std::move(out), {a}, [a](Node& self) {
    if (!NeedsGrad(a)) return;
    a->EnsureGrad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      if (self.value.data()[i] > 0.0f) {
        a->grad.data()[i] += self.grad.data()[i];
      }
    }
  });
}

Var Tanh(const Var& a) {
  Matrix out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  return MakeOp(std::move(out), {a}, [a](Node& self) {
    if (!NeedsGrad(a)) return;
    a->EnsureGrad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      float y = self.value.data()[i];
      a->grad.data()[i] += self.grad.data()[i] * (1.0f - y * y);
    }
  });
}

Var Sigmoid(const Var& a) {
  Matrix out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = 1.0f / (1.0f + std::exp(-out.data()[i]));
  }
  return MakeOp(std::move(out), {a}, [a](Node& self) {
    if (!NeedsGrad(a)) return;
    a->EnsureGrad();
    for (size_t i = 0; i < self.grad.size(); ++i) {
      float y = self.value.data()[i];
      a->grad.data()[i] += self.grad.data()[i] * y * (1.0f - y);
    }
  });
}

Var MatMul(const Var& a, const Var& b) {
  Matrix out(a->value.rows(), b->value.cols());
  MatMulInto(a->value, b->value, out);
  return MakeOp(std::move(out), {a, b}, [a, b](Node& self) {
    if (NeedsGrad(a)) {
      a->EnsureGrad();
      MatMulTransBAccumInto(self.grad, b->value, a->grad);  // dA += dOut * B^T
    }
    if (NeedsGrad(b)) {
      b->EnsureGrad();
      MatMulTransAAccumInto(a->value, self.grad, b->grad);  // dB += A^T * dOut
    }
  });
}

Var ConcatCols(const Var& a, const Var& b) {
  FS_CHECK_EQ(a->value.rows(), b->value.rows());
  int rows = a->value.rows();
  int ca = a->value.cols();
  int cb = b->value.cols();
  Matrix out(rows, ca + cb);
  for (int r = 0; r < rows; ++r) {
    std::copy(a->value.Row(r), a->value.Row(r) + ca, out.Row(r));
    std::copy(b->value.Row(r), b->value.Row(r) + cb, out.Row(r) + ca);
  }
  return MakeOp(std::move(out), {a, b}, [a, b, ca, cb](Node& self) {
    if (NeedsGrad(a)) {
      a->EnsureGrad();
      for (int r = 0; r < self.grad.rows(); ++r) {
        const float* grow = self.grad.Row(r);
        float* arow = a->grad.Row(r);
        for (int c = 0; c < ca; ++c) arow[c] += grow[c];
      }
    }
    if (NeedsGrad(b)) {
      b->EnsureGrad();
      for (int r = 0; r < self.grad.rows(); ++r) {
        const float* grow = self.grad.Row(r);
        float* brow = b->grad.Row(r);
        for (int c = 0; c < cb; ++c) brow[c] += grow[ca + c];
      }
    }
  });
}

Var SliceRows(const Var& a, int first, int count) {
  FS_CHECK_GE(first, 0);
  FS_CHECK_LE(first + count, a->value.rows());
  Matrix out(count, a->value.cols());
  for (int r = 0; r < count; ++r) {
    std::copy(a->value.Row(first + r),
              a->value.Row(first + r) + a->value.cols(), out.Row(r));
  }
  return MakeOp(std::move(out), {a}, [a, first, count](Node& self) {
    if (!NeedsGrad(a)) return;
    a->EnsureGrad();
    for (int r = 0; r < count; ++r) {
      const float* grow = self.grad.Row(r);
      float* arow = a->grad.Row(first + r);
      for (int c = 0; c < self.grad.cols(); ++c) arow[c] += grow[c];
    }
  });
}

Var GatherRows(const Var& table, std::vector<int> ids) {
  int cols = table->value.cols();
  Matrix out(static_cast<int>(ids.size()), cols);
  for (size_t i = 0; i < ids.size(); ++i) {
    FS_CHECK_GE(ids[i], 0);
    FS_CHECK_LT(ids[i], table->value.rows());
    std::copy(table->value.Row(ids[i]), table->value.Row(ids[i]) + cols,
              out.Row(static_cast<int>(i)));
  }
  return MakeOp(std::move(out), {table},
                [table, ids = std::move(ids)](Node& self) {
                  if (!NeedsGrad(table)) return;
                  table->EnsureGrad();
                  int cols = self.grad.cols();
                  for (size_t i = 0; i < ids.size(); ++i) {
                    const float* grow = self.grad.Row(static_cast<int>(i));
                    float* trow = table->grad.Row(ids[i]);
                    for (int c = 0; c < cols; ++c) trow[c] += grow[c];
                  }
                });
}

Var MeanAll(const Var& a) {
  size_t n = a->value.size();
  FS_CHECK_GT(n, 0u);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) sum += a->value.data()[i];
  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(sum / static_cast<double>(n));
  return MakeOp(std::move(out), {a}, [a, n](Node& self) {
    if (!NeedsGrad(a)) return;
    a->EnsureGrad();
    float g = self.grad.At(0, 0) / static_cast<float>(n);
    for (size_t i = 0; i < n; ++i) a->grad.data()[i] += g;
  });
}

Var MaxPoolRows(const Var& a) {
  FS_CHECK_GT(a->value.rows(), 0);
  int cols = a->value.cols();
  Matrix out(1, cols);
  std::vector<int> argmax(static_cast<size_t>(cols), 0);
  for (int c = 0; c < cols; ++c) {
    float best = a->value.At(0, c);
    int best_r = 0;
    for (int r = 1; r < a->value.rows(); ++r) {
      if (a->value.At(r, c) > best) {
        best = a->value.At(r, c);
        best_r = r;
      }
    }
    out.At(0, c) = best;
    argmax[static_cast<size_t>(c)] = best_r;
  }
  return MakeOp(std::move(out), {a},
                [a, argmax = std::move(argmax)](Node& self) {
                  if (!NeedsGrad(a)) return;
                  a->EnsureGrad();
                  for (int c = 0; c < self.grad.cols(); ++c) {
                    a->grad.At(argmax[static_cast<size_t>(c)], c) +=
                        self.grad.At(0, c);
                  }
                });
}

Var MeanRows(const Var& a) {
  int rows = a->value.rows();
  int cols = a->value.cols();
  FS_CHECK_GT(cols, 0);
  Matrix out(rows, 1);
  for (int r = 0; r < rows; ++r) {
    double sum = 0;
    const float* row = a->value.Row(r);
    for (int c = 0; c < cols; ++c) sum += row[c];
    out.At(r, 0) = static_cast<float>(sum / cols);
  }
  return MakeOp(std::move(out), {a}, [a, cols](Node& self) {
    if (!NeedsGrad(a)) return;
    a->EnsureGrad();
    for (int r = 0; r < self.grad.rows(); ++r) {
      float g = self.grad.At(r, 0) / static_cast<float>(cols);
      float* arow = a->grad.Row(r);
      for (int c = 0; c < cols; ++c) arow[c] += g;
    }
  });
}

}  // namespace fieldswap
