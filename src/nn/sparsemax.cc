#include "nn/sparsemax.h"

#include <algorithm>
#include <cmath>

namespace fieldswap {

std::vector<double> Sparsemax(const std::vector<double>& z) {
  return Sparsemax(z, 1.0);
}

std::vector<double> Sparsemax(const std::vector<double>& z, double scale) {
  const size_t n = z.size();
  if (n == 0) return {};

  std::vector<double> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = z[i] * scale;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  // Find k(z) = max { k : 1 + k * z_(k) > sum_{j<=k} z_(j) }.
  double cumsum = 0;
  double tau = 0;
  size_t support = 0;
  for (size_t k = 1; k <= n; ++k) {
    cumsum += sorted[k - 1];
    double t = (cumsum - 1.0) / static_cast<double>(k);
    if (sorted[k - 1] > t) {
      tau = t;
      support = k;
    }
  }
  (void)support;

  std::vector<double> p(n);
  for (size_t i = 0; i < n; ++i) {
    p[i] = std::max(0.0, z[i] * scale - tau);
  }
  return p;
}

}  // namespace fieldswap
