#ifndef FIELDSWAP_NN_AUTODIFF_H_
#define FIELDSWAP_NN_AUTODIFF_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace fieldswap {

/// A node in the dynamic computation graph: a value, an optional gradient of
/// the same shape, edges to parents, and a closure that propagates this
/// node's gradient into its parents' gradients.
class Node {
 public:
  Matrix value;
  Matrix grad;  // allocated lazily by Backward / AccumulateGrad
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward_fn;  // may be empty (leaf)
  bool requires_grad = false;

  /// Ensures grad is allocated (zero) and adds `delta` into it.
  void AccumulateGrad(const Matrix& delta);

  /// Ensures grad is allocated (zero).
  void EnsureGrad();
};

/// Shared handle to a graph node. Graphs are built per training step and
/// freed when the last Var goes out of scope.
using Var = std::shared_ptr<Node>;

/// Leaf holding a constant (no gradient).
Var Constant(Matrix value);

/// Leaf holding a trainable parameter (gradient accumulates across the
/// backward pass; the optimizer consumes and zeroes it).
Var Parameter(Matrix value);

/// Runs reverse-mode differentiation from `loss` (any shape; the seed
/// gradient is all-ones). Visits nodes in reverse topological order.
void Backward(const Var& loss);

// ---- Elementwise / structural ops ----------------------------------------

/// a + b (same shape).
Var Add(const Var& a, const Var& b);
/// a + b where b is [1, n] broadcast across a's rows (bias add).
Var AddRowBroadcast(const Var& a, const Var& b);
/// a - b (same shape).
Var Sub(const Var& a, const Var& b);
/// Elementwise a * b (same shape).
Var Mul(const Var& a, const Var& b);
/// s * a.
Var Scale(const Var& a, float s);
/// Elementwise max(a, 0).
Var Relu(const Var& a);
/// Elementwise tanh.
Var Tanh(const Var& a);
/// Elementwise logistic sigmoid.
Var Sigmoid(const Var& a);

/// Matrix product a[m,k] * b[k,n].
Var MatMul(const Var& a, const Var& b);

/// Horizontal concatenation [a | b] (same row count).
Var ConcatCols(const Var& a, const Var& b);

/// Row slice a[first : first+count, :].
Var SliceRows(const Var& a, int first, int count);

/// Gathers rows of `table` by index; backward scatter-adds. This is the
/// embedding-lookup primitive.
Var GatherRows(const Var& table, std::vector<int> ids);

/// Mean over all entries -> [1,1].
Var MeanAll(const Var& a);

/// Column-wise max over rows -> [1, cols]; gradient flows to the argmax row
/// of each column (the max-pooling of the candidate model, Fig. 2).
Var MaxPoolRows(const Var& a);

/// Row-wise mean -> [rows, 1].
Var MeanRows(const Var& a);

}  // namespace fieldswap

#endif  // FIELDSWAP_NN_AUTODIFF_H_
