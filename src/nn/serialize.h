#ifndef FIELDSWAP_NN_SERIALIZE_H_
#define FIELDSWAP_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/layers.h"

namespace fieldswap {

/// Writes named parameters to a simple binary checkpoint. Returns false on
/// I/O failure.
bool SaveCheckpoint(const std::string& path,
                    const std::vector<NamedParam>& params);

/// Loads a checkpoint written by SaveCheckpoint into parameters with
/// matching names and shapes. Returns false on I/O failure, a missing
/// parameter name, or a shape mismatch.
bool LoadCheckpoint(const std::string& path,
                    const std::vector<NamedParam>& params);

}  // namespace fieldswap

#endif  // FIELDSWAP_NN_SERIALIZE_H_
