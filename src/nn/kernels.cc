#include "nn/kernels.h"

#include "nn/kernels/backend.h"

namespace fieldswap {
namespace nn {

std::string KernelBackendName() { return ActiveKernels().name; }

bool SetKernelBackend(const std::string& name) {
  const Kernels* resolved = ResolveBackendName(name);
  if (resolved == nullptr) return false;
  SetActiveKernels(resolved);
  return true;
}

std::vector<std::string> AvailableKernelBackends() {
  std::vector<std::string> names;
  if (const Kernels* avx2 = Avx2Kernels()) names.push_back(avx2->name);
  if (const Kernels* neon = NeonKernels()) names.push_back(neon->name);
  names.push_back(ScalarKernels().name);
  return names;
}

}  // namespace nn
}  // namespace fieldswap
