#include "nn/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace fieldswap {

AdamOptimizer::AdamOptimizer(std::vector<NamedParam> params,
                             const Options& options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const NamedParam& np : params_) {
    m_.emplace_back(np.param->value.rows(), np.param->value.cols());
    v_.emplace_back(np.param->value.rows(), np.param->value.cols());
  }
}

void AdamOptimizer::Step() {
  ++step_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  if (options_.grad_clip_norm > 0) {
    ClipGlobalGradNorm(params_, options_.grad_clip_norm);
  }
  for (size_t p = 0; p < params_.size(); ++p) {
    Var& param = params_[p].param;
    param->EnsureGrad();
    Matrix& grad = param->grad;
    float* w = param->value.data();
    float* g = grad.data();
    float* m = m_[p].data();
    float* v = v_[p].data();
    for (size_t i = 0; i < param->value.size(); ++i) {
      m[i] = b1 * m[i] + (1.0f - b1) * g[i];
      v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
      float mhat = m[i] / bias1;
      float vhat = v[i] / bias2;
      w[i] -= options_.learning_rate * mhat /
              (std::sqrt(vhat) + options_.epsilon);
      g[i] = 0.0f;
    }
  }
}

void AdamOptimizer::ZeroGrad() {
  for (NamedParam& np : params_) {
    np.param->EnsureGrad();
    np.param->grad.Zero();
  }
}

double GlobalGradNorm(const std::vector<NamedParam>& params) {
  double sum_sq = 0;
  for (const NamedParam& np : params) {
    np.param->EnsureGrad();
    const Matrix& grad = np.param->grad;
    const float* data = grad.data();
    int64_t size = static_cast<int64_t>(grad.rows()) * grad.cols();
    for (int64_t i = 0; i < size; ++i) {
      sum_sq += static_cast<double>(data[i]) * static_cast<double>(data[i]);
    }
  }
  return std::sqrt(sum_sq);
}

double ClipGlobalGradNorm(const std::vector<NamedParam>& params,
                          double max_norm) {
  double norm = GlobalGradNorm(params);
  if (max_norm > 0 && norm > max_norm) {
    float scale = static_cast<float>(max_norm / norm);
    for (const NamedParam& np : params) {
      np.param->grad.ScaleInPlace(scale);
    }
  }
  return norm;
}

std::vector<Matrix> SnapshotParams(const std::vector<NamedParam>& params) {
  std::vector<Matrix> snapshot;
  snapshot.reserve(params.size());
  for (const NamedParam& np : params) snapshot.push_back(np.param->value);
  return snapshot;
}

void RestoreParams(const std::vector<NamedParam>& params,
                   const std::vector<Matrix>& snapshot) {
  FS_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    FS_CHECK_EQ(params[i].param->value.rows(), snapshot[i].rows());
    FS_CHECK_EQ(params[i].param->value.cols(), snapshot[i].cols());
    params[i].param->value = snapshot[i];
  }
}

}  // namespace fieldswap
