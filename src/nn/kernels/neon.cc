// NEON backend for AArch64. Same vectorization strategy as the AVX2
// backend, scaled to 128-bit lanes:
//   - gemm / gemm_trans_a / axpy / layer_norm vectorize the elementwise
//     dimension with fused multiply-add (vfmaq_f32) and keep the scalar
//     accumulation order per output element.
//   - dot / gemm_trans_b / attention scores use 2-way vector partial sums
//     with a tree reduction; ulp bounds pinned by tests/kernels_test.cc.
//   - integer kernels are exact.

#include "nn/kernels/backend.h"

#if defined(FIELDSWAP_KERNELS_NEON) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

namespace fieldswap {
namespace nn {
namespace {

void NeonGemm(const float* a, const float* b, float* c, int m, int k, int n,
              bool accumulate) {
  if (!accumulate) std::fill(c, c + static_cast<size_t>(m) * n, 0.0f);
  const int vec_n = n - n % 4;
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float32x4_t av = vdupq_n_f32(arow[p]);
      const float* brow = b + static_cast<size_t>(p) * n;
      int j = 0;
      for (; j < vec_n; j += 4) {
        vst1q_f32(crow + j,
                  vfmaq_f32(vld1q_f32(crow + j), av, vld1q_f32(brow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(arow[p], brow[j], crow[j]);
    }
  }
}

void NeonAxpy(float s, const float* x, float* y, int n) {
  const float32x4_t sv = vdupq_n_f32(s);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), sv, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(s, x[i], y[i]);
}

void NeonGemmTransA(const float* a, const float* b, float* c, int k, int m,
                    int n) {
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<size_t>(p) * m;
    const float* brow = b + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      NeonAxpy(arow[i], brow, c + static_cast<size_t>(i) * n, n);
    }
  }
}

float NeonDot(const float* a, const float* b, int n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float sum = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) sum = std::fma(a[i], b[i], sum);
  return sum;
}

void NeonGemmTransB(const float* a, const float* b, float* c, int m, int k,
                    int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      crow[j] += NeonDot(arow, b + static_cast<size_t>(j) * k, k);
    }
  }
}

void NeonLayerNorm(const float* x, const float* gain, const float* bias,
                   int rows, int d, float epsilon, float* out, float* normed,
                   float* inv_std) {
  for (int r = 0; r < rows; ++r) {
    const float* row = x + static_cast<size_t>(r) * d;
    double mean = 0;
    for (int c = 0; c < d; ++c) mean += row[c];
    mean /= d;
    double var = 0;
    for (int c = 0; c < d; ++c) {
      double diff = row[c] - mean;
      var += diff * diff;
    }
    var /= d;
    float is = 1.0f / std::sqrt(static_cast<float>(var) + epsilon);
    if (inv_std != nullptr) inv_std[r] = is;
    float* orow = out + static_cast<size_t>(r) * d;
    float* nrow =
        normed != nullptr ? normed + static_cast<size_t>(r) * d : nullptr;
    const float mean_f = static_cast<float>(mean);
    const float32x4_t mean_v = vdupq_n_f32(mean_f);
    const float32x4_t is_v = vdupq_n_f32(is);
    int c = 0;
    for (; c + 4 <= d; c += 4) {
      float32x4_t norm =
          vmulq_f32(vsubq_f32(vld1q_f32(row + c), mean_v), is_v);
      if (nrow != nullptr) vst1q_f32(nrow + c, norm);
      vst1q_f32(orow + c,
                vfmaq_f32(vld1q_f32(bias + c), norm, vld1q_f32(gain + c)));
    }
    for (; c < d; ++c) {
      float norm = (row[c] - mean_f) * is;
      if (nrow != nullptr) nrow[c] = norm;
      orow[c] = std::fma(norm, gain[c], bias[c]);
    }
  }
}

void NeonAttentionRow(const float* qrow, const float* k, const float* v,
                      const int* idx, int count, int d, float inv_sqrt_d,
                      float* weights, float* out) {
  float max_s = -1e30f;
  for (int j = 0; j < count; ++j) {
    weights[j] =
        NeonDot(qrow, k + static_cast<size_t>(idx[j]) * d, d) * inv_sqrt_d;
    max_s = std::max(max_s, weights[j]);
  }
  float sum = 0;
  for (int j = 0; j < count; ++j) {
    weights[j] = std::exp(weights[j] - max_s);
    sum += weights[j];
  }
  std::fill(out, out + d, 0.0f);
  for (int j = 0; j < count; ++j) {
    weights[j] /= sum;
    NeonAxpy(weights[j], v + static_cast<size_t>(idx[j]) * d, out, d);
  }
}

void NeonQuantizeI8(const float* x, int n, float inv_scale, int8_t* out) {
  for (int i = 0; i < n; ++i) {
    float rounded = std::nearbyint(x[i] * inv_scale);
    rounded = std::max(-127.0f, std::min(127.0f, rounded));
    out[i] = static_cast<int8_t>(rounded);
  }
}

void NeonGemmI8(const int8_t* a, const int8_t* bt, int32_t* c, int m, int k,
                int n) {
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * k;
    int32_t* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const int8_t* brow = bt + static_cast<size_t>(j) * k;
      int32x4_t acc = vdupq_n_s32(0);
      int p = 0;
      for (; p + 8 <= k; p += 8) {
        int16x8_t prod =
            vmull_s8(vld1_s8(arow + p), vld1_s8(brow + p));
        acc = vpadalq_s16(acc, prod);
      }
      int32_t sum = vaddvq_s32(acc);
      for (; p < k; ++p) {
        sum += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      crow[j] = sum;
    }
  }
}

}  // namespace

const Kernels* NeonKernels() {
  static const Kernels kNeon = {
      "neon",         NeonGemm,    NeonGemmTransA, NeonGemmTransB,
      NeonDot,        NeonAxpy,    NeonLayerNorm,  NeonAttentionRow,
      NeonQuantizeI8, NeonGemmI8,
  };
  return &kNeon;
}

}  // namespace nn
}  // namespace fieldswap

#else  // !FIELDSWAP_KERNELS_NEON || !__ARM_NEON

namespace fieldswap {
namespace nn {

const Kernels* NeonKernels() { return nullptr; }

}  // namespace nn
}  // namespace fieldswap

#endif  // FIELDSWAP_KERNELS_NEON && __ARM_NEON
