#ifndef FIELDSWAP_NN_KERNELS_BACKEND_H_
#define FIELDSWAP_NN_KERNELS_BACKEND_H_

#include <cstdint>
#include <string>

/// Backend-internal kernel dispatch table. Only src/nn may include
/// nn/kernels/ headers (enforced by tools/layers.txt); everything else goes
/// through the Matrix/ops entry points or the nn/kernels.h control surface.
///
/// Contract shared by every backend implementation:
///   - Kernels never allocate, never touch globals, and never spawn
///     threads; given the same inputs they are bit-deterministic, so
///     outputs are bit-identical at any FIELDSWAP_THREADS *within* a
///     backend (threading happens above, at document granularity).
///   - Accumulating kernels require a caller-prepared output buffer; the
///     overwrite/accumulate choice is explicit in the signature, never
///     implicit in buffer state.
///   - Different backends may round differently (FMA, vectorized
///     reductions); scalar is the reference and SIMD backends must stay
///     within the pinned ulp bounds of tests/kernels_test.cc.

namespace fieldswap {
namespace nn {

/// Function table of one kernel backend. All matrices are dense row-major.
struct Kernels {
  const char* name;

  /// C[m,n] = A[m,k] * B[k,n] (accumulate=false overwrites C) or
  /// C += A * B (accumulate=true).
  void (*gemm)(const float* a, const float* b, float* c, int m, int k, int n,
               bool accumulate);
  /// C[m,n] += A[k,m]^T * B[k,n].
  void (*gemm_trans_a)(const float* a, const float* b, float* c, int k, int m,
                       int n);
  /// C[m,n] += A[m,k] * B[n,k]^T.
  void (*gemm_trans_b)(const float* a, const float* b, float* c, int m, int k,
                       int n);
  /// Dot product of two length-n spans.
  float (*dot)(const float* a, const float* b, int n);
  /// y[n] += s * x[n].
  void (*axpy)(float s, const float* x, float* y, int n);

  /// Fused row-wise LayerNorm forward:
  ///   out[r,c] = (x[r,c] - mean_r) * inv_std_r * gain[c] + bias[c].
  /// `normed` ([rows,d]) and `inv_std` ([rows]) are saved for backward;
  /// either may be null when the caller only needs the output.
  void (*layer_norm)(const float* x, const float* gain, const float* bias,
                     int rows, int d, float epsilon, float* out, float* normed,
                     float* inv_std);

  /// Fused attention for one query row: scaled dot-product scores of `qrow`
  /// against the `count` rows of `k` listed in `idx`, softmax over them
  /// (written to `weights`), then out[d] = sum_j weights[j] * v[idx[j]].
  /// `out` is overwritten.
  void (*attention_row)(const float* qrow, const float* k, const float* v,
                        const int* idx, int count, int d, float inv_sqrt_d,
                        float* weights, float* out);

  /// Symmetric int8 quantization: out[i] = round(x[i] * inv_scale) clamped
  /// to [-127, 127]. Round-to-nearest-even in every backend.
  void (*quantize_i8)(const float* x, int n, float inv_scale, int8_t* out);

  /// Int8 GEMM against a pre-transposed weight: C[m,n] = A[m,k] * Bt[n,k]^T
  /// with int32 accumulation. Callers dequantize with scale_a * scale_b.
  void (*gemm_i8)(const int8_t* a, const int8_t* bt, int32_t* c, int m, int k,
                  int n);
};

/// The scalar reference backend (always available).
const Kernels& ScalarKernels();

/// AVX2+FMA backend, or null when not compiled in or not supported by the
/// running CPU.
const Kernels* Avx2Kernels();

/// NEON backend, or null when not compiled in.
const Kernels* NeonKernels();

/// Maps a backend name to its table, or null when the name is unknown or
/// the backend is unavailable on this build/CPU. ""/"auto" resolve to the
/// best available backend (never null).
const Kernels* ResolveBackendName(const std::string& name);

/// Replaces the active backend (nn/kernels.h SetKernelBackend plumbing).
void SetActiveKernels(const Kernels* kernels);

/// The active backend: resolved once from FIELDSWAP_KERNEL_BACKEND
/// ("scalar", "avx2", "neon", or "auto"/unset = best available), overridable
/// via nn/kernels.h SetKernelBackend. An env value naming an unavailable
/// backend aborts with an actionable message rather than silently falling
/// back — a serving fleet that thinks it runs AVX2 must not quietly run
/// scalar.
const Kernels& ActiveKernels();

}  // namespace nn
}  // namespace fieldswap

#endif  // FIELDSWAP_NN_KERNELS_BACKEND_H_
