// AVX2+FMA backend. Compiled only when the toolchain accepts -mavx2 -mfma
// (see src/nn/CMakeLists.txt); selected at runtime only when the CPU
// reports AVX2 support.
//
// Rounding relative to the scalar reference:
//   - gemm / gemm_trans_a / axpy / layer_norm vectorize the elementwise
//     dimension and keep the scalar per-element accumulation ORDER, but not
//     its roundings: the scalar backend is compiled without -mfma, so its
//     a*b+c is two roundings where these kernels fuse one. Each partial
//     product moves by <= 1/2 ulp, keeping the result within a few ulps AT
//     THE SCALE OF THE OPERANDS — under cancellation the relative gap can
//     be large, which is why tests/kernels_test.cc measures ulps-at-scale,
//     not per-element ulp distance.
//   - dot / gemm_trans_b / attention scores additionally use vector partial
//     sums with a tree reduction, which reorders the scalar left-to-right
//     chain. Same pinned ulps-at-scale bound covers them.
//   - integer kernels (quantize_i8, gemm_i8) are exact and bit-identical.
// Within THIS backend every kernel is deterministic: blocking (RowQuad vs
// RowChunk vs scalar tail) never changes the per-element k-order for float,
// and integer accumulation is exact, so any tiling is bit-stable.

#include "nn/kernels/backend.h"

#if defined(FIELDSWAP_KERNELS_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace fieldswap {
namespace nn {
namespace {

/// One C row chunk of up to 8 ymm registers (64 columns) held in registers
/// across the whole k loop: C traffic drops from O(m*k*n) to O(m*n).
void Avx2GemmRowChunk(const float* arow, const float* b, float* crow, int k,
                      int n, int j0, int width, bool accumulate) {
  __m256 acc[8];
  const int vecs = width / 8;
  for (int v = 0; v < vecs; ++v) {
    acc[v] = accumulate ? _mm256_loadu_ps(crow + j0 + v * 8)
                        : _mm256_setzero_ps();
  }
  for (int p = 0; p < k; ++p) {
    const __m256 av = _mm256_set1_ps(arow[p]);
    const float* brow = b + static_cast<size_t>(p) * n + j0;
    for (int v = 0; v < vecs; ++v) {
      acc[v] = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + v * 8), acc[v]);
    }
  }
  for (int v = 0; v < vecs; ++v) {
    _mm256_storeu_ps(crow + j0 + v * 8, acc[v]);
  }
}

/// 4x2 register tile (4 C rows x 16 columns): every B load feeds four FMA
/// chains instead of one, so the kernel is FMA-bound rather than
/// load-bound. Per C element the k loop is still a single sequential FMA
/// chain — bit-identical to Avx2GemmRowChunk and to any tile shape.
void Avx2GemmRowQuad(const float* a, const float* b, float* c, int k, int n,
                     size_t lda_rows, int i0, int j0, bool accumulate) {
  const float* a0 = a + static_cast<size_t>(i0) * lda_rows;
  const float* a1 = a0 + lda_rows;
  const float* a2 = a1 + lda_rows;
  const float* a3 = a2 + lda_rows;
  float* c0 = c + static_cast<size_t>(i0) * n + j0;
  float* c1 = c0 + n;
  float* c2 = c1 + n;
  float* c3 = c2 + n;
  __m256 acc00, acc01, acc10, acc11, acc20, acc21, acc30, acc31;
  if (accumulate) {
    acc00 = _mm256_loadu_ps(c0);
    acc01 = _mm256_loadu_ps(c0 + 8);
    acc10 = _mm256_loadu_ps(c1);
    acc11 = _mm256_loadu_ps(c1 + 8);
    acc20 = _mm256_loadu_ps(c2);
    acc21 = _mm256_loadu_ps(c2 + 8);
    acc30 = _mm256_loadu_ps(c3);
    acc31 = _mm256_loadu_ps(c3 + 8);
  } else {
    acc00 = acc01 = acc10 = acc11 = _mm256_setzero_ps();
    acc20 = acc21 = acc30 = acc31 = _mm256_setzero_ps();
  }
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<size_t>(p) * n + j0;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    __m256 av = _mm256_set1_ps(a0[p]);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_set1_ps(a1[p]);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_set1_ps(a2[p]);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_set1_ps(a3[p]);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
  }
  _mm256_storeu_ps(c0, acc00);
  _mm256_storeu_ps(c0 + 8, acc01);
  _mm256_storeu_ps(c1, acc10);
  _mm256_storeu_ps(c1 + 8, acc11);
  _mm256_storeu_ps(c2, acc20);
  _mm256_storeu_ps(c2 + 8, acc21);
  _mm256_storeu_ps(c3, acc30);
  _mm256_storeu_ps(c3 + 8, acc31);
}

void Avx2Gemm(const float* a, const float* b, float* c, int m, int k, int n,
              bool accumulate) {
  const int vec_n = n - n % 8;
  const int quad_m = m - m % 4;
  const int quad_n = vec_n - vec_n % 16;
  // Bulk of the matrix: 4x16 register tiles.
  for (int i0 = 0; i0 < quad_m; i0 += 4) {
    for (int j0 = 0; j0 < quad_n; j0 += 16) {
      Avx2GemmRowQuad(a, b, c, k, n, static_cast<size_t>(k), i0, j0,
                      accumulate);
    }
  }
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    // Rows the 4x16 tiling missed run the single-row chunk kernel across
    // the full vector width; tiled rows only need the leftover columns.
    const int row_j0 = i < quad_m ? quad_n : 0;
    for (int j0 = row_j0; j0 < vec_n; j0 += 64) {
      Avx2GemmRowChunk(arow, b, crow, k, n, j0, std::min(64, vec_n - j0),
                       accumulate);
    }
    // Scalar tail columns keep the reference accumulation order.
    for (int j = vec_n; j < n; ++j) {
      float sum = accumulate ? crow[j] : 0.0f;
      for (int p = 0; p < k; ++p) {
        sum = std::fma(arow[p], b[static_cast<size_t>(p) * n + j], sum);
      }
      crow[j] = sum;
    }
  }
}

void Avx2Axpy(float s, const float* x, float* y, int n) {
  const __m256 sv = _mm256_set1_ps(s);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(sv, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(s, x[i], y[i]);
}

void Avx2GemmTransA(const float* a, const float* b, float* c, int k, int m,
                    int n) {
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<size_t>(p) * m;
    const float* brow = b + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      Avx2Axpy(arow[i], brow, c + static_cast<size_t>(i) * n, n);
    }
  }
}

float Avx2Dot(const float* a, const float* b, int n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  acc0 = _mm256_add_ps(acc0, acc1);
  __m128 lo = _mm256_castps256_ps128(acc0);
  __m128 hi = _mm256_extractf128_ps(acc0, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  float sum = _mm_cvtss_f32(lo);
  for (; i < n; ++i) sum = std::fma(a[i], b[i], sum);
  return sum;
}

void Avx2GemmTransB(const float* a, const float* b, float* c, int m, int k,
                    int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      crow[j] += Avx2Dot(arow, b + static_cast<size_t>(j) * k, k);
    }
  }
}

void Avx2LayerNorm(const float* x, const float* gain, const float* bias,
                   int rows, int d, float epsilon, float* out, float* normed,
                   float* inv_std) {
  for (int r = 0; r < rows; ++r) {
    const float* row = x + static_cast<size_t>(r) * d;
    // Double-precision mean/variance reduction stays scalar (d is small);
    // this keeps the statistics bit-identical to the reference backend.
    double mean = 0;
    for (int c = 0; c < d; ++c) mean += row[c];
    mean /= d;
    double var = 0;
    for (int c = 0; c < d; ++c) {
      double diff = row[c] - mean;
      var += diff * diff;
    }
    var /= d;
    float is = 1.0f / std::sqrt(static_cast<float>(var) + epsilon);
    if (inv_std != nullptr) inv_std[r] = is;
    float* orow = out + static_cast<size_t>(r) * d;
    float* nrow =
        normed != nullptr ? normed + static_cast<size_t>(r) * d : nullptr;
    const float mean_f = static_cast<float>(mean);
    const __m256 mean_v = _mm256_set1_ps(mean_f);
    const __m256 is_v = _mm256_set1_ps(is);
    int c = 0;
    for (; c + 8 <= d; c += 8) {
      __m256 norm = _mm256_mul_ps(
          _mm256_sub_ps(_mm256_loadu_ps(row + c), mean_v), is_v);
      if (nrow != nullptr) _mm256_storeu_ps(nrow + c, norm);
      _mm256_storeu_ps(
          orow + c, _mm256_fmadd_ps(norm, _mm256_loadu_ps(gain + c),
                                    _mm256_loadu_ps(bias + c)));
    }
    for (; c < d; ++c) {
      float norm = (row[c] - mean_f) * is;
      if (nrow != nullptr) nrow[c] = norm;
      orow[c] = std::fma(norm, gain[c], bias[c]);
    }
  }
}

void Avx2AttentionRow(const float* qrow, const float* k, const float* v,
                      const int* idx, int count, int d, float inv_sqrt_d,
                      float* weights, float* out) {
  float max_s = -1e30f;
  for (int j = 0; j < count; ++j) {
    weights[j] =
        Avx2Dot(qrow, k + static_cast<size_t>(idx[j]) * d, d) * inv_sqrt_d;
    max_s = std::max(max_s, weights[j]);
  }
  float sum = 0;
  for (int j = 0; j < count; ++j) {
    weights[j] = std::exp(weights[j] - max_s);
    sum += weights[j];
  }
  std::fill(out, out + d, 0.0f);
  for (int j = 0; j < count; ++j) {
    weights[j] /= sum;
    Avx2Axpy(weights[j], v + static_cast<size_t>(idx[j]) * d, out, d);
  }
}

void Avx2QuantizeI8(const float* x, int n, float inv_scale, int8_t* out) {
  const __m256 scale_v = _mm256_set1_ps(inv_scale);
  const __m256 lo_v = _mm256_set1_ps(-127.0f);
  const __m256 hi_v = _mm256_set1_ps(127.0f);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 scaled = _mm256_mul_ps(_mm256_loadu_ps(x + i), scale_v);
    scaled = _mm256_round_ps(
        scaled, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    scaled = _mm256_max_ps(lo_v, _mm256_min_ps(hi_v, scaled));
    __m256i q32 = _mm256_cvtps_epi32(scaled);
    __m128i q16 = _mm_packs_epi32(_mm256_castsi256_si128(q32),
                                  _mm256_extracti128_si256(q32, 1));
    __m128i q8 = _mm_packs_epi16(q16, q16);
    // 8 lanes -> 8 bytes.
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), q8);
  }
  for (; i < n; ++i) {
    float rounded = std::nearbyint(x[i] * inv_scale);
    rounded = std::max(-127.0f, std::min(127.0f, rounded));
    out[i] = static_cast<int8_t>(rounded);
  }
}

int32_t Avx2DotI8(const int8_t* a, const int8_t* b, int k) {
  __m256i acc = _mm256_setzero_si256();
  int p = 0;
  for (; p + 16 <= k; p += 16) {
    __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    __m256i b16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
  }
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_hadd_epi32(lo, lo);
  lo = _mm_hadd_epi32(lo, lo);
  int32_t sum = _mm_cvtsi128_si32(lo);
  for (; p < k; ++p) {
    sum += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return sum;
}

/// Four B columns at once: the widened A chunk (cvtepi8_epi16 is the
/// expensive part of the i8 dot) feeds four madd accumulators. Integer
/// accumulation is exact, so any blocking is bit-identical.
void Avx2QuadDotI8(const int8_t* arow, const int8_t* b0, const int8_t* b1,
                   const int8_t* b2, const int8_t* b3, int k, int32_t* out) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  int p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(arow + p)));
    auto widen = [](const int8_t* ptr) {
      return _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(ptr)));
    };
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a16, widen(b0 + p)));
    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a16, widen(b1 + p)));
    acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(a16, widen(b2 + p)));
    acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(a16, widen(b3 + p)));
  }
  auto reduce = [](__m256i acc) {
    __m128i lo = _mm256_castsi256_si128(acc);
    __m128i hi = _mm256_extracti128_si256(acc, 1);
    lo = _mm_add_epi32(lo, hi);
    lo = _mm_hadd_epi32(lo, lo);
    lo = _mm_hadd_epi32(lo, lo);
    return _mm_cvtsi128_si32(lo);
  };
  int32_t sums[4] = {reduce(acc0), reduce(acc1), reduce(acc2), reduce(acc3)};
  for (; p < k; ++p) {
    const int32_t av = arow[p];
    sums[0] += av * b0[p];
    sums[1] += av * b1[p];
    sums[2] += av * b2[p];
    sums[3] += av * b3[p];
  }
  out[0] = sums[0];
  out[1] = sums[1];
  out[2] = sums[2];
  out[3] = sums[3];
}

/// 2x4 tile: two A rows against four B columns. Each sign-extended chunk
/// (the expensive cvtepi8_epi16) feeds multiple madd chains — 6 widenings
/// for 8 madds, vs 2 widenings per madd in the naive dot.
void Avx2PairQuadDotI8(const int8_t* a0, const int8_t* a1, const int8_t* bj,
                       int k, int32_t* c0, int32_t* c1) {
  const int8_t* b1 = bj + k;
  const int8_t* b2 = b1 + k;
  const int8_t* b3 = b2 + k;
  __m256i acc[8] = {};
  auto widen = [](const int8_t* ptr) {
    return _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ptr)));
  };
  int p = 0;
  for (; p + 16 <= k; p += 16) {
    const __m256i a016 = widen(a0 + p);
    const __m256i a116 = widen(a1 + p);
    const __m256i b016 = widen(bj + p);
    const __m256i b116 = widen(b1 + p);
    const __m256i b216 = widen(b2 + p);
    const __m256i b316 = widen(b3 + p);
    acc[0] = _mm256_add_epi32(acc[0], _mm256_madd_epi16(a016, b016));
    acc[1] = _mm256_add_epi32(acc[1], _mm256_madd_epi16(a016, b116));
    acc[2] = _mm256_add_epi32(acc[2], _mm256_madd_epi16(a016, b216));
    acc[3] = _mm256_add_epi32(acc[3], _mm256_madd_epi16(a016, b316));
    acc[4] = _mm256_add_epi32(acc[4], _mm256_madd_epi16(a116, b016));
    acc[5] = _mm256_add_epi32(acc[5], _mm256_madd_epi16(a116, b116));
    acc[6] = _mm256_add_epi32(acc[6], _mm256_madd_epi16(a116, b216));
    acc[7] = _mm256_add_epi32(acc[7], _mm256_madd_epi16(a116, b316));
  }
  auto reduce = [](__m256i acc256) {
    __m128i lo = _mm256_castsi256_si128(acc256);
    __m128i hi = _mm256_extracti128_si256(acc256, 1);
    lo = _mm_add_epi32(lo, hi);
    lo = _mm_hadd_epi32(lo, lo);
    lo = _mm_hadd_epi32(lo, lo);
    return _mm_cvtsi128_si32(lo);
  };
  int32_t sums[8];
  for (int s = 0; s < 8; ++s) sums[s] = reduce(acc[s]);
  for (; p < k; ++p) {
    const int32_t a0v = a0[p], a1v = a1[p];
    const int32_t b0v = bj[p], b1v = b1[p], b2v = b2[p], b3v = b3[p];
    sums[0] += a0v * b0v;
    sums[1] += a0v * b1v;
    sums[2] += a0v * b2v;
    sums[3] += a0v * b3v;
    sums[4] += a1v * b0v;
    sums[5] += a1v * b1v;
    sums[6] += a1v * b2v;
    sums[7] += a1v * b3v;
  }
  c0[0] = sums[0];
  c0[1] = sums[1];
  c0[2] = sums[2];
  c0[3] = sums[3];
  c1[0] = sums[4];
  c1[1] = sums[5];
  c1[2] = sums[6];
  c1[3] = sums[7];
}

void Avx2GemmI8(const int8_t* a, const int8_t* bt, int32_t* c, int m, int k,
                int n) {
  const int quad_n = n - n % 4;
  const int pair_m = m - m % 2;
  for (int i = 0; i < pair_m; i += 2) {
    const int8_t* a0 = a + static_cast<size_t>(i) * k;
    const int8_t* a1 = a0 + k;
    int32_t* c0 = c + static_cast<size_t>(i) * n;
    int32_t* c1 = c0 + n;
    for (int j = 0; j < quad_n; j += 4) {
      Avx2PairQuadDotI8(a0, a1, bt + static_cast<size_t>(j) * k, k, c0 + j,
                        c1 + j);
    }
    for (int j = quad_n; j < n; ++j) {
      const int8_t* bj = bt + static_cast<size_t>(j) * k;
      c0[j] = Avx2DotI8(a0, bj, k);
      c1[j] = Avx2DotI8(a1, bj, k);
    }
  }
  for (int i = pair_m; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * k;
    int32_t* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < quad_n; j += 4) {
      const int8_t* bj = bt + static_cast<size_t>(j) * k;
      Avx2QuadDotI8(arow, bj, bj + k, bj + 2 * static_cast<size_t>(k),
                    bj + 3 * static_cast<size_t>(k), k, crow + j);
    }
    for (int j = quad_n; j < n; ++j) {
      crow[j] = Avx2DotI8(arow, bt + static_cast<size_t>(j) * k, k);
    }
  }
}

}  // namespace

const Kernels* Avx2Kernels() {
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
    return nullptr;
  }
  static const Kernels kAvx2 = {
      "avx2",         Avx2Gemm,    Avx2GemmTransA, Avx2GemmTransB,
      Avx2Dot,        Avx2Axpy,    Avx2LayerNorm,  Avx2AttentionRow,
      Avx2QuantizeI8, Avx2GemmI8,
  };
  return &kAvx2;
}

}  // namespace nn
}  // namespace fieldswap

#else  // !FIELDSWAP_KERNELS_AVX2

namespace fieldswap {
namespace nn {

const Kernels* Avx2Kernels() { return nullptr; }

}  // namespace nn
}  // namespace fieldswap

#endif  // FIELDSWAP_KERNELS_AVX2
