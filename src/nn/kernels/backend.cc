// Backend registry and runtime selection. The active backend is resolved
// exactly once per process (or per explicit SetActiveKernels call via the
// nn/kernels.h surface) so every Matrix/ops dispatch is a single relaxed
// atomic load.

#include "nn/kernels/backend.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace fieldswap {
namespace nn {
namespace {

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* BestAvailable() {
  if (const Kernels* avx2 = Avx2Kernels()) return avx2;
  if (const Kernels* neon = NeonKernels()) return neon;
  return &ScalarKernels();
}

const Kernels* ResolveFromEnv() {
  const char* env = std::getenv("FIELDSWAP_KERNEL_BACKEND");
  const std::string name = env != nullptr ? env : "";
  const Kernels* resolved = ResolveBackendName(name);
  // An explicitly requested backend that is unavailable is a deployment
  // error: a host that believes it serves with AVX2 must not silently run
  // scalar.
  FS_CHECK(resolved != nullptr)
      << "FIELDSWAP_KERNEL_BACKEND=" << name
      << " is not available in this build/CPU; set it to an available "
         "backend name or \"auto\"";
  return resolved;
}

}  // namespace

const Kernels* ResolveBackendName(const std::string& name) {
  if (name.empty() || name == "auto") return BestAvailable();
  if (name == "scalar") return &ScalarKernels();
  if (name == "avx2") return Avx2Kernels();
  if (name == "neon") return NeonKernels();
  return nullptr;
}

void SetActiveKernels(const Kernels* kernels) {
  g_active.store(kernels, std::memory_order_relaxed);
}

const Kernels& ActiveKernels() {
  const Kernels* active = g_active.load(std::memory_order_relaxed);
  if (active == nullptr) {
    const Kernels* resolved = ResolveFromEnv();
    // First resolver wins; concurrent initial calls resolve identically
    // anyway (same env, same CPU).
    if (!g_active.compare_exchange_strong(active, resolved,
                                          std::memory_order_relaxed)) {
      return *active;
    }
    active = resolved;
  }
  return *active;
}

}  // namespace nn
}  // namespace fieldswap
