// Scalar reference backend. Every other backend is validated against this
// one (tests/kernels_test.cc pins the ulp bounds), so the loops here favor
// an unambiguous accumulation order over cleverness:
//   - gemm walks i, then p, then j: each C element receives its k partial
//     products in ascending-p order, one rounding step per product. A SIMD
//     backend that vectorizes over j preserves this order bit-exactly.
//   - reductions (dot, gemm_trans_b, attention scores) accumulate left to
//     right in a single chain.
// No data-dependent shortcuts: skipping exact-zero operands would make the
// executed FLOP sequence depend on values, which breaks scalar-vs-SIMD
// comparability and turns ulp bounds into moving targets (ISSUE 7).

#include "nn/kernels/backend.h"

#include <algorithm>
#include <cmath>

namespace fieldswap {
namespace nn {
namespace {

void ScalarGemm(const float* a, const float* b, float* c, int m, int k, int n,
                bool accumulate) {
  if (!accumulate) std::fill(c, c + static_cast<size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + static_cast<size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void ScalarGemmTransA(const float* a, const float* b, float* c, int k, int m,
                      int n) {
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<size_t>(p) * m;
    const float* brow = b + static_cast<size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      float* crow = c + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

float ScalarDot(const float* a, const float* b, int n) {
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void ScalarGemmTransB(const float* a, const float* b, float* c, int m, int k,
                      int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      crow[j] += ScalarDot(arow, b + static_cast<size_t>(j) * k, k);
    }
  }
}

void ScalarAxpy(float s, const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] += s * x[i];
}

void ScalarLayerNorm(const float* x, const float* gain, const float* bias,
                     int rows, int d, float epsilon, float* out, float* normed,
                     float* inv_std) {
  for (int r = 0; r < rows; ++r) {
    const float* row = x + static_cast<size_t>(r) * d;
    double mean = 0;
    for (int c = 0; c < d; ++c) mean += row[c];
    mean /= d;
    double var = 0;
    for (int c = 0; c < d; ++c) {
      double diff = row[c] - mean;
      var += diff * diff;
    }
    var /= d;
    float is = 1.0f / std::sqrt(static_cast<float>(var) + epsilon);
    if (inv_std != nullptr) inv_std[r] = is;
    float* orow = out + static_cast<size_t>(r) * d;
    float* nrow =
        normed != nullptr ? normed + static_cast<size_t>(r) * d : nullptr;
    const float mean_f = static_cast<float>(mean);
    for (int c = 0; c < d; ++c) {
      float norm = (row[c] - mean_f) * is;
      if (nrow != nullptr) nrow[c] = norm;
      orow[c] = norm * gain[c] + bias[c];
    }
  }
}

void ScalarAttentionRow(const float* qrow, const float* k, const float* v,
                        const int* idx, int count, int d, float inv_sqrt_d,
                        float* weights, float* out) {
  float max_s = -1e30f;
  for (int j = 0; j < count; ++j) {
    weights[j] =
        ScalarDot(qrow, k + static_cast<size_t>(idx[j]) * d, d) * inv_sqrt_d;
    max_s = std::max(max_s, weights[j]);
  }
  float sum = 0;
  for (int j = 0; j < count; ++j) {
    weights[j] = std::exp(weights[j] - max_s);
    sum += weights[j];
  }
  std::fill(out, out + d, 0.0f);
  for (int j = 0; j < count; ++j) {
    weights[j] /= sum;
    ScalarAxpy(weights[j], v + static_cast<size_t>(idx[j]) * d, out, d);
  }
}

void ScalarQuantizeI8(const float* x, int n, float inv_scale, int8_t* out) {
  for (int i = 0; i < n; ++i) {
    // Round-to-nearest-even, matching the SIMD cvtps path bit for bit.
    float scaled = x[i] * inv_scale;
    float rounded = std::nearbyint(scaled);
    rounded = std::max(-127.0f, std::min(127.0f, rounded));
    out[i] = static_cast<int8_t>(rounded);
  }
}

void ScalarGemmI8(const int8_t* a, const int8_t* bt, int32_t* c, int m, int k,
                  int n) {
  for (int i = 0; i < m; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * k;
    int32_t* crow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const int8_t* brow = bt + static_cast<size_t>(j) * k;
      int32_t sum = 0;
      for (int p = 0; p < k; ++p) {
        sum += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      crow[j] = sum;
    }
  }
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels kScalar = {
      "scalar",          ScalarGemm,    ScalarGemmTransA, ScalarGemmTransB,
      ScalarDot,         ScalarAxpy,    ScalarLayerNorm,  ScalarAttentionRow,
      ScalarQuantizeI8,  ScalarGemmI8,
  };
  return kScalar;
}

}  // namespace nn
}  // namespace fieldswap
