#ifndef FIELDSWAP_NN_QUANT_H_
#define FIELDSWAP_NN_QUANT_H_

#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace fieldswap {

/// Per-tensor symmetric int8 quantization (ISSUE 7). Weights are quantized
/// once (at snapshot construction), activations dynamically per call; both
/// use one scale per tensor with round-to-nearest-even and values clamped
/// to [-127, 127], so the representation is symmetric around an exact zero.
/// The int8 x int8 -> int32 product is exact; the only rounding happens in
/// quantization and the final dequantize multiply, which makes the whole
/// path bit-deterministic for fixed inputs on every backend.

/// An int8 tensor with its dequantization scale: float ~= scale * int8.
/// Owns its bytes by default; `view` (when non-null) aliases external
/// storage instead — the mmap'd flat-snapshot path (serve/flat_snapshot.h)
/// points it straight at the mapped file so int8 plans are zero-copy too.
/// Read elements through ptr(), never `data` directly.
struct QuantizedTensor {
  std::vector<int8_t> data;         // row-major [rows, cols] when owned
  const int8_t* view = nullptr;     // aliases external storage when non-null
  int rows = 0;
  int cols = 0;
  float scale = 1.0f;

  const int8_t* ptr() const { return view != nullptr ? view : data.data(); }
  size_t size() const {
    return static_cast<size_t>(rows) * static_cast<size_t>(cols);
  }
};

/// Quantizes `w` ([in, out]) transposed, producing a [out, in] tensor laid
/// out for the row-major int8 GEMM (each output channel's weights are
/// contiguous). scale = maxabs(w) / 127; an all-zero tensor gets scale 1.
QuantizedTensor QuantizeTransposed(const Matrix& w);

/// out = dequant(quant(x) * wt^T) + bias (row-broadcast), the int8
/// counterpart of Linear::Apply. `x` is [m, in], `wt` a QuantizeTransposed
/// result ([out, in]), `bias` [1, out], `out` preshaped [m, out]
/// (FS_CHECKed). `x` is quantized per-tensor dynamically: one scale from
/// its max |value|, so the call is a pure function of (x, wt, bias).
void QuantizedLinearInto(const Matrix& x, const QuantizedTensor& wt,
                         const Matrix& bias, Matrix& out);

}  // namespace fieldswap

#endif  // FIELDSWAP_NN_QUANT_H_
