#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/kernels/backend.h"
#include "util/logging.h"

namespace fieldswap {

Matrix Matrix::Full(int rows, int cols, float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::Xavier(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : m.data_) {
    v = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return m;
}

Matrix Matrix::Gaussian(int rows, int cols, float stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
  return m;
}

Matrix Matrix::FromValues(int rows, int cols, std::vector<float> values) {
  FS_CHECK_EQ(values.size(),
              static_cast<size_t>(rows) * static_cast<size_t>(cols));
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(values);
  return m;
}

Matrix Matrix::View(const float* values, int rows, int cols) {
  FS_CHECK(values != nullptr || rows * cols == 0);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.view_ = values;
  return m;
}

float* Matrix::MutableData() {
  FS_CHECK(view_ == nullptr);  // views are read-only (mmap'd PROT_READ)
  return data_.data();
}

const std::vector<float>& Matrix::values() const {
  FS_CHECK(view_ == nullptr);
  return data_;
}

void Matrix::Fill(float value) {
  float* d = MutableData();
  std::fill(d, d + size(), value);
}

void Matrix::AddInPlace(const Matrix& other) {
  FS_CHECK_EQ(rows_, other.rows_);
  FS_CHECK_EQ(cols_, other.cols_);
  float* dst = MutableData();
  const float* src = other.data();
  for (size_t i = 0; i < size(); ++i) dst[i] += src[i];
}

void Matrix::AxpyInPlace(float scale, const Matrix& other) {
  FS_CHECK_EQ(rows_, other.rows_);
  FS_CHECK_EQ(cols_, other.cols_);
  float* dst = MutableData();
  const float* src = other.data();
  for (size_t i = 0; i < size(); ++i) {
    dst[i] += scale * src[i];
  }
}

void Matrix::ScaleInPlace(float scale) {
  float* d = MutableData();
  for (size_t i = 0; i < size(); ++i) d[i] *= scale;
}

float Matrix::Norm() const {
  double ss = 0;
  const float* d = data();
  for (size_t i = 0; i < size(); ++i) {
    ss += static_cast<double>(d[i]) * d[i];
  }
  return static_cast<float>(std::sqrt(ss));
}

std::string Matrix::DebugString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")"
     << (view_ != nullptr ? "[view]" : "") << "[";
  const float* d = data();
  size_t show = std::min<size_t>(size(), 8);
  for (size_t i = 0; i < show; ++i) {
    if (i > 0) os << ", ";
    os << d[i];
  }
  if (size() > show) os << ", ...";
  os << "]";
  return os.str();
}

bool operator==(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  if (pa == pb) return true;
  for (size_t i = 0; i < a.size(); ++i) {
    if (pa[i] != pb[i]) return false;
  }
  return true;
}

namespace {

void CheckMatMulShapes(const Matrix& a, const Matrix& b, const Matrix& out) {
  FS_CHECK_EQ(a.cols(), b.rows());
  FS_CHECK_EQ(out.rows(), a.rows());
  FS_CHECK_EQ(out.cols(), b.cols());
}

}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out) {
  CheckMatMulShapes(a, b, out);
  nn::ActiveKernels().gemm(a.data(), b.data(), out.data(), a.rows(), a.cols(),
                           b.cols(), /*accumulate=*/false);
}

void MatMulAccumInto(const Matrix& a, const Matrix& b, Matrix& out) {
  CheckMatMulShapes(a, b, out);
  nn::ActiveKernels().gemm(a.data(), b.data(), out.data(), a.rows(), a.cols(),
                           b.cols(), /*accumulate=*/true);
}

void MatMulTransAAccumInto(const Matrix& a, const Matrix& b, Matrix& out) {
  FS_CHECK_EQ(a.rows(), b.rows());
  FS_CHECK_EQ(out.rows(), a.cols());
  FS_CHECK_EQ(out.cols(), b.cols());
  nn::ActiveKernels().gemm_trans_a(a.data(), b.data(), out.data(), a.rows(),
                                   a.cols(), b.cols());
}

void MatMulTransBAccumInto(const Matrix& a, const Matrix& b, Matrix& out) {
  FS_CHECK_EQ(a.cols(), b.cols());
  FS_CHECK_EQ(out.rows(), a.rows());
  FS_CHECK_EQ(out.cols(), b.rows());
  nn::ActiveKernels().gemm_trans_b(a.data(), b.data(), out.data(), a.rows(),
                                   a.cols(), b.rows());
}

float DotSpan(const float* a, const float* b, int n) {
  return nn::ActiveKernels().dot(a, b, n);
}

}  // namespace fieldswap
