#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace fieldswap {

Matrix Matrix::Full(int rows, int cols, float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::Xavier(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : m.data_) {
    v = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return m;
}

Matrix Matrix::Gaussian(int rows, int cols, float stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
  return m;
}

Matrix Matrix::FromValues(int rows, int cols, std::vector<float> values) {
  FS_CHECK_EQ(values.size(),
              static_cast<size_t>(rows) * static_cast<size_t>(cols));
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(values);
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::AddInPlace(const Matrix& other) {
  FS_CHECK_EQ(rows_, other.rows_);
  FS_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AxpyInPlace(float scale, const Matrix& other) {
  FS_CHECK_EQ(rows_, other.rows_);
  FS_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::ScaleInPlace(float scale) {
  for (float& v : data_) v *= scale;
}

float Matrix::Norm() const {
  double ss = 0;
  for (float v : data_) ss += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(ss));
}

std::string Matrix::DebugString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  size_t show = std::min<size_t>(data_.size(), 8);
  for (size_t i = 0; i < show; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (data_.size() > show) os << ", ...";
  os << "]";
  return os.str();
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out) {
  FS_CHECK_EQ(a.cols(), b.rows());
  out = Matrix(a.rows(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      // fslint: allow(no-float-equality): exact-zero sparsity skip —
      // skipping only bit-exact zeros cannot change the product.
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix& out) {
  FS_CHECK_EQ(a.rows(), b.rows());
  FS_CHECK_EQ(out.rows(), a.cols());
  FS_CHECK_EQ(out.cols(), b.cols());
  const int k = a.rows();
  const int m = a.cols();
  const int n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      // fslint: allow(no-float-equality): exact-zero sparsity skip —
      // skipping only bit-exact zeros cannot change the product.
      if (av == 0.0f) continue;
      float* orow = out.Row(i);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix& out) {
  FS_CHECK_EQ(a.cols(), b.cols());
  FS_CHECK_EQ(out.rows(), a.rows());
  FS_CHECK_EQ(out.cols(), b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (int j = 0; j < n; ++j) {
      orow[j] += DotSpan(arow, b.Row(j), k);
    }
  }
}

float DotSpan(const float* a, const float* b, int n) {
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace fieldswap
