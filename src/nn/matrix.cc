#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/kernels/backend.h"
#include "util/logging.h"

namespace fieldswap {

Matrix Matrix::Full(int rows, int cols, float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::Xavier(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : m.data_) {
    v = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return m;
}

Matrix Matrix::Gaussian(int rows, int cols, float stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
  return m;
}

Matrix Matrix::FromValues(int rows, int cols, std::vector<float> values) {
  FS_CHECK_EQ(values.size(),
              static_cast<size_t>(rows) * static_cast<size_t>(cols));
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(values);
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::AddInPlace(const Matrix& other) {
  FS_CHECK_EQ(rows_, other.rows_);
  FS_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AxpyInPlace(float scale, const Matrix& other) {
  FS_CHECK_EQ(rows_, other.rows_);
  FS_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::ScaleInPlace(float scale) {
  for (float& v : data_) v *= scale;
}

float Matrix::Norm() const {
  double ss = 0;
  for (float v : data_) ss += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(ss));
}

std::string Matrix::DebugString() const {
  std::ostringstream os;
  os << "Matrix(" << rows_ << "x" << cols_ << ")[";
  size_t show = std::min<size_t>(data_.size(), 8);
  for (size_t i = 0; i < show; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (data_.size() > show) os << ", ...";
  os << "]";
  return os.str();
}

namespace {

void CheckMatMulShapes(const Matrix& a, const Matrix& b, const Matrix& out) {
  FS_CHECK_EQ(a.cols(), b.rows());
  FS_CHECK_EQ(out.rows(), a.rows());
  FS_CHECK_EQ(out.cols(), b.cols());
}

}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix& out) {
  CheckMatMulShapes(a, b, out);
  nn::ActiveKernels().gemm(a.data(), b.data(), out.data(), a.rows(), a.cols(),
                           b.cols(), /*accumulate=*/false);
}

void MatMulAccumInto(const Matrix& a, const Matrix& b, Matrix& out) {
  CheckMatMulShapes(a, b, out);
  nn::ActiveKernels().gemm(a.data(), b.data(), out.data(), a.rows(), a.cols(),
                           b.cols(), /*accumulate=*/true);
}

void MatMulTransAAccumInto(const Matrix& a, const Matrix& b, Matrix& out) {
  FS_CHECK_EQ(a.rows(), b.rows());
  FS_CHECK_EQ(out.rows(), a.cols());
  FS_CHECK_EQ(out.cols(), b.cols());
  nn::ActiveKernels().gemm_trans_a(a.data(), b.data(), out.data(), a.rows(),
                                   a.cols(), b.cols());
}

void MatMulTransBAccumInto(const Matrix& a, const Matrix& b, Matrix& out) {
  FS_CHECK_EQ(a.cols(), b.cols());
  FS_CHECK_EQ(out.rows(), a.rows());
  FS_CHECK_EQ(out.cols(), b.rows());
  nn::ActiveKernels().gemm_trans_b(a.data(), b.data(), out.data(), a.rows(),
                                   a.cols(), b.rows());
}

float DotSpan(const float* a, const float* b, int n) {
  return nn::ActiveKernels().dot(a, b, n);
}

}  // namespace fieldswap
