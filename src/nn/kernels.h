#ifndef FIELDSWAP_NN_KERNELS_H_
#define FIELDSWAP_NN_KERNELS_H_

#include <string>
#include <vector>

/// Public control surface of the nn kernel backend layer (src/nn/kernels/).
///
/// Every Matrix/ops entry point dispatches through one runtime-selected
/// backend: the scalar reference, AVX2+FMA where compiled in and supported
/// by the CPU, or NEON on ARM. Selection happens once, from the
/// FIELDSWAP_KERNEL_BACKEND environment variable ("scalar", "avx2", "neon";
/// unset or "auto" picks the best available), and can be overridden
/// programmatically here — tests pin "scalar" for golden reproducibility,
/// benches sweep every available backend.
///
/// Determinism contract: outputs are bit-identical across thread counts
/// and batch sizes *within* a backend. Backends may differ from each other
/// by a few ulps (FMA and vectorized reductions round differently); the
/// bounds are pinned by tests/kernels_test.cc.

namespace fieldswap {
namespace nn {

/// Name of the active backend ("scalar", "avx2", "neon"). Resolves the
/// backend on first use.
std::string KernelBackendName();

/// Switches the active backend. Accepts a backend name or ""/"auto" for
/// auto-detection. Returns false (and leaves the backend unchanged) when
/// the named backend is unavailable on this build/CPU. Not safe to call
/// concurrently with in-flight model work; switch between workloads only.
bool SetKernelBackend(const std::string& name);

/// Backends usable in this process, best first ("avx2", "scalar" on an
/// x86-64 AVX2 host; always contains at least "scalar").
std::vector<std::string> AvailableKernelBackends();

}  // namespace nn
}  // namespace fieldswap

#endif  // FIELDSWAP_NN_KERNELS_H_
