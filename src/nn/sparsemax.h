#ifndef FIELDSWAP_NN_SPARSEMAX_H_
#define FIELDSWAP_NN_SPARSEMAX_H_

#include <vector>

namespace fieldswap {

/// Sparsemax (Martins & Astudillo, ICML 2016): the Euclidean projection of
/// `z` onto the probability simplex. Unlike softmax, the output assigns
/// exactly zero to low-scoring entries, which is how the paper selects the
/// set of important tokens from raw importance scores (Sec. II-A2).
///
/// Returns a vector of the same length, non-negative, summing to 1
/// (all-zero input returns the uniform distribution).
std::vector<double> Sparsemax(const std::vector<double>& z);

/// Sparsemax with a sharpness multiplier: Sparsemax(scale * z). Larger
/// scale yields sparser outputs; scale 1 is the plain projection.
std::vector<double> Sparsemax(const std::vector<double>& z, double scale);

}  // namespace fieldswap

#endif  // FIELDSWAP_NN_SPARSEMAX_H_
