#ifndef FIELDSWAP_NN_OPTIMIZER_H_
#define FIELDSWAP_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layers.h"

namespace fieldswap {

/// Adam optimizer (Kingma & Ba) over a fixed set of named parameters.
class AdamOptimizer {
 public:
  struct Options {
    float learning_rate = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    /// Clip the *global* gradient L2 norm — over all parameters jointly —
    /// to this value (0 disables). Matches the global norm the trainer
    /// reports as fieldswap.train.grad_norm.
    float grad_clip_norm = 5.0f;
  };

  explicit AdamOptimizer(std::vector<NamedParam> params)
      : AdamOptimizer(std::move(params), Options()) {}
  AdamOptimizer(std::vector<NamedParam> params, const Options& options);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes all parameter gradients without updating.
  void ZeroGrad();

  int64_t steps_taken() const { return step_; }
  const std::vector<NamedParam>& params() const { return params_; }

 private:
  std::vector<NamedParam> params_;
  Options options_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int64_t step_ = 0;
};

/// L2 norm over every parameter gradient taken jointly (0 for params
/// Backward never reached). Grads are materialized via EnsureGrad.
double GlobalGradNorm(const std::vector<NamedParam>& params);

/// Jointly rescales every gradient so the global norm is at most
/// `max_norm` (standard global-norm clipping: all tensors share one scale
/// factor). No-op when max_norm <= 0 or the norm is already under the
/// limit. Returns the pre-clip global norm.
double ClipGlobalGradNorm(const std::vector<NamedParam>& params,
                          double max_norm);

/// Snapshot of parameter values (for best-validation checkpointing).
std::vector<Matrix> SnapshotParams(const std::vector<NamedParam>& params);

/// Restores a snapshot taken from the same parameter list.
void RestoreParams(const std::vector<NamedParam>& params,
                   const std::vector<Matrix>& snapshot);

}  // namespace fieldswap

#endif  // FIELDSWAP_NN_OPTIMIZER_H_
