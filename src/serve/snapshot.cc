#include "serve/snapshot.h"

#include <atomic>

#include "util/logging.h"

namespace fieldswap {
namespace serve {

namespace {

uint64_t NextSequence() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

}  // namespace

ModelSnapshot::ModelSnapshot(SequenceLabelingModel model, std::string version,
                             bool with_int8_plan)
    : model_(std::move(model)),
      version_(std::move(version)),
      sequence_(NextSequence()) {
  if (version_.empty()) {
    version_ = "snapshot-" + std::to_string(sequence_);
  }
  if (with_int8_plan) {
    int8_plan_ = std::make_unique<const Int8Plan>(model_.MakeInt8Plan());
  }
}

ModelSnapshot::ModelSnapshot(SequenceLabelingModel model, std::string version,
                             std::unique_ptr<const Int8Plan> int8_plan,
                             std::shared_ptr<const void> backing)
    : model_(std::move(model)),
      version_(std::move(version)),
      sequence_(NextSequence()),
      int8_plan_(std::move(int8_plan)),
      backing_(std::move(backing)) {
  if (version_.empty()) {
    version_ = "snapshot-" + std::to_string(sequence_);
  }
}

std::vector<EntitySpan> ModelSnapshot::PredictEncoded(
    const EncodedDoc& encoded, bool int8) const {
  if (!int8) return model_.PredictEncoded(encoded);
  FS_CHECK(int8_plan_ != nullptr)
      << "int8 prediction requested on snapshot '" << version_
      << "' built without an int8 plan; construct it with "
         "with_int8_plan=true";
  return model_.PredictEncodedInt8(*int8_plan_, encoded);
}

}  // namespace serve
}  // namespace fieldswap
