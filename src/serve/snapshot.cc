#include "serve/snapshot.h"

#include <atomic>

namespace fieldswap {
namespace serve {

namespace {

uint64_t NextSequence() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

}  // namespace

ModelSnapshot::ModelSnapshot(SequenceLabelingModel model, std::string version)
    : model_(std::move(model)),
      version_(std::move(version)),
      sequence_(NextSequence()) {
  if (version_.empty()) {
    version_ = "snapshot-" + std::to_string(sequence_);
  }
}

}  // namespace serve
}  // namespace fieldswap
