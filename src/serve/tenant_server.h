#ifndef FIELDSWAP_SERVE_TENANT_SERVER_H_
#define FIELDSWAP_SERVE_TENANT_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "doc/document.h"
#include "obs/timing.h"
#include "par/lock_validator.h"
#include "serve/cache.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/thread_annotations.h"

namespace fieldswap {
namespace serve {

/// Deterministic per-tenant serving counters. Everything here is a pure
/// function of the submission order (no wall clock), so tests can assert
/// fairness bounds exactly rather than statistically.
struct TenantStats {
  int64_t submitted = 0;
  int64_t served = 0;
  int64_t rejected_quota = 0;
  /// Batches this tenant owned as the scheduler's turn tenant.
  int64_t turn_batches = 0;
  /// Documents served by packing into another tenant's batch (possible
  /// only when both tenants' active snapshots are the same object).
  int64_t packed_docs = 0;
  /// p100 of batches_waited over every served request: the most whole
  /// batches any of this tenant's requests sat queued through. The
  /// fairness bound (tests/registry_test.cc) caps this at the number of
  /// active tenants for a tenant submitting within its quantum, no matter
  /// how hard another tenant floods.
  int64_t max_batches_waited = 0;
};

/// Multi-tenant front end over a ModelRegistry (ISSUE 8 tentpole): one
/// admission queue per tenant, per-tenant quotas, and deficit-round-robin
/// batch scheduling, layered on the same leader/follower batching as
/// ExtractionServer (no dedicated threads; the first waiter that finds
/// work leads a batch).
///
/// Scheduling: tenants take turns in sorted-name order. At a tenant's
/// turn its deficit grows by its quantum (registry quota) and the batch
/// drains up to min(deficit, max_batch) of its queued documents; unused
/// deficit carries to its next turn, and a drained-empty queue forfeits
/// the remainder — textbook DRR, so a tenant flooding its queue gets
/// exactly its quantum's share per cycle while light tenants are served
/// every cycle. Admission is quota-bounded per tenant (kRejectedQuota),
/// so no tenant can consume another's queue space, and scheduling is
/// work-conserving: a batch with room left packs documents from *other*
/// tenants whose active snapshot is the same object (shared backbone),
/// which costs the turn tenant nothing and shares the batch's encode and
/// predict stages — cross-tenant packing.
///
/// Determinism: every response is a pure function of (tenant's active
/// snapshot, document content, int8_inference). Scheduling decides only
/// *which batch* serves a document, never the response bytes, so each
/// tenant's response stream is bit-identical to a single-tenant
/// ExtractionServer over the same snapshot at any FIELDSWAP_THREADS,
/// batch size, or tenant interleaving (tests/serve_test.cc). Caches are
/// keyed by (content hash, snapshot sequence), so tenants sharing a
/// backbone snapshot share cache entries — cross-tenant dedup — while
/// distinct snapshots can never collide.
///
/// Hot swap: the registry is consulted at every batch formation, so
/// Publish/Rollback for one tenant lands atomically between batches and
/// never disturbs in-flight requests or other tenants.
class MultiTenantServer {
 public:
  explicit MultiTenantServer(std::shared_ptr<ModelRegistry> registry,
                             ServeOptions options = {});

  MultiTenantServer(const MultiTenantServer&) = delete;
  MultiTenantServer& operator=(const MultiTenantServer&) = delete;

  /// Enqueues a document for `tenant`. Never blocks: unknown tenants,
  /// quota-exhausted tenants, and a shut-down server complete immediately
  /// with the matching rejection. Returns a ticket for Wait().
  int64_t Submit(const std::string& tenant, const Document& doc,
                 double deadline_ms = -1) FS_EXCLUDES(mu_);

  /// Blocks until the response is available (each ticket claimable once).
  /// Waiters collectively drive the batcher, as in ExtractionServer.
  ExtractResponse Wait(int64_t id) FS_EXCLUDES(mu_);

  /// Submit + Wait for one document.
  ExtractResponse Extract(const std::string& tenant, const Document& doc,
                          double deadline_ms = -1);

  /// Runs a corpus for one tenant through the queue/batch machinery in
  /// windows of the tenant's admission quota (so nothing is rejected for
  /// queue space). Responses in input order.
  std::vector<ExtractResponse> ExtractBatch(const std::string& tenant,
                                            const std::vector<Document>& docs);

  /// Rejects everything queued (all tenants) with kRejectedShutdown and
  /// makes further Submits fail fast. Idempotent.
  void Shutdown() FS_EXCLUDES(mu_);

  /// Requests queued for one tenant right now.
  int queue_depth(const std::string& tenant) const;

  /// Deterministic counters for one tenant (zeros for unknown tenants).
  TenantStats stats(const std::string& tenant) const;

  /// Batches executed so far (the clock batches_waited is measured on).
  int64_t batches_run() const;

  const std::shared_ptr<ModelRegistry>& registry() const { return registry_; }
  const ServeOptions& options() const { return options_; }

 private:
  struct PendingRequest {
    int64_t id = 0;
    Document doc;
    double submit_ms = 0;
    double deadline_at_ms = 0;  // absolute; 0 = no deadline
    int64_t batches_at_submit = 0;
  };

  struct TenantState {
    std::deque<PendingRequest> queue;
    int64_t deficit = 0;  // DRR credit, carried across turns
    TenantStats stats;
  };

  /// One document drained into a batch, tagged with its serving identity.
  struct BatchEntry {
    PendingRequest request;
    std::string tenant;
    uint64_t tenant_version = 0;
    bool packed = false;  // served via cross-tenant packing
  };

  double NowMs() const;
  ExtractResponse Reject(ServeStatus status, const std::string& tenant,
                         const Document& doc, std::string error) const;
  /// Leader path: forms one DRR batch, runs it, publishes responses.
  /// Expects `lock` held; releases it around model work.
  void RunBatchLocked(std::unique_lock<util::OrderedMutex>& lock)
      FS_REQUIRES(mu_);

  std::shared_ptr<ModelRegistry> registry_;
  ServeOptions options_;
  obs::Stopwatch uptime_;

  mutable util::OrderedMutex mu_{"MultiTenantServer::mu_"};
  std::condition_variable_any cv_;
  // std::map: batch formation iterates tenants, and sorted order is the
  // deterministic round-robin order (fslint no-unordered-iteration).
  std::map<std::string, TenantState> tenants_ FS_GUARDED_BY(mu_);
  // Last turn tenant; the next turn starts after it.
  std::string cursor_ FS_GUARDED_BY(mu_);
  std::unordered_map<int64_t, ExtractResponse> done_ FS_GUARDED_BY(mu_);
  int64_t next_id_ FS_GUARDED_BY(mu_) = 1;
  size_t total_queued_ FS_GUARDED_BY(mu_) = 0;
  int64_t batches_run_ FS_GUARDED_BY(mu_) = 0;
  bool batch_in_flight_ FS_GUARDED_BY(mu_) = false;
  bool shutdown_ FS_GUARDED_BY(mu_) = false;

  // Shared across tenants: keys fold in the snapshot sequence, so tenants
  // on the same backbone snapshot deduplicate work while distinct
  // snapshots can never collide.
  EncodedDocCache encoded_cache_;
  LruCache<std::vector<EntitySpan>> result_cache_;
};

/// N in-process serving shards over one shared registry. Documents route
/// to a shard by content hash, so routing is deterministic and
/// re-submissions of the same page always land on the same shard's
/// caches. With flat snapshots (serve/flat_snapshot.h) published into the
/// shared registry, all shards read one mmap'd weight copy — the
/// in-process analogue of N server processes mapping the same file.
class ShardedTenantService {
 public:
  ShardedTenantService(std::shared_ptr<ModelRegistry> registry,
                       int num_shards, ServeOptions options = {});

  int num_shards() const { return static_cast<int>(shards_.size()); }
  MultiTenantServer& shard(int index) { return *shards_[index]; }

  /// Deterministic routing: DocContentHash(doc) % num_shards.
  int ShardFor(const Document& doc) const;

  /// Extract on the document's home shard.
  ExtractResponse Extract(const std::string& tenant, const Document& doc,
                          double deadline_ms = -1);

  void Shutdown();

 private:
  std::vector<std::unique_ptr<MultiTenantServer>> shards_;
};

}  // namespace serve
}  // namespace fieldswap

#endif  // FIELDSWAP_SERVE_TENANT_SERVER_H_
