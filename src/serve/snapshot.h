#ifndef FIELDSWAP_SERVE_SNAPSHOT_H_
#define FIELDSWAP_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "model/sequence_model.h"

namespace fieldswap {
namespace serve {

/// An immutable, shareable trained model. The ExtractionServer holds one
/// `shared_ptr<const ModelSnapshot>` and swaps the pointer atomically for
/// zero-downtime refresh: in-flight batches keep the snapshot they started
/// with alive until they finish, new batches pick up the replacement.
///
/// `sequence()` is a process-unique id assigned at construction. Cache
/// entries (encoded documents, memoized predictions) are keyed by it, so a
/// swap can never serve stale state: entries of a retired snapshot simply
/// stop matching and age out of the LRU.
class ModelSnapshot {
 public:
  /// `version` is a human-readable label surfaced in responses ("v1",
  /// "ckpt-2026-08-05", ...); defaults to "snapshot-<sequence>".
  explicit ModelSnapshot(SequenceLabelingModel model,
                         std::string version = "");

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  const SequenceLabelingModel& model() const { return model_; }
  const std::string& version() const { return version_; }
  uint64_t sequence() const { return sequence_; }

 private:
  SequenceLabelingModel model_;
  std::string version_;
  uint64_t sequence_ = 0;
};

/// Convenience wrapper producing the shared-ownership form the server
/// consumes.
inline std::shared_ptr<const ModelSnapshot> MakeSnapshot(
    SequenceLabelingModel model, std::string version = "") {
  return std::make_shared<const ModelSnapshot>(std::move(model),
                                               std::move(version));
}

}  // namespace serve
}  // namespace fieldswap

#endif  // FIELDSWAP_SERVE_SNAPSHOT_H_
