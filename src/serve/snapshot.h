#ifndef FIELDSWAP_SERVE_SNAPSHOT_H_
#define FIELDSWAP_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "model/sequence_model.h"

namespace fieldswap {
namespace serve {

/// An immutable, shareable trained model. The ExtractionServer holds one
/// `shared_ptr<const ModelSnapshot>` and swaps the pointer atomically for
/// zero-downtime refresh: in-flight batches keep the snapshot they started
/// with alive until they finish, new batches pick up the replacement.
///
/// `sequence()` is a process-unique id assigned at construction. Cache
/// entries (encoded documents, memoized predictions) are keyed by it, so a
/// swap can never serve stale state: entries of a retired snapshot simply
/// stop matching and age out of the LRU.
class ModelSnapshot {
 public:
  /// `version` is a human-readable label surfaced in responses ("v1",
  /// "ckpt-2026-08-05", ...); defaults to "snapshot-<sequence>".
  /// `with_int8_plan` additionally quantizes the model's GEMM weights
  /// (per-tensor symmetric int8) at construction, enabling the int8
  /// serving path (ServeOptions.int8_inference). The float weights are
  /// untouched either way.
  explicit ModelSnapshot(SequenceLabelingModel model, std::string version = "",
                         bool with_int8_plan = false);

  /// Adoption constructor for deserialized snapshots (serve/flat_snapshot.h):
  /// takes a pre-built int8 plan instead of quantizing, plus an opaque
  /// `backing` the snapshot keeps alive for its whole lifetime — the mmap
  /// holder when the model's weights are views into a mapped flat file.
  ModelSnapshot(SequenceLabelingModel model, std::string version,
                std::unique_ptr<const Int8Plan> int8_plan,
                std::shared_ptr<const void> backing);

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  const SequenceLabelingModel& model() const { return model_; }
  const std::string& version() const { return version_; }
  uint64_t sequence() const { return sequence_; }

  /// The quantized inference plan, or null when the snapshot was built
  /// without one.
  const Int8Plan* int8_plan() const { return int8_plan_.get(); }

  /// Predicts spans for an encoded document using this snapshot's weights:
  /// the int8 plan when `int8` is set (FS_CHECKs the plan exists), else the
  /// float graph-free forward.
  std::vector<EntitySpan> PredictEncoded(const EncodedDoc& encoded,
                                         bool int8 = false) const;

 private:
  SequenceLabelingModel model_;
  std::string version_;
  uint64_t sequence_ = 0;
  std::unique_ptr<const Int8Plan> int8_plan_;
  std::shared_ptr<const void> backing_;  // outlives every weight view
};

/// Convenience wrapper producing the shared-ownership form the server
/// consumes.
inline std::shared_ptr<const ModelSnapshot> MakeSnapshot(
    SequenceLabelingModel model, std::string version = "",
    bool with_int8_plan = false) {
  return std::make_shared<const ModelSnapshot>(
      std::move(model), std::move(version), with_int8_plan);
}

}  // namespace serve
}  // namespace fieldswap

#endif  // FIELDSWAP_SERVE_SNAPSHOT_H_
