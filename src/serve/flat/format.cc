#include "serve/flat/format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace fieldswap {
namespace serve {
namespace flat {

namespace {

// Header field offsets (bytes). The header is fixed-size with room to grow
// (kHeaderSize = 64; unused tail bytes are zero).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffFileSize = 8;
constexpr size_t kOffChecksum = 16;
constexpr size_t kOffMetaOffset = 24;
constexpr size_t kOffMetaSize = 32;
constexpr size_t kOffDirOffset = 40;
constexpr size_t kOffDirCount = 48;
constexpr size_t kOffPayloadOffset = 56;

size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

void PutU32(std::string& buf, size_t offset, uint32_t v) {
  std::memcpy(buf.data() + offset, &v, sizeof(v));
}

void PutU64(std::string& buf, size_t offset, uint64_t v) {
  std::memcpy(buf.data() + offset, &v, sizeof(v));
}

void AppendU32(std::string& buf, uint32_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string& buf, uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendF32(std::string& buf, float v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked reader over the mapped bytes: every Read* returns false
/// instead of touching memory past `size`, which is what makes a truncated
/// or hostile file a clean error rather than UB.
class Cursor {
 public:
  Cursor(const uint8_t* base, size_t size, size_t pos)
      : base_(base), size_(size), pos_(pos) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadF32(float* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadString(size_t len, std::string* out) {
    if (len > size_ || pos_ > size_ - len) return false;
    out->assign(reinterpret_cast<const char*>(base_ + pos_), len);
    pos_ += len;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  bool ReadRaw(void* out, size_t len) {
    if (len > size_ || pos_ > size_ - len) return false;
    std::memcpy(out, base_ + pos_, len);
    pos_ += len;
    return true;
  }

  const uint8_t* base_;
  size_t size_;
  size_t pos_;
};

bool Fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

size_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return sizeof(float);
    case DType::kI8:
      return sizeof(int8_t);
  }
  FS_CHECK(false) << "unknown dtype " << static_cast<uint32_t>(dtype);
  return 0;
}

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t hash = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void FlatWriter::AddF32(const std::string& name, const float* values,
                        int rows, int cols) {
  FS_CHECK(values != nullptr || rows * cols == 0);
  entries_.push_back({name, DType::kF32, rows, cols, 1.0f, values});
}

void FlatWriter::AddI8(const std::string& name, const int8_t* values,
                       int rows, int cols, float scale) {
  FS_CHECK(values != nullptr || rows * cols == 0);
  entries_.push_back({name, DType::kI8, rows, cols, scale, values});
}

bool FlatWriter::Write(const std::string& path, std::string* error) const {
  // Assemble the whole blob in memory (these models are tiny — a few MB at
  // most), then land it atomically: temp sibling + rename means a
  // concurrent reader maps either the old complete file or the new one,
  // never a torn write.
  std::string buf(kHeaderSize, '\0');

  const uint64_t meta_offset = buf.size();
  buf += metadata_;
  const uint64_t meta_size = metadata_.size();

  const uint64_t dir_offset = buf.size();
  // Payload offsets depend on directory size, which is itself variable, so
  // lay out the directory once with placeholder offsets, compute the
  // payload base, then write the real directory.
  size_t dir_bytes = 0;
  for (const Entry& e : entries_) {
    dir_bytes += sizeof(uint32_t) + e.name.size() +  // name
                 3 * sizeof(uint32_t) +              // dtype, rows, cols
                 sizeof(float) +                     // scale
                 2 * sizeof(uint64_t);               // offset, size
  }
  const uint64_t payload_base = AlignUp(dir_offset + dir_bytes, kPayloadAlign);

  std::string dir;
  dir.reserve(dir_bytes);
  std::vector<std::pair<uint64_t, uint64_t>> spans;  // offset, size
  uint64_t cursor = payload_base;
  for (const Entry& e : entries_) {
    const uint64_t bytes = static_cast<uint64_t>(e.rows) *
                           static_cast<uint64_t>(e.cols) *
                           DTypeSize(e.dtype);
    cursor = AlignUp(cursor, kPayloadAlign);
    spans.emplace_back(cursor, bytes);
    AppendU32(dir, static_cast<uint32_t>(e.name.size()));
    dir += e.name;
    AppendU32(dir, static_cast<uint32_t>(e.dtype));
    AppendU32(dir, static_cast<uint32_t>(e.rows));
    AppendU32(dir, static_cast<uint32_t>(e.cols));
    AppendF32(dir, e.scale);
    AppendU64(dir, cursor);
    AppendU64(dir, bytes);
    cursor += bytes;
  }
  FS_CHECK_EQ(dir.size(), dir_bytes);
  buf += dir;
  buf.resize(payload_base, '\0');
  for (size_t i = 0; i < entries_.size(); ++i) {
    buf.resize(spans[i].first, '\0');  // alignment padding
    buf.append(reinterpret_cast<const char*>(entries_[i].data),
               spans[i].second);
  }

  PutU32(buf, kOffMagic, kMagic);
  PutU32(buf, kOffVersion, kFormatVersion);
  PutU64(buf, kOffFileSize, buf.size());
  PutU64(buf, kOffMetaOffset, meta_offset);
  PutU64(buf, kOffMetaSize, meta_size);
  PutU64(buf, kOffDirOffset, dir_offset);
  PutU64(buf, kOffDirCount, entries_.size());
  PutU64(buf, kOffPayloadOffset, payload_base);
  PutU64(buf, kOffChecksum,
         Fnv1a(reinterpret_cast<const uint8_t*>(buf.data()) + kHeaderSize,
               buf.size() - kHeaderSize));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return Fail(error, "cannot open " + tmp + " for writing");
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!os.good()) return Fail(error, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Fail(error, "cannot rename " + tmp + " into place");
  }
  return true;
}

FlatFile::~FlatFile() {
  if (base_ != nullptr) {
    munmap(const_cast<uint8_t*>(base_), size_);
  }
}

std::shared_ptr<const FlatFile> FlatFile::Map(const std::string& path,
                                              std::string* error,
                                              bool verify_checksum) {
  auto fail = [error](const std::string& reason) {
    if (error != nullptr) *error = reason;
    return nullptr;
  };

  const int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return fail("cannot open " + path);
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return fail("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderSize) {
    close(fd);
    return fail(path + ": too small for a flat header (" +
                std::to_string(size) + " bytes)");
  }
  // MAP_SHARED (not PRIVATE) so every process mapping this file shares one
  // set of physical pages; PROT_READ makes any stray write a fault instead
  // of silent corruption.
  void* mapping = mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  close(fd);  // the mapping keeps its own reference to the file
  if (mapping == MAP_FAILED) return fail("mmap failed for " + path);

  // From here the mapping must be released on every validation failure.
  std::shared_ptr<FlatFile> file(new FlatFile());
  file->base_ = static_cast<const uint8_t*>(mapping);
  file->size_ = size;
  const uint8_t* base = file->base_;

  uint32_t magic = 0, version = 0;
  uint64_t file_size = 0, checksum = 0, meta_offset = 0, meta_size = 0,
           dir_offset = 0, dir_count = 0, payload_offset = 0;
  std::memcpy(&magic, base + kOffMagic, sizeof(magic));
  std::memcpy(&version, base + kOffVersion, sizeof(version));
  std::memcpy(&file_size, base + kOffFileSize, sizeof(file_size));
  std::memcpy(&checksum, base + kOffChecksum, sizeof(checksum));
  std::memcpy(&meta_offset, base + kOffMetaOffset, sizeof(meta_offset));
  std::memcpy(&meta_size, base + kOffMetaSize, sizeof(meta_size));
  std::memcpy(&dir_offset, base + kOffDirOffset, sizeof(dir_offset));
  std::memcpy(&dir_count, base + kOffDirCount, sizeof(dir_count));
  std::memcpy(&payload_offset, base + kOffPayloadOffset,
              sizeof(payload_offset));

  if (magic != kMagic) return fail(path + ": not a flat snapshot (bad magic)");
  if (version != kFormatVersion) {
    return fail(path + ": flat format version " + std::to_string(version) +
                " unsupported (reader knows " +
                std::to_string(kFormatVersion) + ")");
  }
  if (file_size != size) {
    return fail(path + ": header claims " + std::to_string(file_size) +
                " bytes but the file has " + std::to_string(size));
  }
  if (verify_checksum &&
      Fnv1a(base + kHeaderSize, size - kHeaderSize) != checksum) {
    return fail(path + ": checksum mismatch (corrupted or torn file)");
  }
  if (meta_size > size || meta_offset < kHeaderSize ||
      meta_offset > size - meta_size) {
    return fail(path + ": metadata out of bounds");
  }
  file->metadata_ = std::string_view(
      reinterpret_cast<const char*>(base + meta_offset), meta_size);

  if (dir_offset < kHeaderSize || dir_offset > size) {
    return fail(path + ": directory out of bounds");
  }
  Cursor cursor(base, size, dir_offset);
  file->tensors_.reserve(dir_count);
  for (uint64_t i = 0; i < dir_count; ++i) {
    FlatTensor t;
    uint32_t name_len = 0, dtype = 0, rows = 0, cols = 0;
    uint64_t offset = 0, bytes = 0;
    if (!cursor.ReadU32(&name_len) || !cursor.ReadString(name_len, &t.name) ||
        !cursor.ReadU32(&dtype) || !cursor.ReadU32(&rows) ||
        !cursor.ReadU32(&cols) || !cursor.ReadF32(&t.scale) ||
        !cursor.ReadU64(&offset) || !cursor.ReadU64(&bytes)) {
      return fail(path + ": truncated directory entry " + std::to_string(i));
    }
    if (dtype != static_cast<uint32_t>(DType::kF32) &&
        dtype != static_cast<uint32_t>(DType::kI8)) {
      return fail(path + ": tensor '" + t.name + "' has unknown dtype " +
                  std::to_string(dtype));
    }
    t.dtype = static_cast<DType>(dtype);
    t.rows = static_cast<int>(rows);
    t.cols = static_cast<int>(cols);
    const uint64_t want =
        static_cast<uint64_t>(rows) * cols * DTypeSize(t.dtype);
    if (bytes != want) {
      return fail(path + ": tensor '" + t.name + "' payload size " +
                  std::to_string(bytes) + " != rows*cols*dtype " +
                  std::to_string(want));
    }
    if (bytes > size || offset < payload_offset || offset > size - bytes) {
      return fail(path + ": tensor '" + t.name + "' payload out of bounds");
    }
    if (offset % kPayloadAlign != 0) {
      return fail(path + ": tensor '" + t.name + "' payload misaligned");
    }
    t.data = base + offset;
    file->tensors_.push_back(std::move(t));
  }
  return file;
}

const FlatTensor* FlatFile::Find(std::string_view name) const {
  for (const FlatTensor& t : tensors_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace flat
}  // namespace serve
}  // namespace fieldswap
