#ifndef FIELDSWAP_SERVE_FLAT_FORMAT_H_
#define FIELDSWAP_SERVE_FLAT_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fieldswap {
namespace serve {
namespace flat {

/// The mmap-able flat container format (ISSUE 8). A flat file is a single
/// contiguous blob a server shard maps PROT_READ/MAP_SHARED and reads in
/// place — no deserialization, no per-process weight copy; N shards mapping
/// the same file share one set of physical pages through the page cache.
///
/// Layout (all integers little-endian, the only byte order this
/// CPU-serving repo targets):
///
///   [0]  u32 magic            'FSFL' (0x4C465346)
///   [4]  u32 format_version   1 — bumped on any layout change; readers
///                             reject versions they do not know
///   [8]  u64 file_size        total bytes; must equal the mapped size
///   [16] u64 checksum         FNV-1a over bytes [kHeaderSize, file_size)
///   [24] u64 metadata_offset  opaque writer-defined bytes (JSON upstairs)
///   [32] u64 metadata_size
///   [40] u64 dir_offset       tensor directory (see below)
///   [48] u64 dir_count        number of directory entries
///   [56] u64 payload_offset   first tensor payload byte
///
/// Directory entry (variable length, packed in file order):
///   u32 name_len, name bytes, u32 dtype (0=f32, 1=i8), u32 rows, u32 cols,
///   f32 scale (i8 dequantization scale; 1.0 for f32), u64 payload offset
///   (absolute, 64-byte aligned), u64 payload size in bytes.
///
/// Every payload is 64-byte aligned so float loads are cache-line aligned
/// and SIMD kernels never straddle a line at a tensor boundary.
///
/// This layer knows nothing about models: it stores named tensors plus one
/// opaque metadata blob. serve/flat_snapshot.{h,cc} (one layer up) maps
/// model snapshots onto it. The reader treats every file as hostile —
/// all offsets/sizes are bounds-checked before use, so a truncated or
/// corrupted file yields a clean error, never UB (tests/property_test.cc
/// holds this under ASan/UBSan).

inline constexpr uint32_t kMagic = 0x4C465346;  // 'FSFL'
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderSize = 64;
inline constexpr size_t kPayloadAlign = 64;

enum class DType : uint32_t { kF32 = 0, kI8 = 1 };

/// Bytes per element of a dtype.
size_t DTypeSize(DType dtype);

/// One tensor as seen through the mapping: a name, a shape, and a pointer
/// straight into the mapped (read-only) file bytes.
struct FlatTensor {
  std::string name;
  DType dtype = DType::kF32;
  int rows = 0;
  int cols = 0;
  float scale = 1.0f;       // i8 dequantization scale; 1.0 for f32
  const void* data = nullptr;

  const float* f32() const { return static_cast<const float*>(data); }
  const int8_t* i8() const { return static_cast<const int8_t*>(data); }
};

/// Accumulates named tensors and writes the flat blob. The writer copies
/// nothing until Write(): callers keep payload pointers alive until then.
class FlatWriter {
 public:
  /// `metadata` is opaque to this layer (flat_snapshot stores JSON).
  void SetMetadata(std::string metadata) { metadata_ = std::move(metadata); }

  /// Adds a row-major f32 tensor. `values` must stay valid until Write().
  void AddF32(const std::string& name, const float* values, int rows,
              int cols);

  /// Adds a row-major i8 tensor with its dequantization scale.
  void AddI8(const std::string& name, const int8_t* values, int rows,
             int cols, float scale);

  /// Serializes everything to `path` (atomic: written to a temp sibling and
  /// renamed into place, so a reader never maps a half-written file).
  /// Returns false on I/O failure with the reason in `*error`.
  bool Write(const std::string& path, std::string* error) const;

 private:
  struct Entry {
    std::string name;
    DType dtype;
    int rows;
    int cols;
    float scale;
    const void* data;
  };

  std::string metadata_;
  std::vector<Entry> entries_;
};

/// A mapped flat file: RAII over the mmap (unmapped on destruction), plus
/// the validated directory. All tensor `data` pointers alias the mapping,
/// so the FlatFile must outlive every view into it — loaders keep it alive
/// with a shared_ptr captured in the snapshot's backing.
class FlatFile {
 public:
  /// Maps `path` read-only and validates header, checksum, and every
  /// directory entry's bounds. Returns null on any failure with the reason
  /// in `*error`. `verify_checksum` can be disabled for mappings so large
  /// that the load-time pass matters; the default on: a corrupted weight
  /// byte otherwise silently changes every prediction.
  static std::shared_ptr<const FlatFile> Map(const std::string& path,
                                             std::string* error,
                                             bool verify_checksum = true);

  ~FlatFile();
  FlatFile(const FlatFile&) = delete;
  FlatFile& operator=(const FlatFile&) = delete;

  std::string_view metadata() const { return metadata_; }

  /// Tensors in file (write) order.
  const std::vector<FlatTensor>& tensors() const { return tensors_; }

  /// Tensor by name, or nullptr if absent.
  const FlatTensor* Find(std::string_view name) const;

  size_t file_size() const { return size_; }

 private:
  FlatFile() = default;

  const uint8_t* base_ = nullptr;
  size_t size_ = 0;
  std::string_view metadata_;
  std::vector<FlatTensor> tensors_;
};

/// FNV-1a 64-bit over a byte span — the format's checksum primitive,
/// exposed for tests that corrupt files and assert rejection.
uint64_t Fnv1a(const uint8_t* data, size_t size);

}  // namespace flat
}  // namespace serve
}  // namespace fieldswap

#endif  // FIELDSWAP_SERVE_FLAT_FORMAT_H_
