#include "serve/tenant_server.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "util/logging.h"

namespace fieldswap {
namespace serve {

namespace {

const std::vector<double>& BatchSizeBounds() {
  static const std::vector<double> bounds = {1, 2, 4, 8, 16, 32, 64, 128};
  return bounds;
}

}  // namespace

MultiTenantServer::MultiTenantServer(std::shared_ptr<ModelRegistry> registry,
                                     ServeOptions options)
    : registry_(std::move(registry)),
      options_(std::move(options)),
      encoded_cache_(static_cast<size_t>(
          options_.encoded_cache_capacity > 0 ? options_.encoded_cache_capacity
                                              : 0)),
      result_cache_(static_cast<size_t>(
          options_.result_cache_capacity > 0 ? options_.result_cache_capacity
                                             : 0)) {
  FS_CHECK(registry_ != nullptr) << "MultiTenantServer needs a ModelRegistry";
  std::string error = options_.Validate();
  FS_CHECK(error.empty()) << error;
  obs::CounterAdd("fieldswap.serve.tenant.servers_started");
}

double MultiTenantServer::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return uptime_.ElapsedMs();
}

ExtractResponse MultiTenantServer::Reject(ServeStatus status,
                                          const std::string& tenant,
                                          const Document& doc,
                                          std::string error) const {
  ExtractResponse response;
  response.status = status;
  response.doc_id = doc.id();
  response.tenant = tenant;
  response.error = std::move(error);
  obs::CounterAdd(std::string("fieldswap.serve.tenant.") +
                  ServeStatusName(status));
  return response;
}

int64_t MultiTenantServer::Submit(const std::string& tenant,
                                  const Document& doc, double deadline_ms) {
  // Sample the clock before locking: options_.clock_ms is user-supplied
  // and must never run under mu_ (fslint no-lock-across-callback).
  const double now_ms = NowMs();
  std::lock_guard<util::OrderedMutex> lock(mu_);
  int64_t id = next_id_++;
  if (shutdown_) {
    done_[id] =
        Reject(ServeStatus::kRejectedShutdown, tenant, doc,
               "multi-tenant server is shut down");
    return id;
  }
  if (!registry_->Has(tenant)) {
    done_[id] = Reject(
        ServeStatus::kRejectedUnknownTenant, tenant, doc,
        "tenant '" + tenant +
            "' has no published model; publish one to the registry first");
    return id;
  }
  TenantState& state = tenants_[tenant];
  const TenantQuota quota = registry_->Quota(tenant);
  if (state.queue.size() >= static_cast<size_t>(quota.queue_capacity)) {
    state.stats.rejected_quota++;
    ExtractResponse response = Reject(
        ServeStatus::kRejectedQuota, tenant, doc,
        "tenant '" + tenant + "' admission quota exhausted (capacity " +
            std::to_string(quota.queue_capacity) +
            "); drain pending requests or raise TenantQuota.queue_capacity");
    response.tenant_version = registry_->ActiveVersion(tenant);
    done_[id] = std::move(response);
    return id;
  }
  double effective_deadline =
      deadline_ms < 0 ? options_.default_deadline_ms : deadline_ms;
  PendingRequest request;
  request.id = id;
  request.doc = doc;
  request.submit_ms = now_ms;
  request.deadline_at_ms =
      effective_deadline > 0 ? request.submit_ms + effective_deadline : 0;
  request.batches_at_submit = batches_run_;
  state.queue.push_back(std::move(request));
  state.stats.submitted++;
  total_queued_++;
  obs::CounterAdd("fieldswap.serve.tenant.requests");
  obs::GaugeSet("fieldswap.serve.tenant.queue_depth",
                static_cast<double>(total_queued_));
  return id;
}

void MultiTenantServer::RunBatchLocked(
    std::unique_lock<util::OrderedMutex>& lock) {
  batch_in_flight_ = true;
  const int64_t batches_before = batches_run_;

  // Turn selection: the first tenant with queued work strictly after the
  // cursor in sorted order, wrapping — the deterministic round-robin.
  auto begin = tenants_.begin(), end = tenants_.end();
  auto turn = end;
  for (auto it = tenants_.upper_bound(cursor_); it != end; ++it) {
    if (!it->second.queue.empty()) {
      turn = it;
      break;
    }
  }
  if (turn == end) {
    for (auto it = begin; it != end; ++it) {
      if (!it->second.queue.empty()) {
        turn = it;
        break;
      }
    }
  }
  FS_CHECK(turn != end) << "leader elected with nothing queued";
  const std::string turn_name = turn->first;
  TenantState& turn_state = turn->second;

  // DRR: credit the quantum, serve up to the deficit (capped by max_batch),
  // carry the remainder; an emptied queue forfeits its leftover credit.
  const TenantQuota quota = registry_->Quota(turn_name);
  turn_state.deficit += quota.batch_quantum;
  const size_t take = std::min(
      {static_cast<size_t>(turn_state.deficit),
       static_cast<size_t>(options_.max_batch), turn_state.queue.size()});
  const PublishedVersion active = registry_->ActiveEntry(turn_name);
  FS_CHECK(active.snapshot != nullptr)
      << "tenant '" << turn_name << "' queued work but has no active snapshot";
  FS_CHECK(!options_.int8_inference || active.snapshot->int8_plan() != nullptr)
      << "ServeOptions.int8_inference is set but tenant '" << turn_name
      << "' active snapshot '" << active.snapshot->version()
      << "' has no int8 plan";

  std::vector<BatchEntry> batch;
  batch.reserve(static_cast<size_t>(options_.max_batch));
  for (size_t i = 0; i < take; ++i) {
    BatchEntry entry;
    entry.request = std::move(turn_state.queue.front());
    turn_state.queue.pop_front();
    entry.tenant = turn_name;
    entry.tenant_version = active.version;
    batch.push_back(std::move(entry));
  }
  turn_state.deficit -= static_cast<int64_t>(take);
  if (turn_state.queue.empty()) turn_state.deficit = 0;
  turn_state.stats.turn_batches++;
  cursor_ = turn_name;

  // Work-conserving cross-tenant packing: leftover batch room goes to
  // other tenants whose active snapshot is the SAME object (shared
  // backbone), in round-robin order after the turn tenant. Packed service
  // is a bonus — it charges no one's deficit and can only fill capacity
  // the turn tenant could not use, so it never delays anyone's turn.
  int64_t packed = 0;
  if (batch.size() < static_cast<size_t>(options_.max_batch)) {
    auto scan = turn;
    for (size_t visited = 0; visited + 1 < tenants_.size(); ++visited) {
      ++scan;
      if (scan == end) scan = begin;
      if (batch.size() >= static_cast<size_t>(options_.max_batch)) break;
      TenantState& other = scan->second;
      if (other.queue.empty()) continue;
      const PublishedVersion entry = registry_->ActiveEntry(scan->first);
      if (entry.snapshot.get() != active.snapshot.get()) continue;
      while (!other.queue.empty() &&
             batch.size() < static_cast<size_t>(options_.max_batch)) {
        BatchEntry be;
        be.request = std::move(other.queue.front());
        other.queue.pop_front();
        be.tenant = scan->first;
        be.tenant_version = entry.version;
        be.packed = true;
        batch.push_back(std::move(be));
        other.stats.packed_docs++;
        packed++;
      }
    }
  }
  total_queued_ -= batch.size();
  obs::GaugeSet("fieldswap.serve.tenant.queue_depth",
                static_cast<double>(total_queued_));
  const std::shared_ptr<const ModelSnapshot> snapshot = active.snapshot;
  lock.unlock();

  std::vector<ExtractResponse> responses(batch.size());
  {
    FS_TRACE_SPAN("serve.tenant_batch");
    obs::CounterAdd("fieldswap.serve.tenant.batches");
    if (packed > 0) {
      obs::CounterAdd("fieldswap.serve.tenant.packed_docs", packed);
    }
    obs::HistogramObserve("fieldswap.serve.tenant.batch_size",
                          static_cast<double>(batch.size()),
                          BatchSizeBounds());
    double now = NowMs();

    // Triage in batch order: expired deadlines reject, result-cache hits
    // complete immediately, the rest go to the model. Serial cache traffic
    // keeps hit accounting and LRU order deterministic for a fixed
    // submission order.
    std::vector<size_t> live;
    std::vector<uint64_t> keys(batch.size(), 0);
    for (size_t i = 0; i < batch.size(); ++i) {
      BatchEntry& entry = batch[i];
      responses[i].tenant = entry.tenant;
      responses[i].tenant_version = entry.tenant_version;
      responses[i].batches_waited =
          batches_before - entry.request.batches_at_submit;
      if (entry.request.deadline_at_ms > 0 &&
          now > entry.request.deadline_at_ms) {
        ExtractResponse reject = Reject(
            ServeStatus::kRejectedDeadline, entry.tenant, entry.request.doc,
            "deadline expired before batching; extend the deadline or "
            "reduce load");
        reject.tenant_version = responses[i].tenant_version;
        reject.batches_waited = responses[i].batches_waited;
        reject.snapshot_version = snapshot->version();
        responses[i] = std::move(reject);
        continue;
      }
      keys[i] = SnapshotCacheKey(DocContentHash(entry.request.doc),
                                 snapshot->sequence());
      std::shared_ptr<const std::vector<EntitySpan>> cached =
          result_cache_.Get(keys[i]);
      if (cached != nullptr) {
        obs::CounterAdd("fieldswap.serve.tenant.result_cache_hits");
        responses[i].status = ServeStatus::kOk;
        responses[i].spans = *cached;
        responses[i].snapshot_version = snapshot->version();
        responses[i].doc_id = entry.request.doc.id();
        responses[i].cache_hit = true;
        responses[i].encoded_cache_hit = true;
        continue;
      }
      obs::CounterAdd("fieldswap.serve.tenant.result_cache_misses");
      live.push_back(i);
    }

    std::vector<std::shared_ptr<const EncodedDoc>> encoded(live.size());
    std::vector<size_t> to_encode;
    for (size_t j = 0; j < live.size(); ++j) {
      encoded[j] = encoded_cache_.Get(keys[live[j]]);
      if (encoded[j] == nullptr) {
        to_encode.push_back(j);
      } else {
        responses[live[j]].encoded_cache_hit = true;
      }
    }
    if (!to_encode.empty()) {
      FS_TRACE_SPAN("serve.tenant_encode");
      std::vector<std::shared_ptr<const EncodedDoc>> fresh =
          par::ParallelMap(to_encode.size(), [&](size_t k) {
            const Document& doc = batch[live[to_encode[k]]].request.doc;
            return std::make_shared<const EncodedDoc>(
                snapshot->model().EncodeDoc(doc));
          });
      for (size_t k = 0; k < to_encode.size(); ++k) {
        encoded[to_encode[k]] = fresh[k];
        encoded_cache_.Put(keys[live[to_encode[k]]], fresh[k]);
      }
    }

    if (!live.empty()) {
      FS_TRACE_SPAN("serve.tenant_predict");
      std::vector<std::vector<EntitySpan>> predictions =
          par::ParallelMap(live.size(), [&](size_t j) {
            return snapshot->PredictEncoded(*encoded[j],
                                            options_.int8_inference);
          });
      for (size_t j = 0; j < live.size(); ++j) {
        size_t i = live[j];
        auto shared = std::make_shared<const std::vector<EntitySpan>>(
            std::move(predictions[j]));
        result_cache_.Put(keys[i], shared);
        responses[i].status = ServeStatus::kOk;
        responses[i].spans = *shared;
        responses[i].snapshot_version = snapshot->version();
        responses[i].doc_id = batch[i].request.doc.id();
      }
    }

    double end_ms = NowMs();
    for (size_t i = 0; i < batch.size(); ++i) {
      responses[i].latency_ms = end_ms - batch[i].request.submit_ms;
      obs::HistogramObserve("fieldswap.serve.tenant.latency_ms",
                            responses[i].latency_ms);
    }
  }

  lock.lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (responses[i].status == ServeStatus::kOk) {
      TenantState& state = tenants_[batch[i].tenant];
      state.stats.served++;
      state.stats.max_batches_waited = std::max(
          state.stats.max_batches_waited, responses[i].batches_waited);
    }
    done_[batch[i].request.id] = std::move(responses[i]);
  }
  batches_run_++;
  batch_in_flight_ = false;
  cv_.notify_all();
}

ExtractResponse MultiTenantServer::Wait(int64_t id) {
  std::unique_lock<util::OrderedMutex> lock(mu_);
  for (;;) {
    auto it = done_.find(id);
    if (it != done_.end()) {
      ExtractResponse response = std::move(it->second);
      done_.erase(it);
      return response;
    }
    if (!batch_in_flight_ && total_queued_ > 0) {
      RunBatchLocked(lock);
      continue;
    }
    cv_.wait(lock);
  }
}

ExtractResponse MultiTenantServer::Extract(const std::string& tenant,
                                           const Document& doc,
                                           double deadline_ms) {
  return Wait(Submit(tenant, doc, deadline_ms));
}

std::vector<ExtractResponse> MultiTenantServer::ExtractBatch(
    const std::string& tenant, const std::vector<Document>& docs) {
  std::vector<ExtractResponse> responses(docs.size());
  const size_t window = std::max<size_t>(
      1, static_cast<size_t>(registry_->Quota(tenant).queue_capacity));
  for (size_t start = 0; start < docs.size(); start += window) {
    size_t end = std::min(docs.size(), start + window);
    std::vector<int64_t> ids;
    ids.reserve(end - start);
    for (size_t i = start; i < end; ++i) ids.push_back(Submit(tenant, docs[i]));
    for (size_t i = start; i < end; ++i) responses[i] = Wait(ids[i - start]);
  }
  return responses;
}

void MultiTenantServer::Shutdown() {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& [name, state] : tenants_) {
    while (!state.queue.empty()) {
      PendingRequest request = std::move(state.queue.front());
      state.queue.pop_front();
      done_[request.id] =
          Reject(ServeStatus::kRejectedShutdown, name, request.doc,
                 "multi-tenant server shut down while the request was queued");
    }
    state.deficit = 0;
  }
  total_queued_ = 0;
  obs::GaugeSet("fieldswap.serve.tenant.queue_depth", 0);
  cv_.notify_all();
}

int MultiTenantServer::queue_depth(const std::string& tenant) const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : static_cast<int>(it->second.queue.size());
}

TenantStats MultiTenantServer::stats(const std::string& tenant) const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStats{} : it->second.stats;
}

int64_t MultiTenantServer::batches_run() const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  return batches_run_;
}

ShardedTenantService::ShardedTenantService(
    std::shared_ptr<ModelRegistry> registry, int num_shards,
    ServeOptions options) {
  FS_CHECK(num_shards >= 1)
      << "ShardedTenantService needs at least one shard, got " << num_shards;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<MultiTenantServer>(registry, options));
  }
}

int ShardedTenantService::ShardFor(const Document& doc) const {
  return static_cast<int>(DocContentHash(doc) % shards_.size());
}

ExtractResponse ShardedTenantService::Extract(const std::string& tenant,
                                              const Document& doc,
                                              double deadline_ms) {
  return shards_[static_cast<size_t>(ShardFor(doc))]->Extract(tenant, doc,
                                                              deadline_ms);
}

void ShardedTenantService::Shutdown() {
  for (std::unique_ptr<MultiTenantServer>& shard : shards_) {
    shard->Shutdown();
  }
}

}  // namespace serve
}  // namespace fieldswap
