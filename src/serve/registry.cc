#include "serve/registry.h"

#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace fieldswap {
namespace serve {

std::string TenantQuota::Validate() const {
  if (queue_capacity < 1) {
    return "TenantQuota.queue_capacity is " + std::to_string(queue_capacity) +
           "; it must be >= 1 (default 64)";
  }
  if (batch_quantum < 1) {
    return "TenantQuota.batch_quantum is " + std::to_string(batch_quantum) +
           "; it must be >= 1 (default 16)";
  }
  return "";
}

uint64_t ModelRegistry::Publish(const std::string& tenant,
                                std::shared_ptr<const ModelSnapshot> snapshot) {
  FS_CHECK(snapshot != nullptr)
      << "ModelRegistry::Publish(" << tenant << ") needs a snapshot";
  std::lock_guard<util::OrderedMutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  PublishedVersion entry;
  entry.version = state.next_version++;
  entry.snapshot = std::move(snapshot);
  state.lineage.push_back(std::move(entry));
  state.active_index = state.lineage.size() - 1;
  obs::CounterAdd("fieldswap.serve.tenant.publishes");
  obs::GaugeSet("fieldswap.serve.tenant.count",
                static_cast<double>(tenants_.size()));
  return state.lineage.back().version;
}

bool ModelRegistry::Rollback(const std::string& tenant, uint64_t version) {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  TenantState& state = it->second;
  for (size_t i = 0; i < state.lineage.size(); ++i) {
    if (state.lineage[i].version == version) {
      state.active_index = i;
      obs::CounterAdd("fieldswap.serve.tenant.rollbacks");
      return true;
    }
  }
  return false;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Active(
    const std::string& tenant) const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.lineage.empty()) return nullptr;
  return it->second.lineage[it->second.active_index].snapshot;
}

uint64_t ModelRegistry::ActiveVersion(const std::string& tenant) const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.lineage.empty()) return 0;
  return it->second.lineage[it->second.active_index].version;
}

PublishedVersion ModelRegistry::ActiveEntry(const std::string& tenant) const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.lineage.empty()) return {};
  return it->second.lineage[it->second.active_index];
}

std::vector<PublishedVersion> ModelRegistry::Lineage(
    const std::string& tenant) const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  return it->second.lineage;
}

std::vector<std::string> ModelRegistry::Tenants() const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) {
    if (!state.lineage.empty()) names.push_back(name);
  }
  return names;
}

bool ModelRegistry::Has(const std::string& tenant) const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && !it->second.lineage.empty();
}

void ModelRegistry::SetQuota(const std::string& tenant, TenantQuota quota) {
  std::string error = quota.Validate();
  FS_CHECK(error.empty()) << error;
  std::lock_guard<util::OrderedMutex> lock(mu_);
  tenants_[tenant].quota = quota;
}

TenantQuota ModelRegistry::Quota(const std::string& tenant) const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return TenantQuota{};
  return it->second.quota;
}

}  // namespace serve
}  // namespace fieldswap
