#ifndef FIELDSWAP_SERVE_REGISTRY_H_
#define FIELDSWAP_SERVE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "par/lock_validator.h"
#include "serve/snapshot.h"
#include "util/thread_annotations.h"

namespace fieldswap {
namespace serve {

/// Per-tenant serving limits, enforced by MultiTenantServer
/// (serve/tenant_server.h).
struct TenantQuota {
  /// Admission quota: most requests a tenant may have queued at once.
  /// A submit past this completes immediately with kRejectedQuota — the
  /// tenant's own backpressure, invisible to every other tenant.
  int queue_capacity = 64;
  /// Deficit-round-robin quantum: documents credited to the tenant each
  /// time the scheduler reaches its turn. Relative quanta are relative
  /// service shares; the effective per-turn service is additionally capped
  /// by ServeOptions.max_batch.
  int batch_quantum = 16;

  /// Empty string when valid, else an actionable error message.
  std::string Validate() const;
};

/// One published entry in a tenant's snapshot lineage.
struct PublishedVersion {
  /// Monotonic per-tenant version number, starting at 1. Never reused:
  /// publishing after a rollback continues the numbering, it does not fork
  /// it, so "version N" identifies one snapshot forever.
  uint64_t version = 0;
  std::shared_ptr<const ModelSnapshot> snapshot;
};

/// Tenant -> versioned snapshot lineage with atomic publish/rollback
/// (ISSUE 8 tentpole). The registry is the source of truth a multi-tenant
/// server consults at every batch: Publish/Rollback take effect atomically
/// — a batch formed before the call serves the old snapshot, a batch
/// formed after serves the new one, and no batch ever sees a half-updated
/// tenant.
///
/// Lineage is append-only: Rollback moves the tenant's *active* cursor to
/// an earlier version but deletes nothing, so a later Rollback (or just
/// Lineage()) can still see every snapshot ever published and a
/// re-publish after rollback continues the monotonic numbering.
///
/// Thread-safe; every method is one short critical section. Snapshots are
/// shared_ptr<const>, so readers hold them safely across any concurrent
/// publish/rollback (tests/registry_test.cc exercises this under TSan).
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publishes `snapshot` as the tenant's new active version and returns
  /// the assigned (monotonic, per-tenant) version number. First publish
  /// creates the tenant with default quotas.
  uint64_t Publish(const std::string& tenant,
                   std::shared_ptr<const ModelSnapshot> snapshot);

  /// Atomically re-activates an earlier version. Returns false (and
  /// changes nothing) when the tenant or version does not exist.
  bool Rollback(const std::string& tenant, uint64_t version);

  /// The tenant's active snapshot, or null for an unknown tenant.
  std::shared_ptr<const ModelSnapshot> Active(const std::string& tenant) const;

  /// The active version number, or 0 for an unknown tenant.
  uint64_t ActiveVersion(const std::string& tenant) const;

  /// Active version number and snapshot read in one critical section, so a
  /// concurrent publish/rollback can never make the pair inconsistent.
  /// {0, nullptr} for an unknown tenant. This is what the batch scheduler
  /// uses.
  PublishedVersion ActiveEntry(const std::string& tenant) const;

  /// Full append-only lineage (oldest first); empty for unknown tenants.
  std::vector<PublishedVersion> Lineage(const std::string& tenant) const;

  /// All tenant names, sorted (the deterministic scheduling order).
  std::vector<std::string> Tenants() const;

  /// True once the tenant has published at least one snapshot.
  bool Has(const std::string& tenant) const;

  /// Replaces the tenant's quota (FS_CHECKs Validate()). Creating quota
  /// for an unknown tenant is allowed: it applies from its first publish.
  void SetQuota(const std::string& tenant, TenantQuota quota);

  /// The tenant's quota (defaults if never set).
  TenantQuota Quota(const std::string& tenant) const;

 private:
  struct TenantState {
    std::vector<PublishedVersion> lineage;  // append-only, oldest first
    size_t active_index = 0;                // into lineage
    uint64_t next_version = 1;
    TenantQuota quota;
  };

  // Nests under a server's lock: MultiTenantServer admission and batch
  // formation consult the registry while holding their own mu_, so the
  // canonical order is MultiTenantServer::mu_ -> ModelRegistry::mu_
  // (tools/lock_order.txt). Registry methods never call out while locked.
  mutable util::OrderedMutex mu_{"ModelRegistry::mu_"};
  // std::map: Tenants() iterates, and sorted order IS the scheduler's
  // deterministic round-robin order (fslint no-unordered-iteration).
  std::map<std::string, TenantState> tenants_ FS_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace fieldswap

#endif  // FIELDSWAP_SERVE_REGISTRY_H_
