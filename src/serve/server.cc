#include "serve/server.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "util/hash.h"
#include "util/logging.h"

namespace fieldswap {
namespace serve {

namespace {

const std::vector<double>& BatchSizeBounds() {
  static const std::vector<double> bounds = {1, 2, 4, 8, 16, 32, 64, 128};
  return bounds;
}

void AppendU64(std::string& buffer, uint64_t value) {
  char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  buffer.append(bytes, sizeof(value));
}

void AppendDouble(std::string& buffer, double value) {
  AppendU64(buffer, std::bit_cast<uint64_t>(value));
}

}  // namespace

uint64_t SnapshotCacheKey(uint64_t content_hash, uint64_t snapshot_sequence) {
  return content_hash ^ (snapshot_sequence * 0x9e3779b97f4a7c15ULL);
}

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejectedQueueFull:
      return "rejected_queue_full";
    case ServeStatus::kRejectedDeadline:
      return "rejected_deadline";
    case ServeStatus::kRejectedShutdown:
      return "rejected_shutdown";
    case ServeStatus::kRejectedQuota:
      return "rejected_quota";
    case ServeStatus::kRejectedUnknownTenant:
      return "rejected_unknown_tenant";
  }
  return "unknown";
}

std::string ServeOptions::Validate() const {
  if (max_batch < 1) {
    return "ServeOptions.max_batch is " + std::to_string(max_batch) +
           "; it must be >= 1 (default 16)";
  }
  if (queue_capacity < 1) {
    return "ServeOptions.queue_capacity is " + std::to_string(queue_capacity) +
           "; it must be >= 1 (default 64)";
  }
  if (encoded_cache_capacity < 0) {
    return "ServeOptions.encoded_cache_capacity is " +
           std::to_string(encoded_cache_capacity) +
           "; it must be >= 0 (0 disables the cache, default 256)";
  }
  if (result_cache_capacity < 0) {
    return "ServeOptions.result_cache_capacity is " +
           std::to_string(result_cache_capacity) +
           "; it must be >= 0 (0 disables the cache, default 256)";
  }
  if (default_deadline_ms < 0) {
    return "ServeOptions.default_deadline_ms is " +
           std::to_string(default_deadline_ms) +
           "; it must be >= 0 (0 means no deadline)";
  }
  return "";
}

uint64_t DocContentHash(const Document& doc) {
  std::string buffer;
  buffer.reserve(64 + static_cast<size_t>(doc.num_tokens()) * 48);
  buffer += doc.domain();
  buffer += '\x1f';
  AppendDouble(buffer, doc.width());
  AppendDouble(buffer, doc.height());
  for (const Token& token : doc.tokens()) {
    buffer += token.text;
    buffer += '\x1f';
    AppendDouble(buffer, token.box.x_min);
    AppendDouble(buffer, token.box.y_min);
    AppendDouble(buffer, token.box.x_max);
    AppendDouble(buffer, token.box.y_max);
    AppendU64(buffer, static_cast<uint64_t>(token.line));
  }
  for (const EntitySpan& span : doc.annotations()) {
    buffer += span.field;
    buffer += '\x1f';
    AppendU64(buffer, static_cast<uint64_t>(span.first_token));
    AppendU64(buffer, static_cast<uint64_t>(span.num_tokens));
  }
  return Fnv1a64(buffer);
}

ExtractionServer::ExtractionServer(
    std::shared_ptr<const ModelSnapshot> snapshot, ServeOptions options)
    : options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      encoded_cache_(static_cast<size_t>(
          options_.encoded_cache_capacity > 0 ? options_.encoded_cache_capacity
                                              : 0)),
      result_cache_(static_cast<size_t>(
          options_.result_cache_capacity > 0 ? options_.result_cache_capacity
                                             : 0)) {
  FS_CHECK(snapshot_ != nullptr) << "ExtractionServer needs a model snapshot";
  std::string error = options_.Validate();
  FS_CHECK(error.empty()) << error;
  FS_CHECK(!options_.int8_inference || snapshot_->int8_plan() != nullptr)
      << "ServeOptions.int8_inference is set but snapshot '"
      << snapshot_->version()
      << "' has no int8 plan; build it with with_int8_plan=true";
  obs::CounterAdd("fieldswap.serve.servers_started");
}

double ExtractionServer::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return uptime_.ElapsedMs();
}

ExtractResponse ExtractionServer::Reject(ServeStatus status,
                                         const Document& doc,
                                         std::string error) const {
  ExtractResponse response;
  response.status = status;
  response.doc_id = doc.id();
  response.error = std::move(error);
  obs::CounterAdd(std::string("fieldswap.serve.") + ServeStatusName(status));
  return response;
}

int64_t ExtractionServer::Submit(const Document& doc, double deadline_ms) {
  obs::Stopwatch admission_timer;
  // Sample the clock before locking: options_.clock_ms is user-supplied
  // and must never run under mu_ (fslint no-lock-across-callback).
  const double now_ms = NowMs();
  std::lock_guard<util::OrderedMutex> lock(mu_);
  int64_t id = next_id_++;
  if (shutdown_) {
    ExtractResponse response =
        Reject(ServeStatus::kRejectedShutdown, doc, "server is shut down");
    response.snapshot_version = snapshot_->version();
    done_[id] = std::move(response);
    return id;
  }
  if (queue_.size() >= static_cast<size_t>(options_.queue_capacity)) {
    ExtractResponse response = Reject(
        ServeStatus::kRejectedQueueFull, doc,
        "admission queue full (capacity " +
            std::to_string(options_.queue_capacity) +
            "); retry after draining or raise ServeOptions.queue_capacity");
    response.snapshot_version = snapshot_->version();
    done_[id] = std::move(response);
    return id;
  }
  double effective_deadline =
      deadline_ms < 0 ? options_.default_deadline_ms : deadline_ms;
  PendingRequest request;
  request.id = id;
  request.doc = doc;
  request.submit_ms = now_ms;
  request.deadline_at_ms =
      effective_deadline > 0 ? request.submit_ms + effective_deadline : 0;
  queue_.push_back(std::move(request));
  obs::CounterAdd("fieldswap.serve.requests");
  obs::GaugeSet("fieldswap.serve.queue_depth",
                static_cast<double>(queue_.size()));
  obs::HistogramObserve("fieldswap.serve.stage.admission_ms",
                        admission_timer.ElapsedMs());
  return id;
}

void ExtractionServer::RunBatchLocked(
    std::unique_lock<util::OrderedMutex>& lock) {
  batch_in_flight_ = true;
  std::shared_ptr<const ModelSnapshot> snapshot = snapshot_;
  std::vector<PendingRequest> batch;
  while (!queue_.empty() &&
         batch.size() < static_cast<size_t>(options_.max_batch)) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  obs::GaugeSet("fieldswap.serve.queue_depth",
                static_cast<double>(queue_.size()));
  lock.unlock();

  std::vector<ExtractResponse> responses(batch.size());
  {
    FS_TRACE_SPAN("serve.batch");
    obs::CounterAdd("fieldswap.serve.batches");
    obs::HistogramObserve("fieldswap.serve.batch_size",
                          static_cast<double>(batch.size()),
                          BatchSizeBounds());
    double now = NowMs();
    // Per-stage breakdown so the profiler/comparator can attribute serve
    // latency: time spent queued (per request), then encode and predict
    // stage durations (per batch) below.
    for (const PendingRequest& request : batch) {
      obs::HistogramObserve("fieldswap.serve.stage.queue_wait_ms",
                            now - request.submit_ms);
    }

    // Admission-order triage: expired deadlines reject, result-cache hits
    // complete immediately, the rest go to the model. All cache traffic is
    // serial so hit/miss accounting and LRU order are deterministic for a
    // fixed request order.
    std::vector<size_t> live;
    std::vector<uint64_t> keys(batch.size(), 0);
    for (size_t i = 0; i < batch.size(); ++i) {
      const PendingRequest& request = batch[i];
      if (request.deadline_at_ms > 0 && now > request.deadline_at_ms) {
        responses[i] = Reject(
            ServeStatus::kRejectedDeadline, request.doc,
            "deadline expired before batching; extend the deadline or "
            "reduce load");
        responses[i].snapshot_version = snapshot->version();
        continue;
      }
      keys[i] =
          SnapshotCacheKey(DocContentHash(request.doc), snapshot->sequence());
      std::shared_ptr<const std::vector<EntitySpan>> cached =
          result_cache_.Get(keys[i]);
      if (cached != nullptr) {
        obs::CounterAdd("fieldswap.serve.result_cache_hits");
        responses[i].status = ServeStatus::kOk;
        responses[i].spans = *cached;
        responses[i].snapshot_version = snapshot->version();
        responses[i].doc_id = request.doc.id();
        responses[i].cache_hit = true;
        responses[i].encoded_cache_hit = true;
        continue;
      }
      obs::CounterAdd("fieldswap.serve.result_cache_misses");
      live.push_back(i);
    }

    // Encoded-doc cache: serial lookups, parallel encode of the misses,
    // serial inserts in admission order.
    std::vector<std::shared_ptr<const EncodedDoc>> encoded(live.size());
    std::vector<size_t> to_encode;
    for (size_t j = 0; j < live.size(); ++j) {
      encoded[j] = encoded_cache_.Get(keys[live[j]]);
      if (encoded[j] == nullptr) {
        obs::CounterAdd("fieldswap.serve.encoded_cache_misses");
        to_encode.push_back(j);
      } else {
        obs::CounterAdd("fieldswap.serve.encoded_cache_hits");
        responses[live[j]].encoded_cache_hit = true;
      }
    }
    if (!to_encode.empty()) {
      FS_TRACE_SPAN("serve.encode");
      obs::Stopwatch encode_timer;
      std::vector<std::shared_ptr<const EncodedDoc>> fresh =
          par::ParallelMap(to_encode.size(), [&](size_t k) {
            const Document& doc = batch[live[to_encode[k]]].doc;
            return std::make_shared<const EncodedDoc>(
                snapshot->model().EncodeDoc(doc));
          });
      for (size_t k = 0; k < to_encode.size(); ++k) {
        encoded[to_encode[k]] = fresh[k];
        encoded_cache_.Put(keys[live[to_encode[k]]], fresh[k]);
      }
      obs::HistogramObserve("fieldswap.serve.stage.encode_ms",
                            encode_timer.ElapsedMs());
    }

    if (!live.empty()) {
      FS_TRACE_SPAN("serve.predict");
      obs::Stopwatch predict_timer;
      std::vector<std::vector<EntitySpan>> predictions =
          par::ParallelMap(live.size(), [&](size_t j) {
            return snapshot->PredictEncoded(*encoded[j],
                                            options_.int8_inference);
          });
      for (size_t j = 0; j < live.size(); ++j) {
        size_t i = live[j];
        auto shared = std::make_shared<const std::vector<EntitySpan>>(
            std::move(predictions[j]));
        result_cache_.Put(keys[i], shared);
        responses[i].status = ServeStatus::kOk;
        responses[i].spans = *shared;
        responses[i].snapshot_version = snapshot->version();
        responses[i].doc_id = batch[i].doc.id();
      }
      obs::HistogramObserve("fieldswap.serve.stage.predict_ms",
                            predict_timer.ElapsedMs());
    }

    double end = NowMs();
    for (size_t i = 0; i < batch.size(); ++i) {
      responses[i].latency_ms = end - batch[i].submit_ms;
      obs::HistogramObserve("fieldswap.serve.latency_ms",
                            responses[i].latency_ms);
    }
  }

  lock.lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    done_[batch[i].id] = std::move(responses[i]);
  }
  batch_in_flight_ = false;
  cv_.notify_all();
}

ExtractResponse ExtractionServer::Wait(int64_t id) {
  std::unique_lock<util::OrderedMutex> lock(mu_);
  for (;;) {
    auto it = done_.find(id);
    if (it != done_.end()) {
      ExtractResponse response = std::move(it->second);
      done_.erase(it);
      return response;
    }
    if (!batch_in_flight_ && !queue_.empty()) {
      // Leader: drain one batch, then re-check (our request may have been
      // in it, or still be queued behind max_batch others).
      RunBatchLocked(lock);
      continue;
    }
    cv_.wait(lock);
  }
}

ExtractResponse ExtractionServer::Extract(const Document& doc,
                                          double deadline_ms) {
  return Wait(Submit(doc, deadline_ms));
}

std::vector<ExtractResponse> ExtractionServer::ExtractBatch(
    const std::vector<Document>& docs) {
  std::vector<ExtractResponse> responses(docs.size());
  size_t window = static_cast<size_t>(options_.queue_capacity);
  for (size_t start = 0; start < docs.size(); start += window) {
    size_t end = std::min(docs.size(), start + window);
    std::vector<int64_t> ids;
    ids.reserve(end - start);
    for (size_t i = start; i < end; ++i) ids.push_back(Submit(docs[i]));
    for (size_t i = start; i < end; ++i) responses[i] = Wait(ids[i - start]);
  }
  return responses;
}

void ExtractionServer::SwapSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  FS_CHECK(snapshot != nullptr) << "SwapSnapshot needs a model snapshot";
  FS_CHECK(!options_.int8_inference || snapshot->int8_plan() != nullptr)
      << "ServeOptions.int8_inference is set but swapped-in snapshot '"
      << snapshot->version()
      << "' has no int8 plan; build it with with_int8_plan=true";
  std::lock_guard<util::OrderedMutex> lock(mu_);
  snapshot_ = std::move(snapshot);
  obs::CounterAdd("fieldswap.serve.snapshot_swaps");
}

std::shared_ptr<const ModelSnapshot> ExtractionServer::snapshot() const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  return snapshot_;
}

void ExtractionServer::Shutdown() {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  if (shutdown_) return;
  shutdown_ = true;
  while (!queue_.empty()) {
    PendingRequest request = std::move(queue_.front());
    queue_.pop_front();
    ExtractResponse response =
        Reject(ServeStatus::kRejectedShutdown, request.doc,
               "server shut down while the request was queued");
    response.snapshot_version = snapshot_->version();
    done_[request.id] = std::move(response);
  }
  obs::GaugeSet("fieldswap.serve.queue_depth", 0);
  cv_.notify_all();
}

int ExtractionServer::queue_depth() const {
  std::lock_guard<util::OrderedMutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

}  // namespace serve
}  // namespace fieldswap
