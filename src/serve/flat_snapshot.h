#ifndef FIELDSWAP_SERVE_FLAT_SNAPSHOT_H_
#define FIELDSWAP_SERVE_FLAT_SNAPSHOT_H_

#include <memory>
#include <string>

#include "serve/snapshot.h"

namespace fieldswap {
namespace serve {

/// Model-level flat snapshots on top of the generic serve/flat container
/// (ISSUE 8): WriteFlatSnapshot lays a trained ModelSnapshot out as one
/// mmap-able blob (config + full schema as JSON metadata, every float
/// parameter, and the int8 plan when the snapshot carries one);
/// LoadFlatSnapshot maps it back with ZERO weight copies — every Matrix in
/// the loaded model is a read-only view straight into the mapped file, as
/// is every int8 tensor, so N server shards loading the same file share
/// one physical weight copy through the page cache.
///
/// A flat-loaded snapshot is inference-only (views FS_CHECK on mutation)
/// and bit-identical in behavior to the snapshot that wrote it: same
/// config, same schema, same weight bytes, same int8 plan bytes
/// (tests/property_test.cc sweeps the round trip across all domains).

/// Serializes `snapshot` to `path` (atomic rename, see flat::FlatWriter).
/// Returns false with a reason in `*error` on failure.
bool WriteFlatSnapshot(const std::string& path, const ModelSnapshot& snapshot,
                       std::string* error);

/// Maps a WriteFlatSnapshot file and reconstructs the snapshot around
/// zero-copy weight views. The returned snapshot keeps the mapping alive;
/// it gets a fresh process-unique sequence() so server caches can never
/// confuse it with another snapshot. Returns null with a reason in
/// `*error` on any validation failure (hostile files are rejected cleanly,
/// never dereferenced out of bounds).
std::shared_ptr<const ModelSnapshot> LoadFlatSnapshot(const std::string& path,
                                                      std::string* error);

}  // namespace serve
}  // namespace fieldswap

#endif  // FIELDSWAP_SERVE_FLAT_SNAPSHOT_H_
