#ifndef FIELDSWAP_SERVE_CACHE_H_
#define FIELDSWAP_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "model/sequence_model.h"
#include "util/thread_annotations.h"

namespace fieldswap {
namespace serve {

/// Thread-safe LRU cache keyed by a 64-bit content hash. Values are held
/// as `shared_ptr<const V>` so a hit can be used after the entry is
/// evicted by a concurrent insertion.
///
/// Keys must already be collision-resistant (the server keys by FNV-1a of
/// the full document content mixed with the snapshot sequence); the cache
/// itself does no content comparison.
///
/// Determinism note: caching never changes served results — an entry is
/// only ever a memoized pure function of (snapshot, document content), so
/// hit-vs-miss is invisible in the response payload. Only the `*_hit`
/// response flags and the obs counters reveal it.
template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value and refreshes its recency, or nullptr.
  /// Capacity 0 disables the cache (every Get misses, Put is a no-op).
  std::shared_ptr<const V> Get(uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entries beyond capacity.
  void Put(uint64_t key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_.size();
  }
  int64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  int64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  int64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  using Entry = std::pair<uint64_t, std::shared_ptr<const V>>;

  size_t capacity_;
  mutable std::mutex mu_;
  // Front = most recently used.
  std::list<Entry> order_ FS_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index_
      FS_GUARDED_BY(mu_);
  int64_t hits_ FS_GUARDED_BY(mu_) = 0;
  int64_t misses_ FS_GUARDED_BY(mu_) = 0;
  int64_t evictions_ FS_GUARDED_BY(mu_) = 0;
};

/// Cache of per-document model encodings: repeat traffic skips re-encoding
/// (feature hashing, neighbor-list construction) entirely.
using EncodedDocCache = LruCache<EncodedDoc>;

}  // namespace serve
}  // namespace fieldswap

#endif  // FIELDSWAP_SERVE_CACHE_H_
