#ifndef FIELDSWAP_SERVE_SERVER_H_
#define FIELDSWAP_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "doc/document.h"
#include "obs/timing.h"
#include "par/lock_validator.h"
#include "serve/cache.h"
#include "serve/snapshot.h"
#include "util/thread_annotations.h"

namespace fieldswap {
namespace serve {

/// Why a request did or did not produce spans.
enum class ServeStatus {
  kOk = 0,
  /// The admission queue was at capacity when the request arrived. The
  /// server never blocks a submitter; shed load is reported immediately.
  kRejectedQueueFull,
  /// The request's deadline expired before a batch picked it up.
  kRejectedDeadline,
  /// The server was shut down while the request was queued (or before it
  /// was submitted).
  kRejectedShutdown,
  /// The tenant's admission quota was exhausted (multi-tenant serving,
  /// serve/tenant_server.h). Backpressure is per tenant: one tenant at its
  /// quota never blocks admission for the others.
  kRejectedQuota,
  /// The request named a tenant the registry has never published a model
  /// for (serve/registry.h).
  kRejectedUnknownTenant,
};

/// Human-readable name of a status ("ok", "rejected_queue_full", ...).
const char* ServeStatusName(ServeStatus status);

/// Outcome of one extraction request.
struct ExtractResponse {
  ServeStatus status = ServeStatus::kOk;
  /// Predicted spans; meaningful only when status == kOk. Bit-identical to
  /// SequenceLabelingModel::Predict on the same snapshot and document.
  std::vector<EntitySpan> spans;
  /// Version label of the snapshot that served (or rejected) the request.
  std::string snapshot_version;
  std::string doc_id;
  /// True when the full prediction was served from the result cache.
  bool cache_hit = false;
  /// True when the document encoding was reused from the encoded-doc cache
  /// (implied true when cache_hit is true).
  bool encoded_cache_hit = false;
  /// Submit-to-completion time. Observability only — never consulted by
  /// the extraction path, so it does not affect determinism.
  double latency_ms = 0;
  /// Actionable description for rejected requests, empty on kOk.
  std::string error;
  /// Multi-tenant serving only (serve/tenant_server.h); empty/0 on the
  /// single-tenant ExtractionServer.
  std::string tenant;
  /// Registry version of the tenant snapshot that served the request.
  uint64_t tenant_version = 0;
  /// Whole batches that ran between this request's admission and the batch
  /// that served it. Unlike latency_ms this is a *deterministic* fairness
  /// measure under a deterministic submission order, so tests and benches
  /// can assert scheduling bounds exactly (tests/registry_test.cc).
  int64_t batches_waited = 0;
};

/// Configuration of an ExtractionServer. All knobs have serving-friendly
/// defaults; Validate() catches nonsensical combinations with an actionable
/// message before the server accepts traffic.
struct ServeOptions {
  /// Most documents coalesced into one encode/predict batch.
  int max_batch = 16;
  /// Admission queue capacity. A submit finding the queue full is rejected
  /// with kRejectedQueueFull rather than blocking.
  int queue_capacity = 64;
  /// LRU capacity (entries) of the encoded-document cache; 0 disables.
  int encoded_cache_capacity = 256;
  /// LRU capacity (entries) of the memoized-prediction cache; 0 disables.
  int result_cache_capacity = 256;
  /// Default per-request deadline in milliseconds; 0 = no deadline.
  double default_deadline_ms = 0;
  /// Serve with the snapshot's int8-quantized inference plan instead of the
  /// float forward. Requires snapshots built with with_int8_plan=true
  /// (FS_CHECKed at construction and on every SwapSnapshot). Responses stay
  /// deterministic, but differ from the float path by the quantization
  /// error (bounded by the golden-corpus F1 gate in tests/kernels_test.cc).
  bool int8_inference = false;
  /// Injectable monotonic clock (milliseconds). Defaults to server uptime.
  /// Tests substitute a fake clock to exercise deadline rejection
  /// deterministically.
  std::function<double()> clock_ms;

  /// Empty string when valid, else an actionable error message.
  std::string Validate() const;
};

/// Content hash of everything extraction depends on: domain, page geometry,
/// token texts/boxes/line ids, and annotations. The document id is
/// deliberately excluded (it never reaches the model), so re-submissions of
/// the same page under fresh ids still hit the caches.
uint64_t DocContentHash(const Document& doc);

/// The cache key both servers use: folds the snapshot sequence into the
/// content hash so entries from a retired snapshot can never match
/// requests served by its replacement — and so tenants sharing one
/// backbone snapshot (serve/tenant_server.h) share cache entries.
uint64_t SnapshotCacheKey(uint64_t content_hash, uint64_t snapshot_sequence);

/// Batched, deterministic extraction service.
///
/// Requests enter a bounded admission queue (Submit) and are coalesced into
/// batches of at most `max_batch` documents in admission order. There is no
/// dedicated server thread — creating raw threads outside src/par is banned
/// — so batching is leader/follower: the first waiter that finds work and
/// no batch in flight becomes the leader, drains a batch, and executes it
/// on the shared par pool; other waiters block on a condvar until their
/// response is published.
///
/// Each response is a pure function of (snapshot, document content, the
/// int8_inference flag), so results are bit-identical to calling
/// `snapshot->model().Predict(doc)` directly (or the snapshot's int8
/// prediction when int8_inference is set), for any FIELDSWAP_THREADS value,
/// any batch size, and any interleaving of concurrent submitters (enforced
/// by tests/serve_test.cc). Caches are memoization only and cannot change
/// payloads.
///
/// The model snapshot is hot-swappable: SwapSnapshot atomically replaces
/// the pointer; in-flight batches finish on the snapshot they started with,
/// later batches use the replacement. Cache keys include the snapshot
/// sequence, so a swap can never serve stale entries.
class ExtractionServer {
 public:
  ExtractionServer(std::shared_ptr<const ModelSnapshot> snapshot,
                   ServeOptions options = {});

  ExtractionServer(const ExtractionServer&) = delete;
  ExtractionServer& operator=(const ExtractionServer&) = delete;

  /// Enqueues a document. Never blocks: a full queue (or a shut-down
  /// server) completes the request immediately with a rejection.
  /// `deadline_ms` overrides options.default_deadline_ms for this request;
  /// 0 = no deadline, negative = use the default. Returns a ticket for
  /// Wait().
  int64_t Submit(const Document& doc, double deadline_ms = -1)
      FS_EXCLUDES(mu_);

  /// Blocks until the request's response is available and returns it
  /// (each ticket can be claimed once). Callers waiting here collectively
  /// drive the batcher; see the class comment.
  ExtractResponse Wait(int64_t id) FS_EXCLUDES(mu_);

  /// Submit + Wait for a single document.
  ExtractResponse Extract(const Document& doc, double deadline_ms = -1);

  /// Runs a whole corpus through the queue/batch machinery, submitting in
  /// windows of the queue capacity so no request is rejected for queue
  /// space. Responses are returned in input order.
  std::vector<ExtractResponse> ExtractBatch(const std::vector<Document>& docs);

  /// Atomically replaces the served snapshot (zero downtime: concurrent
  /// requests are never rejected or blocked by a swap).
  void SwapSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The snapshot new batches will use.
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Rejects all queued requests with kRejectedShutdown, wakes all waiters,
  /// and makes further Submits fail fast. Idempotent.
  void Shutdown() FS_EXCLUDES(mu_);

  /// Requests admitted but not yet picked up by a batch.
  int queue_depth() const;

  const EncodedDocCache& encoded_cache() const { return encoded_cache_; }
  const LruCache<std::vector<EntitySpan>>& result_cache() const {
    return result_cache_;
  }

 private:
  struct PendingRequest {
    int64_t id = 0;
    Document doc;
    double submit_ms = 0;
    double deadline_at_ms = 0;  // absolute; 0 = no deadline
  };

  double NowMs() const;
  ExtractResponse Reject(ServeStatus status, const Document& doc,
                         std::string error) const;
  /// Leader path: drains one batch and publishes its responses. Expects
  /// `lock` held on entry; temporarily releases it around model work.
  void RunBatchLocked(std::unique_lock<util::OrderedMutex>& lock)
      FS_REQUIRES(mu_);

  ServeOptions options_;
  obs::Stopwatch uptime_;

  mutable util::OrderedMutex mu_{"ExtractionServer::mu_"};
  std::condition_variable_any cv_;
  std::shared_ptr<const ModelSnapshot> snapshot_ FS_GUARDED_BY(mu_);
  std::deque<PendingRequest> queue_ FS_GUARDED_BY(mu_);
  std::unordered_map<int64_t, ExtractResponse> done_ FS_GUARDED_BY(mu_);
  int64_t next_id_ FS_GUARDED_BY(mu_) = 1;
  bool batch_in_flight_ FS_GUARDED_BY(mu_) = false;
  bool shutdown_ FS_GUARDED_BY(mu_) = false;

  EncodedDocCache encoded_cache_;
  LruCache<std::vector<EntitySpan>> result_cache_;
};

}  // namespace serve
}  // namespace fieldswap

#endif  // FIELDSWAP_SERVE_SERVER_H_
