#include "serve/flat_snapshot.h"

#include <utility>
#include <vector>

#include "serve/flat/format.h"
#include "util/json.h"
#include "util/logging.h"

namespace fieldswap {
namespace serve {

namespace {

namespace flat = ::fieldswap::serve::flat;
using ::fieldswap::util::JsonValue;

constexpr int kMetadataSchemaVersion = 1;

// ---------------------------------------------------------------------------
// Metadata (config + schema + version label) as canonical JSON.

JsonValue ConfigToJson(const SequenceModelConfig& c) {
  JsonValue j = JsonValue::MakeObject();
  j.Set("d_model", JsonValue::MakeNumber(c.d_model));
  j.Set("num_layers", JsonValue::MakeNumber(c.num_layers));
  j.Set("spatial_neighbors", JsonValue::MakeNumber(c.spatial_neighbors));
  j.Set("sequence_window", JsonValue::MakeNumber(c.sequence_window));
  j.Set("text_buckets", JsonValue::MakeNumber(c.text_buckets));
  j.Set("shape_buckets", JsonValue::MakeNumber(c.shape_buckets));
  j.Set("max_tokens", JsonValue::MakeNumber(c.max_tokens));
  j.Set("outside_weight", JsonValue::MakeNumber(c.outside_weight));
  j.Set("use_viterbi_decoding", JsonValue::MakeBool(c.use_viterbi_decoding));
  j.Set("seed", JsonValue::MakeNumber(static_cast<double>(c.seed)));
  return j;
}

bool ReadInt(const JsonValue& j, const std::string& key, int lo, int hi,
             int* out) {
  const JsonValue* v = j.Find(key);
  if (v == nullptr || !v->is_number()) return false;
  const double d = v->number_value();
  if (d < lo || d > hi) return false;
  *out = static_cast<int>(d);
  return true;
}

// Range bounds keep a hostile metadata blob from driving model
// construction to absurd allocations before tensor validation even runs.
bool ConfigFromJson(const JsonValue& j, SequenceModelConfig* c) {
  if (!ReadInt(j, "d_model", 1, 4096, &c->d_model)) return false;
  if (!ReadInt(j, "num_layers", 0, 64, &c->num_layers)) return false;
  if (!ReadInt(j, "spatial_neighbors", 0, 4096, &c->spatial_neighbors)) {
    return false;
  }
  if (!ReadInt(j, "sequence_window", 0, 4096, &c->sequence_window)) {
    return false;
  }
  if (!ReadInt(j, "text_buckets", 1, 1 << 24, &c->text_buckets)) return false;
  if (!ReadInt(j, "shape_buckets", 1, 1 << 24, &c->shape_buckets)) {
    return false;
  }
  if (!ReadInt(j, "max_tokens", 1, 1 << 20, &c->max_tokens)) return false;
  const JsonValue* ow = j.Find("outside_weight");
  if (ow == nullptr || !ow->is_number()) return false;
  c->outside_weight = static_cast<float>(ow->number_value());
  const JsonValue* viterbi = j.Find("use_viterbi_decoding");
  if (viterbi == nullptr || !viterbi->is_bool()) return false;
  c->use_viterbi_decoding = viterbi->bool_value();
  const JsonValue* seed = j.Find("seed");
  if (seed == nullptr || !seed->is_number()) return false;
  c->seed = static_cast<uint64_t>(seed->number_value());
  return true;
}

JsonValue SchemaToJson(const DomainSchema& schema) {
  JsonValue j = JsonValue::MakeObject();
  j.Set("domain", JsonValue::MakeString(schema.domain()));
  JsonValue fields = JsonValue::MakeArray();
  for (const FieldSpec& f : schema.fields()) {
    JsonValue fj = JsonValue::MakeObject();
    fj.Set("name", JsonValue::MakeString(f.name));
    fj.Set("type", JsonValue::MakeString(std::string(FieldTypeName(f.type))));
    fj.Set("frequency", JsonValue::MakeNumber(f.frequency));
    fields.Append(std::move(fj));
  }
  j.Set("fields", std::move(fields));
  return j;
}

bool SchemaFromJson(const JsonValue& j, DomainSchema* schema) {
  const JsonValue* domain = j.Find("domain");
  const JsonValue* fields = j.Find("fields");
  if (domain == nullptr || !domain->is_string() || fields == nullptr ||
      !fields->is_array()) {
    return false;
  }
  std::vector<FieldSpec> specs;
  specs.reserve(fields->array_items().size());
  for (const JsonValue& fj : fields->array_items()) {
    const JsonValue* name = fj.Find("name");
    const JsonValue* type = fj.Find("type");
    const JsonValue* freq = fj.Find("frequency");
    if (name == nullptr || !name->is_string() || type == nullptr ||
        !type->is_string() || freq == nullptr || !freq->is_number()) {
      return false;
    }
    std::optional<FieldType> parsed = ParseFieldType(type->string_value());
    if (!parsed.has_value()) return false;
    FieldSpec spec;
    spec.name = name->string_value();
    spec.type = *parsed;
    spec.frequency = freq->number_value();
    specs.push_back(std::move(spec));
  }
  *schema = DomainSchema(domain->string_value(), std::move(specs));
  return true;
}

// ---------------------------------------------------------------------------
// Int8 plan slot enumeration. Writer and loader must agree on tensor names,
// so both walk the plan through this single function: one callback per
// Linear with its flat-file name prefix ("<prefix>.wt" holds the quantized
// transposed weight, "<prefix>.bias" the float bias).

template <typename Plan, typename Fn>
void ForEachInt8Slot(Plan& plan, int num_layers, Fn&& fn) {
  fn("int8/pos_proj", plan.pos_proj);
  for (int i = 0; i < num_layers; ++i) {
    const std::string base = "int8/block" + std::to_string(i);
    auto& b = plan.blocks[static_cast<size_t>(i)];
    fn(base + "/wq", b.wq);
    fn(base + "/wk", b.wk);
    fn(base + "/wv", b.wv);
    fn(base + "/wo", b.wo);
    fn(base + "/ff1", b.ff1);
    fn(base + "/ff2", b.ff2);
  }
  fn("int8/head", plan.head);
}

}  // namespace

bool WriteFlatSnapshot(const std::string& path, const ModelSnapshot& snapshot,
                       std::string* error) {
  const SequenceLabelingModel& model = snapshot.model();

  JsonValue meta = JsonValue::MakeObject();
  meta.Set("schema_version", JsonValue::MakeNumber(kMetadataSchemaVersion));
  meta.Set("config", ConfigToJson(model.config()));
  meta.Set("schema", SchemaToJson(model.schema()));
  meta.Set("version", JsonValue::MakeString(snapshot.version()));
  meta.Set("int8", JsonValue::MakeBool(snapshot.int8_plan() != nullptr));

  flat::FlatWriter writer;
  writer.SetMetadata(meta.Dump());

  // Float parameters, in the model's deterministic Params() order. The
  // NamedParam vector must outlive Write(): the writer holds raw pointers.
  const std::vector<NamedParam> params = model.Params();
  for (const NamedParam& np : params) {
    const Matrix& m = np.param->value;
    writer.AddF32(np.name, m.data(), m.rows(), m.cols());
  }

  const Int8Plan* plan = snapshot.int8_plan();
  if (plan != nullptr) {
    ForEachInt8Slot(*plan, model.config().num_layers,
                    [&writer](const std::string& prefix,
                              const Int8LinearPlan& lp) {
                      writer.AddI8(prefix + ".wt", lp.weight_t.ptr(),
                                   lp.weight_t.rows, lp.weight_t.cols,
                                   lp.weight_t.scale);
                      writer.AddF32(prefix + ".bias", lp.bias.data(),
                                    lp.bias.rows(), lp.bias.cols());
                    });
  }
  return writer.Write(path, error);
}

std::shared_ptr<const ModelSnapshot> LoadFlatSnapshot(const std::string& path,
                                                      std::string* error) {
  auto fail = [error](const std::string& reason)
      -> std::shared_ptr<const ModelSnapshot> {
    if (error != nullptr) *error = reason;
    return nullptr;
  };

  std::shared_ptr<const flat::FlatFile> file = flat::FlatFile::Map(path, error);
  if (file == nullptr) return nullptr;

  std::optional<JsonValue> meta =
      JsonValue::Parse(std::string(file->metadata()));
  if (!meta.has_value() || !meta->is_object()) {
    return fail(path + ": flat metadata is not a JSON object");
  }
  const JsonValue* schema_version = meta->Find("schema_version");
  if (schema_version == nullptr || !schema_version->is_number() ||
      static_cast<int>(schema_version->number_value()) !=
          kMetadataSchemaVersion) {
    return fail(path + ": unsupported flat metadata schema_version");
  }

  SequenceModelConfig config;
  const JsonValue* config_json = meta->Find("config");
  if (config_json == nullptr || !ConfigFromJson(*config_json, &config)) {
    return fail(path + ": bad or missing model config in flat metadata");
  }
  DomainSchema schema;
  const JsonValue* schema_json = meta->Find("schema");
  if (schema_json == nullptr || !SchemaFromJson(*schema_json, &schema)) {
    return fail(path + ": bad or missing domain schema in flat metadata");
  }
  const JsonValue* version = meta->Find("version");
  if (version == nullptr || !version->is_string()) {
    return fail(path + ": missing version label in flat metadata");
  }
  const JsonValue* int8_flag = meta->Find("int8");
  if (int8_flag == nullptr || !int8_flag->is_bool()) {
    return fail(path + ": missing int8 flag in flat metadata");
  }

  // Build the model skeleton from the config, then point every parameter at
  // the mapped bytes. Dims must match what the config implies — a hostile
  // directory that disagrees is rejected before any view is taken.
  SequenceLabelingModel model(config, std::move(schema));
  for (const NamedParam& np : model.Params()) {
    const flat::FlatTensor* t = file->Find(np.name);
    if (t == nullptr) {
      return fail(path + ": flat file is missing parameter '" + np.name + "'");
    }
    const Matrix& expect = np.param->value;
    if (t->dtype != flat::DType::kF32 || t->rows != expect.rows() ||
        t->cols != expect.cols()) {
      return fail(path + ": parameter '" + np.name +
                  "' has wrong dtype/shape for this config");
    }
    np.param->value = Matrix::View(t->f32(), t->rows, t->cols);
  }

  std::unique_ptr<const Int8Plan> plan;
  if (int8_flag->bool_value()) {
    auto built = std::make_unique<Int8Plan>();
    built->blocks.resize(static_cast<size_t>(config.num_layers));
    bool ok = true;
    std::string bad;
    ForEachInt8Slot(*built, config.num_layers,
                    [&](const std::string& prefix, Int8LinearPlan& lp) {
                      if (!ok) return;
                      const flat::FlatTensor* wt = file->Find(prefix + ".wt");
                      const flat::FlatTensor* bias =
                          file->Find(prefix + ".bias");
                      if (wt == nullptr || wt->dtype != flat::DType::kI8 ||
                          bias == nullptr ||
                          bias->dtype != flat::DType::kF32 ||
                          bias->rows != 1 || bias->cols != wt->rows) {
                        ok = false;
                        bad = prefix;
                        return;
                      }
                      lp.weight_t.view = wt->i8();
                      lp.weight_t.rows = wt->rows;
                      lp.weight_t.cols = wt->cols;
                      lp.weight_t.scale = wt->scale;
                      lp.bias = Matrix::View(bias->f32(), bias->rows,
                                             bias->cols);
                    });
    if (!ok) {
      return fail(path + ": bad or missing int8 tensor pair '" + bad + "'");
    }
    plan = std::move(built);
  }

  return std::make_shared<const ModelSnapshot>(
      std::move(model), version->string_value(), std::move(plan),
      std::static_pointer_cast<const void>(file));
}

}  // namespace serve
}  // namespace fieldswap
