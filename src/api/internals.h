#ifndef FIELDSWAP_API_INTERNALS_H_
#define FIELDSWAP_API_INTERNALS_H_

/// Explicitly UNSTABLE deep-internal surface.
///
/// Micro-benchmarks and diagnostic tools sometimes need to poke individual
/// subsystems below the supported facade (raw autodiff ops, baseline
/// extractors, OCR noise models, the robustness attack ladder). This header
/// is the single sanctioned doorway for that: everything reachable from it
/// may change or disappear between any two commits, with no compatibility
/// expectations whatsoever. If a program needs this header to build, it is
/// coupled to internals — keep that program inside this repository.
///
/// Supported consumers use api/fieldswap_api.h instead.

#include "api/fieldswap_api.h"
#include "attack/ladder.h"
#include "attack/perturbation.h"
#include "core/baselines.h"
#include "core/field_pairs.h"
#include "core/human_expert.h"
#include "core/phrase_suggest.h"
#include "model/annotators.h"
#include "nn/autodiff.h"
#include "nn/ops.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "nn/sparsemax.h"
#include "ocr/noise.h"

#endif  // FIELDSWAP_API_INTERNALS_H_
