#ifndef FIELDSWAP_API_FIELDSWAP_API_H_
#define FIELDSWAP_API_FIELDSWAP_API_H_

/// The supported public surface of the FieldSwap library.
///
/// Code outside src/ — examples, benches, tools, downstream users — should
/// include this header (or serve/, obs/, util/ headers) and nothing else;
/// fslint's layering rule enforces that machine-side (tools/layers.txt).
/// Everything re-exported here is covered by the usual compatibility
/// expectations; headers not reachable from this file are internal and may
/// change without notice (see api/internals.h for the escape hatch).
///
/// The surface is two things:
///   1. Curated re-exports of the stable subsystem headers: documents and
///      serialization, synthetic domains/corpora, the FieldSwap pipeline,
///      training and evaluation, the serving subsystem, and deterministic
///      thread control.
///   2. Thin convenience wrappers in fieldswap::api for the common
///      lifecycle: NewModel -> Train (or LoadModel) -> Extract / Evaluate /
///      Serve, plus Augment for standalone FieldSwap augmentation, and the
///      corpus-format surface: OpenCorpus / WriteCorpus / ListFormats /
///      GenerateCorpusStream (ISSUE 10).
///
/// Corpus compatibility stance: the streaming doc::CorpusReader overloads
/// of Train / Evaluate are the cores; the std::vector<Document> overloads
/// are documented thin adapters over them and will stay source- and
/// behavior-compatible — a vector call and a reader call over the same
/// documents produce bit-identical results at any FIELDSWAP_THREADS.
/// Corpus files written by WriteCorpus are readable by every later library
/// version of the same major line: the native container embeds a format
/// version readers check, and JSONL is plain DocumentToJson lines.

#include <memory>
#include <string>
#include <vector>

#include "core/key_phrases.h"
#include "core/pipeline.h"
#include "core/swap.h"
#include "doc/corpus.h"
#include "doc/serialize.h"
#include "eval/experiment.h"
#include "eval/golden.h"
#include "eval/metrics.h"
#include "model/candidate_model.h"
#include "model/options.h"
#include "model/trainer.h"
#include "nn/kernels.h"
#include "ocr/line_detector.h"
#include "par/parallel.h"
#include "serve/flat_snapshot.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/tenant_server.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace api {

/// Library version, bumped when the supported surface changes shape.
const char* Version();

/// Fresh untrained model for a built-in synthetic domain ("invoices",
/// "paystubs", "utility_bills"). Aborts on an unknown domain (SpecByName
/// lists the valid names in its message).
SequenceLabelingModel NewModel(const std::string& domain,
                               const SequenceModelConfig& config = {});

/// Writes a model's parameters to a checkpoint file; false on I/O failure.
bool SaveModel(const std::string& checkpoint_path,
               const SequenceLabelingModel& model);

/// Loads a checkpoint written by SaveModel into `model` (which must have
/// been built with the same config and domain). False when the file is
/// unreadable or the parameter shapes do not match.
bool LoadModel(const std::string& checkpoint_path,
               SequenceLabelingModel& model);

/// Predicted spans for one document.
std::vector<EntitySpan> Extract(const SequenceLabelingModel& model,
                                const Document& doc);

/// Batched extraction on the shared deterministic pool. Results are
/// bit-identical to calling Extract per document, at any FIELDSWAP_THREADS.
std::vector<std::vector<EntitySpan>> ExtractBatch(
    const SequenceLabelingModel& model, const std::vector<Document>& docs);

/// Trains the model on `originals` plus optional FieldSwap `synthetics`.
TrainResult Train(SequenceLabelingModel& model,
                  const std::vector<Document>& originals,
                  const std::vector<Document>& synthetics = {},
                  const TrainOptions& options = {});

/// Streaming overload: trains from corpus readers (file-backed, synthetic,
/// or vector views) without materializing the corpora. Bit-identical to
/// the vector overload over the same documents.
TrainResult Train(SequenceLabelingModel& model,
                  const doc::CorpusReader& originals,
                  const doc::CorpusReader* synthetics = nullptr,
                  const TrainOptions& options = {});

/// Span-level precision/recall/F1 against a labeled corpus.
EvalResult Evaluate(const SequenceLabelingModel& model,
                    const std::vector<Document>& docs);

/// Streaming overload: evaluates over a corpus reader in bounded memory
/// (one block of documents at a time). Bit-identical to the vector
/// overload over the same documents.
EvalResult Evaluate(const SequenceLabelingModel& model,
                    const doc::CorpusReader& docs);

/// Runs the FieldSwap augmentation pipeline over a training corpus.
AugmentationResult Augment(const std::vector<Document>& originals,
                           const DomainSpec& spec,
                           const FieldSwapPipelineOptions& options = {},
                           const CandidateScoringModel* candidate_model =
                               nullptr);

/// Streaming overload: reads `originals` through a corpus reader. The
/// pipeline's swap stage needs the training pool resident (it pairs
/// documents across the pool), so this materializes internally; the
/// adapter exists so callers can feed any corpus format to augmentation
/// without touching LoadCorpusJsonl themselves.
AugmentationResult Augment(const doc::CorpusReader& originals,
                           const DomainSpec& spec,
                           const FieldSwapPipelineOptions& options = {},
                           const CandidateScoringModel* candidate_model =
                               nullptr);

/// Opens a corpus file through the format-driver registry — native binary
/// (.fsc), JSONL (.jsonl), or a synthetic generator spec (.synth). Empty
/// `format` auto-identifies by magic bytes, then extension. Null with the
/// reason (including the registered format names) in `*status`.
std::unique_ptr<doc::CorpusReader> OpenCorpus(const std::string& path,
                                              const std::string& format = "",
                                              doc::CorpusStatus* status =
                                                  nullptr);

/// Creates a streaming corpus writer. Empty `format` picks the writable
/// driver whose extension matches `path`, defaulting to native. The file
/// lands atomically (temp + rename) at Finish().
std::unique_ptr<doc::CorpusWriter> WriteCorpus(const std::string& path,
                                               const std::string& format = "",
                                               doc::CorpusStatus* status =
                                                   nullptr);

/// Metadata for every registered corpus format, registration order.
std::vector<doc::FormatInfo> ListFormats();

/// A lazy reader over the synthetic generator: documents materialize per
/// Get, so corpus size costs ~24 bytes/document up front. Reading index i
/// yields exactly GenerateCorpus(SpecByName(domain), count, seed,
/// id_prefix)[i]. Aborts on an unknown domain (SpecByName lists the valid
/// names in its message).
std::unique_ptr<doc::CorpusReader> GenerateCorpusStream(
    const std::string& domain, int count, uint64_t seed,
    const std::string& id_prefix = "doc");

/// Wraps a trained model into a hot-swappable snapshot and returns a
/// batched ExtractionServer ready for traffic.
std::unique_ptr<serve::ExtractionServer> Serve(
    SequenceLabelingModel model, serve::ServeOptions options = {},
    std::string version = "");

/// Fresh empty tenant registry (multi-tenant serving, ISSUE 8).
std::shared_ptr<serve::ModelRegistry> NewRegistry();

/// Snapshots a trained model (int8 plan included when `with_int8_plan`)
/// and publishes it as the tenant's new active version. Returns the
/// assigned monotonic version number.
uint64_t PublishModel(serve::ModelRegistry& registry,
                      const std::string& tenant, SequenceLabelingModel model,
                      std::string version = "", bool with_int8_plan = false);

/// Multi-tenant front end over a registry: per-tenant quotas,
/// deficit-round-robin fair batching, cross-tenant batch packing. See
/// serve/tenant_server.h for the determinism contract.
std::unique_ptr<serve::MultiTenantServer> ServeTenants(
    std::shared_ptr<serve::ModelRegistry> registry,
    serve::ServeOptions options = {});

/// Writes a snapshot to the mmap-able flat format; false with a reason in
/// `*error` on failure.
bool SaveFlatSnapshot(const std::string& path,
                      const serve::ModelSnapshot& snapshot,
                      std::string* error = nullptr);

/// Maps a flat snapshot back with zero weight copies (weights are views
/// into the mapping); null with a reason in `*error` on failure.
std::shared_ptr<const serve::ModelSnapshot> LoadFlatSnapshot(
    const std::string& path, std::string* error = nullptr);

}  // namespace api
}  // namespace fieldswap

#endif  // FIELDSWAP_API_FIELDSWAP_API_H_
