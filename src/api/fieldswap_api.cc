#include "api/fieldswap_api.h"

#include <utility>

#include "nn/serialize.h"
#include "synth/corpus_stream.h"

namespace fieldswap {
namespace api {
namespace {

/// Every corpus entry point funnels through here so the synthetic driver —
/// which doc/ cannot register itself without inverting the layering — is
/// in the registry before any identify/open/list call.
void EnsureCorpusFormats() { synth::RegisterSyntheticCorpusDriver(); }

}  // namespace

const char* Version() { return "fieldswap 1.1"; }

SequenceLabelingModel NewModel(const std::string& domain,
                               const SequenceModelConfig& config) {
  DomainSpec spec = SpecByName(domain);
  return SequenceLabelingModel(config, spec.Schema());
}

bool SaveModel(const std::string& checkpoint_path,
               const SequenceLabelingModel& model) {
  return SaveCheckpoint(checkpoint_path, model.Params());
}

bool LoadModel(const std::string& checkpoint_path,
               SequenceLabelingModel& model) {
  return LoadCheckpoint(checkpoint_path, model.Params());
}

std::vector<EntitySpan> Extract(const SequenceLabelingModel& model,
                                const Document& doc) {
  return model.Predict(doc);
}

std::vector<std::vector<EntitySpan>> ExtractBatch(
    const SequenceLabelingModel& model, const std::vector<Document>& docs) {
  return par::ParallelMap(docs.size(), [&](size_t i) {
    return model.Predict(docs[i]);
  });
}

TrainResult Train(SequenceLabelingModel& model,
                  const std::vector<Document>& originals,
                  const std::vector<Document>& synthetics,
                  const TrainOptions& options) {
  return TrainSequenceModel(model, originals, synthetics, options);
}

EvalResult Evaluate(const SequenceLabelingModel& model,
                    const std::vector<Document>& docs) {
  return EvaluateModel(model, docs);
}

TrainResult Train(SequenceLabelingModel& model,
                  const doc::CorpusReader& originals,
                  const doc::CorpusReader* synthetics,
                  const TrainOptions& options) {
  return TrainSequenceModel(model, originals, synthetics, options);
}

EvalResult Evaluate(const SequenceLabelingModel& model,
                    const doc::CorpusReader& docs) {
  return EvaluateModel(model, docs);
}

AugmentationResult Augment(const std::vector<Document>& originals,
                           const DomainSpec& spec,
                           const FieldSwapPipelineOptions& options,
                           const CandidateScoringModel* candidate_model) {
  return RunFieldSwap(originals, spec, candidate_model, options);
}

AugmentationResult Augment(const doc::CorpusReader& originals,
                           const DomainSpec& spec,
                           const FieldSwapPipelineOptions& options,
                           const CandidateScoringModel* candidate_model) {
  return RunFieldSwap(doc::ReadAllDocuments(originals), spec, candidate_model,
                      options);
}

std::unique_ptr<doc::CorpusReader> OpenCorpus(const std::string& path,
                                              const std::string& format,
                                              doc::CorpusStatus* status) {
  EnsureCorpusFormats();
  return doc::OpenCorpus(path, format, status);
}

std::unique_ptr<doc::CorpusWriter> WriteCorpus(const std::string& path,
                                               const std::string& format,
                                               doc::CorpusStatus* status) {
  EnsureCorpusFormats();
  return doc::CreateCorpus(path, format, status);
}

std::vector<doc::FormatInfo> ListFormats() {
  EnsureCorpusFormats();
  return doc::FormatDriverRegistry::Global().ListFormats();
}

std::unique_ptr<doc::CorpusReader> GenerateCorpusStream(
    const std::string& domain, int count, uint64_t seed,
    const std::string& id_prefix) {
  return synth::MakeSyntheticCorpusReader(SpecByName(domain), count, seed,
                                          id_prefix);
}

std::unique_ptr<serve::ExtractionServer> Serve(SequenceLabelingModel model,
                                               serve::ServeOptions options,
                                               std::string version) {
  // int8 serving needs the quantized plan; building it unconditionally
  // would tax every float-serving caller, so it follows the flag.
  const bool with_int8_plan = options.int8_inference;
  return std::make_unique<serve::ExtractionServer>(
      serve::MakeSnapshot(std::move(model), std::move(version),
                          with_int8_plan),
      std::move(options));
}

std::shared_ptr<serve::ModelRegistry> NewRegistry() {
  return std::make_shared<serve::ModelRegistry>();
}

uint64_t PublishModel(serve::ModelRegistry& registry,
                      const std::string& tenant, SequenceLabelingModel model,
                      std::string version, bool with_int8_plan) {
  return registry.Publish(
      tenant, serve::MakeSnapshot(std::move(model), std::move(version),
                                  with_int8_plan));
}

std::unique_ptr<serve::MultiTenantServer> ServeTenants(
    std::shared_ptr<serve::ModelRegistry> registry,
    serve::ServeOptions options) {
  return std::make_unique<serve::MultiTenantServer>(std::move(registry),
                                                    std::move(options));
}

bool SaveFlatSnapshot(const std::string& path,
                      const serve::ModelSnapshot& snapshot,
                      std::string* error) {
  return serve::WriteFlatSnapshot(path, snapshot, error);
}

std::shared_ptr<const serve::ModelSnapshot> LoadFlatSnapshot(
    const std::string& path, std::string* error) {
  return serve::LoadFlatSnapshot(path, error);
}

}  // namespace api
}  // namespace fieldswap
