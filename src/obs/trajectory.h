#ifndef FIELDSWAP_OBS_TRAJECTORY_H_
#define FIELDSWAP_OBS_TRAJECTORY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"

namespace fieldswap {
namespace obs {

/// Schema version stamped into every BENCH_<n>.json written by
/// tools/bench_trajectory. Bump on any structural change and teach the
/// comparator to read the old shape.
constexpr int kTrajectorySchemaVersion = 1;

/// How the comparator treats one dotted metric path.
enum class MetricClass {
  /// Deterministic value (counters, F1, doc counts): must match exactly.
  kExact,
  /// Volatile timing/space metric where smaller is better (wall seconds,
  /// latency ms, kernel ns, RSS kb): gated with relative tolerance.
  kLowerIsBetter,
  /// Volatile rate where bigger is better (speedup, docs_per_s).
  kHigherIsBetter,
};

/// Classifies a '.'-joined metric path by its tokens. Tokens ending in
/// `_s`/`_ms`/`_us`/`_ns`/`_kb`/`_sec` mark the path volatile
/// lower-is-better; tokens ending in `speedup`, `per_s`, or `per_sec`
/// mark it volatile higher-is-better (the later token wins, so
/// `latency_ms.count` stays exact via the `count`/`sum`/`buckets`
/// terminal-token override). Everything else is exact — the determinism
/// contract makes that the safe default.
MetricClass ClassifyMetric(const std::string& dotted_key);

/// True when the path is volatile (timing/space/rate): exactly the fields
/// whitelisted to differ between two runs of the same build.
bool IsVolatileMetric(const std::string& dotted_key);

/// Flattens every numeric leaf of a JSON tree into `a.b.c -> value`
/// (array elements become `path.<index>`). Strings and bools are skipped.
std::map<std::string, double> FlattenNumeric(const util::JsonValue& root);

/// Reconstructs histogram state from the metrics-export JSON shape
/// ({"count", "sum", "min", "max", "bounds": [...], "buckets": [...]}).
/// Returns nullopt when bounds/buckets are missing or inconsistent —
/// exported bucket data is what lets the comparator gate p99.
std::optional<HistogramData> HistogramFromJson(const util::JsonValue& value);

struct CompareOptions {
  /// Allowed relative worsening of volatile metrics before a regression is
  /// declared (0.35 = 35%).
  double tolerance = 0.35;
  /// Absolute worsening below this is never a regression, whatever the
  /// ratio says (guards noise on tiny or zero baselines, e.g. a CPU-time
  /// gauge moving 0 -> 0.01 s). The comparator additionally applies a
  /// built-in per-unit floor (0.5 us for `_ns`, 1 ms for `_us`, 1.0 for
  /// `_ms`, 0.02 for `_s`, 1 MB for `_kb`) — whichever is larger wins —
  /// so sub-millisecond scheduler noise never fails the gate. Histogram
  /// `min`/`max` leaves (single extreme observations) are reported as
  /// notes, never gated.
  double absolute_floor = 0.05;
  /// Exact-class metrics that drift fail the comparison.
  bool fail_on_exact_drift = true;
  /// Metrics present in the baseline but absent from the candidate fail
  /// the comparison (a silently vanished benchmark is not a pass).
  bool fail_on_missing = true;
};

struct MetricDelta {
  std::string key;
  double baseline = 0;
  double candidate = 0;
  /// Signed relative change vs baseline; positive means the value grew.
  double rel_change = 0;
  std::string reason;
};

struct CompareReport {
  bool ok = true;
  std::vector<MetricDelta> regressions;  // sorted by key
  std::vector<std::string> notes;        // non-fatal observations
  int compared_metrics = 0;

  std::string ToText() const;
};

/// Compares two trajectory (or any metrics-bearing) JSON documents.
/// Numeric leaves are matched by dotted path; `git_sha` and other strings
/// never participate. See CompareOptions for the failure policy.
CompareReport CompareTrajectories(const util::JsonValue& baseline,
                                  const util::JsonValue& candidate,
                                  const CompareOptions& options = {});

/// Collapses one bench sidecar (bench_util.h schema, version >= 2) into
/// the per-bench object embedded in BENCH_<n>.json: counters and gauges
/// copy through, histograms reduce to {count, mean, p50, p90, p99, max}
/// re-derived from their exported bounds+buckets, the profile keeps per-
/// span {count, total_us, self_us}. Returns nullopt if `sidecar` lacks the
/// expected shape.
std::optional<util::JsonValue> SummarizeSidecar(const util::JsonValue& sidecar);

}  // namespace obs
}  // namespace fieldswap

#endif  // FIELDSWAP_OBS_TRAJECTORY_H_
