#include "obs/trajectory.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fieldswap {
namespace obs {
namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> SplitDotted(const std::string& key) {
  std::vector<std::string> tokens;
  size_t start = 0;
  while (start <= key.size()) {
    size_t dot = key.find('.', start);
    if (dot == std::string::npos) {
      tokens.push_back(key.substr(start));
      break;
    }
    tokens.push_back(key.substr(start, dot - start));
    start = dot + 1;
  }
  return tokens;
}

void FlattenInto(const util::JsonValue& value, const std::string& prefix,
                 std::map<std::string, double>& out) {
  switch (value.kind()) {
    case util::JsonValue::Kind::kNumber:
      out[prefix] = value.number_value();
      return;
    case util::JsonValue::Kind::kObject:
      for (const auto& [key, item] : value.object_items()) {
        FlattenInto(item, prefix.empty() ? key : prefix + "." + key, out);
      }
      return;
    case util::JsonValue::Kind::kArray: {
      const std::vector<util::JsonValue>& items = value.array_items();
      for (size_t i = 0; i < items.size(); ++i) {
        FlattenInto(items[i], prefix + "." + std::to_string(i), out);
      }
      return;
    }
    default:
      return;  // strings/bools/null never become metrics
  }
}

double NumberOr(const util::JsonValue& object, const std::string& key,
                double fallback) {
  const util::JsonValue* field = object.Find(key);
  return field != nullptr && field->is_number() ? field->number_value()
                                                : fallback;
}

// Smallest absolute worsening worth gating on, by the path's unit token.
// Sub-millisecond deltas on shared hardware are scheduler noise, not
// regressions, whatever the ratio says. Rates (speedup/per_s) get no unit
// floor — their scale varies too much across metrics.
double UnitFloor(const std::string& dotted_key) {
  double floor = 0;
  for (const std::string& token : SplitDotted(dotted_key)) {
    if (EndsWith(token, "per_s") || EndsWith(token, "per_sec") ||
        EndsWith(token, "speedup")) {
      floor = 0;
    } else if (EndsWith(token, "_ns")) {
      floor = 500;  // 0.5 us
    } else if (EndsWith(token, "_us")) {
      floor = 1000;  // 1 ms
    } else if (EndsWith(token, "_ms")) {
      floor = 1.0;
    } else if (EndsWith(token, "_s") || EndsWith(token, "_sec")) {
      floor = 0.02;
    } else if (EndsWith(token, "_kb")) {
      floor = 1024;  // 1 MB
    }
  }
  return floor;
}

// Histogram min/max are single extreme observations — the noisiest numbers
// in the file. They stay recorded but are reported as notes, not gated.
bool IsExtremeObservation(const std::string& dotted_key) {
  std::vector<std::string> tokens = SplitDotted(dotted_key);
  if (tokens.empty()) return false;
  const std::string& last = tokens.back();
  return last == "min" || last == "max";
}

}  // namespace

MetricClass ClassifyMetric(const std::string& dotted_key) {
  std::vector<std::string> tokens = SplitDotted(dotted_key);
  if (tokens.empty()) return MetricClass::kExact;
  // Terminal-token override: structural fields of a histogram/profile are
  // deterministic even when the metric they describe is a timing.
  const std::string& last = tokens.back();
  if (last == "count" || last == "counts" || last == "schema_version" ||
      last == "index" || last == "threads" || last == "total_spans" ||
      last == "dropped_spans") {
    return MetricClass::kExact;
  }
  // Array elements of a histogram's bounds/buckets flatten to bare-integer
  // terminal tokens; both arrays are deterministic.
  if (tokens.size() >= 2 && !last.empty() &&
      last.find_first_not_of("0123456789") == std::string::npos) {
    const std::string& parent = tokens[tokens.size() - 2];
    if (parent == "bounds" || parent == "buckets") return MetricClass::kExact;
  }
  MetricClass result = MetricClass::kExact;
  for (const std::string& token : tokens) {
    // Rates first: `docs_per_s` ends in both `per_s` and `_s`, and the
    // rate reading is the right one.
    if (EndsWith(token, "speedup") || EndsWith(token, "per_s") ||
        EndsWith(token, "per_sec")) {
      result = MetricClass::kHigherIsBetter;
    } else if (EndsWith(token, "_s") || EndsWith(token, "_ms") ||
               EndsWith(token, "_us") || EndsWith(token, "_ns") ||
               EndsWith(token, "_kb") || EndsWith(token, "_sec")) {
      result = MetricClass::kLowerIsBetter;
    }
  }
  return result;
}

bool IsVolatileMetric(const std::string& dotted_key) {
  return ClassifyMetric(dotted_key) != MetricClass::kExact;
}

std::map<std::string, double> FlattenNumeric(const util::JsonValue& root) {
  std::map<std::string, double> out;
  FlattenInto(root, "", out);
  return out;
}

std::optional<HistogramData> HistogramFromJson(const util::JsonValue& value) {
  if (!value.is_object()) return std::nullopt;
  const util::JsonValue* bounds = value.Find("bounds");
  const util::JsonValue* buckets = value.Find("buckets");
  const util::JsonValue* count = value.Find("count");
  if (bounds == nullptr || !bounds->is_array() || buckets == nullptr ||
      !buckets->is_array() || count == nullptr || !count->is_number()) {
    return std::nullopt;
  }
  if (buckets->array_items().size() != bounds->array_items().size() + 1) {
    return std::nullopt;
  }
  HistogramData hist;
  for (const util::JsonValue& b : bounds->array_items()) {
    if (!b.is_number()) return std::nullopt;
    hist.bounds.push_back(b.number_value());
  }
  for (const util::JsonValue& b : buckets->array_items()) {
    if (!b.is_number()) return std::nullopt;
    hist.bucket_counts.push_back(static_cast<int64_t>(b.number_value()));
  }
  hist.count = static_cast<int64_t>(count->number_value());
  hist.sum = NumberOr(value, "sum", 0);
  hist.min = NumberOr(value, "min", 0);
  hist.max = NumberOr(value, "max", 0);
  return hist;
}

CompareReport CompareTrajectories(const util::JsonValue& baseline,
                                  const util::JsonValue& candidate,
                                  const CompareOptions& options) {
  CompareReport report;
  std::map<std::string, double> base = FlattenNumeric(baseline);
  std::map<std::string, double> cand = FlattenNumeric(candidate);

  for (const auto& [key, cand_value] : cand) {
    (void)cand_value;
    if (base.find(key) == base.end()) {
      report.notes.push_back("new metric (not in baseline): " + key);
    }
  }

  for (const auto& [key, base_value] : base) {
    // The point index differs between any two trajectory files by design.
    if (key == "index") continue;
    auto it = cand.find(key);
    if (it == cand.end()) {
      if (options.fail_on_missing) {
        MetricDelta delta;
        delta.key = key;
        delta.baseline = base_value;
        delta.reason = "metric missing from candidate";
        report.regressions.push_back(std::move(delta));
      } else {
        report.notes.push_back("metric missing from candidate: " + key);
      }
      continue;
    }
    ++report.compared_metrics;
    double cand_value = it->second;
    MetricClass cls = ClassifyMetric(key);
    if (cls == MetricClass::kExact) {
      if (base_value != cand_value && options.fail_on_exact_drift) {
        MetricDelta delta;
        delta.key = key;
        delta.baseline = base_value;
        delta.candidate = cand_value;
        delta.reason = "deterministic metric drifted";
        report.regressions.push_back(std::move(delta));
      }
      continue;
    }
    double denom = std::max(std::fabs(base_value), 1e-12);
    double rel = (cand_value - base_value) / denom;
    double worse_abs = cls == MetricClass::kLowerIsBetter
                           ? cand_value - base_value
                           : base_value - cand_value;
    double worse_rel = cls == MetricClass::kLowerIsBetter ? rel : -rel;
    double floor = std::max(options.absolute_floor, UnitFloor(key));
    if (worse_rel > options.tolerance && worse_abs > floor) {
      if (IsExtremeObservation(key)) {
        std::ostringstream note;
        note << "extreme observation worsened (not gated): " << key << " "
             << base_value << " -> " << cand_value;
        report.notes.push_back(note.str());
        continue;
      }
      MetricDelta delta;
      delta.key = key;
      delta.baseline = base_value;
      delta.candidate = cand_value;
      delta.rel_change = rel;
      // Clamp before rounding: a near-zero baseline makes the ratio
      // astronomically large, and the message should stay readable.
      long long pct = std::llround(std::min(worse_rel, 1e4) * 100.0);
      std::ostringstream reason;
      reason << (cls == MetricClass::kLowerIsBetter ? "grew" : "dropped")
             << " " << pct << "% (tolerance "
             << std::llround(options.tolerance * 100.0) << "%)";
      delta.reason = reason.str();
      report.regressions.push_back(std::move(delta));
    }
  }
  std::sort(report.regressions.begin(), report.regressions.end(),
            [](const MetricDelta& a, const MetricDelta& b) {
              return a.key < b.key;
            });
  report.ok = report.regressions.empty();
  return report;
}

std::string CompareReport::ToText() const {
  std::ostringstream os;
  for (const MetricDelta& delta : regressions) {
    os << "REGRESSION " << delta.key << ": " << delta.baseline << " -> "
       << delta.candidate << " (" << delta.reason << ")\n";
  }
  for (const std::string& note : notes) {
    os << "note: " << note << "\n";
  }
  os << (ok ? "OK" : "FAIL") << ": " << compared_metrics
     << " metrics compared, " << regressions.size() << " regression(s)\n";
  return os.str();
}

std::optional<util::JsonValue> SummarizeSidecar(
    const util::JsonValue& sidecar) {
  if (!sidecar.is_object()) return std::nullopt;
  const util::JsonValue* metrics = sidecar.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return std::nullopt;

  util::JsonValue out = util::JsonValue::MakeObject();
  out.Set("wall_time_s",
          util::JsonValue::MakeNumber(NumberOr(sidecar, "wall_time_s", 0)));
  out.Set("peak_rss_kb",
          util::JsonValue::MakeNumber(NumberOr(sidecar, "peak_rss_kb", 0)));

  for (const char* section : {"counters", "gauges"}) {
    util::JsonValue copied = util::JsonValue::MakeObject();
    if (const util::JsonValue* src = metrics->Find(section);
        src != nullptr && src->is_object()) {
      for (const auto& [name, item] : src->object_items()) {
        if (item.is_number()) copied.Set(name, item);
      }
    }
    out.Set(section, std::move(copied));
  }

  util::JsonValue histograms = util::JsonValue::MakeObject();
  if (const util::JsonValue* src = metrics->Find("histograms");
      src != nullptr && src->is_object()) {
    for (const auto& [name, item] : src->object_items()) {
      std::optional<HistogramData> hist = HistogramFromJson(item);
      if (!hist.has_value()) continue;
      util::JsonValue row = util::JsonValue::MakeObject();
      row.Set("count", util::JsonValue::MakeNumber(
                           static_cast<double>(hist->count)));
      double mean =
          hist->count > 0 ? hist->sum / static_cast<double>(hist->count) : 0;
      row.Set("mean", util::JsonValue::MakeNumber(mean));
      row.Set("p50",
              util::JsonValue::MakeNumber(HistogramQuantile(*hist, 0.50)));
      row.Set("p90",
              util::JsonValue::MakeNumber(HistogramQuantile(*hist, 0.90)));
      row.Set("p99",
              util::JsonValue::MakeNumber(HistogramQuantile(*hist, 0.99)));
      row.Set("max", util::JsonValue::MakeNumber(hist->max));
      histograms.Set(name, std::move(row));
    }
  }
  out.Set("histograms", std::move(histograms));

  if (const util::JsonValue* profile = sidecar.Find("profile");
      profile != nullptr && profile->is_object()) {
    util::JsonValue spans = util::JsonValue::MakeObject();
    if (const util::JsonValue* src = profile->Find("spans");
        src != nullptr && src->is_object()) {
      for (const auto& [name, item] : src->object_items()) {
        if (!item.is_object()) continue;
        util::JsonValue row = util::JsonValue::MakeObject();
        row.Set("count",
                util::JsonValue::MakeNumber(NumberOr(item, "count", 0)));
        row.Set("total_us",
                util::JsonValue::MakeNumber(NumberOr(item, "total_us", 0)));
        row.Set("self_us",
                util::JsonValue::MakeNumber(NumberOr(item, "self_us", 0)));
        spans.Set(name, std::move(row));
      }
    }
    util::JsonValue summarized = util::JsonValue::MakeObject();
    summarized.Set("total_spans", util::JsonValue::MakeNumber(
                                      NumberOr(*profile, "total_spans", 0)));
    summarized.Set("dropped_spans", util::JsonValue::MakeNumber(NumberOr(
                                        *profile, "dropped_spans", 0)));
    summarized.Set("spans", std::move(spans));
    out.Set("profile", std::move(summarized));
  }
  return out;
}

}  // namespace obs
}  // namespace fieldswap
