#include "obs/trace.h"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace fieldswap {
namespace obs {
namespace {

/// Small sequential id per OS thread (Chrome's tid field renders better
/// with small integers than with std::thread::id hashes).
int ThreadTid() {
  static std::atomic<int> next_tid{0};
  thread_local int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local int t_span_depth = 0;

std::string JsonEscapeName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void TraceRecorder::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool TraceRecorder::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

int64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::ExportChromeJson() const {
  std::vector<TraceEvent> events = this->events();
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) os << ",";
    os << "\n  {\"name\": \"" << JsonEscapeName(e.name)
       << "\", \"cat\": \"fieldswap\", \"ph\": \"X\", \"ts\": " << e.ts_us
       << ", \"dur\": " << e.dur_us << ", \"pid\": 1, \"tid\": " << e.tid
       << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}";
  return os.str();
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ExportChromeJson() << "\n";
  return static_cast<bool>(out);
}

TraceRecorder& GlobalTrace() {
  static TraceRecorder* recorder = [] {
    ArmEnvExportAtExit();
    return new TraceRecorder;
  }();
  return *recorder;
}

TraceSpan::TraceSpan(const char* name, TraceRecorder* recorder)
    : recorder_(recorder != nullptr ? recorder : &GlobalTrace()) {
  if (!recorder_->enabled()) {
    recorder_ = nullptr;
    return;
  }
  name_ = name;
  depth_ = t_span_depth++;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  auto end = std::chrono::steady_clock::now();
  --t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.ts_us =
      std::chrono::duration<double, std::micro>(start_ - recorder_->origin())
          .count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - start_).count();
  event.tid = ThreadTid();
  event.depth = depth_;
  recorder_->Record(std::move(event));
}

int TraceSpan::CurrentDepth() { return t_span_depth; }

void ArmEnvExportAtExit() {
  static bool armed = [] {
    std::atexit([] {
      if (const char* path = std::getenv("FS_TRACE_FILE");
          path != nullptr && *path != '\0') {
        if (GlobalTrace().WriteChromeTrace(path)) {
          FS_LOG(Info) << "wrote trace (" << GlobalTrace().size()
                       << " spans) to " << path;
        } else {
          FS_LOG(Error) << "failed to write trace to " << path;
        }
      }
      if (const char* path = std::getenv("FS_METRICS_FILE");
          path != nullptr && *path != '\0') {
        if (GlobalMetrics().WriteJsonFile(path)) {
          FS_LOG(Info) << "wrote metrics snapshot to " << path;
        } else {
          FS_LOG(Error) << "failed to write metrics to " << path;
        }
      }
    });
    return true;
  }();
  (void)armed;
}

}  // namespace obs
}  // namespace fieldswap
