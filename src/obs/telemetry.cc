#include "obs/telemetry.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace fieldswap {
namespace obs {
namespace {

std::string EscapeRun(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string Num(double value) {
  std::ostringstream os;
  os << std::setprecision(17) << value;
  return os.str();
}

/// Extracts the raw text of `"key": <value>` from one exporter-formatted
/// JSON line. Returns false when the key is absent.
bool RawField(const std::string& line, const std::string& key,
              std::string* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  size_t end = pos;
  if (pos < line.size() && line[pos] == '"') {
    ++pos;
    end = pos;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\') ++end;
      ++end;
    }
    std::string raw = line.substr(pos, end - pos);
    std::string unescaped;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '\\' && i + 1 < raw.size()) ++i;
      unescaped.push_back(raw[i]);
    }
    *out = unescaped;
    return true;
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(pos, end - pos);
  return true;
}

bool NumberField(const std::string& line, const std::string& key,
                 double* out) {
  std::string raw;
  if (!RawField(line, key, &raw)) return false;
  try {
    *out = std::stod(raw);
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

void TrainingTelemetry::BeginRun(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  run_ = label;
}

void TrainingTelemetry::RecordStep(int step, double loss, double step_ms) {
  TelemetryRecord record;
  record.kind = TelemetryRecord::Kind::kStep;
  record.step = step;
  record.loss = loss;
  record.step_ms = step_ms;
  Append(std::move(record));
}

void TrainingTelemetry::RecordValidation(int step, double micro_f1,
                                         bool improved) {
  TelemetryRecord record;
  record.kind = TelemetryRecord::Kind::kValidation;
  record.step = step;
  record.micro_f1 = micro_f1;
  record.improved = improved;
  Append(std::move(record));
}

void TrainingTelemetry::Append(TelemetryRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.run = run_;
  records_.push_back(std::move(record));
}

std::vector<TelemetryRecord> TrainingTelemetry::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t TrainingTelemetry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void TrainingTelemetry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::string TrainingTelemetry::ExportJsonl() const {
  std::ostringstream os;
  for (const TelemetryRecord& r : records()) {
    os << "{\"run\": \"" << EscapeRun(r.run) << "\", ";
    if (r.kind == TelemetryRecord::Kind::kStep) {
      os << "\"kind\": \"step\", \"step\": " << r.step
         << ", \"loss\": " << Num(r.loss)
         << ", \"step_ms\": " << Num(r.step_ms);
    } else {
      os << "\"kind\": \"validation\", \"step\": " << r.step
         << ", \"micro_f1\": " << Num(r.micro_f1)
         << ", \"improved\": " << (r.improved ? "true" : "false");
    }
    os << "}\n";
  }
  return os.str();
}

std::string TrainingTelemetry::ExportCsv() const {
  std::ostringstream os;
  os << "run,kind,step,loss,step_ms,micro_f1,improved\n";
  for (const TelemetryRecord& r : records()) {
    bool step = r.kind == TelemetryRecord::Kind::kStep;
    os << r.run << "," << (step ? "step" : "validation") << "," << r.step
       << ",";
    if (step) {
      os << Num(r.loss) << "," << Num(r.step_ms) << ",,";
    } else {
      os << ",," << Num(r.micro_f1) << "," << (r.improved ? 1 : 0);
    }
    os << "\n";
  }
  return os.str();
}

bool TrainingTelemetry::WriteJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ExportJsonl();
  return static_cast<bool>(out);
}

bool TrainingTelemetry::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ExportCsv();
  return static_cast<bool>(out);
}

bool TrainingTelemetry::ParseJsonl(const std::string& jsonl,
                                   TrainingTelemetry* out) {
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TelemetryRecord record;
    std::string kind;
    double step = 0;
    if (!RawField(line, "run", &record.run) ||
        !RawField(line, "kind", &kind) ||
        !NumberField(line, "step", &step)) {
      return false;
    }
    record.step = static_cast<int>(step);
    if (kind == "step") {
      record.kind = TelemetryRecord::Kind::kStep;
      if (!NumberField(line, "loss", &record.loss) ||
          !NumberField(line, "step_ms", &record.step_ms)) {
        return false;
      }
    } else if (kind == "validation") {
      record.kind = TelemetryRecord::Kind::kValidation;
      std::string improved;
      if (!NumberField(line, "micro_f1", &record.micro_f1) ||
          !RawField(line, "improved", &improved)) {
        return false;
      }
      record.improved = improved == "true";
    } else {
      return false;
    }
    std::lock_guard<std::mutex> lock(out->mu_);
    out->records_.push_back(std::move(record));
  }
  return true;
}

}  // namespace obs
}  // namespace fieldswap
