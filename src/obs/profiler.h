#ifndef FIELDSWAP_OBS_PROFILER_H_
#define FIELDSWAP_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fieldswap {
namespace obs {

/// Aggregated statistics for every span sharing one name.
struct ProfileEntry {
  std::string name;
  /// Completed spans with this name, summed across all threads.
  int64_t count = 0;
  /// Sum of span durations. Includes time spent in child spans, so the
  /// column over-counts when spans of the same name nest (recursion).
  double total_us = 0;
  /// Sum of durations minus time attributed to *direct* child spans: the
  /// time this span spent in its own code. Self-times sum to the overall
  /// traced wall time per thread, which makes this the column to sort by
  /// when hunting hot spots.
  double self_us = 0;
};

/// Deterministic aggregate view of a trace: one entry per span name,
/// sorted by name so two reports of the same workload diff cleanly
/// line-for-line (values change, lines never reorder).
struct ProfileReport {
  std::vector<ProfileEntry> entries;  // sorted by name
  int64_t total_spans = 0;
  int64_t dropped_spans = 0;

  /// Entry lookup; nullptr when the span name never occurred.
  const ProfileEntry* Find(const std::string& name) const;

  /// Aligned table: name / count / total ms / self ms / avg us. Rows in
  /// name order.
  std::string ToText() const;

  /// {"schema_version": 1, "total_spans": N, "dropped_spans": D,
  ///  "spans": {name: {"count", "total_us", "self_us"}}} with keys sorted.
  std::string ToJson() const;
};

/// Builds the aggregate profile from completed spans. Self-time uses an
/// interval sweep per thread id: a span's direct children are the maximal
/// spans fully contained in it on the same thread, and their durations are
/// subtracted from its self-time. The input may be in any order (the
/// recorder emits children before parents).
ProfileReport BuildProfile(const std::vector<TraceEvent>& events,
                           int64_t dropped = 0);

/// Convenience: profile everything a recorder has collected so far
/// (defaults to the global recorder behind FS_TRACE_SPAN).
ProfileReport BuildProfile(const TraceRecorder& recorder);
ProfileReport BuildGlobalProfile();

/// Point-in-time process resource usage. Fields are 0 when the platform
/// source is unavailable.
struct ProcessStats {
  /// Peak resident set size (getrusage ru_maxrss), kilobytes.
  int64_t peak_rss_kb = 0;
  /// Current resident set size (/proc/self/statm), kilobytes.
  int64_t current_rss_kb = 0;
  /// Bytes currently handed out by malloc (glibc mallinfo2), kilobytes.
  int64_t heap_in_use_kb = 0;
  /// CPU time consumed so far.
  double user_cpu_s = 0;
  double system_cpu_s = 0;
};

ProcessStats SampleProcessStats();

/// Samples ProcessStats and publishes it as `fieldswap.process.*` gauges:
/// peak_rss_kb, current_rss_kb, heap_in_use_kb, heap_watermark_kb (max
/// heap_in_use_kb seen across calls in this process), user_cpu_s,
/// system_cpu_s. Call at exit (the bench sidecar writer does) or
/// periodically from long-running servers.
void PublishProcessGauges(MetricsRegistry& registry = GlobalMetrics());

}  // namespace obs
}  // namespace fieldswap

#endif  // FIELDSWAP_OBS_PROFILER_H_
