#ifndef FIELDSWAP_OBS_TELEMETRY_H_
#define FIELDSWAP_OBS_TELEMETRY_H_

#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace fieldswap {
namespace obs {

/// One training-telemetry record: either a per-step loss sample or a
/// validation-time micro-F1 sample, tagged with the run it belongs to.
struct TelemetryRecord {
  enum class Kind { kStep, kValidation };

  std::string run;  // label set by TrainingTelemetry::BeginRun
  Kind kind = Kind::kStep;
  int step = 0;
  double loss = 0;      // kStep only
  double step_ms = 0;   // kStep only
  double micro_f1 = 0;  // kValidation only
  bool improved = false;  // kValidation only: new best checkpoint taken
};

/// Thread-safe recorder the trainer feeds per-step losses and validation
/// micro-F1 into (TrainOptions::telemetry). Exportable as JSONL (one JSON
/// object per line) or CSV for plotting the paper's training curves.
class TrainingTelemetry {
 public:
  TrainingTelemetry() = default;
  TrainingTelemetry(const TrainingTelemetry&) = delete;
  TrainingTelemetry& operator=(const TrainingTelemetry&) = delete;

  /// Starts a new labeled run; subsequent records are tagged with `label`.
  void BeginRun(const std::string& label);

  void RecordStep(int step, double loss, double step_ms);
  void RecordValidation(int step, double micro_f1, bool improved);

  std::vector<TelemetryRecord> records() const;
  size_t size() const;
  void Clear();

  std::string ExportJsonl() const;
  std::string ExportCsv() const;
  bool WriteJsonl(const std::string& path) const;
  bool WriteCsv(const std::string& path) const;

  /// Parses ExportJsonl output back into `out` (appending). Returns false
  /// on any malformed line. Only understands the exporter's own format.
  static bool ParseJsonl(const std::string& jsonl, TrainingTelemetry* out);

 private:
  void Append(TelemetryRecord record);

  mutable std::mutex mu_;
  std::string run_ FS_GUARDED_BY(mu_) = "default";
  std::vector<TelemetryRecord> records_ FS_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace fieldswap

#endif  // FIELDSWAP_OBS_TELEMETRY_H_
