#include "obs/profiler.h"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "util/json.h"

namespace fieldswap {
namespace obs {
namespace {

/// Per-span scratch during the sweep: duration minus direct children.
struct OpenSpan {
  size_t index = 0;
  double end_us = 0;
};

}  // namespace

const ProfileEntry* ProfileReport::Find(const std::string& name) const {
  for (const ProfileEntry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

ProfileReport BuildProfile(const std::vector<TraceEvent>& events,
                           int64_t dropped) {
  ProfileReport report;
  report.total_spans = static_cast<int64_t>(events.size());
  report.dropped_spans = dropped;

  // Group event indices by thread; containment only holds within a thread.
  std::map<int, std::vector<size_t>> by_tid;
  for (size_t i = 0; i < events.size(); ++i) {
    by_tid[events[i].tid].push_back(i);
  }

  std::vector<double> self_us(events.size(), 0);
  for (auto& [tid, indices] : by_tid) {
    // Parents sort before children: earlier start first; at equal starts
    // the longer span first, then the shallower one (zero-duration spans
    // can tie on both ts and dur).
    std::sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      const TraceEvent& ea = events[a];
      const TraceEvent& eb = events[b];
      if (ea.ts_us != eb.ts_us) return ea.ts_us < eb.ts_us;
      if (ea.dur_us != eb.dur_us) return ea.dur_us > eb.dur_us;
      return ea.depth < eb.depth;
    });
    std::vector<OpenSpan> stack;
    for (size_t i : indices) {
      const TraceEvent& e = events[i];
      while (!stack.empty() && stack.back().end_us <= e.ts_us) {
        stack.pop_back();
      }
      self_us[i] = e.dur_us;
      if (!stack.empty()) {
        // Direct parent loses this span's duration from its self-time.
        self_us[stack.back().index] -= e.dur_us;
      }
      stack.push_back(OpenSpan{i, e.ts_us + e.dur_us});
    }
  }

  std::map<std::string, ProfileEntry> by_name;
  for (size_t i = 0; i < events.size(); ++i) {
    ProfileEntry& entry = by_name[events[i].name];
    entry.name = events[i].name;
    ++entry.count;
    entry.total_us += events[i].dur_us;
    entry.self_us += self_us[i];
  }
  report.entries.reserve(by_name.size());
  for (auto& [name, entry] : by_name) {
    report.entries.push_back(std::move(entry));
  }
  return report;
}

ProfileReport BuildProfile(const TraceRecorder& recorder) {
  return BuildProfile(recorder.events(), recorder.dropped());
}

ProfileReport BuildGlobalProfile() { return BuildProfile(GlobalTrace()); }

std::string ProfileReport::ToText() const {
  std::ostringstream os;
  os << "span                                     count   total ms    self ms     avg us\n";
  os << "-----------------------------------------------------------------------------\n";
  for (const ProfileEntry& entry : entries) {
    char line[160];
    double avg_us =
        entry.count > 0 ? entry.total_us / static_cast<double>(entry.count) : 0;
    std::snprintf(line, sizeof(line), "%-40s %6lld %10.3f %10.3f %10.1f\n",
                  entry.name.c_str(), static_cast<long long>(entry.count),
                  entry.total_us / 1000.0, entry.self_us / 1000.0, avg_us);
    os << line;
  }
  os << "spans: " << total_spans << " recorded";
  if (dropped_spans > 0) os << ", " << dropped_spans << " dropped";
  os << "\n";
  return os.str();
}

std::string ProfileReport::ToJson() const {
  util::JsonValue spans = util::JsonValue::MakeObject();
  for (const ProfileEntry& entry : entries) {
    util::JsonValue row = util::JsonValue::MakeObject();
    row.Set("count", util::JsonValue::MakeNumber(
                         static_cast<double>(entry.count)));
    row.Set("total_us", util::JsonValue::MakeNumber(entry.total_us));
    row.Set("self_us", util::JsonValue::MakeNumber(entry.self_us));
    spans.Set(entry.name, std::move(row));
  }
  util::JsonValue root = util::JsonValue::MakeObject();
  root.Set("schema_version", util::JsonValue::MakeNumber(1));
  root.Set("total_spans",
           util::JsonValue::MakeNumber(static_cast<double>(total_spans)));
  root.Set("dropped_spans",
           util::JsonValue::MakeNumber(static_cast<double>(dropped_spans)));
  root.Set("spans", std::move(spans));
  return root.Dump();
}

ProcessStats SampleProcessStats() {
  ProcessStats stats;
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    stats.peak_rss_kb = static_cast<int64_t>(usage.ru_maxrss);
    stats.user_cpu_s = static_cast<double>(usage.ru_utime.tv_sec) +
                       static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    stats.system_cpu_s = static_cast<double>(usage.ru_stime.tv_sec) +
                         static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
  }
  // Current RSS: second field of /proc/self/statm, in pages.
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    long size_pages = 0, resident_pages = 0;
    if (std::fscanf(statm, "%ld %ld", &size_pages, &resident_pages) == 2) {
      long page_kb = 4;  // sysconf(_SC_PAGESIZE) / 1024 on every linux ABI
                         // this repo targets; hard-coding avoids a syscall
                         // in a sampler that may run hot.
      stats.current_rss_kb = static_cast<int64_t>(resident_pages * page_kb);
    }
    std::fclose(statm);
  }
#if defined(__GLIBC__)
  struct mallinfo2 heap = mallinfo2();
  stats.heap_in_use_kb = static_cast<int64_t>(heap.uordblks / 1024);
#endif
  return stats;
}

void PublishProcessGauges(MetricsRegistry& registry) {
  // Allocation watermark: the largest heap_in_use_kb any sample has seen.
  // Monotonic per process, shared across registries on purpose.
  static std::atomic<int64_t> heap_watermark_kb{0};

  ProcessStats stats = SampleProcessStats();
  int64_t seen = heap_watermark_kb.load(std::memory_order_relaxed);
  while (stats.heap_in_use_kb > seen &&
         !heap_watermark_kb.compare_exchange_weak(seen, stats.heap_in_use_kb,
                                                  std::memory_order_relaxed)) {
  }
  registry.GaugeSet("fieldswap.process.peak_rss_kb",
                    static_cast<double>(stats.peak_rss_kb));
  registry.GaugeSet("fieldswap.process.current_rss_kb",
                    static_cast<double>(stats.current_rss_kb));
  registry.GaugeSet("fieldswap.process.heap_in_use_kb",
                    static_cast<double>(stats.heap_in_use_kb));
  registry.GaugeSet(
      "fieldswap.process.heap_watermark_kb",
      static_cast<double>(heap_watermark_kb.load(std::memory_order_relaxed)));
  registry.GaugeSet("fieldswap.process.user_cpu_s", stats.user_cpu_s);
  registry.GaugeSet("fieldswap.process.system_cpu_s", stats.system_cpu_s);
}

}  // namespace obs
}  // namespace fieldswap
