#ifndef FIELDSWAP_OBS_TIMING_H_
#define FIELDSWAP_OBS_TIMING_H_

#include <chrono>

namespace fieldswap {
namespace obs {

/// Monotonic stopwatch for duration measurement. This is the sanctioned
/// way for code outside obs/par/bench to time itself: fslint's
/// no-wall-clock rule bans raw std::chrono clock reads elsewhere, so that
/// clock access is concentrated here where it is visibly observability-only
/// and can never leak into a deterministic code path's output.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace fieldswap

#endif  // FIELDSWAP_OBS_TIMING_H_
