#ifndef FIELDSWAP_OBS_METRICS_H_
#define FIELDSWAP_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace fieldswap {
namespace obs {

/// Immutable copy of one histogram's state at snapshot time.
struct HistogramData {
  /// Upper bounds of the finite buckets, strictly increasing. A value v
  /// lands in the first bucket with v <= bound; values above the last
  /// bound land in the implicit overflow bucket.
  std::vector<double> bounds;
  /// bucket_counts.size() == bounds.size() + 1 (last entry = overflow).
  std::vector<int64_t> bucket_counts;
  int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
};

/// Estimates the q-quantile (q in [0,1]) of a histogram by linear
/// interpolation inside the bucket holding the target rank, clamped to the
/// observed [min, max]; ranks landing in the overflow bucket return max.
/// Deterministic for a fixed bucket state — the bench trajectory comparator
/// relies on this to gate tail latency (p99) from exported bounds+counts.
double HistogramQuantile(const HistogramData& hist, double q);

/// Point-in-time copy of a registry, safe to read without locking.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Renders a snapshot as aligned `name value` lines (one metric per line;
/// histograms render count/sum/mean/min/max).
std::string ExportText(const MetricsSnapshot& snapshot);

/// Renders a snapshot as a JSON object:
///   {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}
std::string ExportJson(const MetricsSnapshot& snapshot);

/// Default histogram bucket bounds: 14 exponential buckets from 0.1 to ~819
/// (doubling), sized for millisecond-scale timings.
const std::vector<double>& DefaultLatencyBounds();

/// Thread-safe registry of named counters, gauges, and fixed-bucket
/// histograms. Metric names follow the `fieldswap.<layer>.<name>`
/// convention (see DESIGN.md "Observability").
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named monotonic counter (created at 0 on first use).
  void CounterAdd(const std::string& name, int64_t delta = 1);

  /// Sets the named gauge to `value` (last write wins).
  void GaugeSet(const std::string& name, double value);

  /// Records `value` into the named histogram. The bucket layout is fixed by
  /// the first observation; `bounds` is ignored on later calls. Passing an
  /// empty `bounds` uses DefaultLatencyBounds().
  void HistogramObserve(const std::string& name, double value,
                        const std::vector<double>& bounds = {});

  /// Convenience readers (0 / empty when the metric does not exist).
  int64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;

  MetricsSnapshot Snapshot() const;

  /// Drops every metric (names included).
  void Reset();

  std::string ExportText() const { return obs::ExportText(Snapshot()); }
  std::string ExportJson() const { return obs::ExportJson(Snapshot()); }

  /// Writes ExportJson() to `path`; returns false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_ FS_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ FS_GUARDED_BY(mu_);
  std::map<std::string, HistogramData> histograms_ FS_GUARDED_BY(mu_);
};

/// Process-wide registry used by the FS_COUNTER/FS_GAUGE helpers below and
/// by all built-in instrumentation. First use arms the FS_METRICS_FILE
/// at-exit export (see ArmEnvExportAtExit in trace.h).
MetricsRegistry& GlobalMetrics();

/// Shorthands for the global registry.
inline void CounterAdd(const std::string& name, int64_t delta = 1) {
  GlobalMetrics().CounterAdd(name, delta);
}
inline void GaugeSet(const std::string& name, double value) {
  GlobalMetrics().GaugeSet(name, value);
}
inline void HistogramObserve(const std::string& name, double value,
                             const std::vector<double>& bounds = {}) {
  GlobalMetrics().HistogramObserve(name, value, bounds);
}

}  // namespace obs
}  // namespace fieldswap

#endif  // FIELDSWAP_OBS_METRICS_H_
