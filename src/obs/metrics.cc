#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/trace.h"

namespace fieldswap {
namespace obs {
namespace {

/// JSON-escapes the characters that can appear in metric names.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string FormatNumber(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace

double HistogramQuantile(const HistogramData& hist, double q) {
  if (hist.count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  double rank = q * static_cast<double>(hist.count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < hist.bucket_counts.size(); ++i) {
    cumulative += hist.bucket_counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= hist.bounds.size()) return hist.max;  // overflow bucket
    double upper = hist.bounds[i];
    double lower = i == 0 ? std::min(hist.min, upper) : hist.bounds[i - 1];
    double in_bucket = static_cast<double>(hist.bucket_counts[i]);
    double frac =
        in_bucket > 0
            ? (rank - static_cast<double>(cumulative) + in_bucket) / in_bucket
            : 1.0;
    double value = lower + (upper - lower) * frac;
    return std::min(hist.max, std::max(hist.min, value));
  }
  return hist.max;
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>;
    double bound = 0.1;
    for (int i = 0; i < 14; ++i) {
      b->push_back(bound);
      bound *= 2;
    }
    return b;
  }();
  return *bounds;
}

void MetricsRegistry::CounterAdd(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::GaugeSet(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::HistogramObserve(const std::string& name, double value,
                                       const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramData& hist = histograms_[name];
  if (hist.bucket_counts.empty()) {
    hist.bounds = bounds.empty() ? DefaultLatencyBounds() : bounds;
    hist.bucket_counts.assign(hist.bounds.size() + 1, 0);
  }
  size_t bucket = hist.bounds.size();  // overflow by default
  for (size_t i = 0; i < hist.bounds.size(); ++i) {
    if (value <= hist.bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++hist.bucket_counts[bucket];
  hist.sum += value;
  hist.min = hist.count == 0 ? value : std::min(hist.min, value);
  hist.max = hist.count == 0 ? value : std::max(hist.max, value);
  ++hist.count;
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters = counters_;
  snapshot.gauges = gauges_;
  snapshot.histograms = histograms_;
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ExportJson() << "\n";
  return static_cast<bool>(out);
}

std::string ExportText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << " " << FormatNumber(value) << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    os << name << " count=" << hist.count << " sum=" << FormatNumber(hist.sum);
    if (hist.count > 0) {
      os << " mean=" << FormatNumber(hist.sum / static_cast<double>(hist.count))
         << " min=" << FormatNumber(hist.min)
         << " max=" << FormatNumber(hist.max)
         << " p50=" << FormatNumber(HistogramQuantile(hist, 0.50))
         << " p99=" << FormatNumber(HistogramQuantile(hist, 0.99));
    }
    os << "\n";
  }
  return os.str();
}

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": " << value;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": " << FormatNumber(value);
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(name) << "\": {\"count\": " << hist.count
       << ", \"sum\": " << FormatNumber(hist.sum);
    if (hist.count > 0) {
      os << ", \"min\": " << FormatNumber(hist.min)
         << ", \"max\": " << FormatNumber(hist.max)
         << ", \"mean\": "
         << FormatNumber(hist.sum / static_cast<double>(hist.count))
         << ", \"p50\": " << FormatNumber(HistogramQuantile(hist, 0.50))
         << ", \"p90\": " << FormatNumber(HistogramQuantile(hist, 0.90))
         << ", \"p99\": " << FormatNumber(HistogramQuantile(hist, 0.99));
    }
    os << ", \"bounds\": [";
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) os << ", ";
      os << FormatNumber(hist.bounds[i]);
    }
    os << "], \"buckets\": [";
    for (size_t i = 0; i < hist.bucket_counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << hist.bucket_counts[i];
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = [] {
    ArmEnvExportAtExit();
    return new MetricsRegistry;
  }();
  return *registry;
}

}  // namespace obs
}  // namespace fieldswap
