#ifndef FIELDSWAP_OBS_TRACE_H_
#define FIELDSWAP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace fieldswap {
namespace obs {

/// One completed span. Times are microseconds relative to the recorder's
/// process-start reference so exported traces start near t=0.
struct TraceEvent {
  std::string name;
  double ts_us = 0;   // span start
  double dur_us = 0;  // span duration
  int tid = 0;        // small sequential id, one per OS thread
  int depth = 0;      // nesting depth at span start (0 = top level)
};

/// Thread-safe collector of completed spans with a Chrome
/// `chrome://tracing` / Perfetto compatible JSON exporter. Spans are
/// recorded on scope exit (RAII via TraceSpan), so children appear before
/// their parent in `events()`.
class TraceRecorder {
 public:
  TraceRecorder() : origin_(std::chrono::steady_clock::now()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Recording is on by default; disabling makes TraceSpan a cheap no-op.
  void set_enabled(bool enabled);
  bool enabled() const;

  void Record(TraceEvent event);
  std::vector<TraceEvent> events() const;
  size_t size() const;
  /// Number of spans dropped after the in-memory cap was hit.
  int64_t dropped() const;
  void Clear();

  /// {"traceEvents": [{"name", "ph": "X", "ts", "dur", "pid", "tid"}...]}
  /// — load via chrome://tracing or https://ui.perfetto.dev.
  std::string ExportChromeJson() const;
  /// Writes ExportChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  std::chrono::steady_clock::time_point origin() const { return origin_; }

  /// In-memory cap on retained spans; further spans increment dropped().
  static constexpr size_t kMaxEvents = 1 << 20;

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point origin_;  // set once, then read-only
  bool enabled_ FS_GUARDED_BY(mu_) = true;
  std::vector<TraceEvent> events_ FS_GUARDED_BY(mu_);
  int64_t dropped_ FS_GUARDED_BY(mu_) = 0;
};

/// Process-wide recorder used by FS_TRACE_SPAN. First use arms the
/// FS_TRACE_FILE at-exit export.
TraceRecorder& GlobalTrace();

/// RAII span: measures from construction to destruction and records the
/// completed event into the recorder (global by default). Nesting is
/// tracked via a thread-local depth counter shared by all recorders.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceRecorder* recorder = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Current nesting depth on this thread (0 when no span is open).
  static int CurrentDepth();

 private:
  TraceRecorder* recorder_;  // null when recording was disabled at entry
  const char* name_ = nullptr;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Installs (once) a std::atexit hook that exports the global trace to
/// $FS_TRACE_FILE and the global metrics registry to $FS_METRICS_FILE when
/// those variables are set. Called automatically on first use of
/// GlobalTrace()/GlobalMetrics(); safe to call directly.
void ArmEnvExportAtExit();

}  // namespace obs
}  // namespace fieldswap

#define FS_TRACE_CONCAT_INNER(a, b) a##b
#define FS_TRACE_CONCAT(a, b) FS_TRACE_CONCAT_INNER(a, b)

/// Opens a RAII trace span covering the rest of the enclosing scope.
#define FS_TRACE_SPAN(name) \
  ::fieldswap::obs::TraceSpan FS_TRACE_CONCAT(fs_trace_span_, __COUNTER__)(name)

#endif  // FIELDSWAP_OBS_TRACE_H_
