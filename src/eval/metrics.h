#ifndef FIELDSWAP_EVAL_METRICS_H_
#define FIELDSWAP_EVAL_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "doc/corpus.h"
#include "doc/document.h"
#include "doc/schema.h"
#include "model/sequence_model.h"

namespace fieldswap {

/// Per-field span-level counts and scores.
struct FieldScore {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// End-to-end extraction quality over a test set.
struct EvalResult {
  std::map<std::string, FieldScore> per_field;

  /// Unweighted mean F1 over fields with at least one gold or predicted
  /// span (the paper's primary metric; rare fields count as much as
  /// frequent ones).
  double macro_f1 = 0;

  /// Global span-level F1 (every instance counts once).
  double micro_f1 = 0;
};

/// Scores one document's predictions against its gold annotations,
/// accumulating into `scores`. Matching is one-to-one greedy (see
/// doc/span_match.h): a predicted span is a true positive iff an unmatched
/// gold span has the same field and the exact same token range, so
/// duplicate predictions cannot inflate tp.
void AccumulateSpanScores(const std::vector<EntitySpan>& gold,
                          const std::vector<EntitySpan>& predicted,
                          std::map<std::string, FieldScore>& scores);

/// Finalizes macro/micro F1 from accumulated per-field counts.
EvalResult FinalizeScores(std::map<std::string, FieldScore> scores);

/// Runs the model over every document of `test_docs` and scores it. This
/// is the streaming core (ISSUE 10): documents materialize one block at a
/// time (doc::BlockedMapDocuments), prediction fans out within the block,
/// and scores accumulate serially in document order — so memory is bounded
/// by one block and the result is bit-identical at any FIELDSWAP_THREADS.
EvalResult EvaluateModel(const SequenceLabelingModel& model,
                         const doc::CorpusReader& test_docs);

/// Vector entry point, kept as a thin adapter over the reader core.
EvalResult EvaluateModel(const SequenceLabelingModel& model,
                         const std::vector<Document>& test_docs);

}  // namespace fieldswap

#endif  // FIELDSWAP_EVAL_METRICS_H_
