#ifndef FIELDSWAP_EVAL_GOLDEN_H_
#define FIELDSWAP_EVAL_GOLDEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fieldswap {

/// Fixed-seed configuration of the golden regression report. Everything is
/// deliberately small: the suite pins *exact* behaviour, so it only needs
/// enough work to touch every stage (generation, augmentation, training,
/// scoring, attacks), not enough to reach good F1.
struct GoldenConfig {
  /// Corpus checksum sweep (one per eval domain).
  int checksum_docs = 12;
  uint64_t checksum_seed = 4242;

  /// Fixed-seed train/eval run + attack ladder, on one domain.
  std::string domain = "earnings";
  int train_docs = 10;
  int test_docs = 12;
  int train_steps = 400;
  uint64_t seed = 2025;
  std::vector<double> attack_severities = {0.5};
};

/// Computes the canonical golden report: corpus checksums for every eval
/// domain, human-expert augmentation counts, per-field F1 of a fixed-seed
/// train/eval run, and the attack-ladder degradation numbers for that
/// model. The output is stable JSON — byte-identical for a fixed config on
/// any machine and FIELDSWAP_THREADS value — and is compared verbatim
/// against data/golden/golden.json by tests/golden_test.cc.
std::string ComputeGoldenReport(const GoldenConfig& config = {});

}  // namespace fieldswap

#endif  // FIELDSWAP_EVAL_GOLDEN_H_
