#include "eval/golden.h"

#include <iomanip>
#include <sstream>

#include "attack/ladder.h"
#include "attack/perturbation.h"
#include "core/pipeline.h"
#include "doc/corpus.h"
#include "doc/serialize.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "model/trainer.h"
#include "obs/trace.h"
#include "synth/corpus_stream.h"
#include "synth/domains.h"
#include "synth/generator.h"
#include "util/hash.h"
#include "util/strings.h"

namespace fieldswap {
namespace {

std::string Hex(uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

/// Indents every line of a rendered JSON block by `indent`, dropping the
/// trailing newline, so standalone renderings nest cleanly.
std::string Reindent(const std::string& json, const std::string& indent) {
  std::ostringstream out;
  bool at_line_start = false;
  for (char c : json) {
    if (at_line_start) {
      out << indent;
      at_line_start = false;
    }
    if (c == '\n') {
      at_line_start = true;
      out << c;
    } else {
      out << c;
    }
  }
  std::string result = out.str();
  while (!result.empty() && (result.back() == '\n' || result.back() == ' ')) {
    result.pop_back();
  }
  return result;
}

}  // namespace

std::string ComputeGoldenReport(const GoldenConfig& config) {
  FS_TRACE_SPAN("eval.golden_report");
  std::ostringstream os;
  os << "{\n  \"golden_version\": 1,\n";

  // 1. Corpus checksums: pins the generator + serializer for every domain.
  // Streamed through the lazy synthetic reader — the documents are never
  // materialized as a vector, yet doc::CorpusChecksum folds the same FNV
  // value the historical vector loop produced.
  os << "  \"corpus_checksums\": {\n";
  std::vector<DomainSpec> domains = AllEvalDomains();
  for (size_t i = 0; i < domains.size(); ++i) {
    std::unique_ptr<doc::CorpusReader> reader = synth::MakeSyntheticCorpusReader(
        domains[i], config.checksum_docs, config.checksum_seed, "gold");
    os << "    \"" << domains[i].name << "\": \""
       << Hex(doc::CorpusChecksum(*reader)) << "\""
       << (i + 1 < domains.size() ? "," : "") << "\n";
  }
  os << "  },\n";

  // 2. Human-expert augmentation counts: pins phrase matching + swapping.
  DomainSpec spec = SpecByName(config.domain);
  std::vector<Document> train =
      GenerateCorpus(spec, config.train_docs, config.seed, "gold-train");
  std::vector<Document> test = GenerateCorpus(
      spec, config.test_docs, config.seed ^ 0x7e57ULL, "gold-test");
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  AugmentationResult augmented = RunFieldSwap(train, spec, nullptr, options);
  os << "  \"augmentation\": {\n"
     << "    \"domain\": \"" << config.domain << "\",\n"
     << "    \"generated\": " << augmented.stats.generated << ",\n"
     << "    \"discarded_unchanged\": " << augmented.stats.discarded_unchanged
     << ",\n"
     << "    \"pairs_with_match\": " << augmented.stats.pairs_with_match
     << ",\n"
     << "    \"kept_synthetics\": " << augmented.synthetics.size() << "\n"
     << "  },\n";

  // 3. Fixed-seed train/eval run: pins encoding, training, and scoring.
  SequenceModelConfig model_config;
  model_config.d_model = 16;
  model_config.seed = config.seed + 1;
  SequenceLabelingModel model(model_config, spec.Schema());
  TrainOptions train_options;
  train_options.total_steps = config.train_steps;
  train_options.seed = model_config.seed ^ 0x5eed;
  TrainSequenceModel(model, train, augmented.synthetics, train_options);
  EvalResult eval = EvaluateModel(model, test);
  os << "  \"train_eval\": {\n"
     << "    \"macro_f1\": " << FormatDouble(eval.macro_f1, 4) << ",\n"
     << "    \"micro_f1\": " << FormatDouble(eval.micro_f1, 4) << ",\n"
     << "    \"per_field_f1\": {\n";
  size_t remaining = eval.per_field.size();
  for (const auto& [field, score] : eval.per_field) {
    os << "      \"" << field << "\": " << FormatDouble(score.F1(), 4)
       << (--remaining > 0 ? "," : "") << "\n";
  }
  os << "    }\n  },\n";

  // 4. Attack-ladder degradation of that model: pins the attack layer.
  attack::AttackLadderConfig ladder;
  ladder.severities = config.attack_severities;
  ladder.seed = config.seed;
  attack::DegradationReport report =
      attack::RunAttackLadder(test, attack::BuildAttackSuite(spec), ladder,
                              MakeModelEvaluator(std::move(model)),
                              config.domain);
  os << "  \"attack_ladder\": "
     << Reindent(attack::ReportToJson(report), "  ") << "\n";

  os << "}\n";
  return os.str();
}

}  // namespace fieldswap
