#include "eval/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "doc/corpus.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "synth/generator.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/stats.h"

namespace fieldswap {

ExperimentSetting BaselineSetting() {
  return ExperimentSetting{"baseline", std::nullopt};
}

ExperimentSetting FieldSwapSetting(MappingStrategy strategy) {
  FieldSwapPipelineOptions options;
  options.strategy = strategy;
  return ExperimentSetting{
      "fieldswap (" + std::string(MappingStrategyName(strategy)) + ")",
      options};
}

ExperimentRunner::ExperimentRunner(DomainSpec spec, ExperimentConfig config,
                                   const CandidateScoringModel* candidate_model)
    : spec_(std::move(spec)),
      config_(std::move(config)),
      candidate_model_(candidate_model) {
  // Catch a drifted/bad training configuration here, before the hours of
  // subset x trial legs that would all inherit it.
  std::string train_error = config_.train.Validate();
  FS_CHECK(train_error.empty()) << train_error;
  // The full training pool and the fixed hold-out test set (Table I).
  pool_ = GenerateCorpus(spec_, spec_.train_pool_size, config_.seed,
                         spec_.name + "-train");
  int test_count = std::min(config_.test_size, spec_.test_size);
  test_docs_ = GenerateCorpus(spec_, test_count, config_.seed ^ 0x7e57ULL,
                              spec_.name + "-test");
}

std::vector<Document> ExperimentRunner::Subset(int train_size,
                                               int subset_index) const {
  Rng rng(config_.seed + 7919 * static_cast<uint64_t>(train_size) +
          104729 * static_cast<uint64_t>(subset_index));
  std::vector<size_t> picks = rng.SampleWithoutReplacement(
      pool_.size(), static_cast<size_t>(train_size));
  std::vector<Document> subset;
  subset.reserve(picks.size());
  for (size_t p : picks) subset.push_back(pool_[p]);
  return subset;
}

LearningCurve ExperimentRunner::Run(const ExperimentSetting& setting) {
  FS_TRACE_SPAN("eval.learning_curve");
  obs::CounterAdd("fieldswap.eval.curves");
  LearningCurve curve;
  curve.setting_label = setting.label;

  for (int size : config_.train_sizes) {
    std::vector<double> macros, micros, synth_counts;
    std::map<std::string, std::vector<double>> field_f1s;

    for (int subset_index = 0; subset_index < config_.num_subsets;
         ++subset_index) {
      std::vector<Document> originals = Subset(size, subset_index);

      std::vector<Document> synthetics;
      if (setting.augmentation.has_value()) {
        FieldSwapPipelineOptions options = *setting.augmentation;
        options.swap.max_synthetics = config_.max_synthetics_for_training;
        AugmentationResult augmented =
            RunFieldSwap(originals, spec_, candidate_model_, options);
        synthetics = std::move(augmented.synthetics);
        synth_counts.push_back(static_cast<double>(augmented.stats.generated));
      }

      // Trials are independent (each owns its model, seeded by trial
      // index), so they fan out across the pool; results merge serially
      // in trial order to keep the reported statistics bit-identical for
      // any thread count. With a telemetry recorder attached the trials
      // stay serial — interleaved per-step records from concurrent trials
      // would make the recorded stream order depend on scheduling.
      auto run_trial = [&](size_t trial) {
        FS_TRACE_SPAN("eval.train_trial");
        obs::CounterAdd("fieldswap.eval.trials");
        SequenceModelConfig model_config = config_.model;
        model_config.seed = config_.seed + 31 * static_cast<uint64_t>(trial) +
                            17 * static_cast<uint64_t>(subset_index) + 1;
        SequenceLabelingModel model(model_config, spec_.Schema());

        TrainOptions train = config_.train;
        train.total_steps =
            std::max(config_.min_steps, config_.steps_per_doc * size);
        train.seed = model_config.seed ^ 0x5eed;
        TrainSequenceModel(model, originals, synthetics, train);

        FS_TRACE_SPAN("eval.evaluate");
        // Reader-based eval core; the view is free and the test corpus is
        // shared read-only across concurrent trials.
        doc::VectorCorpusReaderView test_view(test_docs_);
        return EvaluateModel(model, test_view);
      };
      std::vector<EvalResult> trial_evals;
      if (config_.train.telemetry != nullptr) {
        trial_evals.reserve(static_cast<size_t>(config_.num_trials));
        for (int trial = 0; trial < config_.num_trials; ++trial) {
          trial_evals.push_back(run_trial(static_cast<size_t>(trial)));
        }
      } else {
        trial_evals = par::ParallelMap(
            static_cast<size_t>(config_.num_trials), run_trial);
      }
      for (const EvalResult& eval : trial_evals) {
        macros.push_back(eval.macro_f1 * 100.0);
        micros.push_back(eval.micro_f1 * 100.0);
        for (const auto& [field, score] : eval.per_field) {
          field_f1s[field].push_back(score.F1() * 100.0);
        }
      }
    }

    PointResult point;
    point.macro_f1_mean = Mean(macros);
    point.macro_f1_std = StdDev(macros);
    point.micro_f1_mean = Mean(micros);
    point.micro_f1_std = StdDev(micros);
    point.avg_synthetics = Mean(synth_counts);
    for (const auto& [field, values] : field_f1s) {
      point.field_f1_mean[field] = Mean(values);
    }
    curve.by_size[size] = point;
  }
  return curve;
}

SequenceLabelingModel ExperimentRunner::TrainModelFor(
    const ExperimentSetting& setting, int train_size, int subset_index,
    int trial) {
  FS_TRACE_SPAN("eval.train_model_for");
  std::vector<Document> originals = Subset(train_size, subset_index);

  std::vector<Document> synthetics;
  if (setting.augmentation.has_value()) {
    FieldSwapPipelineOptions options = *setting.augmentation;
    options.swap.max_synthetics = config_.max_synthetics_for_training;
    AugmentationResult augmented =
        RunFieldSwap(originals, spec_, candidate_model_, options);
    synthetics = std::move(augmented.synthetics);
  }

  // Seeding mirrors Run()'s per-trial leg exactly, so an attacked eval of
  // (setting, size, subset, trial) stresses the very model the learning
  // curve scored clean.
  SequenceModelConfig model_config = config_.model;
  model_config.seed = config_.seed + 31 * static_cast<uint64_t>(trial) +
                      17 * static_cast<uint64_t>(subset_index) + 1;
  SequenceLabelingModel model(model_config, spec_.Schema());

  TrainOptions train = config_.train;
  train.total_steps =
      std::max(config_.min_steps, config_.steps_per_doc * train_size);
  train.seed = model_config.seed ^ 0x5eed;
  TrainSequenceModel(model, originals, synthetics, train);
  return model;
}

attack::CorpusEvaluator MakeModelEvaluator(SequenceLabelingModel model) {
  return [model = std::move(model)](const std::vector<Document>& docs) {
    EvalResult eval = EvaluateModel(model, docs);
    attack::AttackEval out;
    out.macro_f1 = eval.macro_f1;
    out.micro_f1 = eval.micro_f1;
    for (const auto& [field, score] : eval.per_field) {
      out.per_field_f1[field] = score.F1();
    }
    return out;
  };
}

std::vector<AttackedEvalArm> RunAttackedEval(
    ExperimentRunner& runner, const std::vector<ExperimentSetting>& settings,
    const attack::AttackSuite& suite, const attack::AttackLadderConfig& config,
    int train_size) {
  FS_TRACE_SPAN("eval.attacked_eval");
  std::vector<AttackedEvalArm> arms;
  for (const ExperimentSetting& setting : settings) {
    obs::CounterAdd("fieldswap.attack.arms_run");
    AttackedEvalArm arm;
    arm.setting_label = setting.label;
    SequenceLabelingModel model =
        runner.TrainModelFor(setting, train_size, /*subset_index=*/0,
                             /*trial=*/0);
    arm.report = attack::RunAttackLadder(
        runner.test_docs(), suite, config, MakeModelEvaluator(std::move(model)),
        runner.spec().name + " / " + setting.label);
    arms.push_back(std::move(arm));
  }
  return arms;
}

double ExperimentRunner::CountSynthetics(const ExperimentSetting& setting,
                                         int train_size) {
  if (!setting.augmentation.has_value()) return 0;
  std::vector<double> counts;
  for (int subset_index = 0; subset_index < config_.num_subsets;
       ++subset_index) {
    std::vector<Document> originals = Subset(train_size, subset_index);
    FieldSwapPipelineOptions options = *setting.augmentation;
    options.swap.max_synthetics = 0;  // uncapped counting
    AugmentationResult augmented =
        RunFieldSwap(originals, spec_, candidate_model_, options);
    counts.push_back(static_cast<double>(augmented.stats.generated));
  }
  return Mean(counts);
}

CandidateScoringModel PretrainInvoiceCandidateModel(int corpus_size,
                                                    uint64_t seed) {
  FS_TRACE_SPAN("eval.pretrain_candidate_model");
  DomainSpec invoices = InvoicesSpec();
  std::vector<Document> corpus =
      GenerateCorpus(invoices, corpus_size, seed, "invoice");

  std::vector<std::string> field_names;
  for (const FieldDef& def : invoices.fields) {
    field_names.push_back(def.spec.name);
  }
  CandidateModelConfig config;
  config.seed = seed;
  CandidateScoringModel model(config, field_names);

  CandidateTrainOptions train;
  train.seed = seed ^ 0xabcd;
  model.Pretrain(corpus, invoices.Schema(), train);
  return model;
}

CandidateScoringModel GetOrTrainCachedCandidateModel(
    const std::string& cache_path) {
  const uint64_t seed = 99;
  DomainSpec invoices = InvoicesSpec();
  std::vector<std::string> field_names;
  for (const FieldDef& def : invoices.fields) {
    field_names.push_back(def.spec.name);
  }
  CandidateModelConfig config;
  config.seed = seed;
  CandidateScoringModel model(config, field_names);
  if (LoadCheckpoint(cache_path, model.Params())) {
    obs::CounterAdd("fieldswap.eval.candidate_cache_hits");
    return model;
  }
  obs::CounterAdd("fieldswap.eval.candidate_cache_misses");
  model = PretrainInvoiceCandidateModel(EnvInt("FIELDSWAP_PRETRAIN_DOCS", 300),
                                        seed);
  std::filesystem::path parent =
      std::filesystem::path(cache_path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  SaveCheckpoint(cache_path, model.Params());
  return model;
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  int parsed = ParseInt(value, 0);
  return parsed > 0 ? parsed : fallback;
}

void ApplyEnvOverrides(ExperimentConfig& config) {
  config.num_subsets = EnvInt("FIELDSWAP_SUBSETS", config.num_subsets);
  config.num_trials = EnvInt("FIELDSWAP_TRIALS", config.num_trials);
  config.test_size = EnvInt("FIELDSWAP_TEST_DOCS", config.test_size);
  config.steps_per_doc =
      EnvInt("FIELDSWAP_STEPS_PER_DOC", config.steps_per_doc);
  config.min_steps = EnvInt("FIELDSWAP_MIN_STEPS", config.min_steps);
  config.max_synthetics_for_training =
      EnvInt("FIELDSWAP_MAX_SYNTH", config.max_synthetics_for_training);
}

}  // namespace fieldswap
