#ifndef FIELDSWAP_EVAL_EXPERIMENT_H_
#define FIELDSWAP_EVAL_EXPERIMENT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "attack/ladder.h"
#include "attack/perturbation.h"
#include "core/pipeline.h"
#include "eval/metrics.h"
#include "model/candidate_model.h"
#include "model/trainer.h"
#include "synth/domains.h"

namespace fieldswap {

/// One training configuration on the learning curve: the no-augmentation
/// baseline (augmentation == nullopt) or FieldSwap with a given strategy.
struct ExperimentSetting {
  std::string label;
  std::optional<FieldSwapPipelineOptions> augmentation;
};

/// Standard settings used across the paper's figures.
ExperimentSetting BaselineSetting();
ExperimentSetting FieldSwapSetting(MappingStrategy strategy);

/// Protocol configuration (paper Sec. IV-B). The paper runs 3 subsets x 3
/// trials on the full test sets; the defaults are scaled for a single CPU
/// core and can be raised via the FIELDSWAP_* environment knobs the bench
/// binaries read.
struct ExperimentConfig {
  std::vector<int> train_sizes = {10, 50, 100};
  int num_subsets = 2;
  int num_trials = 2;
  int test_size = 60;
  uint64_t seed = 1234;

  SequenceModelConfig model;
  TrainOptions train;
  /// Training steps scale with the training-set size: steps =
  /// max(min_steps, steps_per_doc * size). Baseline and FieldSwap runs get
  /// identical budgets (the paper's equal-training control).
  int min_steps = 2000;
  int steps_per_doc = 30;

  /// Cap on synthetic documents entering training (wall-clock control;
  /// synthetic *counts* for Table III are computed uncapped).
  int max_synthetics_for_training = 250;
};

/// Aggregated result of the 9 (subsets x trials) runs at one point of the
/// learning curve.
struct PointResult {
  double macro_f1_mean = 0;
  double macro_f1_std = 0;
  double micro_f1_mean = 0;
  double micro_f1_std = 0;
  double avg_synthetics = 0;
  /// Mean F1 per field across runs (fields keyed by name).
  std::map<std::string, double> field_f1_mean;
};

/// A full learning curve for one setting.
struct LearningCurve {
  std::string setting_label;
  std::map<int, PointResult> by_size;
};

/// Runs the paper's learning-curve protocol for one domain: a fixed
/// held-out test set, `num_subsets` random train subsets per size,
/// `num_trials` training seeds per subset.
class ExperimentRunner {
 public:
  /// `candidate_model` is the invoice-pretrained scorer used by automatic
  /// FieldSwap settings; may be null if only baseline / human expert
  /// settings will run.
  ExperimentRunner(DomainSpec spec, ExperimentConfig config,
                   const CandidateScoringModel* candidate_model);

  LearningCurve Run(const ExperimentSetting& setting);

  /// Trains the model of one (subset, trial) leg of Run() — identical
  /// subset selection, augmentation, seeding, and step budget — and
  /// returns it for out-of-band evaluation (the attacked-eval arm).
  SequenceLabelingModel TrainModelFor(const ExperimentSetting& setting,
                                      int train_size, int subset_index,
                                      int trial);

  /// Average number of synthetic documents generated per subset at the
  /// given size, uncapped (for Table III).
  double CountSynthetics(const ExperimentSetting& setting, int train_size);

  const std::vector<Document>& test_docs() const { return test_docs_; }
  const DomainSpec& spec() const { return spec_; }

 private:
  std::vector<Document> Subset(int train_size, int subset_index) const;

  DomainSpec spec_;
  ExperimentConfig config_;
  const CandidateScoringModel* candidate_model_;
  std::vector<Document> pool_;
  std::vector<Document> test_docs_;
};

/// Adapts EvaluateModel into the attack ladder's corpus evaluator. The
/// model is copied into the callback, so the evaluator outlives its source.
attack::CorpusEvaluator MakeModelEvaluator(SequenceLabelingModel model);

/// Degradation of one experiment setting under an attack suite.
struct AttackedEvalArm {
  std::string setting_label;
  attack::DegradationReport report;
};

/// The attacked-eval arm: trains one model per setting (subset 0, trial 0
/// at `train_size`, the same leg Run() would train) and runs the full
/// attack ladder on the shared held-out test set — the paper's
/// FieldSwap-vs-baseline comparison, reproduced under perturbation.
std::vector<AttackedEvalArm> RunAttackedEval(
    ExperimentRunner& runner, const std::vector<ExperimentSetting>& settings,
    const attack::AttackSuite& suite, const attack::AttackLadderConfig& config,
    int train_size);

/// Builds and pre-trains the out-of-domain (invoices) candidate scoring
/// model used for automatic key phrase inference. `corpus_size` invoices
/// are generated on the fly (the paper uses ~5000; a few hundred suffice
/// for the small model).
CandidateScoringModel PretrainInvoiceCandidateModel(int corpus_size,
                                                    uint64_t seed);

/// Like PretrainInvoiceCandidateModel, but caches the trained parameters in
/// `cache_path` (binary checkpoint, parent directories created on demand)
/// so that the many bench binaries share one pre-training run. Corpus size
/// comes from FIELDSWAP_PRETRAIN_DOCS (default 300). A pre-trained copy is
/// committed at data/fieldswap_candidate_model.ckpt, so runs started from
/// the repository root skip pre-training entirely.
CandidateScoringModel GetOrTrainCachedCandidateModel(
    const std::string& cache_path = "data/fieldswap_candidate_model.ckpt");

/// Reads a positive integer from the environment, or returns `fallback`.
int EnvInt(const char* name, int fallback);

/// Applies the common FIELDSWAP_* environment knobs (FIELDSWAP_SUBSETS,
/// FIELDSWAP_TRIALS, FIELDSWAP_TEST_DOCS, FIELDSWAP_STEPS_PER_DOC,
/// FIELDSWAP_MIN_STEPS, FIELDSWAP_MAX_SYNTH) to a config.
void ApplyEnvOverrides(ExperimentConfig& config);

}  // namespace fieldswap

#endif  // FIELDSWAP_EVAL_EXPERIMENT_H_
