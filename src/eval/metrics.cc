#include "eval/metrics.h"

#include "doc/span_match.h"
#include "par/parallel.h"

namespace fieldswap {

double FieldScore::Precision() const {
  return tp + fp == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double FieldScore::Recall() const {
  return tp + fn == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double FieldScore::F1() const { return F1FromCounts({tp, fp, fn}); }

void AccumulateSpanScores(const std::vector<EntitySpan>& gold,
                          const std::vector<EntitySpan>& predicted,
                          std::map<std::string, FieldScore>& scores) {
  std::map<std::string, SpanMatchCounts> counts;
  MatchSpansPerField(gold, predicted, counts);
  for (const auto& [field, c] : counts) {
    FieldScore& score = scores[field];
    score.tp += c.tp;
    score.fp += c.fp;
    score.fn += c.fn;
  }
}

EvalResult FinalizeScores(std::map<std::string, FieldScore> scores) {
  EvalResult result;
  int64_t tp = 0, fp = 0, fn = 0;
  double f1_sum = 0;
  size_t field_count = 0;
  for (const auto& [field, score] : scores) {
    tp += score.tp;
    fp += score.fp;
    fn += score.fn;
    f1_sum += score.F1();
    ++field_count;
  }
  result.macro_f1 = field_count == 0 ? 0.0 : f1_sum / static_cast<double>(field_count);
  double denom = 2.0 * static_cast<double>(tp) + static_cast<double>(fp) +
                 static_cast<double>(fn);
  result.micro_f1 = denom == 0 ? 0.0 : 2.0 * static_cast<double>(tp) / denom;
  result.per_field = std::move(scores);
  return result;
}

EvalResult EvaluateModel(const SequenceLabelingModel& model,
                         const doc::CorpusReader& test_docs) {
  // Per block: prediction fans out across the pool; gold + predicted spans
  // come back per document and scores accumulate serially in document
  // order, so the result is identical for any thread count.
  struct DocSpans {
    std::vector<EntitySpan> gold;
    std::vector<EntitySpan> predicted;
  };
  std::map<std::string, FieldScore> scores;
  doc::BlockedMapDocuments(
      test_docs, doc::kDefaultStreamBlock,
      [&](const Document& document, size_t) {
        return DocSpans{document.annotations(), model.Predict(document)};
      },
      [&](size_t, const DocSpans& spans) {
        AccumulateSpanScores(spans.gold, spans.predicted, scores);
      });
  return FinalizeScores(std::move(scores));
}

EvalResult EvaluateModel(const SequenceLabelingModel& model,
                         const std::vector<Document>& test_docs) {
  doc::VectorCorpusReaderView view(test_docs);
  return EvaluateModel(model, view);
}

}  // namespace fieldswap
