#include "eval/metrics.h"

#include <algorithm>

namespace fieldswap {

double FieldScore::Precision() const {
  return tp + fp == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double FieldScore::Recall() const {
  return tp + fn == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double FieldScore::F1() const {
  double denom = 2.0 * static_cast<double>(tp) + static_cast<double>(fp) +
                 static_cast<double>(fn);
  return denom == 0 ? 0.0 : 2.0 * static_cast<double>(tp) / denom;
}

void AccumulateSpanScores(const std::vector<EntitySpan>& gold,
                          const std::vector<EntitySpan>& predicted,
                          std::map<std::string, FieldScore>& scores) {
  for (const EntitySpan& p : predicted) {
    if (std::find(gold.begin(), gold.end(), p) != gold.end()) {
      ++scores[p.field].tp;
    } else {
      ++scores[p.field].fp;
    }
  }
  for (const EntitySpan& g : gold) {
    if (std::find(predicted.begin(), predicted.end(), g) == predicted.end()) {
      ++scores[g.field].fn;
    }
  }
}

EvalResult FinalizeScores(std::map<std::string, FieldScore> scores) {
  EvalResult result;
  int64_t tp = 0, fp = 0, fn = 0;
  double f1_sum = 0;
  size_t field_count = 0;
  for (const auto& [field, score] : scores) {
    tp += score.tp;
    fp += score.fp;
    fn += score.fn;
    f1_sum += score.F1();
    ++field_count;
  }
  result.macro_f1 = field_count == 0 ? 0.0 : f1_sum / static_cast<double>(field_count);
  double denom = 2.0 * static_cast<double>(tp) + static_cast<double>(fp) +
                 static_cast<double>(fn);
  result.micro_f1 = denom == 0 ? 0.0 : 2.0 * static_cast<double>(tp) / denom;
  result.per_field = std::move(scores);
  return result;
}

EvalResult EvaluateModel(const SequenceLabelingModel& model,
                         const std::vector<Document>& test_docs) {
  std::map<std::string, FieldScore> scores;
  for (const Document& doc : test_docs) {
    AccumulateSpanScores(doc.annotations(), model.Predict(doc), scores);
  }
  return FinalizeScores(std::move(scores));
}

}  // namespace fieldswap
