#include "eval/metrics.h"

#include "doc/span_match.h"
#include "par/parallel.h"

namespace fieldswap {

double FieldScore::Precision() const {
  return tp + fp == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double FieldScore::Recall() const {
  return tp + fn == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double FieldScore::F1() const { return F1FromCounts({tp, fp, fn}); }

void AccumulateSpanScores(const std::vector<EntitySpan>& gold,
                          const std::vector<EntitySpan>& predicted,
                          std::map<std::string, FieldScore>& scores) {
  std::map<std::string, SpanMatchCounts> counts;
  MatchSpansPerField(gold, predicted, counts);
  for (const auto& [field, c] : counts) {
    FieldScore& score = scores[field];
    score.tp += c.tp;
    score.fp += c.fp;
    score.fn += c.fn;
  }
}

EvalResult FinalizeScores(std::map<std::string, FieldScore> scores) {
  EvalResult result;
  int64_t tp = 0, fp = 0, fn = 0;
  double f1_sum = 0;
  size_t field_count = 0;
  for (const auto& [field, score] : scores) {
    tp += score.tp;
    fp += score.fp;
    fn += score.fn;
    f1_sum += score.F1();
    ++field_count;
  }
  result.macro_f1 = field_count == 0 ? 0.0 : f1_sum / static_cast<double>(field_count);
  double denom = 2.0 * static_cast<double>(tp) + static_cast<double>(fp) +
                 static_cast<double>(fn);
  result.micro_f1 = denom == 0 ? 0.0 : 2.0 * static_cast<double>(tp) / denom;
  result.per_field = std::move(scores);
  return result;
}

EvalResult EvaluateModel(const SequenceLabelingModel& model,
                         const std::vector<Document>& test_docs) {
  // Prediction fans out across the pool; scores accumulate serially in
  // document order so the result is identical for any thread count.
  std::vector<std::vector<EntitySpan>> predictions = par::ParallelMap(
      test_docs.size(),
      [&](size_t i) { return model.Predict(test_docs[i]); });
  std::map<std::string, FieldScore> scores;
  for (size_t i = 0; i < test_docs.size(); ++i) {
    AccumulateSpanScores(test_docs[i].annotations(), predictions[i], scores);
  }
  return FinalizeScores(std::move(scores));
}

}  // namespace fieldswap
