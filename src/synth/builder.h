#ifndef FIELDSWAP_SYNTH_BUILDER_H_
#define FIELDSWAP_SYNTH_BUILDER_H_

#include <string>
#include <vector>

#include "doc/document.h"
#include "synth/spec.h"

namespace fieldswap {

/// Result of emitting a word run: the token range and the x coordinate just
/// past its right edge.
struct EmitResult {
  int first_token = 0;
  int num_tokens = 0;
  double right_x = 0;
};

/// Lightweight typesetter that places word runs on a page, producing tokens
/// with realistic bounding boxes. Coordinates are US-Letter points
/// (612 x 792), origin top-left.
class DocumentBuilder {
 public:
  static constexpr double kPageWidth = 612.0;
  static constexpr double kPageHeight = 792.0;

  DocumentBuilder(std::string id, std::string domain,
                  const TemplateStyle& style);

  /// Places `words` left-to-right starting at (x, y_top). Each token's box
  /// is sized from its character count at the template's font metrics.
  EmitResult EmitWords(const std::vector<std::string>& words, double x,
                       double y_top);

  /// EmitWords followed by AddAnnotation(field, range).
  EmitResult EmitField(std::string_view field,
                       const std::vector<std::string>& words, double x,
                       double y_top);

  /// Splits free text on whitespace and emits it (no annotation).
  EmitResult EmitText(std::string_view text, double x, double y_top);

  /// Height of one text line including spacing.
  double LineHeight() const { return style_.font_size * style_.line_spacing; }

  const TemplateStyle& style() const { return style_; }
  Document& doc() { return doc_; }

  /// Finalizes the page: runs OCR line detection and reading-order sort,
  /// then returns the document.
  Document Finish();

 private:
  TemplateStyle style_;
  Document doc_;
};

}  // namespace fieldswap

#endif  // FIELDSWAP_SYNTH_BUILDER_H_
