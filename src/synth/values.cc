#include "synth/values.h"

#include <cmath>
#include <cstdio>

#include "util/strings.h"

namespace fieldswap {
namespace {

constexpr const char* kFirstNames[] = {
    "James", "Maria",  "Robert", "Linda",  "Michael", "Susan",
    "David", "Karen",  "Daniel", "Nancy",  "Kevin",   "Laura",
    "Brian", "Amanda", "Jason",  "Angela", "Eric",    "Monica",
    "Tyler", "Renee",  "Carlos", "Priya",  "Wei",     "Fatima"};

constexpr const char* kLastNames[] = {
    "Smith",  "Johnson",  "Garcia",   "Miller", "Davis",   "Martinez",
    "Lopez",  "Wilson",   "Anderson", "Taylor", "Thomas",  "Moore",
    "Chen",   "Nakamura", "Patel",    "Nguyen", "O'Brien", "Kowalski",
    "Dubois", "Schmidt",  "Rossi",    "Silva",  "Ivanov",  "Haddad"};

constexpr const char* kStreets[] = {
    "Maple",  "Oak",    "Cedar",   "Elm",     "Willow",  "Main",
    "Market", "Sunset", "Lakeview", "Hillcrest", "Prospect", "Jefferson"};

constexpr const char* kStreetSuffixes[] = {"St", "Ave", "Blvd", "Dr", "Ln",
                                           "Rd"};

constexpr const char* kCities[] = {
    "Springfield", "Riverton", "Fairview",  "Kingston", "Georgetown",
    "Ashland",     "Dayton",   "Milford",   "Oxford",   "Clinton",
    "Salem",       "Bristol"};

constexpr const char* kStates[] = {"CA", "NY", "TX", "WA", "IL", "MA",
                                   "FL", "OH", "CO", "GA", "NC", "PA"};

constexpr const char* kCompanyCores[] = {
    "Acme",    "Pinnacle", "Summit",  "Horizon", "Sterling", "Vanguard",
    "Cascade", "Granite",  "Beacon",  "Harbor",  "Liberty",  "Northwind",
    "Redwood", "Bluestone", "Ironwood", "Clearwater"};

constexpr const char* kCompanyKinds[] = {"Industries", "Holdings", "Partners",
                                         "Logistics",  "Media",    "Systems",
                                         "Financial",  "Services"};

constexpr const char* kCompanySuffixes[] = {"LLC", "Inc", "Corp", "Ltd"};

constexpr const char* kCountries[] = {
    "Japan",  "Germany", "Brazil", "Canada",  "France", "India",
    "Mexico", "Norway",  "Spain",  "Turkey",  "Egypt",  "Kenya"};

constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

constexpr const char* kProducts[] = {
    "Morning",  "Evening", "Weekend", "Prime",  "Daily", "Metro",
    "Spotlight", "Pulse",  "Focus",   "Impact"};

constexpr const char* kProductKinds[] = {"News",  "Drive", "Show",
                                         "Report", "Hour",  "Update"};

template <size_t N>
const char* Pick(Rng& rng, const char* const (&items)[N]) {
  return items[rng.Index(N)];
}

}  // namespace

std::string FormatMoney(double amount) {
  double rounded = std::round(amount * 100.0) / 100.0;
  auto whole = static_cast<int64_t>(rounded);
  int cents = static_cast<int>(std::llround((rounded - static_cast<double>(whole)) * 100.0));
  if (cents < 0) cents = -cents;
  char buf[16];
  std::snprintf(buf, sizeof(buf), ".%02d", cents);
  return FormatWithCommas(whole) + buf;
}

std::vector<std::string> ValueSampler::Money(double lo, double hi,
                                             MoneyStyle style) {
  double amount = rng_.Uniform(lo, hi);
  std::string text = FormatMoney(amount);
  if (style == MoneyStyle::kDollarSign) text = "$" + text;
  return {text};
}

std::vector<std::string> ValueSampler::Date(DateStyle style) {
  int year = static_cast<int>(rng_.UniformInt(2019, 2024));
  int month = static_cast<int>(rng_.UniformInt(1, 12));
  int day = static_cast<int>(rng_.UniformInt(1, 28));
  char buf[32];
  switch (style) {
    case DateStyle::kSlashed:
      std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d", month, day, year);
      return {buf};
    case DateStyle::kDashedIso:
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
      return {buf};
    case DateStyle::kMonthName: {
      std::snprintf(buf, sizeof(buf), "%d,", day);
      return {kMonths[month - 1], buf, std::to_string(year)};
    }
  }
  return {"01/01/2024"};
}

std::vector<std::string> ValueSampler::Number(int min_digits, int max_digits) {
  int digits = static_cast<int>(rng_.UniformInt(min_digits, max_digits));
  std::string text;
  text.push_back(static_cast<char>('1' + rng_.Index(9)));
  for (int i = 1; i < digits; ++i) {
    text.push_back(static_cast<char>('0' + rng_.Index(10)));
  }
  return {text};
}

std::vector<std::string> ValueSampler::Address() {
  std::vector<std::string> tokens;
  tokens.push_back(std::to_string(rng_.UniformInt(100, 9999)));
  tokens.push_back(Pick(rng_, kStreets));
  tokens.push_back(std::string(Pick(rng_, kStreetSuffixes)) + ",");
  tokens.push_back(std::string(Pick(rng_, kCities)) + ",");
  tokens.push_back(Pick(rng_, kStates));
  char zip[8];
  std::snprintf(zip, sizeof(zip), "%05d", static_cast<int>(rng_.UniformInt(10000, 99999)));
  tokens.push_back(zip);
  return tokens;
}

std::vector<std::string> ValueSampler::PersonName() {
  return {Pick(rng_, kFirstNames), Pick(rng_, kLastNames)};
}

std::vector<std::string> ValueSampler::CompanyName() {
  std::vector<std::string> tokens{Pick(rng_, kCompanyCores)};
  if (rng_.Bernoulli(0.7)) tokens.push_back(Pick(rng_, kCompanyKinds));
  tokens.push_back(Pick(rng_, kCompanySuffixes));
  return tokens;
}

std::vector<std::string> ValueSampler::Country() {
  return {Pick(rng_, kCountries)};
}

std::vector<std::string> ValueSampler::CallSign() {
  std::string sign;
  sign.push_back(rng_.Bernoulli(0.5) ? 'K' : 'W');
  for (int i = 0; i < 3; ++i) {
    sign.push_back(static_cast<char>('A' + rng_.Index(26)));
  }
  if (rng_.Bernoulli(0.4)) sign += rng_.Bernoulli(0.5) ? "-TV" : "-FM";
  return {sign};
}

std::vector<std::string> ValueSampler::ProductName() {
  return {Pick(rng_, kProducts), Pick(rng_, kProductKinds)};
}

std::vector<std::string> ValueSampler::ForType(FieldType type,
                                               MoneyStyle money_style,
                                               DateStyle date_style) {
  switch (type) {
    case FieldType::kAddress:
      return Address();
    case FieldType::kDate:
      return Date(date_style);
    case FieldType::kMoney:
      return Money(10.0, 20000.0, money_style);
    case FieldType::kNumber:
      return Number(4, 8);
    case FieldType::kString:
      return PersonName();
  }
  return {"n/a"};
}

}  // namespace fieldswap
