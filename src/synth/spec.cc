#include "synth/spec.h"

#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fieldswap {

DomainSchema DomainSpec::Schema() const {
  std::vector<FieldSpec> specs;
  specs.reserve(fields.size());
  for (const FieldDef& def : fields) specs.push_back(def.spec);
  return DomainSchema(name, std::move(specs));
}

const FieldDef* DomainSpec::Find(std::string_view field) const {
  for (const FieldDef& def : fields) {
    if (def.spec.name == field) return &def;
  }
  return nullptr;
}

int DomainSpec::IndexOf(std::string_view field) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].spec.name == field) return static_cast<int>(i);
  }
  return -1;
}

TemplateStyle MakeTemplateStyle(const DomainSpec& spec, int template_id) {
  FS_CHECK_GE(template_id, 0);
  Rng rng(Fnv1a64(spec.name) ^ (static_cast<uint64_t>(template_id) * 0x9e3779b97f4a7c15ULL + 1));

  TemplateStyle style;
  style.template_id = template_id;
  style.font_size = rng.Uniform(9.0, 12.0);
  style.char_width = style.font_size * rng.Uniform(0.48, 0.56);
  style.left_margin = rng.Uniform(36.0, 64.0);
  style.top_margin = rng.Uniform(32.0, 56.0);
  style.line_spacing = rng.Uniform(1.5, 1.9);
  style.label_above = rng.Bernoulli(0.35);
  style.label_colon = rng.Bernoulli(0.5);
  style.swap_table_columns = rng.Bernoulli(0.3);
  style.money_style =
      rng.Bernoulli(0.7) ? MoneyStyle::kDollarSign : MoneyStyle::kPlain;
  double date_pick = rng.Uniform();
  style.date_style = date_pick < 0.5   ? DateStyle::kSlashed
                     : date_pick < 0.8 ? DateStyle::kMonthName
                                       : DateStyle::kDashedIso;
  style.phrase_choice.resize(spec.fields.size(), 0);
  for (size_t i = 0; i < spec.fields.size(); ++i) {
    const auto& phrases = spec.fields[i].phrases;
    if (!phrases.empty()) style.phrase_choice[i] = rng.Index(phrases.size());
  }
  for (const Section& section : spec.sections) {
    if (section.kind == Section::Kind::kTable &&
        style.column_title_choice.empty()) {
      for (const auto& variants : section.table.column_title_variants) {
        style.column_title_choice.push_back(
            variants.empty() ? 0 : rng.Index(variants.size()));
      }
    }
  }
  style.kv_shuffle_salt = rng.Next();
  style.row_shuffle_salt = rng.Next();
  if (!spec.distractors.empty() && rng.Bernoulli(0.8)) {
    style.distractor_set = static_cast<int>(rng.Index(spec.distractors.size()));
  }
  return style;
}

std::string TemplatePhraseFor(const DomainSpec& spec,
                              const TemplateStyle& style,
                              std::string_view field) {
  int index = spec.IndexOf(field);
  if (index < 0) return "";
  const FieldDef& def = spec.fields[static_cast<size_t>(index)];
  if (def.phrases.empty()) return "";
  size_t choice = style.phrase_choice[static_cast<size_t>(index)];
  return def.phrases[choice % def.phrases.size()];
}

}  // namespace fieldswap
