#ifndef FIELDSWAP_SYNTH_DOMAINS_H_
#define FIELDSWAP_SYNTH_DOMAINS_H_

#include <string>
#include <vector>

#include "synth/spec.h"

namespace fieldswap {

/// The five evaluation domains of the paper (Table I / II), modeled so that
/// field counts per base type match the paper exactly and the qualitative
/// phenomena studied in the evaluation (rare fields, contradictory
/// current/year_to_date pairs, fields without key phrases) are present.
DomainSpec FaraSpec();
DomainSpec FccFormsSpec();
DomainSpec BrokerageStatementsSpec();
DomainSpec EarningsSpec();
DomainSpec LoanPaymentsSpec();

/// Out-of-domain invoice corpus used to pre-train the key-phrase-inference
/// model (Sec. IV-B).
DomainSpec InvoicesSpec();

/// All five evaluation domains in the paper's Table I order.
std::vector<DomainSpec> AllEvalDomains();

/// Lookup by DomainSpec::name ("fara", "fcc_forms", "brokerage_statements",
/// "earnings", "loan_payments", "invoices"); aborts on unknown names.
DomainSpec SpecByName(const std::string& name);

}  // namespace fieldswap

#endif  // FIELDSWAP_SYNTH_DOMAINS_H_
