#include "synth/domains.h"

#include "util/logging.h"

namespace fieldswap {
namespace {

// Shorthand builders -------------------------------------------------------

FieldDef Field(std::string name, FieldType type, double frequency,
               std::vector<std::string> phrases, std::string swap_group,
               ValueKind value_kind = ValueKind::kTypeDefault) {
  FieldDef def;
  def.spec = FieldSpec{std::move(name), type, frequency};
  def.phrases = std::move(phrases);
  def.swap_group = std::move(swap_group);
  def.value_kind = value_kind;
  return def;
}

FieldDef MoneyField(std::string name, double frequency,
                    std::vector<std::string> phrases, std::string swap_group,
                    double lo, double hi) {
  FieldDef def = Field(std::move(name), FieldType::kMoney, frequency,
                       std::move(phrases), std::move(swap_group));
  def.money_lo = lo;
  def.money_hi = hi;
  return def;
}

/// A field with no key phrase, rendered in an unlabeled header block and
/// excluded from FieldSwap by the human expert (empty swap group).
FieldDef HeaderField(std::string name, FieldType type, double frequency,
                     ValueKind value_kind) {
  return Field(std::move(name), type, frequency, {}, "", value_kind);
}

Section Header(std::vector<std::string> fields) {
  Section s;
  s.kind = Section::Kind::kHeader;
  s.header.fields = std::move(fields);
  return s;
}

Section KV(std::vector<std::string> fields, int columns = 2) {
  Section s;
  s.kind = Section::Kind::kKV;
  s.kv.fields = std::move(fields);
  s.kv.columns = columns;
  return s;
}

Section Table(TableSection table) {
  Section s;
  s.kind = Section::Kind::kTable;
  s.table = std::move(table);
  return s;
}

/// Adds the 2 * |suffixes| money fields of a current/year_to_date table.
void AddPayTableFields(std::vector<FieldDef>& fields,
                       const std::vector<std::string>& suffixes,
                       const std::vector<std::vector<std::string>>& phrases,
                       const std::vector<double>& current_freq,
                       const std::vector<double>& ytd_freq, double cur_lo,
                       double cur_hi) {
  FS_CHECK_EQ(suffixes.size(), phrases.size());
  FS_CHECK_EQ(suffixes.size(), current_freq.size());
  FS_CHECK_EQ(suffixes.size(), ytd_freq.size());
  for (size_t i = 0; i < suffixes.size(); ++i) {
    fields.push_back(MoneyField("current." + suffixes[i], current_freq[i],
                                phrases[i], "current", cur_lo, cur_hi));
    fields.push_back(MoneyField("year_to_date." + suffixes[i], ytd_freq[i],
                                phrases[i], "year_to_date", cur_lo * 8,
                                cur_hi * 12));
  }
}

}  // namespace

DomainSpec FaraSpec() {
  DomainSpec spec;
  spec.name = "fara";
  spec.title_variants = {"FARA Registration Statement",
                         "Foreign Agents Registration Act Filing",
                         "Registration Statement", "FARA Supplemental Form"};
  spec.num_templates = 12;
  spec.train_pool_size = 200;
  spec.test_size = 300;

  spec.fields = {
      Field("registration_date", FieldType::kDate, 0.95,
            {"Registration Date", "Date of Registration", "Filed On"}, "kv"),
      Field("registration_number", FieldType::kNumber, 0.95,
            {"Registration No.", "Registration Number", "Reg. Number"}, "kv"),
      Field("registrant_name", FieldType::kString, 0.95,
            {"Name of Registrant", "Registrant"}, "kv",
            ValueKind::kCompanyName),
      Field("foreign_principal", FieldType::kString, 0.9,
            {"Foreign Principal", "Name of Foreign Principal"}, "kv",
            ValueKind::kCompanyName),
      Field("principal_country", FieldType::kString, 0.85,
            {"Country", "Country/Location"}, "kv", ValueKind::kCountry),
      Field("signer_name", FieldType::kString, 0.8,
            {"Signed By", "Signature Of"}, "kv", ValueKind::kPersonName),
  };

  spec.sections = {KV({"registrant_name", "registration_number",
                       "registration_date", "foreign_principal",
                       "principal_country", "signer_name"},
                      /*columns=*/1)};
  spec.distractors = {
      DistractorSet{{"U.S. Department of Justice",
                     "Washington, DC 20530",
                     "OMB No. 1124-0002"}},
      DistractorSet{{"Pursuant to the Foreign Agents Registration Act",
                     "For Official Use Only"}},
  };
  return spec;
}

DomainSpec FccFormsSpec() {
  DomainSpec spec;
  spec.name = "fcc_forms";
  spec.title_variants = {"Broadcast Order Confirmation", "Contract Agreement",
                         "Order Summary", "Station Order Form",
                         "Advertising Contract"};
  spec.num_templates = 16;
  spec.train_pool_size = 200;
  spec.test_size = 300;

  spec.fields = {
      Field("contact_address", FieldType::kAddress, 0.85,
            {"Address", "Mailing Address"}, "kv"),
      Field("contract_start_date", FieldType::kDate, 0.9,
            {"Contract Start", "Start Date", "Flight Start"}, "kv"),
      Field("contract_end_date", FieldType::kDate, 0.9,
            {"Contract End", "End Date", "Flight End"}, "kv"),
      Field("issue_date", FieldType::kDate, 0.85,
            {"Date Issued", "Issue Date"}, "kv"),
      Field("signature_date", FieldType::kDate, 0.6,
            {"Date Signed", "Signature Date"}, "kv"),
      MoneyField("gross_amount", 0.9, {"Gross Amount", "Total Gross"}, "kv",
                 500, 90000),
      MoneyField("net_amount", 0.9, {"Net Amount", "Total Net", "Amount Due"},
                 "kv", 400, 80000),
      Field("contract_number", FieldType::kNumber, 0.95,
            {"Contract No.", "Contract Number", "Order Number"}, "kv"),
      Field("advertiser", FieldType::kString, 0.95,
            {"Advertiser", "Advertiser Name"}, "kv", ValueKind::kCompanyName),
      Field("agency", FieldType::kString, 0.8, {"Agency", "Agency Name"},
            "kv", ValueKind::kCompanyName),
      Field("station", FieldType::kString, 0.9, {"Station", "Station ID"},
            "kv", ValueKind::kCallSign),
      Field("product", FieldType::kString, 0.75, {"Product", "Product Name"},
            "kv", ValueKind::kProduct),
      Field("contact_name", FieldType::kString, 0.6,
            {"Contact", "Attention", "Buyer"}, "kv", ValueKind::kPersonName),
  };

  spec.sections = {
      KV({"contract_number", "issue_date", "advertiser", "agency", "station",
          "product", "contract_start_date", "contract_end_date",
          "contact_name", "contact_address", "gross_amount", "net_amount",
          "signature_date"},
         /*columns=*/2)};
  spec.distractors = {
      DistractorSet{{"All times are local to the station",
                     "Make checks payable to the station",
                     "Page 1 of 1"}},
      DistractorSet{{"This order is subject to standard terms",
                     "Remit payment within 30 days"}},
  };
  return spec;
}

DomainSpec BrokerageStatementsSpec() {
  DomainSpec spec;
  spec.name = "brokerage_statements";
  spec.title_variants = {"Brokerage Account Statement", "Investment Statement",
                         "Account Summary Statement", "Portfolio Statement",
                         "Monthly Account Statement"};
  spec.num_templates = 16;
  spec.train_pool_size = 294;
  spec.test_size = 186;

  spec.fields = {
      HeaderField("account_holder_name", FieldType::kString, 0.95,
                  ValueKind::kPersonName),
      HeaderField("account_holder_address", FieldType::kAddress, 0.95,
                  ValueKind::kTypeDefault),
      HeaderField("firm_name", FieldType::kString, 0.95,
                  ValueKind::kCompanyName),
      HeaderField("firm_address", FieldType::kAddress, 0.9,
                  ValueKind::kTypeDefault),
      Field("statement_start_date", FieldType::kDate, 0.9,
            {"Statement Period From", "Period Beginning"}, "kv"),
      Field("statement_end_date", FieldType::kDate, 0.9,
            {"Statement Period To", "Period Ending"}, "kv"),
      Field("statement_date", FieldType::kDate, 0.7,
            {"Statement Date", "As Of"}, "kv"),
      Field("last_trade_date", FieldType::kDate, 0.4,
            {"Last Trade Date", "Trade Date"}, "kv"),
      Field("account_number", FieldType::kString, 0.95,
            {"Account Number", "Account No."}, "kv", ValueKind::kCallSign),
      Field("advisor_name", FieldType::kString, 0.7,
            {"Financial Advisor", "Your Advisor"}, "kv",
            ValueKind::kPersonName),
      Field("account_type", FieldType::kString, 0.6, {"Account Type"}, "kv",
            ValueKind::kProduct),
      Field("branch_office", FieldType::kString, 0.4,
            {"Branch", "Branch Office"}, "kv", ValueKind::kCompanyName),
      Field("beneficiary_name", FieldType::kString, 0.25,
            {"Beneficiary", "Beneficiary Name"}, "kv",
            ValueKind::kPersonName),
      MoneyField("beginning_balance", 0.9,
                 {"Beginning Balance", "Opening Balance"}, "summary", 1000,
                 500000),
      MoneyField("ending_balance", 0.9,
                 {"Ending Balance", "Closing Balance", "Account Value"},
                 "summary", 1000, 500000),
      MoneyField("total_deposits", 0.6, {"Total Deposits", "Deposits"},
                 "summary", 10, 50000),
      MoneyField("total_withdrawals", 0.55,
                 {"Total Withdrawals", "Withdrawals"}, "summary", 10, 50000),
      MoneyField("change_in_value", 0.7, {"Change in Value", "Net Change"},
                 "summary", 10, 80000),
  };

  spec.sections = {
      Header({"firm_name", "firm_address", "account_holder_name",
              "account_holder_address"}),
      KV({"account_number", "account_type", "statement_start_date",
          "statement_end_date", "statement_date", "advisor_name",
          "branch_office", "beneficiary_name", "last_trade_date"},
         /*columns=*/2),
      KV({"beginning_balance", "total_deposits", "total_withdrawals",
          "change_in_value", "ending_balance"},
         /*columns=*/1),
  };
  spec.distractors = {
      DistractorSet{{"Member FINRA and SIPC",
                     "Investment products are not FDIC insured",
                     "Questions? Call 1-800-555-0142"}},
      DistractorSet{{"Securities offered through registered representatives",
                     "Please review your statement promptly"}},
  };
  return spec;
}

DomainSpec EarningsSpec() {
  DomainSpec spec;
  spec.name = "earnings";
  spec.title_variants = {"Earnings Statement", "Pay Stub",
                         "Payroll Statement", "Statement of Earnings",
                         "Employee Pay Statement", "Wage Statement"};
  spec.num_templates = 24;
  spec.train_pool_size = 2000;
  spec.test_size = 1847;

  spec.fields = {
      HeaderField("employee_name", FieldType::kString, 0.95,
                  ValueKind::kPersonName),
      HeaderField("employer_name", FieldType::kString, 0.95,
                  ValueKind::kCompanyName),
      HeaderField("employee_address", FieldType::kAddress, 0.9,
                  ValueKind::kTypeDefault),
      HeaderField("employer_address", FieldType::kAddress, 0.85,
                  ValueKind::kTypeDefault),
      Field("employee_id", FieldType::kString, 0.8,
            {"Employee ID", "Emp. No.", "Employee Number"}, "kv",
            ValueKind::kCallSign),
      Field("pay_date", FieldType::kDate, 0.95, {"Pay Date", "Check Date"},
            "kv"),
      Field("period_start", FieldType::kDate, 0.9,
            {"Period Beginning", "Pay Period Start", "Period Start"}, "kv"),
      Field("period_end", FieldType::kDate, 0.9,
            {"Period Ending", "Pay Period End", "Period End"}, "kv"),
      MoneyField("net_pay", 0.9, {"Net Pay", "Take Home Pay", "Net Check"},
                 "kv", 800, 6000),
  };
  // The current/year_to_date earnings table: 14 money fields. pto_pay and
  // sales_pay frequencies follow the paper's Table IV (9.5% / 15.9% and
  // 2.85% / 3.9%).
  AddPayTableFields(
      spec.fields,
      {"salary", "overtime", "bonus", "vacation", "pto_pay", "sales_pay",
       "gross_pay"},
      {{"Base Salary", "Base", "Regular Pay", "Salary"},
       {"Overtime", "OT Pay", "Overtime Pay"},
       {"Bonus", "Incentive Pay"},
       {"Vacation", "Vacation Pay"},
       {"PTO", "Paid Time Off", "PTO Pay"},
       {"Sales", "Commission", "Sales Pay"},
       {"Gross Pay", "Total Gross", "Gross Earnings"}},
      /*current_freq=*/{0.95, 0.6, 0.35, 0.25, 0.095, 0.0285, 0.9},
      /*ytd_freq=*/{0.95, 0.65, 0.45, 0.35, 0.159, 0.039, 0.9},
      /*cur_lo=*/80, /*cur_hi=*/7000);

  TableSection table;
  table.title = "Earnings";
  table.column_prefixes = {"current", "year_to_date"};
  table.column_title_variants = {{"Current", "This Period", "Current Period"},
                                 {"YTD", "Year to Date", "Year-To-Date"}};
  table.row_suffixes = {"salary",  "overtime", "bonus",    "vacation",
                        "pto_pay", "sales_pay", "gross_pay"};

  spec.sections = {
      Header({"employer_name", "employer_address", "employee_name",
              "employee_address"}),
      KV({"employee_id", "pay_date", "period_start", "period_end"},
         /*columns=*/2),
      Table(table),
      KV({"net_pay"}, /*columns=*/1),
  };
  spec.distractors = {
      DistractorSet{{"Retain this statement for your records",
                     "Direct deposit advice - non negotiable"}},
      DistractorSet{{"Payroll processed by Northwind Payroll Services",
                     "Questions? Contact your HR representative",
                     "Confidential"}},
  };
  return spec;
}

DomainSpec LoanPaymentsSpec() {
  DomainSpec spec;
  spec.name = "loan_payments";
  spec.title_variants = {"Mortgage Statement", "Loan Payment Statement",
                         "Monthly Loan Statement", "Billing Statement",
                         "Home Loan Statement", "Payment Notice"};
  spec.num_templates = 24;
  spec.train_pool_size = 2000;
  spec.test_size = 815;

  spec.fields = {
      HeaderField("borrower_name", FieldType::kString, 0.95,
                  ValueKind::kPersonName),
      HeaderField("borrower_address", FieldType::kAddress, 0.95,
                  ValueKind::kTypeDefault),
      HeaderField("lender_name", FieldType::kString, 0.9,
                  ValueKind::kCompanyName),
      HeaderField("lender_address", FieldType::kAddress, 0.85,
                  ValueKind::kTypeDefault),
      Field("property_address", FieldType::kAddress, 0.8,
            {"Property Address", "Property"}, "kv"),
      Field("loan_number", FieldType::kString, 0.95,
            {"Loan Number", "Loan No.", "Account Number"}, "kv",
            ValueKind::kCallSign),
      Field("payment_due_date", FieldType::kDate, 0.95,
            {"Payment Due Date", "Due Date"}, "kv"),
      Field("statement_date", FieldType::kDate, 0.9, {"Statement Date"},
            "kv"),
      Field("loan_start_date", FieldType::kDate, 0.5,
            {"Loan Origination Date", "Origination Date"}, "kv"),
      Field("paid_through_date", FieldType::kDate, 0.5,
            {"Paid Through", "Paid To Date"}, "kv"),
      Field("maturity_date", FieldType::kDate, 0.4, {"Maturity Date"}, "kv"),
      Field("loan_type", FieldType::kString, 0.6, {"Loan Type"}, "kv",
            ValueKind::kProduct),
      Field("servicer_name", FieldType::kString, 0.5,
            {"Servicer", "Loan Servicer"}, "kv", ValueKind::kCompanyName),
      Field("escrow_agent", FieldType::kString, 0.3, {"Escrow Agent"}, "kv",
            ValueKind::kCompanyName),
      Field("investor_name", FieldType::kString, 0.3, {"Investor"}, "kv",
            ValueKind::kCompanyName),
      MoneyField("amount_due", 0.95, {"Total Amount Due", "Amount Due"}, "kv",
                 400, 6000),
      MoneyField("past_due", 0.3, {"Past Due Amount", "Past Due"}, "kv", 100,
                 5000),
      MoneyField("outstanding_principal", 0.9,
                 {"Outstanding Principal", "Principal Balance"}, "kv", 20000,
                 900000),
      MoneyField("escrow_balance", 0.6, {"Escrow Balance"}, "kv", 100, 20000),
      MoneyField("unpaid_late_charges", 0.3, {"Unpaid Late Charges"}, "kv",
                 10, 900),
      MoneyField("deferred_balance", 0.2, {"Deferred Balance"}, "kv", 100,
                 40000),
  };
  AddPayTableFields(
      spec.fields,
      {"principal", "interest", "escrow", "fees", "late_charges",
       "optional_insurance", "total_payment"},
      {{"Principal"},
       {"Interest"},
       {"Escrow", "Escrow/Impounds"},
       {"Fees", "Service Fees"},
       {"Late Charges", "Late Fees"},
       {"Optional Insurance", "Insurance"},
       {"Total Payment", "Total"}},
      /*current_freq=*/{0.95, 0.95, 0.7, 0.3, 0.25, 0.15, 0.9},
      /*ytd_freq=*/{0.9, 0.9, 0.65, 0.3, 0.3, 0.15, 0.85},
      /*cur_lo=*/30, /*cur_hi=*/4000);

  TableSection table;
  table.title = "Payment Breakdown";
  table.column_prefixes = {"current", "year_to_date"};
  table.column_title_variants = {
      {"Current Payment", "This Payment", "Payment"},
      {"Paid Year to Date", "YTD Paid", "Year to Date"}};
  table.row_suffixes = {"principal",    "interest",
                        "escrow",       "fees",
                        "late_charges", "optional_insurance",
                        "total_payment"};

  spec.sections = {
      Header({"lender_name", "lender_address", "borrower_name",
              "borrower_address"}),
      KV({"loan_number", "statement_date", "payment_due_date",
          "property_address", "loan_type", "servicer_name",
          "loan_start_date", "paid_through_date", "maturity_date",
          "escrow_agent", "investor_name"},
         /*columns=*/2),
      Table(table),
      KV({"amount_due", "past_due", "outstanding_principal", "escrow_balance",
          "unpaid_late_charges", "deferred_balance"},
         /*columns=*/2),
  };
  spec.distractors = {
      DistractorSet{{"Customer Service 1-800-555-0199",
                     "Visit us online to manage your loan",
                     "NMLS ID 400512"}},
      DistractorSet{{"This is an attempt to collect a debt",
                     "Payments received after 5pm post next business day",
                     "Equal Housing Lender"}},
  };
  return spec;
}

DomainSpec InvoicesSpec() {
  DomainSpec spec;
  spec.name = "invoices";
  spec.title_variants = {"Invoice", "Tax Invoice", "Billing Invoice",
                         "Invoice Statement", "Commercial Invoice",
                         "Sales Invoice"};
  // Positional diversity matters for pre-training: the candidate model must
  // learn to anchor on neighboring label text, not absolute page position.
  spec.num_templates = 12;
  spec.train_pool_size = 5000;
  spec.test_size = 500;

  spec.fields = {
      HeaderField("vendor_name", FieldType::kString, 0.95,
                  ValueKind::kCompanyName),
      HeaderField("vendor_address", FieldType::kAddress, 0.9,
                  ValueKind::kTypeDefault),
      Field("customer_name", FieldType::kString, 0.9,
            {"Bill To", "Customer", "Sold To"}, "kv",
            ValueKind::kCompanyName),
      Field("customer_address", FieldType::kAddress, 0.8,
            {"Ship To", "Shipping Address"}, "kv"),
      Field("invoice_number", FieldType::kNumber, 0.95,
            {"Invoice Number", "Invoice No.", "Invoice #"}, "kv"),
      Field("po_number", FieldType::kNumber, 0.6,
            {"PO Number", "Purchase Order"}, "kv"),
      Field("invoice_date", FieldType::kDate, 0.95,
            {"Invoice Date", "Date"}, "kv"),
      Field("due_date", FieldType::kDate, 0.85, {"Due Date", "Payment Due"},
            "kv"),
      MoneyField("subtotal", 0.8, {"Subtotal"}, "kv", 50, 40000),
      MoneyField("tax", 0.75, {"Tax", "Sales Tax"}, "kv", 5, 4000),
      MoneyField("total_due", 0.95,
                 {"Total Due", "Amount Due", "Balance Due", "Total"}, "kv",
                 50, 45000),
  };

  spec.sections = {
      Header({"vendor_name", "vendor_address"}),
      KV({"invoice_number", "invoice_date", "po_number", "due_date",
          "customer_name", "customer_address"},
         /*columns=*/2),
      KV({"subtotal", "tax", "total_due"}, /*columns=*/1),
  };
  spec.distractors = {
      DistractorSet{{"Thank you for your business",
                     "Payment terms Net 30"}},
      DistractorSet{{"Please include the invoice number with payment",
                     "Late payments subject to 1.5% monthly interest"}},
  };
  return spec;
}

std::vector<DomainSpec> AllEvalDomains() {
  return {FaraSpec(), FccFormsSpec(), BrokerageStatementsSpec(),
          EarningsSpec(), LoanPaymentsSpec()};
}

DomainSpec SpecByName(const std::string& name) {
  if (name == "fara") return FaraSpec();
  if (name == "fcc_forms") return FccFormsSpec();
  if (name == "brokerage_statements") return BrokerageStatementsSpec();
  if (name == "earnings") return EarningsSpec();
  if (name == "loan_payments") return LoanPaymentsSpec();
  if (name == "invoices") return InvoicesSpec();
  FS_LOG(Fatal) << "unknown domain: " << name;
  return {};
}

}  // namespace fieldswap
