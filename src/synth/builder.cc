#include "synth/builder.h"

#include "ocr/line_detector.h"
#include "ocr/reading_order.h"
#include "util/logging.h"
#include "util/strings.h"

namespace fieldswap {

DocumentBuilder::DocumentBuilder(std::string id, std::string domain,
                                 const TemplateStyle& style)
    : style_(style),
      doc_(std::move(id), std::move(domain), kPageWidth, kPageHeight) {}

EmitResult DocumentBuilder::EmitWords(const std::vector<std::string>& words,
                                      double x, double y_top) {
  FS_CHECK(!words.empty());
  EmitResult result;
  result.first_token = doc_.num_tokens();
  const double space = style_.char_width;  // one-character word gap
  double cursor = x;
  for (const std::string& word : words) {
    double w = style_.char_width * static_cast<double>(std::max<size_t>(word.size(), 1));
    BBox box{cursor, y_top, cursor + w, y_top + style_.font_size};
    doc_.AddToken(word, box);
    cursor += w + space;
  }
  result.num_tokens = static_cast<int>(words.size());
  result.right_x = cursor - space;
  return result;
}

EmitResult DocumentBuilder::EmitField(std::string_view field,
                                      const std::vector<std::string>& words,
                                      double x, double y_top) {
  EmitResult result = EmitWords(words, x, y_top);
  doc_.AddAnnotation(
      EntitySpan{std::string(field), result.first_token, result.num_tokens});
  return result;
}

EmitResult DocumentBuilder::EmitText(std::string_view text, double x,
                                     double y_top) {
  return EmitWords(SplitWhitespace(text), x, y_top);
}

Document DocumentBuilder::Finish() {
  DetectAndAssignLines(doc_);
  SortReadingOrder(doc_);
  return std::move(doc_);
}

}  // namespace fieldswap
