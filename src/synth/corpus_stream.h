#ifndef FIELDSWAP_SYNTH_CORPUS_STREAM_H_
#define FIELDSWAP_SYNTH_CORPUS_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "doc/corpus.h"
#include "synth/spec.h"

namespace fieldswap {
namespace synth {

/// A lazy doc::CorpusReader over the synthetic generator: `Get(i)` runs
/// GenerateDocument on demand, so a million-document corpus costs 24 bytes
/// per document (template id + child Rng) instead of materializing every
/// Document. The per-document seeds are drawn serially at construction in
/// exactly GenerateCorpus's order — template via `rng.Index`, child via
/// `rng.Split(i)` — so reading index i yields the byte-identical document
/// GenerateCorpus(spec, count, seed, id_prefix)[i] would hold, at any
/// FIELDSWAP_THREADS value.
std::unique_ptr<doc::CorpusReader> MakeSyntheticCorpusReader(
    const DomainSpec& spec, int count, uint64_t seed,
    const std::string& id_prefix);

/// Registers the "synthetic" format driver with the global registry
/// (idempotent; the registry ignores duplicate names). The driver opens
/// `.synth` spec files — a one-object JSON description of a generated
/// corpus:
///
///   {"fieldswap_synthetic": 1, "domain": "earnings", "count": 1000,
///    "seed": 42, "id_prefix": "doc"}
///
/// `domain` must name a built-in DomainSpec ("fara", "fcc_forms",
/// "brokerage_statements", "earnings", "loan_payments", "invoices");
/// `id_prefix` defaults to "doc", `seed` to 0. The format is read-only:
/// the spec *is* the corpus, there is nothing to write.
///
/// doc/ cannot register this driver itself (it would invert the layering:
/// doc must not depend on the generator), so every api:: corpus entry
/// point calls this before touching the registry.
void RegisterSyntheticCorpusDriver();

}  // namespace synth
}  // namespace fieldswap

#endif  // FIELDSWAP_SYNTH_CORPUS_STREAM_H_
