#include "synth/generator.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "obs/timing.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "synth/builder.h"
#include "util/logging.h"
#include "util/strings.h"

namespace fieldswap {
namespace {

/// Mutable per-document generation state.
struct DocState {
  const DomainSpec* spec = nullptr;
  const TemplateStyle* style = nullptr;
  DocumentBuilder* builder = nullptr;
  ValueSampler* sampler = nullptr;
  Rng* rng = nullptr;
  std::map<std::string, bool> present;  // field -> appears on this document
  double y = 0;                         // vertical layout cursor
};

std::vector<std::string> SampleValue(DocState& state, const FieldDef& def) {
  ValueSampler& sampler = *state.sampler;
  const TemplateStyle& style = *state.style;
  switch (def.value_kind) {
    case ValueKind::kPersonName:
      return sampler.PersonName();
    case ValueKind::kCompanyName:
      return sampler.CompanyName();
    case ValueKind::kCountry:
      return sampler.Country();
    case ValueKind::kCallSign:
      return sampler.CallSign();
    case ValueKind::kProduct:
      return sampler.ProductName();
    case ValueKind::kTypeDefault:
      break;
  }
  if (def.spec.type == FieldType::kMoney) {
    return sampler.Money(def.money_lo, def.money_hi, style.money_style);
  }
  return sampler.ForType(def.spec.type, style.money_style, style.date_style);
}

std::vector<std::string> LabelWords(const DocState& state,
                                    std::string_view phrase) {
  std::vector<std::string> words = SplitWhitespace(phrase);
  if (state.style->label_colon && !words.empty()) {
    words.back().push_back(':');
  }
  return words;
}

void EmitHeaderSection(DocState& state, const HeaderSection& section) {
  DocumentBuilder& builder = *state.builder;
  double x = state.style->left_margin + state.rng->Uniform(0, 12);
  for (const std::string& field : section.fields) {
    if (!state.present[field]) continue;
    const FieldDef* def = state.spec->Find(field);
    FS_CHECK(def != nullptr) << field;
    builder.EmitField(field, SampleValue(state, *def), x, state.y);
    state.y += builder.LineHeight();
  }
  state.y += builder.LineHeight();  // gap after the block
}

void EmitKVSection(DocState& state, const KVSection& section) {
  DocumentBuilder& builder = *state.builder;
  const TemplateStyle& style = *state.style;

  std::vector<std::string> items;
  for (const std::string& field : section.fields) {
    if (state.present[field]) items.push_back(field);
  }
  // Template-stable item order.
  Rng shuffle_rng(style.kv_shuffle_salt);
  shuffle_rng.Shuffle(items);

  const int columns = std::max(section.columns, 1);
  const double usable = DocumentBuilder::kPageWidth - 2 * style.left_margin;
  const double col_width = usable / columns;
  const double row_height =
      builder.LineHeight() * (style.label_above ? 2.6 : 1.6);

  for (size_t i = 0; i < items.size(); ++i) {
    const FieldDef* def = state.spec->Find(items[i]);
    FS_CHECK(def != nullptr) << items[i];
    int col = static_cast<int>(i) % columns;
    int row = static_cast<int>(i) / columns;
    double x = style.left_margin + col * col_width;
    double y = state.y + row * row_height;

    std::string phrase = TemplatePhraseFor(*state.spec, style, items[i]);
    std::vector<std::string> value = SampleValue(state, *def);
    if (phrase.empty()) {
      builder.EmitField(items[i], value, x, y);
      continue;
    }
    EmitResult label = builder.EmitWords(LabelWords(state, phrase), x, y);
    if (style.label_above) {
      builder.EmitField(items[i], value, x, y + builder.LineHeight());
    } else {
      builder.EmitField(items[i], value, label.right_x + style.char_width * 2,
                        y);
    }
  }
  int rows_used =
      items.empty() ? 0 : (static_cast<int>(items.size()) - 1) / columns + 1;
  state.y += rows_used * row_height + builder.LineHeight();
}

void EmitTableSection(DocState& state, const TableSection& table) {
  DocumentBuilder& builder = *state.builder;
  const TemplateStyle& style = *state.style;

  // Column order (prefixes may be visually swapped by the template).
  std::vector<size_t> col_order(table.column_prefixes.size());
  for (size_t i = 0; i < col_order.size(); ++i) col_order[i] = i;
  if (style.swap_table_columns && col_order.size() >= 2) {
    std::reverse(col_order.begin(), col_order.end());
  }

  if (!table.title.empty()) {
    builder.EmitText(table.title, style.left_margin, state.y);
    state.y += builder.LineHeight();
  }

  const double label_x = style.left_margin;
  const double first_value_x = style.left_margin + 190 + state.rng->Uniform(0, 20);
  const double col_spacing = 120 + state.rng->Uniform(0, 15);

  // Header row of column titles.
  for (size_t vis = 0; vis < col_order.size(); ++vis) {
    size_t c = col_order[vis];
    std::string title = table.column_prefixes[c];
    if (c < table.column_title_variants.size() &&
        !table.column_title_variants[c].empty()) {
      const auto& variants = table.column_title_variants[c];
      size_t pick = c < style.column_title_choice.size()
                        ? style.column_title_choice[c]
                        : 0;
      title = variants[pick % variants.size()];
    }
    builder.EmitText(title, first_value_x + vis * col_spacing, state.y);
  }
  state.y += builder.LineHeight();

  // Data rows, in template-stable shuffled order: across the corpus the row
  // label, not the row position, identifies the field.
  std::vector<std::string> row_order = table.row_suffixes;
  Rng row_rng(style.row_shuffle_salt);
  row_rng.Shuffle(row_order);
  for (const std::string& suffix : row_order) {
    // A row is rendered when at least one of its cells is present.
    bool any = false;
    for (const std::string& prefix : table.column_prefixes) {
      if (state.present[prefix + "." + suffix]) any = true;
    }
    if (!any) continue;

    // Row label: the key phrase of the first column's field (all fields in
    // the row share the same vocabulary by construction).
    std::string label_field = table.column_prefixes[0] + "." + suffix;
    std::string phrase = TemplatePhraseFor(*state.spec, style, label_field);
    if (!phrase.empty()) {
      builder.EmitWords(LabelWords(state, phrase), label_x, state.y);
    }
    for (size_t vis = 0; vis < col_order.size(); ++vis) {
      size_t c = col_order[vis];
      std::string field = table.column_prefixes[c] + "." + suffix;
      if (!state.present[field]) continue;
      const FieldDef* def = state.spec->Find(field);
      FS_CHECK(def != nullptr) << field;
      builder.EmitField(field, SampleValue(state, *def),
                        first_value_x + vis * col_spacing, state.y);
    }
    state.y += builder.LineHeight();
  }
  state.y += builder.LineHeight();
}

void EmitDistractors(DocState& state) {
  const TemplateStyle& style = *state.style;
  if (style.distractor_set < 0 ||
      style.distractor_set >= static_cast<int>(state.spec->distractors.size())) {
    return;
  }
  DocumentBuilder& builder = *state.builder;
  const DistractorSet& set =
      state.spec->distractors[static_cast<size_t>(style.distractor_set)];
  // First line near the top-right corner, the rest stacked at the footer.
  double footer_y =
      DocumentBuilder::kPageHeight - 60 -
      builder.LineHeight() * static_cast<double>(set.lines.size());
  for (size_t i = 0; i < set.lines.size(); ++i) {
    if (i == 0) {
      builder.EmitText(set.lines[i], DocumentBuilder::kPageWidth - 240,
                       style.top_margin);
    } else {
      builder.EmitText(set.lines[i], style.left_margin,
                       footer_y + static_cast<double>(i) * builder.LineHeight());
    }
  }
}

}  // namespace

Document GenerateDocument(const DomainSpec& spec, const std::string& doc_id,
                          int template_id, Rng rng) {
  TemplateStyle style = MakeTemplateStyle(spec, template_id);
  DocumentBuilder builder(doc_id, spec.name, style);
  ValueSampler sampler(rng.Split("values"));
  Rng layout_rng = rng.Split("layout");

  DocState state;
  state.spec = &spec;
  state.style = &style;
  state.builder = &builder;
  state.sampler = &sampler;
  state.rng = &layout_rng;
  state.y = style.top_margin;

  for (const FieldDef& def : spec.fields) {
    state.present[def.spec.name] = layout_rng.Bernoulli(def.spec.frequency);
  }

  if (!spec.title_variants.empty()) {
    const std::string& title =
        spec.title_variants[static_cast<size_t>(template_id) %
                            spec.title_variants.size()];
    builder.EmitText(title, DocumentBuilder::kPageWidth / 2 - 80,
                     state.y);
    state.y += builder.LineHeight() * 1.5;
  }

  for (const Section& section : spec.sections) {
    switch (section.kind) {
      case Section::Kind::kHeader:
        EmitHeaderSection(state, section.header);
        break;
      case Section::Kind::kKV:
        EmitKVSection(state, section.kv);
        break;
      case Section::Kind::kTable:
        EmitTableSection(state, section.table);
        break;
    }
  }
  EmitDistractors(state);

  // Per-document translation jitter (scan offset): documents of the same
  // template are not pixel-aligned, so absolute position alone cannot
  // identify a field.
  double dx = layout_rng.Uniform(0, 50);
  double dy = layout_rng.Uniform(0, 36);
  for (Token& tok : builder.doc().mutable_tokens()) {
    tok.box.x_min += dx;
    tok.box.x_max += dx;
    tok.box.y_min += dy;
    tok.box.y_max += dy;
  }

  return builder.Finish();
}

std::vector<Document> GenerateCorpus(const DomainSpec& spec, int count,
                                     uint64_t seed,
                                     const std::string& id_prefix) {
  FS_TRACE_SPAN("synth.generate_corpus");
  obs::Stopwatch timer;
  Rng rng(seed);
  // Draw each document's template and child Rng serially from the master
  // stream, then generate on the pool: every document is a pure function
  // of its (template_id, rng) pair, so the corpus is bit-identical for any
  // FIELDSWAP_THREADS value.
  struct DocSeed {
    int template_id = 0;
    Rng rng{0};
  };
  std::vector<DocSeed> seeds;
  seeds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    DocSeed doc_seed;
    doc_seed.template_id = static_cast<int>(rng.Index(
        static_cast<size_t>(std::max(spec.num_templates, 1))));
    doc_seed.rng = rng.Split(static_cast<uint64_t>(i));
    seeds.push_back(doc_seed);
  }
  std::vector<Document> docs =
      par::ParallelMap(seeds.size(), [&](size_t i) {
        return GenerateDocument(spec, id_prefix + "-" + std::to_string(i),
                                seeds[i].template_id, seeds[i].rng);
      });
  double seconds = timer.ElapsedSeconds();
  obs::CounterAdd("fieldswap.synth.docs", count);
  if (seconds > 0) {
    obs::GaugeSet("fieldswap.synth.docs_per_sec",
                  static_cast<double>(count) / seconds);
  }
  return docs;
}

}  // namespace fieldswap
