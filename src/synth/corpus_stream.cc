#include "synth/corpus_stream.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "synth/domains.h"
#include "synth/generator.h"
#include "util/json.h"
#include "util/rng.h"

namespace fieldswap {
namespace synth {
namespace {

/// Per-document generation seed, drawn serially in GenerateCorpus order.
struct DocSeed {
  int template_id = 0;
  Rng rng{0};
};

class SyntheticCorpusReader : public doc::CorpusReader {
 public:
  SyntheticCorpusReader(DomainSpec spec, int count, uint64_t seed,
                        std::string id_prefix)
      : spec_(std::move(spec)), id_prefix_(std::move(id_prefix)), seed_(seed) {
    // This serial interleaved draw (template, then child Rng, per document)
    // must match GenerateCorpus byte for byte — golden.json pins corpus
    // checksums computed through that path.
    Rng rng(seed);
    seeds_.reserve(static_cast<size_t>(std::max(count, 0)));
    for (int i = 0; i < count; ++i) {
      DocSeed doc_seed;
      doc_seed.template_id = static_cast<int>(rng.Index(
          static_cast<size_t>(std::max(spec_.num_templates, 1))));
      doc_seed.rng = rng.Split(static_cast<uint64_t>(i));
      seeds_.push_back(doc_seed);
    }
  }

  size_t size() const override { return seeds_.size(); }

  bool Get(size_t index, Document* document,
           doc::CorpusStatus* status) const override {
    if (index >= seeds_.size()) {
      if (status != nullptr) {
        status->message = "document index out of range";
        status->line = 0;
      }
      return false;
    }
    // GenerateDocument is a pure function of its arguments (the Rng is
    // passed by value), so concurrent Gets are safe and repeat Gets of the
    // same index are identical.
    *document = GenerateDocument(spec_, id_prefix_ + "-" + std::to_string(index),
                                 seeds_[index].template_id, seeds_[index].rng);
    return true;
  }

  std::string format() const override { return "synthetic"; }

  std::string storage_info() const override {
    return "domain " + spec_.name + "\n" +
           "count " + std::to_string(seeds_.size()) + "\n" +
           "seed " + std::to_string(seed_) + "\n" +
           "id_prefix " + id_prefix_ + "\n";
  }

 private:
  DomainSpec spec_;
  std::string id_prefix_;
  uint64_t seed_ = 0;
  std::vector<DocSeed> seeds_;
};

bool KnownDomain(const std::string& name) {
  for (const DomainSpec& spec : AllEvalDomains()) {
    if (spec.name == name) return true;
  }
  return InvoicesSpec().name == name;
}

class SyntheticFormatDriver : public doc::FormatDriver {
 public:
  std::string name() const override { return "synthetic"; }
  std::string extension() const override { return ".synth"; }
  std::string description() const override {
    return "lazy generated corpus described by a .synth JSON spec "
           "(domain/count/seed); documents materialize per Get";
  }
  bool can_write() const override { return false; }

  bool Identify(std::string_view magic,
                const std::string& path) const override {
    constexpr std::string_view kMagic = "{\"fieldswap_synthetic\"";
    if (magic.size() >= kMagic.size() &&
        magic.substr(0, kMagic.size()) == kMagic) {
      return true;
    }
    const std::string ext = extension();
    return path.size() >= ext.size() &&
           path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
  }

  std::unique_ptr<doc::CorpusReader> Open(
      const std::string& path, doc::CorpusStatus* status) const override {
    auto fail = [status](const std::string& message) {
      if (status != nullptr) {
        status->message = message;
        status->line = 0;
      }
      return nullptr;
    };
    std::ifstream in(path);
    if (!in) return fail("cannot open " + path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::optional<util::JsonValue> json = util::JsonValue::Parse(text);
    if (!json.has_value() || !json->is_object()) {
      return fail(path + ": not a JSON object");
    }
    if (json->Find("fieldswap_synthetic") == nullptr) {
      return fail(path + ": missing \"fieldswap_synthetic\" marker");
    }
    const util::JsonValue* domain = json->Find("domain");
    if (domain == nullptr || !domain->is_string()) {
      return fail(path + ": missing string field \"domain\"");
    }
    if (!KnownDomain(domain->string_value())) {
      return fail(path + ": unknown domain '" + domain->string_value() +
                  "' (known: fara, fcc_forms, brokerage_statements, "
                  "earnings, loan_payments, invoices)");
    }
    const util::JsonValue* count = json->Find("count");
    if (count == nullptr || !count->is_number() ||
        count->number_value() < 0 || count->number_value() > 2e9) {
      return fail(path + ": missing or invalid numeric field \"count\"");
    }
    uint64_t seed = 0;
    if (const util::JsonValue* v = json->Find("seed")) {
      if (!v->is_number()) return fail(path + ": \"seed\" must be a number");
      seed = static_cast<uint64_t>(v->number_value());
    }
    std::string id_prefix = "doc";
    if (const util::JsonValue* v = json->Find("id_prefix")) {
      if (!v->is_string()) {
        return fail(path + ": \"id_prefix\" must be a string");
      }
      id_prefix = v->string_value();
    }
    return MakeSyntheticCorpusReader(SpecByName(domain->string_value()),
                                     static_cast<int>(count->number_value()),
                                     seed, id_prefix);
  }
};

}  // namespace

std::unique_ptr<doc::CorpusReader> MakeSyntheticCorpusReader(
    const DomainSpec& spec, int count, uint64_t seed,
    const std::string& id_prefix) {
  return std::make_unique<SyntheticCorpusReader>(spec, count, seed, id_prefix);
}

void RegisterSyntheticCorpusDriver() {
  doc::FormatDriverRegistry::Global().Register(
      std::make_unique<SyntheticFormatDriver>());
}

}  // namespace synth
}  // namespace fieldswap
