#ifndef FIELDSWAP_SYNTH_SPEC_H_
#define FIELDSWAP_SYNTH_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "doc/schema.h"
#include "synth/values.h"

namespace fieldswap {

/// What kind of surface string a field's value takes (beyond its base type).
enum class ValueKind {
  kTypeDefault,  // generic value for the base type
  kPersonName,
  kCompanyName,
  kCountry,
  kCallSign,
  kProduct,
};

/// Complete generator-side definition of one schema field: its public spec,
/// its true key-phrase vocabulary, and how to sample values for it.
struct FieldDef {
  FieldSpec spec;

  /// The domain's true key-phrase vocabulary for this field. Different
  /// document templates realize different variants, so a small training set
  /// typically covers only a subset — exactly the gap a human expert closes
  /// (Sec. III). Empty for fields that have no key phrase (company_name and
  /// friends, Sec. II-A5).
  std::vector<std::string> phrases;

  /// Human-expert swap group: fields sharing a non-empty group may be
  /// swapped with each other in the human expert configuration; fields with
  /// an empty group are excluded from FieldSwap entirely by the expert.
  /// Table columns get their prefix as group (so current.* never swaps with
  /// year_to_date.*, pruning contradictory pairs).
  std::string swap_group;

  ValueKind value_kind = ValueKind::kTypeDefault;

  /// Value range for money fields.
  double money_lo = 10.0;
  double money_hi = 20000.0;
};

/// A block of unlabeled values at the top of the page (company name over
/// company address, etc.) — fields *without* key phrases.
struct HeaderSection {
  std::vector<std::string> fields;
};

/// Labeled key/value items, laid out in `columns` columns.
struct KVSection {
  std::vector<std::string> fields;
  int columns = 2;
};

/// A table whose rows are field suffixes and whose columns are field
/// prefixes (the paystub current/year_to_date structure). The cell at
/// (row r, column c) is an instance of field "<prefix_c>.<suffix_r>"; the
/// row label is the key phrase shared by every field in row r.
struct TableSection {
  std::string title;
  std::vector<std::string> column_prefixes;
  /// Title variants per column (outer index parallels column_prefixes).
  std::vector<std::vector<std::string>> column_title_variants;
  std::vector<std::string> row_suffixes;
};

/// One layout element of a domain.
struct Section {
  enum class Kind { kHeader, kKV, kTable };
  Kind kind = Kind::kKV;
  HeaderSection header;
  KVSection kv;
  TableSection table;
};

/// Static footer/boilerplate lines that templates sprinkle on documents;
/// sources of spurious key-phrase correlations for no-phrase fields.
struct DistractorSet {
  std::vector<std::string> lines;
};

/// Everything needed to synthesize a corpus for one document type.
struct DomainSpec {
  std::string name;
  /// Unannotated document title, one variant per template cycle
  /// ("EARNINGS STATEMENT", "Pay Stub", ...).
  std::vector<std::string> title_variants;
  std::vector<FieldDef> fields;
  std::vector<Section> sections;
  std::vector<DistractorSet> distractors;

  /// Number of distinct templates (layout + phrase-variant assignments).
  int num_templates = 5;

  /// Corpus sizes reported in the paper's Table I.
  int train_pool_size = 200;
  int test_size = 300;

  /// Builds the public schema from the field defs.
  DomainSchema Schema() const;

  /// Field def by name; nullptr if absent.
  const FieldDef* Find(std::string_view field) const;

  /// Index of a field in `fields`; -1 if absent.
  int IndexOf(std::string_view field) const;
};

/// Per-template rendering choices, derived deterministically from the
/// domain name and template id.
struct TemplateStyle {
  int template_id = 0;
  double font_size = 10.0;
  double char_width = 5.2;
  double left_margin = 48.0;
  double top_margin = 40.0;
  double line_spacing = 1.6;  // multiple of font_size between baselines
  bool label_above = false;   // KV label above the value instead of left
  bool label_colon = false;   // KV/table labels end with ":"
  bool swap_table_columns = false;
  MoneyStyle money_style = MoneyStyle::kDollarSign;
  DateStyle date_style = DateStyle::kSlashed;
  /// Chosen phrase variant per field (parallel to DomainSpec::fields).
  std::vector<size_t> phrase_choice;
  /// Chosen column-title variant per table column, keyed by prefix order of
  /// the first table section encountered.
  std::vector<size_t> column_title_choice;
  /// Salt for shuffling KV item order.
  uint64_t kv_shuffle_salt = 0;
  /// Salt for shuffling table row order (real issuers order pay categories
  /// differently; the row label, not the position, identifies the field).
  uint64_t row_shuffle_salt = 0;
  /// Which distractor set this template uses (-1 for none).
  int distractor_set = -1;
};

/// Derives the style of template `template_id` for the domain.
TemplateStyle MakeTemplateStyle(const DomainSpec& spec, int template_id);

/// The key phrase a given template uses for `field` ("" if the field has no
/// key phrase vocabulary).
std::string TemplatePhraseFor(const DomainSpec& spec,
                              const TemplateStyle& style,
                              std::string_view field);

}  // namespace fieldswap

#endif  // FIELDSWAP_SYNTH_SPEC_H_
