#ifndef FIELDSWAP_SYNTH_VALUES_H_
#define FIELDSWAP_SYNTH_VALUES_H_

#include <string>
#include <vector>

#include "doc/schema.h"
#include "util/rng.h"

namespace fieldswap {

/// Formatting styles that vary across document templates.
enum class DateStyle { kSlashed, kDashedIso, kMonthName };
enum class MoneyStyle { kDollarSign, kPlain };

/// Samples realistic surface strings for field values, one vector entry per
/// token. Every sample is a pure function of the Rng state, so corpora are
/// reproducible from their seed.
class ValueSampler {
 public:
  explicit ValueSampler(Rng rng) : rng_(rng) {}

  /// "$3,308.62" (kDollarSign) or "3,308.62" (kPlain); single token.
  std::vector<std::string> Money(double lo, double hi, MoneyStyle style);

  /// "01/15/2024", "2024-01-15", or "Jan 15, 2024".
  std::vector<std::string> Date(DateStyle style);

  /// Digit string with the given length range.
  std::vector<std::string> Number(int min_digits, int max_digits);

  /// Street address with city, state, zip: ~6-8 tokens.
  std::vector<std::string> Address();

  /// "First Last" person name.
  std::vector<std::string> PersonName();

  /// "Acme Holdings LLC"-style company name (2-3 tokens).
  std::vector<std::string> CompanyName();

  /// Country name, single or double token.
  std::vector<std::string> Country();

  /// Radio/TV station call sign, e.g. "KQED-TV".
  std::vector<std::string> CallSign();

  /// Short product/campaign name (1-2 tokens).
  std::vector<std::string> ProductName();

  /// Generic value for a base type, with default ranges. For kString, a
  /// person name.
  std::vector<std::string> ForType(FieldType type, MoneyStyle money_style,
                                   DateStyle date_style);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

/// Formats a dollar amount with thousands separators and two decimals
/// (no currency symbol).
std::string FormatMoney(double amount);

}  // namespace fieldswap

#endif  // FIELDSWAP_SYNTH_VALUES_H_
