#ifndef FIELDSWAP_SYNTH_GENERATOR_H_
#define FIELDSWAP_SYNTH_GENERATOR_H_

#include <string>
#include <vector>

#include "doc/document.h"
#include "synth/spec.h"
#include "util/rng.h"

namespace fieldswap {

/// Synthesizes one document of the domain using the given template. All
/// randomness (field presence, values, position jitter) flows from `rng`.
Document GenerateDocument(const DomainSpec& spec, const std::string& doc_id,
                          int template_id, Rng rng);

/// Synthesizes `count` documents with ids "<prefix>-<i>", assigning each a
/// random template. Deterministic in `seed`.
std::vector<Document> GenerateCorpus(const DomainSpec& spec, int count,
                                     uint64_t seed,
                                     const std::string& id_prefix);

}  // namespace fieldswap

#endif  // FIELDSWAP_SYNTH_GENERATOR_H_
