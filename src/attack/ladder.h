#ifndef FIELDSWAP_ATTACK_LADDER_H_
#define FIELDSWAP_ATTACK_LADDER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "attack/perturbation.h"
#include "doc/document.h"
#include "doc/schema.h"

namespace fieldswap {
namespace attack {

/// Severity ladder configuration. Severity 0 is always the clean corpus by
/// the DocumentPerturbation identity contract, so a ladder that includes 0
/// doubles as a self-check against the clean evaluation.
struct AttackLadderConfig {
  std::vector<double> severities = {0.25, 0.5, 1.0};
  uint64_t seed = 7332;
};

/// Extraction quality on one (possibly attacked) corpus, as the ladder
/// consumes it. The model layer adapts its EvalResult into this (see
/// MakeModelEvaluator in eval/experiment.h); keeping the ladder behind a
/// callback keeps src/attack free of model/eval dependencies.
struct AttackEval {
  double macro_f1 = 0;
  double micro_f1 = 0;
  std::map<std::string, double> per_field_f1;
};

/// Scores a corpus; must be deterministic in the corpus contents.
using CorpusEvaluator = std::function<AttackEval(const std::vector<Document>&)>;

/// One rung of one attack's ladder.
struct LadderCell {
  double severity = 0;
  AttackEval eval;
};

/// One attack's full severity ladder.
struct AttackCurve {
  std::string attack;
  std::vector<LadderCell> cells;

  /// Largest macro-F1 drop vs the clean evaluation across the ladder.
  double MaxMacroDrop(double clean_macro_f1) const;
};

/// Degradation of one model over a whole attack suite.
struct DegradationReport {
  std::string domain;
  AttackEval clean;
  std::vector<AttackCurve> curves;

  /// Curve by attack name; nullptr if absent.
  const AttackCurve* Find(const std::string& attack) const;
};

/// Runs every attack's severity ladder over `test_docs`: perturb (via
/// PerturbCorpus, deterministic at any thread count), evaluate, record.
/// Emits fieldswap.attack.* metrics and attack.* trace spans.
DegradationReport RunAttackLadder(const std::vector<Document>& test_docs,
                                  const AttackSuite& suite,
                                  const AttackLadderConfig& config,
                                  const CorpusEvaluator& evaluator,
                                  const std::string& domain_name);

/// Mean per-field F1 grouped by the schema's base field type (the paper's
/// Table II axis) — fields absent from the eval are skipped.
std::map<std::string, double> F1ByFieldType(const AttackEval& eval,
                                            const DomainSchema& schema);

/// Renders the report as an aligned text table (macro/micro per rung, drop
/// vs clean).
std::string ReportToText(const DegradationReport& report);

/// Renders the report as stable JSON (fixed key order, %.4f numbers) for
/// the attack_sweep degradation report and the golden suite.
std::string ReportToJson(const DegradationReport& report);

}  // namespace attack
}  // namespace fieldswap

#endif  // FIELDSWAP_ATTACK_LADDER_H_
