#include "attack/ladder.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace fieldswap {
namespace attack {

namespace {

std::string F4(double v) { return FormatDouble(v, 4); }

void AppendEvalJson(std::ostringstream& os, const AttackEval& eval,
                    const std::string& indent) {
  os << "{\n";
  os << indent << "  \"macro_f1\": " << F4(eval.macro_f1) << ",\n";
  os << indent << "  \"micro_f1\": " << F4(eval.micro_f1) << ",\n";
  os << indent << "  \"per_field_f1\": {";
  bool first = true;
  for (const auto& [field, f1] : eval.per_field_f1) {
    if (!first) os << ",";
    first = false;
    os << "\n" << indent << "    \"" << field << "\": " << F4(f1);
  }
  if (!eval.per_field_f1.empty()) os << "\n" << indent << "  ";
  os << "}\n" << indent << "}";
}

}  // namespace

double AttackCurve::MaxMacroDrop(double clean_macro_f1) const {
  double max_drop = 0;
  for (const LadderCell& cell : cells) {
    max_drop = std::max(max_drop, clean_macro_f1 - cell.eval.macro_f1);
  }
  return max_drop;
}

const AttackCurve* DegradationReport::Find(const std::string& attack) const {
  for (const AttackCurve& curve : curves) {
    if (curve.attack == attack) return &curve;
  }
  return nullptr;
}

DegradationReport RunAttackLadder(const std::vector<Document>& test_docs,
                                  const AttackSuite& suite,
                                  const AttackLadderConfig& config,
                                  const CorpusEvaluator& evaluator,
                                  const std::string& domain_name) {
  FS_TRACE_SPAN("attack.run_ladder");
  FS_CHECK(evaluator != nullptr) << "RunAttackLadder needs an evaluator";

  DegradationReport report;
  report.domain = domain_name;
  {
    FS_TRACE_SPAN("attack.eval_clean");
    report.clean = evaluator(test_docs);
  }
  obs::GaugeSet("fieldswap.attack.clean_macro_f1", report.clean.macro_f1);

  for (const auto& attack : suite) {
    FS_CHECK(attack != nullptr);
    FS_TRACE_SPAN("attack.ladder");
    AttackCurve curve;
    curve.attack = attack->name();
    for (double severity : config.severities) {
      LadderCell cell;
      cell.severity = severity;
      std::vector<Document> attacked =
          PerturbCorpus(test_docs, *attack, severity, config.seed);
      {
        FS_TRACE_SPAN("attack.eval_attacked");
        cell.eval = evaluator(attacked);
      }
      obs::HistogramObserve("fieldswap.attack.macro_f1_drop",
                            report.clean.macro_f1 - cell.eval.macro_f1);
      curve.cells.push_back(std::move(cell));
    }
    obs::GaugeSet("fieldswap.attack." + curve.attack + ".max_macro_drop",
                  curve.MaxMacroDrop(report.clean.macro_f1));
    obs::CounterAdd("fieldswap.attack.ladders_run");
    report.curves.push_back(std::move(curve));
  }
  return report;
}

std::map<std::string, double> F1ByFieldType(const AttackEval& eval,
                                            const DomainSchema& schema) {
  std::map<std::string, double> sum;
  std::map<std::string, int> count;
  for (const auto& [field, f1] : eval.per_field_f1) {
    if (!schema.Has(field)) continue;
    std::string type(FieldTypeName(schema.TypeOf(field)));
    sum[type] += f1;
    count[type] += 1;
  }
  std::map<std::string, double> mean;
  for (const auto& [type, total] : sum) mean[type] = total / count[type];
  return mean;
}

std::string ReportToText(const DegradationReport& report) {
  std::ostringstream os;
  os << "Attack degradation report — domain " << report.domain << "\n";
  os << "clean: macro_f1=" << F4(report.clean.macro_f1)
     << " micro_f1=" << F4(report.clean.micro_f1) << "\n\n";
  TablePrinter table({"attack", "severity", "macro_f1", "micro_f1", "drop"});
  for (const AttackCurve& curve : report.curves) {
    for (const LadderCell& cell : curve.cells) {
      table.AddRow({curve.attack, FormatDouble(cell.severity, 2),
                    F4(cell.eval.macro_f1), F4(cell.eval.micro_f1),
                    F4(report.clean.macro_f1 - cell.eval.macro_f1)});
    }
    table.AddSeparator();
  }
  table.Print(os);
  return os.str();
}

std::string ReportToJson(const DegradationReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"domain\": \"" << report.domain << "\",\n";
  os << "  \"clean\": ";
  AppendEvalJson(os, report.clean, "  ");
  os << ",\n  \"attacks\": [";
  bool first_curve = true;
  for (const AttackCurve& curve : report.curves) {
    if (!first_curve) os << ",";
    first_curve = false;
    os << "\n    {\n      \"attack\": \"" << curve.attack << "\",\n";
    os << "      \"max_macro_drop\": "
       << F4(curve.MaxMacroDrop(report.clean.macro_f1)) << ",\n";
    os << "      \"cells\": [";
    bool first_cell = true;
    for (const LadderCell& cell : curve.cells) {
      if (!first_cell) os << ",";
      first_cell = false;
      os << "\n        {\n          \"severity\": "
         << FormatDouble(cell.severity, 2) << ",\n          \"eval\": ";
      AppendEvalJson(os, cell.eval, "          ");
      os << "\n        }";
    }
    if (!curve.cells.empty()) os << "\n      ";
    os << "]\n    }";
  }
  if (!report.curves.empty()) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

}  // namespace attack
}  // namespace fieldswap
