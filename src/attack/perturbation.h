#ifndef FIELDSWAP_ATTACK_PERTURBATION_H_
#define FIELDSWAP_ATTACK_PERTURBATION_H_

#include <memory>
#include <string>
#include <vector>

#include "doc/corpus.h"
#include "doc/document.h"
#include "synth/spec.h"
#include "util/rng.h"

namespace fieldswap {
namespace attack {

/// A deterministic, seeded document perturbation ("form attack", after Xue
/// et al.'s robustness evaluation of form field extractors). Attacks stress
/// exactly the variation FieldSwap claims to protect against: key-phrase
/// wording, OCR imperfections, geometry, and layout.
///
/// Contract:
///  - severity is clamped to [0, 1]; severity 0 is the identity (the
///    document is not touched and the rng is not advanced), severity 1 the
///    strongest configured form of the attack.
///  - all randomness flows from the caller-provided `Rng`, so a (doc,
///    severity, rng) triple maps to exactly one output — `PerturbCorpus`
///    pre-splits one child rng per document serially and fans out on the
///    src/par pool, making attacked corpora bit-identical at any
///    FIELDSWAP_THREADS value.
///  - document invariants are preserved: annotation spans stay in-bounds
///    on schema fields, bounding boxes stay normalized (min <= max), and
///    every token keeps a valid line id. Ground-truth value tokens are
///    never edited (labels may move or disappear; values never lie).
class DocumentPerturbation {
 public:
  virtual ~DocumentPerturbation() = default;

  const std::string& name() const { return name_; }

  /// Applies the attack in place. Severity <= 0 returns immediately.
  void Apply(Document& doc, double severity, Rng& rng) const;

 protected:
  explicit DocumentPerturbation(std::string name) : name_(std::move(name)) {}

  virtual void DoApply(Document& doc, double severity, Rng& rng) const = 0;

 private:
  std::string name_;
};

/// An owned list of attacks (one severity ladder is run per entry).
using AttackSuite = std::vector<std::unique_ptr<DocumentPerturbation>>;

/// Replaces matched key phrases with a *different* synonym from the same
/// vocabulary group (the domain's phrase variants plus table column-title
/// variants). Severity = per-occurrence replacement probability. This is
/// the attack FieldSwap augmentation explicitly trains against.
std::unique_ptr<DocumentPerturbation> MakeKeyPhraseSynonymAttack(
    const DomainSpec& spec);

/// Deletes matched key-phrase tokens outright (a form whose labels were
/// lost to scan damage). Severity = per-occurrence deletion probability.
std::unique_ptr<DocumentPerturbation> MakeKeyPhraseDeletionAttack(
    const DomainSpec& spec);

/// OCR character noise via ocr/noise: confusable-glyph substitutions,
/// token splits, and small box jitter on unannotated tokens, scaled by
/// severity. Lines are re-detected afterwards.
std::unique_ptr<DocumentPerturbation> MakeOcrNoiseAttack();

/// Gaussian jitter of *every* token box (annotated ones included — the
/// text stays truthful, the geometry degrades), sigma = severity fraction
/// of the token height. Lines are re-detected afterwards.
std::unique_ptr<DocumentPerturbation> MakeBoxJitterAttack();

/// Shuffles the token-array order of unannotated tokens within each OCR
/// line (reading order no longer matches left-to-right geometry).
/// Severity = per-line shuffle probability.
std::unique_ptr<DocumentPerturbation> MakeLineShuffleAttack();

/// Injects distractor key phrases — real label vocabulary of the domain's
/// fields — as unannotated tokens at random empty positions. Severity
/// scales the injection count (up to 4 phrases per document).
std::unique_ptr<DocumentPerturbation> MakeDistractorInjectionAttack(
    const DomainSpec& spec);

/// Swaps the vertical positions of whole OCR lines (a field layout another
/// template might use: absolute position stops identifying the field).
/// Severity = fraction of line pairs swapped.
std::unique_ptr<DocumentPerturbation> MakeFieldPositionPermutationAttack();

/// Applies `parts` in sequence under one rng (severity passes through),
/// composing single attacks into compound ones.
std::unique_ptr<DocumentPerturbation> MakeComposedPerturbation(
    std::string name, AttackSuite parts);

/// The full default suite for a domain, in fixed report order.
AttackSuite BuildAttackSuite(const DomainSpec& spec);

/// Applies `attack` at `severity` to a copy of every document. Child rngs
/// are split serially per document index before the parallel fan-out, so
/// the result is bit-identical for any FIELDSWAP_THREADS value. The seed
/// stream is salted with the attack name, so different attacks on the same
/// corpus draw uncorrelated randomness.
std::vector<Document> PerturbCorpus(const std::vector<Document>& docs,
                                    const DocumentPerturbation& attack,
                                    double severity, uint64_t seed);

/// Streaming core of PerturbCorpus (ISSUE 10): pulls documents from a
/// reader one block at a time, perturbs the block on the pool, and appends
/// results to `out` serially in document order — memory stays bounded by
/// one block. Child rngs are split from the master stream serially in
/// *global* document order across blocks, so the output is byte-identical
/// to PerturbCorpus on the materialized corpus, at any FIELDSWAP_THREADS
/// and any block size. Returns the number of documents written.
uint64_t PerturbCorpusStream(const doc::CorpusReader& docs,
                             const DocumentPerturbation& attack,
                             double severity, uint64_t seed,
                             doc::CorpusWriter& out,
                             size_t block_size = doc::kDefaultStreamBlock);

}  // namespace attack
}  // namespace fieldswap

#endif  // FIELDSWAP_ATTACK_PERTURBATION_H_
