#include "attack/perturbation.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "ocr/line_detector.h"
#include "ocr/noise.h"
#include "par/parallel.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/strings.h"

namespace fieldswap {
namespace attack {
namespace {

double ClampSeverity(double severity) {
  return std::min(1.0, std::max(0.0, severity));
}

bool OverlapsAnnotation(const Document& doc, int first_token, int num_tokens) {
  int end = first_token + num_tokens;
  for (const EntitySpan& span : doc.annotations()) {
    if (span.first_token < end && first_token < span.end_token()) return true;
  }
  return false;
}

// ---- Key-phrase vocabulary groups ----------------------------------------

/// A synonym group: surface variants that label the same thing (one field's
/// phrase vocabulary, or one table column's title variants).
using PhraseGroup = std::vector<std::string>;

/// Collects every synonym group of the domain with at least two variants,
/// deduplicated (table siblings share one vocabulary).
std::vector<PhraseGroup> CollectPhraseGroups(const DomainSpec& spec) {
  std::vector<PhraseGroup> groups;
  auto add_unique = [&groups](const std::vector<std::string>& variants) {
    if (variants.size() < 2) return;
    for (const PhraseGroup& existing : groups) {
      if (existing == variants) return;
    }
    groups.push_back(variants);
  };
  for (const FieldDef& def : spec.fields) add_unique(def.phrases);
  for (const Section& section : spec.sections) {
    if (section.kind != Section::Kind::kTable) continue;
    for (const auto& variants : section.table.column_title_variants) {
      add_unique(variants);
    }
  }
  return groups;
}

/// One key-phrase occurrence in a document: which group and variant matched
/// where.
struct GroupMatch {
  PhraseMatch match;
  size_t group = 0;
  size_t variant = 0;
};

/// All non-overlapping key-phrase occurrences, longest-match-wins (equal
/// lengths tie-break on earlier start, then group/variant order), excluding
/// anything that touches an annotated value span. Sorted by descending
/// first_token so callers can splice back-to-front.
std::vector<GroupMatch> CollectGroupMatches(
    const Document& doc, const std::vector<PhraseGroup>& groups) {
  std::vector<GroupMatch> candidates;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t v = 0; v < groups[g].size(); ++v) {
      for (const PhraseMatch& match :
           doc.FindPhrase(SplitWhitespace(groups[g][v]))) {
        if (OverlapsAnnotation(doc, match.first_token, match.num_tokens)) {
          continue;
        }
        candidates.push_back(GroupMatch{match, g, v});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const GroupMatch& a, const GroupMatch& b) {
              if (a.match.num_tokens != b.match.num_tokens) {
                return a.match.num_tokens > b.match.num_tokens;
              }
              if (a.match.first_token != b.match.first_token) {
                return a.match.first_token < b.match.first_token;
              }
              if (a.group != b.group) return a.group < b.group;
              return a.variant < b.variant;
            });
  std::vector<GroupMatch> kept;
  for (const GroupMatch& candidate : candidates) {
    bool overlaps = false;
    for (const GroupMatch& k : kept) {
      if (candidate.match.first_token <
              k.match.first_token + k.match.num_tokens &&
          k.match.first_token <
              candidate.match.first_token + candidate.match.num_tokens) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) kept.push_back(candidate);
  }
  std::sort(kept.begin(), kept.end(), [](const GroupMatch& a,
                                         const GroupMatch& b) {
    return a.match.first_token > b.match.first_token;
  });
  return kept;
}

/// Splits a phrase into tokens, carrying over a trailing ':' when the
/// template style rendered the replaced label with one.
std::vector<std::string> ReplacementWords(const std::string& phrase,
                                          const Document& doc,
                                          const PhraseMatch& replaced) {
  std::vector<std::string> words = SplitWhitespace(phrase);
  const std::string& last =
      doc.token(replaced.first_token + replaced.num_tokens - 1).text;
  if (!words.empty() && EndsWith(last, ":")) words.back().push_back(':');
  return words;
}

// ---- Attacks --------------------------------------------------------------

class KeyPhraseSynonymAttack : public DocumentPerturbation {
 public:
  explicit KeyPhraseSynonymAttack(const DomainSpec& spec)
      : DocumentPerturbation("keyphrase_synonym"),
        groups_(CollectPhraseGroups(spec)) {}

 protected:
  void DoApply(Document& doc, double severity, Rng& rng) const override {
    for (const GroupMatch& gm : CollectGroupMatches(doc, groups_)) {
      if (!rng.Bernoulli(severity)) continue;
      const PhraseGroup& group = groups_[gm.group];
      // Pick a different variant of the same group.
      size_t pick = rng.Index(group.size() - 1);
      if (pick >= gm.variant) ++pick;
      doc.ReplaceTokenRange(gm.match.first_token, gm.match.num_tokens,
                            ReplacementWords(group[pick], doc, gm.match));
    }
  }

 private:
  std::vector<PhraseGroup> groups_;
};

/// Erases tokens [first, first+count), dropping overlapping annotations
/// (callers only delete unannotated label tokens) and shifting the rest.
/// Lines must be re-detected by the caller.
void RemoveTokenRange(Document& doc, int first, int count) {
  auto& tokens = doc.mutable_tokens();
  tokens.erase(tokens.begin() + first, tokens.begin() + first + count);
  std::vector<EntitySpan> kept;
  for (EntitySpan span : doc.mutable_annotations()) {
    if (span.end_token() <= first) {
      kept.push_back(span);
    } else if (span.first_token >= first + count) {
      span.first_token -= count;
      kept.push_back(span);
    }
  }
  doc.mutable_annotations() = std::move(kept);
}

class KeyPhraseDeletionAttack : public DocumentPerturbation {
 public:
  explicit KeyPhraseDeletionAttack(const DomainSpec& spec)
      : DocumentPerturbation("keyphrase_delete"),
        groups_(CollectPhraseGroups(spec)) {}

 protected:
  void DoApply(Document& doc, double severity, Rng& rng) const override {
    bool removed = false;
    // Matches arrive sorted by descending first_token, so earlier splice
    // points stay valid while we delete.
    for (const GroupMatch& gm : CollectGroupMatches(doc, groups_)) {
      if (!rng.Bernoulli(severity)) continue;
      if (doc.num_tokens() - gm.match.num_tokens < 1) continue;
      RemoveTokenRange(doc, gm.match.first_token, gm.match.num_tokens);
      removed = true;
    }
    if (removed) DetectAndAssignLines(doc);
  }

 private:
  std::vector<PhraseGroup> groups_;
};

class OcrNoiseAttack : public DocumentPerturbation {
 public:
  OcrNoiseAttack() : DocumentPerturbation("ocr_noise") {}

 protected:
  void DoApply(Document& doc, double severity, Rng& rng) const override {
    OcrNoiseOptions options;
    options.char_substitution_prob = 0.10 * severity;
    options.token_split_prob = 0.06 * severity;
    options.box_jitter_frac = 0.04 * severity;
    ApplyOcrNoise(doc, options, rng);
    DetectAndAssignLines(doc);
  }
};

class BoxJitterAttack : public DocumentPerturbation {
 public:
  BoxJitterAttack() : DocumentPerturbation("box_jitter") {}

 protected:
  void DoApply(Document& doc, double severity, Rng& rng) const override {
    for (Token& tok : doc.mutable_tokens()) {
      double sigma = 0.35 * severity * tok.box.Height();
      tok.box.x_min += rng.Gaussian(0, sigma);
      tok.box.x_max += rng.Gaussian(0, sigma);
      tok.box.y_min += rng.Gaussian(0, sigma);
      tok.box.y_max += rng.Gaussian(0, sigma);
      if (tok.box.x_max < tok.box.x_min) {
        std::swap(tok.box.x_min, tok.box.x_max);
      }
      if (tok.box.y_max < tok.box.y_min) {
        std::swap(tok.box.y_min, tok.box.y_max);
      }
    }
    DetectAndAssignLines(doc);
  }
};

class LineShuffleAttack : public DocumentPerturbation {
 public:
  LineShuffleAttack() : DocumentPerturbation("line_shuffle") {}

 protected:
  void DoApply(Document& doc, double severity, Rng& rng) const override {
    for (const Line& line : doc.lines()) {
      std::vector<int> slots;
      for (int ti : line.token_indices) {
        if (!OverlapsAnnotation(doc, ti, 1)) slots.push_back(ti);
      }
      if (slots.size() < 2) continue;
      if (!rng.Bernoulli(severity)) continue;
      std::vector<Token> shuffled;
      shuffled.reserve(slots.size());
      for (int slot : slots) shuffled.push_back(doc.token(slot));
      rng.Shuffle(shuffled);
      for (size_t i = 0; i < slots.size(); ++i) {
        doc.mutable_tokens()[static_cast<size_t>(slots[i])] =
            std::move(shuffled[i]);
      }
    }
  }
};

class DistractorInjectionAttack : public DocumentPerturbation {
 public:
  explicit DistractorInjectionAttack(const DomainSpec& spec)
      : DocumentPerturbation("distractor_inject") {
    for (const FieldDef& def : spec.fields) {
      for (const std::string& phrase : def.phrases) pool_.push_back(phrase);
    }
    for (const Section& section : spec.sections) {
      if (section.kind != Section::Kind::kTable) continue;
      for (const auto& variants : section.table.column_title_variants) {
        for (const std::string& title : variants) pool_.push_back(title);
      }
    }
  }

 protected:
  void DoApply(Document& doc, double severity, Rng& rng) const override {
    if (pool_.empty()) return;
    int injections = static_cast<int>(std::lround(severity * kMaxInjections));
    if (injections <= 0) return;
    const double char_width = 5.2;
    const double height = 9.0;
    for (int i = 0; i < injections; ++i) {
      const std::string& phrase = rng.Choice(pool_);
      double x = rng.Uniform(40.0, std::max(41.0, doc.width() - 160.0));
      double y = rng.Uniform(40.0, std::max(41.0, doc.height() - 24.0));
      for (const std::string& word : SplitWhitespace(phrase)) {
        double w = char_width * static_cast<double>(word.size());
        doc.AddToken(word, BBox{x, y, x + w, y + height});
        x += w + char_width;
      }
    }
    DetectAndAssignLines(doc);
  }

 private:
  static constexpr int kMaxInjections = 4;
  std::vector<std::string> pool_;
};

class FieldPositionPermutationAttack : public DocumentPerturbation {
 public:
  FieldPositionPermutationAttack()
      : DocumentPerturbation("field_position_permute") {}

 protected:
  void DoApply(Document& doc, double severity, Rng& rng) const override {
    const size_t num_lines = doc.lines().size();
    if (num_lines < 2) return;
    size_t swaps = static_cast<size_t>(
        std::lround(severity * static_cast<double>(num_lines) / 2.0));
    if (swaps == 0) return;
    std::vector<size_t> order(num_lines);
    for (size_t i = 0; i < num_lines; ++i) order[i] = i;
    rng.Shuffle(order);
    std::vector<Line> lines = doc.lines();
    for (size_t s = 0; s + 1 < num_lines && s / 2 < swaps; s += 2) {
      Line& a = lines[order[s]];
      Line& b = lines[order[s + 1]];
      // Swap the two lines' vertical positions; each line's tokens move as
      // a block, so within-line geometry (and annotations) survive intact.
      double dy = b.box.y_min - a.box.y_min;
      for (int ti : a.token_indices) {
        Token& tok = doc.mutable_tokens()[static_cast<size_t>(ti)];
        tok.box.y_min += dy;
        tok.box.y_max += dy;
      }
      for (int ti : b.token_indices) {
        Token& tok = doc.mutable_tokens()[static_cast<size_t>(ti)];
        tok.box.y_min -= dy;
        tok.box.y_max -= dy;
      }
      a.box.y_min += dy;
      a.box.y_max += dy;
      b.box.y_min -= dy;
      b.box.y_max -= dy;
    }
    doc.set_lines(std::move(lines));
  }
};

class ComposedPerturbation : public DocumentPerturbation {
 public:
  ComposedPerturbation(std::string name, AttackSuite parts)
      : DocumentPerturbation(std::move(name)), parts_(std::move(parts)) {}

 protected:
  void DoApply(Document& doc, double severity, Rng& rng) const override {
    for (const auto& part : parts_) part->Apply(doc, severity, rng);
  }

 private:
  AttackSuite parts_;
};

}  // namespace

void DocumentPerturbation::Apply(Document& doc, double severity,
                                 Rng& rng) const {
  severity = ClampSeverity(severity);
  if (severity <= 0) return;  // identity: no edits, no rng draws
  DoApply(doc, severity, rng);
}

std::unique_ptr<DocumentPerturbation> MakeKeyPhraseSynonymAttack(
    const DomainSpec& spec) {
  return std::make_unique<KeyPhraseSynonymAttack>(spec);
}

std::unique_ptr<DocumentPerturbation> MakeKeyPhraseDeletionAttack(
    const DomainSpec& spec) {
  return std::make_unique<KeyPhraseDeletionAttack>(spec);
}

std::unique_ptr<DocumentPerturbation> MakeOcrNoiseAttack() {
  return std::make_unique<OcrNoiseAttack>();
}

std::unique_ptr<DocumentPerturbation> MakeBoxJitterAttack() {
  return std::make_unique<BoxJitterAttack>();
}

std::unique_ptr<DocumentPerturbation> MakeLineShuffleAttack() {
  return std::make_unique<LineShuffleAttack>();
}

std::unique_ptr<DocumentPerturbation> MakeDistractorInjectionAttack(
    const DomainSpec& spec) {
  return std::make_unique<DistractorInjectionAttack>(spec);
}

std::unique_ptr<DocumentPerturbation> MakeFieldPositionPermutationAttack() {
  return std::make_unique<FieldPositionPermutationAttack>();
}

std::unique_ptr<DocumentPerturbation> MakeComposedPerturbation(
    std::string name, AttackSuite parts) {
  return std::make_unique<ComposedPerturbation>(std::move(name),
                                                std::move(parts));
}

AttackSuite BuildAttackSuite(const DomainSpec& spec) {
  AttackSuite suite;
  suite.push_back(MakeKeyPhraseSynonymAttack(spec));
  suite.push_back(MakeKeyPhraseDeletionAttack(spec));
  suite.push_back(MakeOcrNoiseAttack());
  suite.push_back(MakeBoxJitterAttack());
  suite.push_back(MakeLineShuffleAttack());
  suite.push_back(MakeDistractorInjectionAttack(spec));
  suite.push_back(MakeFieldPositionPermutationAttack());
  return suite;
}

uint64_t PerturbCorpusStream(const doc::CorpusReader& docs,
                             const DocumentPerturbation& attack,
                             double severity, uint64_t seed,
                             doc::CorpusWriter& out, size_t block_size) {
  FS_TRACE_SPAN("attack.perturb_corpus");
  // One child stream per document, pre-split serially in global index
  // order (the block loop preserves it); the name salt keeps different
  // attacks on the same (corpus, seed) uncorrelated.
  Rng master(seed ^ Fnv1a64(attack.name()));
  if (block_size == 0) block_size = doc::kDefaultStreamBlock;
  const size_t n = docs.size();
  uint64_t written = 0;
  for (size_t base = 0; base < n; base += block_size) {
    const size_t count = std::min(block_size, n - base);
    std::vector<Rng> rngs;
    rngs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      rngs.push_back(master.Split(static_cast<uint64_t>(base + i)));
    }
    std::vector<Document> perturbed = par::ParallelMap(count, [&](size_t i) {
      Document copy = doc::ReadDocumentOrDie(docs, base + i);
      Rng rng = rngs[i];
      attack.Apply(copy, severity, rng);
      return copy;
    });
    for (const Document& document : perturbed) {
      if (!out.Add(document)) return written;
      ++written;
    }
  }
  obs::CounterAdd("fieldswap.attack.docs_perturbed",
                  static_cast<int64_t>(n));
  return written;
}

std::vector<Document> PerturbCorpus(const std::vector<Document>& docs,
                                    const DocumentPerturbation& attack,
                                    double severity, uint64_t seed) {
  doc::VectorCorpusReaderView view(docs);
  doc::VectorCorpusWriter collector;
  PerturbCorpusStream(view, attack, severity, seed, collector);
  return collector.TakeDocs();
}

}  // namespace attack
}  // namespace fieldswap
