#include "core/baselines.h"

#include <algorithm>

#include "synth/values.h"
#include "util/strings.h"

namespace fieldswap {
namespace {

/// A small form-domain thesaurus for EDA synonym replacement.
struct SynonymEntry {
  const char* word;
  const char* synonym;
};

constexpr SynonymEntry kSynonyms[] = {
    {"statement", "summary"}, {"amount", "sum"},      {"total", "overall"},
    {"pay", "wage"},          {"date", "day"},        {"period", "interval"},
    {"number", "no"},         {"balance", "remainder"},
    {"due", "payable"},       {"gross", "pretax"},    {"net", "takehome"},
    {"payment", "remittance"}, {"contact", "representative"},
    {"beginning", "start"},   {"ending", "end"},      {"questions", "inquiries"},
};

bool IsAnnotated(const Document& doc, int token_index) {
  for (const EntitySpan& span : doc.annotations()) {
    if (span.Covers(token_index)) return true;
  }
  return false;
}

}  // namespace

std::string EdaSynonymFor(const std::string& word, Rng& rng) {
  (void)rng;
  std::string lower = ToLower(TrimPunctuation(word));
  for (const SynonymEntry& entry : kSynonyms) {
    if (lower == entry.word) {
      // Preserve leading capitalization.
      std::string out = entry.synonym;
      if (!word.empty() && std::isupper(static_cast<unsigned char>(word[0]))) {
        out[0] = static_cast<char>(
            std::toupper(static_cast<unsigned char>(out[0])));
      }
      return out;
    }
  }
  return word;
}

std::vector<Document> GenerateEdaAugmentations(
    const std::vector<Document>& train_docs, const EdaOptions& options) {
  Rng rng(options.seed);
  std::vector<Document> augmented;
  for (const Document& original : train_docs) {
    for (int copy = 0; copy < options.copies_per_doc; ++copy) {
      Document doc = original;
      doc.set_id(original.id() + "#eda:" + std::to_string(copy));

      // Synonym replacement on unannotated tokens.
      for (int i = 0; i < doc.num_tokens(); ++i) {
        if (IsAnnotated(doc, i)) continue;
        if (!rng.Bernoulli(options.synonym_prob)) continue;
        std::string replaced = EdaSynonymFor(doc.token(i).text, rng);
        doc.mutable_tokens()[static_cast<size_t>(i)].text = replaced;
      }

      // Random swaps of two unannotated tokens (text only; boxes stay, which
      // is exactly the layout-destroying behaviour that makes EDA a poor
      // fit for form documents).
      for (int s = 0; s < options.random_swaps; ++s) {
        if (doc.num_tokens() < 2) break;
        int a = static_cast<int>(rng.Index(static_cast<size_t>(doc.num_tokens())));
        int b = static_cast<int>(rng.Index(static_cast<size_t>(doc.num_tokens())));
        if (a == b || IsAnnotated(doc, a) || IsAnnotated(doc, b)) continue;
        std::swap(doc.mutable_tokens()[static_cast<size_t>(a)].text,
                  doc.mutable_tokens()[static_cast<size_t>(b)].text);
      }

      // Random deletion, back to front so indices stay valid. Annotation
      // indices are remapped by ReplaceTokenRange semantics: we emulate
      // deletion by replacing the token with an empty-ish marker instead of
      // splicing, to keep line structure simple — EDA deletes words, so we
      // blank the text.
      for (int i = doc.num_tokens() - 1; i >= 0; --i) {
        if (IsAnnotated(doc, i)) continue;
        if (!rng.Bernoulli(options.deletion_prob)) continue;
        doc.mutable_tokens()[static_cast<size_t>(i)].text = "";
      }

      augmented.push_back(std::move(doc));
    }
  }
  return augmented;
}

std::vector<Document> GenerateValueSwapAugmentations(
    const std::vector<Document>& train_docs, const DomainSchema& schema,
    const ValueSwapOptions& options) {
  Rng rng(options.seed);
  std::vector<Document> augmented;
  for (const Document& original : train_docs) {
    for (int copy = 0; copy < options.copies_per_doc; ++copy) {
      Document doc = original;
      doc.set_id(original.id() + "#valueswap:" + std::to_string(copy));
      ValueSampler sampler(rng.Split(static_cast<uint64_t>(copy) * 31 + 1));

      // Replace annotation values back to front so earlier spans' indices
      // stay valid while token counts change.
      std::vector<EntitySpan> spans = doc.annotations();
      std::sort(spans.begin(), spans.end(),
                [](const EntitySpan& a, const EntitySpan& b) {
                  return a.first_token > b.first_token;
                });
      for (const EntitySpan& span : spans) {
        FieldType type = schema.TypeOf(span.field);
        std::vector<std::string> value =
            sampler.ForType(type, MoneyStyle::kDollarSign, DateStyle::kSlashed);
        int first = span.first_token;
        int count = span.num_tokens;
        std::string field = span.field;
        // ReplaceTokenRange drops the overlapping annotation; re-add it.
        doc.ReplaceTokenRange(first, count, value);
        doc.AddAnnotation(
            EntitySpan{field, first, static_cast<int>(value.size())});
      }
      augmented.push_back(std::move(doc));
    }
  }
  return augmented;
}

}  // namespace fieldswap
