#ifndef FIELDSWAP_CORE_PIPELINE_H_
#define FIELDSWAP_CORE_PIPELINE_H_

#include <vector>

#include "core/field_pairs.h"
#include "core/human_expert.h"
#include "core/key_phrases.h"
#include "core/swap.h"
#include "model/candidate_model.h"
#include "synth/spec.h"

namespace fieldswap {

/// Options for the end-to-end FieldSwap pipeline (Fig. 3).
struct FieldSwapPipelineOptions {
  MappingStrategy strategy = MappingStrategy::kTypeToType;
  KeyPhraseInferenceOptions inference;
  FieldSwapOptions swap;
};

/// Result of one augmentation run.
struct AugmentationResult {
  KeyPhraseConfig phrases;
  std::vector<FieldPair> pairs;
  std::vector<Document> synthetics;
  SwapStats stats;
};

/// Runs the full pipeline: (1) obtain key phrases — inferred with the
/// out-of-domain `candidate_model` for automatic strategies, or taken from
/// the expert configuration for kHumanExpert; (2) build field pairs per the
/// strategy; (3) generate synthetic documents. The training set for the
/// extraction model is then originals + result.synthetics (Fig. 3 step 3).
///
/// `candidate_model` may be null when strategy == kHumanExpert.
AugmentationResult RunFieldSwap(const std::vector<Document>& train_docs,
                                const DomainSpec& spec,
                                const CandidateScoringModel* candidate_model,
                                const FieldSwapPipelineOptions& options);

}  // namespace fieldswap

#endif  // FIELDSWAP_CORE_PIPELINE_H_
