#ifndef FIELDSWAP_CORE_BASELINES_H_
#define FIELDSWAP_CORE_BASELINES_H_

#include <vector>

#include "doc/document.h"
#include "doc/schema.h"
#include "util/rng.h"

namespace fieldswap {

/// Conventional text-augmentation baselines the paper argues are *not*
/// effective for form extraction (Sec. I): EDA-style token edits (Wei &
/// Zou 2019) and synthetic field-value generation. Implemented so the
/// claim can be measured (bench/ablation_baselines).

/// EDA configuration. Each augmented copy applies, per eligible token, the
/// given probabilities of synonym replacement, deletion, and a number of
/// random adjacent-token swaps. Ground-truth value tokens are never edited
/// (deleting a labeled token would corrupt the annotation itself; this is
/// the most charitable adaptation of EDA to span labeling).
struct EdaOptions {
  double synonym_prob = 0.1;
  double deletion_prob = 0.1;
  int random_swaps = 2;
  /// Augmented copies per original document.
  int copies_per_doc = 4;
  uint64_t seed = 77;
};

/// Generates EDA-augmented copies of each document.
std::vector<Document> GenerateEdaAugmentations(
    const std::vector<Document>& train_docs, const EdaOptions& options);

/// Replaces a word with a domain-plausible synonym, if one is known;
/// returns the input otherwise. Exposed for testing.
std::string EdaSynonymFor(const std::string& word, Rng& rng);

/// Value-swap baseline ("synthetic field value generation", Sec. I):
/// each augmented copy keeps layout and key phrases intact but replaces
/// every labeled value with a freshly sampled value of the same base type.
struct ValueSwapOptions {
  int copies_per_doc = 4;
  uint64_t seed = 78;
};

/// Generates value-swap copies. `schema` supplies each field's base type.
std::vector<Document> GenerateValueSwapAugmentations(
    const std::vector<Document>& train_docs, const DomainSchema& schema,
    const ValueSwapOptions& options);

}  // namespace fieldswap

#endif  // FIELDSWAP_CORE_BASELINES_H_
