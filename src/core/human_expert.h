#ifndef FIELDSWAP_CORE_HUMAN_EXPERT_H_
#define FIELDSWAP_CORE_HUMAN_EXPERT_H_

#include "core/field_pairs.h"
#include "core/key_phrases.h"
#include "synth/spec.h"

namespace fieldswap {

/// A human-expert FieldSwap configuration (Sec. III): curated key phrases
/// plus a pruned field-pair list.
struct HumanExpertConfig {
  KeyPhraseConfig phrases;
  std::vector<FieldPair> pairs;
};

/// Simulates the paper's human expert from the generator's ground truth:
///  - supplies the field's full key-phrase vocabulary, including variants
///    that never appear in a small training sample (the expert's "domain
///    knowledge");
///  - excludes fields without clear key phrases (empty phrase vocabulary /
///    empty swap group) from FieldSwap entirely;
///  - starts from type-to-type pairs and prunes pairs whose fields live in
///    different tables or sections (different swap groups), removing the
///    contradictory current.X / year_to_date.X pairs.
HumanExpertConfig MakeHumanExpertConfig(const DomainSpec& spec);

}  // namespace fieldswap

#endif  // FIELDSWAP_CORE_HUMAN_EXPERT_H_
