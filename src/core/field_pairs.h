#ifndef FIELDSWAP_CORE_FIELD_PAIRS_H_
#define FIELDSWAP_CORE_FIELD_PAIRS_H_

#include <string>
#include <vector>

#include "core/key_phrases.h"
#include "doc/schema.h"

namespace fieldswap {

/// A source-to-target swap mapping — input (2) of FieldSwap (Sec. II).
struct FieldPair {
  std::string source;
  std::string target;

  friend bool operator==(const FieldPair& a, const FieldPair& b) = default;
};

/// Field pair mapping strategies evaluated in the paper (Sec. II-B, III).
enum class MappingStrategy {
  kFieldToField,  // each field maps only to itself
  kTypeToType,    // all ordered pairs sharing a base type (incl. self)
  kAllToAll,      // every ordered pair (nearly always worse; ablation)
  kHumanExpert,   // curated phrases + pruned pairs (Sec. III)
};

std::string_view MappingStrategyName(MappingStrategy strategy);

/// Builds the pair list for a non-expert strategy. Only fields that have at
/// least one key phrase in `phrases` participate (a field with no phrase
/// can be neither source nor target).
std::vector<FieldPair> BuildFieldPairs(const DomainSchema& schema,
                                       MappingStrategy strategy,
                                       const KeyPhraseConfig& phrases);

}  // namespace fieldswap

#endif  // FIELDSWAP_CORE_FIELD_PAIRS_H_
