#include "core/phrase_suggest.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace fieldswap {
namespace {

std::string TitleCase(const std::string& word) {
  if (word.empty()) return word;
  std::string out = word;
  out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

/// "sales_pay" -> {"Sales", "Pay"}.
std::vector<std::string> NameWords(const std::string& name) {
  std::vector<std::string> words;
  for (const std::string& piece : SplitString(name, '_')) {
    words.push_back(TitleCase(piece));
  }
  return words;
}

void AddUnique(std::vector<KeyPhrase>& phrases,
               std::vector<std::string> words) {
  if (words.empty()) return;
  for (const KeyPhrase& existing : phrases) {
    if (existing.words == words) return;
  }
  KeyPhrase phrase;
  phrase.words = std::move(words);
  phrase.importance = 0.8;  // suggested, not observed
  phrases.push_back(std::move(phrase));
}

}  // namespace

std::vector<KeyPhrase> SuggestPhrasesFromName(const std::string& field_name,
                                              FieldType type) {
  std::vector<KeyPhrase> phrases;

  // Dotted names are column-prefixed table fields: "year_to_date.sales_pay"
  // -> prefix "year_to_date", suffix "sales_pay".
  std::string prefix, suffix = field_name;
  auto dot = field_name.find('.');
  if (dot != std::string::npos) {
    prefix = field_name.substr(0, dot);
    suffix = field_name.substr(dot + 1);
  }

  std::vector<std::string> suffix_words = NameWords(suffix);
  AddUnique(phrases, suffix_words);

  // Without the generic trailing type word ("Sales Pay" -> "Sales").
  if (suffix_words.size() >= 2) {
    static constexpr std::string_view kGeneric[] = {"Pay", "Amount", "Date",
                                                    "Number", "Balance"};
    for (std::string_view generic : kGeneric) {
      if (suffix_words.back() == generic) {
        AddUnique(phrases, std::vector<std::string>(suffix_words.begin(),
                                                    suffix_words.end() - 1));
      }
    }
    // Trailing bigram ("payment_due_date" -> "Due Date").
    if (suffix_words.size() >= 3) {
      AddUnique(phrases, {suffix_words[suffix_words.size() - 2],
                          suffix_words.back()});
    }
  }

  // Prefixed variants for table fields: "YTD Sales Pay" etc.
  if (!prefix.empty()) {
    std::vector<std::string> prefix_words = NameWords(prefix);
    if (prefix == "year_to_date") {
      std::vector<std::string> ytd{"YTD"};
      ytd.insert(ytd.end(), suffix_words.begin(), suffix_words.end());
      AddUnique(phrases, std::move(ytd));
      prefix_words = {"Year", "to", "Date"};
    }
    std::vector<std::string> full = prefix_words;
    full.insert(full.end(), suffix_words.begin(), suffix_words.end());
    AddUnique(phrases, std::move(full));
  }

  // Type-specific generic phrasings.
  if (type == FieldType::kMoney && !suffix_words.empty() &&
      suffix_words.back() != "Amount") {
    std::vector<std::string> amount = suffix_words;
    amount.push_back("Amount");
    AddUnique(phrases, std::move(amount));
  }
  return phrases;
}

KeyPhraseConfig SuggestKeyPhraseConfig(
    const DomainSchema& schema, const std::vector<std::string>& exclude) {
  KeyPhraseConfig config;
  for (const FieldSpec& field : schema.fields()) {
    if (std::find(exclude.begin(), exclude.end(), field.name) !=
        exclude.end()) {
      continue;
    }
    std::vector<KeyPhrase> phrases =
        SuggestPhrasesFromName(field.name, field.type);
    if (!phrases.empty()) config[field.name] = std::move(phrases);
  }
  return config;
}

}  // namespace fieldswap
