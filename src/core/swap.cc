#include "core/swap.h"

#include <algorithm>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace fieldswap {
namespace {

/// Case- and punctuation-insensitive word-by-word phrase equality.
bool SamePhrase(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!EqualsIgnoreCase(TrimPunctuation(a[i]), TrimPunctuation(b[i]))) {
      return false;
    }
  }
  return true;
}

bool OverlapsAnyAnnotation(const Document& doc, const PhraseMatch& match) {
  for (const EntitySpan& span : doc.annotations()) {
    if (match.first_token < span.end_token() &&
        span.first_token < match.first_token + match.num_tokens) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<PhraseMatch> CollectSourceMatches(
    const Document& doc, const std::vector<KeyPhrase>& source_phrases) {
  std::vector<PhraseMatch> all;
  for (const KeyPhrase& phrase : source_phrases) {
    for (const PhraseMatch& match : doc.FindPhrase(phrase.words)) {
      if (!OverlapsAnyAnnotation(doc, match)) all.push_back(match);
    }
  }
  // Longest matches win on overlap ("Base Salary" beats "Base").
  std::sort(all.begin(), all.end(),
            [](const PhraseMatch& a, const PhraseMatch& b) {
              if (a.num_tokens != b.num_tokens) {
                return a.num_tokens > b.num_tokens;
              }
              return a.first_token < b.first_token;
            });
  std::vector<PhraseMatch> kept;
  for (const PhraseMatch& match : all) {
    bool overlaps = false;
    for (const PhraseMatch& existing : kept) {
      if (match.first_token < existing.first_token + existing.num_tokens &&
          existing.first_token < match.first_token + match.num_tokens) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) kept.push_back(match);
  }
  std::sort(kept.begin(), kept.end(),
            [](const PhraseMatch& a, const PhraseMatch& b) {
              return a.first_token < b.first_token;
            });
  return kept;
}

std::optional<Document> SwapOnce(const Document& doc,
                                 const std::string& source_field,
                                 const std::string& target_field,
                                 const KeyPhrase& target_phrase,
                                 const KeyPhraseConfig& phrases,
                                 const FieldSwapOptions& options) {
  if (!doc.HasField(source_field)) return std::nullopt;
  auto source_it = phrases.find(source_field);
  if (source_it == phrases.end()) return std::nullopt;
  std::vector<PhraseMatch> matches =
      CollectSourceMatches(doc, source_it->second);
  if (matches.empty()) return std::nullopt;
  FS_CHECK(!target_phrase.words.empty());

  // Consistency filter: find other fields whose own key phrases occupy a
  // replaced range — their labels would contradict the new phrase.
  std::vector<std::string> affected_fields;
  if (options.drop_affected_fields) {
    for (const auto& [field, field_phrases] : phrases) {
      if (field == source_field) continue;
      // If the incoming phrase is also a key phrase of this field, the
      // field's semantics survive the replacement.
      bool target_is_theirs = false;
      for (const KeyPhrase& p : field_phrases) {
        if (SamePhrase(p.words, target_phrase.words)) target_is_theirs = true;
      }
      if (target_is_theirs) continue;
      bool affected = false;
      for (const KeyPhrase& p : field_phrases) {
        for (const PhraseMatch& m : doc.FindPhrase(p.words)) {
          for (const PhraseMatch& replaced : matches) {
            if (m.first_token < replaced.first_token + replaced.num_tokens &&
                replaced.first_token < m.first_token + m.num_tokens) {
              affected = true;
            }
          }
        }
      }
      if (affected) affected_fields.push_back(field);
    }
  }

  Document synthetic = doc;
  // Replace back-to-front so earlier match indices stay valid.
  for (auto it = matches.rbegin(); it != matches.rend(); ++it) {
    std::vector<std::string> replacement = target_phrase.words;
    // Preserve trailing label punctuation (":" styling) from the replaced
    // phrase so the synthetic stays visually consistent with its template.
    const std::string& old_last =
        doc.token(it->first_token + it->num_tokens - 1).text;
    if (!old_last.empty() && old_last.back() == ':' &&
        (replacement.back().empty() || replacement.back().back() != ':')) {
      replacement.back().push_back(':');
    }
    synthetic.ReplaceTokenRange(it->first_token, it->num_tokens, replacement);
  }

  // Drop contradicted annotations of affected sibling fields, then relabel
  // every instance of the source field as the target field.
  if (!affected_fields.empty()) {
    std::vector<EntitySpan> kept;
    for (const EntitySpan& span : synthetic.annotations()) {
      if (std::find(affected_fields.begin(), affected_fields.end(),
                    span.field) == affected_fields.end()) {
        kept.push_back(span);
      }
    }
    synthetic.mutable_annotations() = std::move(kept);
  }
  for (EntitySpan& span : synthetic.mutable_annotations()) {
    if (span.field == source_field) span.field = target_field;
  }

  if (options.discard_unchanged && synthetic.SameTokenTexts(doc)) {
    return std::nullopt;
  }
  return synthetic;
}

std::vector<Document> GenerateSyntheticDocuments(
    const std::vector<Document>& train_docs, const KeyPhraseConfig& phrases,
    const std::vector<FieldPair>& pairs, const FieldSwapOptions& options,
    SwapStats* stats) {
  FS_TRACE_SPAN("swap.generate_synthetics");
  obs::CounterAdd("fieldswap.swap.input_docs",
                  static_cast<int64_t>(train_docs.size()));
  SwapStats local_stats;
  std::vector<Document> synthetics;

  for (const Document& doc : train_docs) {
    for (const FieldPair& pair : pairs) {
      auto source_it = phrases.find(pair.source);
      auto target_it = phrases.find(pair.target);
      if (source_it == phrases.end() || target_it == phrases.end()) continue;
      if (!doc.HasField(pair.source)) continue;

      // If no source key phrase occurs in the document, no synthetics are
      // generated for this pair (Sec. II-C).
      if (CollectSourceMatches(doc, source_it->second).empty()) continue;
      ++local_stats.pairs_with_match;

      int emitted = 0;
      for (const KeyPhrase& target_phrase : target_it->second) {
        obs::CounterAdd("fieldswap.swap.attempted");
        std::optional<Document> synthetic = SwapOnce(
            doc, pair.source, pair.target, target_phrase, phrases, options);
        if (!synthetic.has_value()) {
          ++local_stats.discarded_unchanged;
          obs::CounterAdd("fieldswap.swap.rejected");
          continue;
        }
        obs::CounterAdd("fieldswap.swap.applied");
        synthetic->set_id(doc.id() + "#swap:" + pair.source + ">" +
                          pair.target + ":" + std::to_string(emitted));
        synthetics.push_back(std::move(*synthetic));
        ++emitted;
        ++local_stats.generated;
      }
    }
  }

  if (options.max_synthetics > 0 &&
      static_cast<int>(synthetics.size()) > options.max_synthetics) {
    Rng rng(options.sample_seed);
    rng.Shuffle(synthetics);
    synthetics.resize(static_cast<size_t>(options.max_synthetics));
  }

  if (stats != nullptr) *stats = local_stats;
  return synthetics;
}

}  // namespace fieldswap
