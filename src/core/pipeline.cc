#include "core/pipeline.h"

#include "util/logging.h"

namespace fieldswap {

AugmentationResult RunFieldSwap(const std::vector<Document>& train_docs,
                                const DomainSpec& spec,
                                const CandidateScoringModel* candidate_model,
                                const FieldSwapPipelineOptions& options) {
  AugmentationResult result;

  if (options.strategy == MappingStrategy::kHumanExpert) {
    HumanExpertConfig expert = MakeHumanExpertConfig(spec);
    result.phrases = std::move(expert.phrases);
    result.pairs = std::move(expert.pairs);
  } else {
    FS_CHECK(candidate_model != nullptr)
        << "automatic strategies need the pre-trained candidate model";
    result.phrases = InferKeyPhrases(*candidate_model, train_docs,
                                     spec.Schema(), options.inference);
    result.pairs =
        BuildFieldPairs(spec.Schema(), options.strategy, result.phrases);
  }

  result.synthetics = GenerateSyntheticDocuments(
      train_docs, result.phrases, result.pairs, options.swap, &result.stats);
  return result;
}

}  // namespace fieldswap
