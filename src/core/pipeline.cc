#include "core/pipeline.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace fieldswap {

AugmentationResult RunFieldSwap(const std::vector<Document>& train_docs,
                                const DomainSpec& spec,
                                const CandidateScoringModel* candidate_model,
                                const FieldSwapPipelineOptions& options) {
  FS_TRACE_SPAN("pipeline.run_fieldswap");
  obs::CounterAdd("fieldswap.pipeline.runs");
  obs::CounterAdd("fieldswap.pipeline.input_docs",
                  static_cast<int64_t>(train_docs.size()));
  AugmentationResult result;

  if (options.strategy == MappingStrategy::kHumanExpert) {
    FS_TRACE_SPAN("pipeline.expert_config");
    HumanExpertConfig expert = MakeHumanExpertConfig(spec);
    result.phrases = std::move(expert.phrases);
    result.pairs = std::move(expert.pairs);
  } else {
    FS_CHECK(candidate_model != nullptr)
        << "automatic strategies need the pre-trained candidate model";
    {
      FS_TRACE_SPAN("pipeline.keyphrase_inference");
      result.phrases = InferKeyPhrases(*candidate_model, train_docs,
                                       spec.Schema(), options.inference);
    }
    {
      FS_TRACE_SPAN("pipeline.pairing");
      result.pairs =
          BuildFieldPairs(spec.Schema(), options.strategy, result.phrases);
    }
  }
  obs::CounterAdd("fieldswap.pipeline.field_pairs",
                  static_cast<int64_t>(result.pairs.size()));

  {
    FS_TRACE_SPAN("pipeline.swap");
    result.synthetics = GenerateSyntheticDocuments(
        train_docs, result.phrases, result.pairs, options.swap, &result.stats);
  }
  obs::CounterAdd("fieldswap.pipeline.synthetic_docs",
                  static_cast<int64_t>(result.synthetics.size()));
  return result;
}

}  // namespace fieldswap
