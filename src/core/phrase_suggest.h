#ifndef FIELDSWAP_CORE_PHRASE_SUGGEST_H_
#define FIELDSWAP_CORE_PHRASE_SUGGEST_H_

#include <string>
#include <vector>

#include "core/key_phrases.h"
#include "doc/schema.h"

namespace fieldswap {

/// Name-derived key phrase suggestion — the paper's future-work question
/// "is it possible to use an LLM instead of a human expert to generate a
/// set of key phrases based on field names or descriptions?" answered with
/// a deterministic generator: it derives candidate phrases purely from the
/// schema (field names and base types), with no access to documents or to
/// the corpus's true vocabularies.
///
/// For "year_to_date.sales_pay" it produces e.g. "Sales Pay", "YTD Sales
/// Pay", "Year to Date Sales Pay"; for "payment_due_date" it produces
/// "Payment Due Date", "Payment Due", "Due Date". Useful as a zero-cost
/// middle ground between fully automatic inference (which cannot discover
/// phrases absent from a small training set) and a human expert.
std::vector<KeyPhrase> SuggestPhrasesFromName(const std::string& field_name,
                                              FieldType type);

/// Builds a full config for all schema fields. Fields whose names carry no
/// phrase-like content (heuristic: *_name / *_address header fields) can be
/// excluded via `exclude`.
KeyPhraseConfig SuggestKeyPhraseConfig(const DomainSchema& schema,
                                       const std::vector<std::string>& exclude = {});

}  // namespace fieldswap

#endif  // FIELDSWAP_CORE_PHRASE_SUGGEST_H_
