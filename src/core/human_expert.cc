#include "core/human_expert.h"

#include "util/strings.h"

namespace fieldswap {

HumanExpertConfig MakeHumanExpertConfig(const DomainSpec& spec) {
  HumanExpertConfig config;

  for (const FieldDef& def : spec.fields) {
    if (def.swap_group.empty() || def.phrases.empty()) continue;
    std::vector<KeyPhrase> phrases;
    for (const std::string& phrase : def.phrases) {
      KeyPhrase kp;
      kp.words = SplitWhitespace(phrase);
      kp.importance = 1.0;  // expert-supplied phrases are trusted
      phrases.push_back(std::move(kp));
    }
    config.phrases[def.spec.name] = std::move(phrases);
  }

  // Type-to-type pairs restricted to the same swap group.
  for (const FieldDef& source : spec.fields) {
    if (source.swap_group.empty() || source.phrases.empty()) continue;
    for (const FieldDef& target : spec.fields) {
      if (target.swap_group.empty() || target.phrases.empty()) continue;
      if (source.spec.type != target.spec.type) continue;
      if (source.swap_group != target.swap_group) continue;
      config.pairs.push_back(FieldPair{source.spec.name, target.spec.name});
    }
  }
  return config;
}

}  // namespace fieldswap
