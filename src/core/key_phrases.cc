#include "core/key_phrases.h"

#include <algorithm>
#include <cmath>

#include "nn/sparsemax.h"
#include "util/logging.h"
#include "util/strings.h"

namespace fieldswap {
namespace {

double Cosine(const float* a, const float* b, int n) {
  double dot = 0, na = 0, nb = 0;
  for (int i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0 || nb <= 0) return 0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

/// Normalized text of a phrase for aggregation keys: lowercase, tokens
/// punctuation-trimmed, space-joined.
std::string NormalizePhrase(const std::vector<std::string>& words) {
  std::vector<std::string> cleaned;
  for (const std::string& w : words) {
    std::string_view core = TrimPunctuation(w);
    if (!core.empty()) cleaned.push_back(ToLower(core));
  }
  return JoinStrings(cleaned, " ");
}

/// Display words of a phrase: per-token punctuation-trimmed.
std::vector<std::string> CleanWords(const std::vector<std::string>& words) {
  std::vector<std::string> cleaned;
  for (const std::string& w : words) {
    std::string_view core = TrimPunctuation(w);
    if (!core.empty()) cleaned.emplace_back(core);
  }
  return cleaned;
}

bool TokenInAnyAnnotation(const Document& doc, int token_index) {
  for (const EntitySpan& span : doc.annotations()) {
    if (span.Covers(token_index)) return true;
  }
  return false;
}

}  // namespace

std::string KeyPhrase::Text() const { return JoinStrings(words, " "); }

std::vector<TokenImportance> ImportantTokens(
    const CandidateScoringModel& model, const Document& doc,
    const Candidate& candidate, double sparsemax_scale) {
  CandidateEncoding encoding = model.Encode(doc, candidate);
  const int t = static_cast<int>(encoding.neighbor_ids.size());
  const int d = encoding.neighborhood.cols();

  std::vector<double> cosines(static_cast<size_t>(t));
  for (int i = 0; i < t; ++i) {
    cosines[static_cast<size_t>(i)] = Cosine(
        encoding.neighborhood.Row(0), encoding.neighbor_encodings.Row(i), d);
  }
  std::vector<double> scores = Sparsemax(cosines, sparsemax_scale);

  std::vector<TokenImportance> important;
  for (int i = 0; i < t; ++i) {
    if (scores[static_cast<size_t>(i)] > 0) {
      important.push_back(TokenImportance{
          encoding.neighbor_ids[static_cast<size_t>(i)],
          scores[static_cast<size_t>(i)]});
    }
  }
  return important;
}

KeyPhraseConfig InferKeyPhrases(const CandidateScoringModel& model,
                                const std::vector<Document>& train_docs,
                                const DomainSchema& schema,
                                const KeyPhraseInferenceOptions& options) {
  // Aggregation state per (field, normalized phrase).
  struct Aggregate {
    std::vector<std::string> display_words;
    double log_one_minus_sum = 0;  // sum_i log(1 - Score_i)
  };
  std::map<std::string, std::map<std::string, Aggregate>> per_field;

  for (const Document& doc : train_docs) {
    for (const EntitySpan& span : doc.annotations()) {
      if (!schema.Has(span.field)) continue;
      Candidate candidate =
          CandidateFromSpan(span, schema.TypeOf(span.field));
      std::vector<TokenImportance> important = ImportantTokens(
          model, doc, candidate, options.sparsemax_scale);
      if (important.empty()) continue;

      // Token index -> importance score for quick lookup.
      std::map<int, double> score_of;
      for (const TokenImportance& ti : important) {
        score_of[ti.token_index] = ti.score;
      }

      // Expand each important token to its OCR line (Sec. II-A3); a line
      // yields one phrase per example, built from the line tokens that are
      // not part of any field's ground truth (Sec. II-A5).
      std::vector<int> seen_lines;
      for (const TokenImportance& ti : important) {
        int line_id = doc.token(ti.token_index).line;
        if (line_id < 0) continue;
        if (std::find(seen_lines.begin(), seen_lines.end(), line_id) !=
            seen_lines.end()) {
          continue;
        }
        seen_lines.push_back(line_id);
        if (TokenInAnyAnnotation(doc, ti.token_index)) continue;

        const Line& line = doc.lines()[static_cast<size_t>(line_id)];
        std::vector<std::string> words;
        double score_sum = 0;
        int token_count = 0;
        for (int token_index : line.token_indices) {
          if (TokenInAnyAnnotation(doc, token_index)) continue;
          words.push_back(doc.token(token_index).text);
          auto it = score_of.find(token_index);
          if (it != score_of.end()) score_sum += it->second;
          ++token_count;
        }
        if (token_count == 0) continue;
        std::string key = NormalizePhrase(words);
        if (key.empty()) continue;
        // Phrase importance score: average token importance within the
        // phrase (tokens without a score contribute zero).
        double phrase_score = score_sum / static_cast<double>(token_count);
        phrase_score = std::min(phrase_score, 0.999);
        if (phrase_score <= 0) continue;

        Aggregate& agg = per_field[span.field][key];
        if (agg.display_words.empty()) agg.display_words = CleanWords(words);
        agg.log_one_minus_sum += std::log(1.0 - phrase_score);
      }
    }
  }

  // Rank by Importance(F, P) = 1 - exp(sum log(1 - score)), apply the
  // threshold, keep top k.
  KeyPhraseConfig config;
  for (auto& [field, phrases] : per_field) {
    std::vector<KeyPhrase> ranked;
    for (auto& [key, agg] : phrases) {
      KeyPhrase phrase;
      phrase.words = agg.display_words;
      phrase.importance = 1.0 - std::exp(agg.log_one_minus_sum);
      if (phrase.importance >= options.threshold) {
        ranked.push_back(std::move(phrase));
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const KeyPhrase& a, const KeyPhrase& b) {
                return a.importance > b.importance;
              });
    if (static_cast<int>(ranked.size()) > options.top_k) {
      ranked.resize(static_cast<size_t>(options.top_k));
    }
    if (!ranked.empty()) config[field] = std::move(ranked);
  }
  return config;
}

}  // namespace fieldswap
