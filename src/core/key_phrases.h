#ifndef FIELDSWAP_CORE_KEY_PHRASES_H_
#define FIELDSWAP_CORE_KEY_PHRASES_H_

#include <map>
#include <string>
#include <vector>

#include "doc/document.h"
#include "doc/schema.h"
#include "model/candidate_model.h"

namespace fieldswap {

/// A key phrase for a field: its words (display form) and the aggregated
/// importance from Eq. (1) of the paper.
struct KeyPhrase {
  std::vector<std::string> words;
  double importance = 0;

  std::string Text() const;
};

/// Per-field ranked key phrases — input (1) of FieldSwap (Sec. II).
using KeyPhraseConfig = std::map<std::string, std::vector<KeyPhrase>>;

/// Hyperparameters of automatic key phrase inference (Sec. II-A, IV-B).
struct KeyPhraseInferenceOptions {
  /// Keep the top k phrases per field (paper: 3).
  int top_k = 3;
  /// Drop phrases whose aggregated importance is below this (paper: 0.2).
  double threshold = 0.2;
  /// Sharpness multiplier applied before Sparsemax over cosine scores.
  double sparsemax_scale = 8.0;
};

/// One neighbor's importance to a labeled example.
struct TokenImportance {
  int token_index = 0;
  double score = 0;  // post-Sparsemax, in [0, 1]
};

/// Importance scores of a labeled example's neighbors: cosine similarity
/// between the model's Neighborhood Encoding and each per-neighbor
/// encoding, sparsified with Sparsemax. Only entries with non-zero score
/// (the "important tokens") are returned.
std::vector<TokenImportance> ImportantTokens(
    const CandidateScoringModel& model, const Document& doc,
    const Candidate& candidate, double sparsemax_scale);

/// Automatic key phrase inference over a labeled training set (Fig. 3 step
/// 1): per labeled example, find important tokens with the out-of-domain
/// candidate model, expand them to OCR-line phrases, exclude tokens that
/// belong to any field's ground truth, then aggregate per (field, phrase)
/// with Importance(F,P) = 1 - exp(sum_i log(1 - Score(F,P,C_i))) and keep
/// the top-k phrases above the threshold.
KeyPhraseConfig InferKeyPhrases(const CandidateScoringModel& model,
                                const std::vector<Document>& train_docs,
                                const DomainSchema& schema,
                                const KeyPhraseInferenceOptions& options);

}  // namespace fieldswap

#endif  // FIELDSWAP_CORE_KEY_PHRASES_H_
