#include "core/field_pairs.h"

#include "util/logging.h"

namespace fieldswap {

std::string_view MappingStrategyName(MappingStrategy strategy) {
  switch (strategy) {
    case MappingStrategy::kFieldToField:
      return "field-to-field";
    case MappingStrategy::kTypeToType:
      return "type-to-type";
    case MappingStrategy::kAllToAll:
      return "all-to-all";
    case MappingStrategy::kHumanExpert:
      return "human expert";
  }
  return "unknown";
}

std::vector<FieldPair> BuildFieldPairs(const DomainSchema& schema,
                                       MappingStrategy strategy,
                                       const KeyPhraseConfig& phrases) {
  FS_CHECK(strategy != MappingStrategy::kHumanExpert)
      << "use MakeHumanExpertConfig for the human expert strategy";

  auto has_phrases = [&](const std::string& field) {
    auto it = phrases.find(field);
    return it != phrases.end() && !it->second.empty();
  };

  std::vector<FieldPair> pairs;
  for (const FieldSpec& source : schema.fields()) {
    if (!has_phrases(source.name)) continue;
    switch (strategy) {
      case MappingStrategy::kFieldToField:
        pairs.push_back(FieldPair{source.name, source.name});
        break;
      case MappingStrategy::kTypeToType:
        for (const FieldSpec& target : schema.fields()) {
          if (target.type == source.type && has_phrases(target.name)) {
            pairs.push_back(FieldPair{source.name, target.name});
          }
        }
        break;
      case MappingStrategy::kAllToAll:
        for (const FieldSpec& target : schema.fields()) {
          if (has_phrases(target.name)) {
            pairs.push_back(FieldPair{source.name, target.name});
          }
        }
        break;
      case MappingStrategy::kHumanExpert:
        break;
    }
  }
  return pairs;
}

}  // namespace fieldswap
