#ifndef FIELDSWAP_CORE_SWAP_H_
#define FIELDSWAP_CORE_SWAP_H_

#include <cstdint>
#include <vector>

#include "core/field_pairs.h"
#include "core/key_phrases.h"
#include "doc/document.h"

namespace fieldswap {

/// Knobs of synthetic-document generation (Sec. II-C). The defaults match
/// the paper's simple implementation; the ablation flags let benches test
/// the design choices it discusses.
struct FieldSwapOptions {
  /// Discard a synthetic whose token texts are identical to the original
  /// (the paper's protection against same-key-phrase contradictions).
  bool discard_unchanged = true;

  /// Consistency filter (an extension past the paper's simplest
  /// implementation, which it poses as an open question in Sec. II-C):
  /// when a replaced key phrase also served another field F (e.g. the
  /// year_to_date sibling of a swapped current.* row, which shares the row
  /// label), drop F's now-contradictory annotations from the synthetic —
  /// unless the new phrase is also a valid key phrase of F (field-to-field
  /// variant swaps stay fully labeled). Without this filter every table
  /// swap emits one systematically mislabeled sibling span; small
  /// from-scratch backbones (unlike the paper's 30k-doc-pretrained model)
  /// are measurably hurt by that noise. Benchmarked in ablation_knobs.
  bool drop_affected_fields = true;

  /// If > 0, deterministically subsample the generated synthetics down to
  /// this many documents (wall-clock control for training; counting
  /// benches leave it 0 = unlimited).
  int max_synthetics = 0;
  uint64_t sample_seed = 23;
};

/// Counters describing one augmentation run (feeds Table III).
struct SwapStats {
  int64_t generated = 0;
  int64_t discarded_unchanged = 0;
  int64_t pairs_with_match = 0;
};

/// All matches of any source key phrase in `doc`, returned in token order.
/// Overlapping matches resolve longest-match-wins ("Base Salary" beats
/// "Base"; equal lengths tie-break on the earlier start), and matches that
/// overlap an annotated value span are excluded (key phrases are labels;
/// values are never replaced).
std::vector<PhraseMatch> CollectSourceMatches(
    const Document& doc, const std::vector<KeyPhrase>& source_phrases);

/// Generates one synthetic document: replaces every occurrence of any key
/// phrase of `source_field` (per `phrases`) in `doc` with `target_phrase`,
/// and relabels all instances of `source_field` as `target_field`. Returns
/// std::nullopt if no phrase matched, or if the result is textually
/// identical to the original and `discard_unchanged` is set.
std::optional<Document> SwapOnce(const Document& doc,
                                 const std::string& source_field,
                                 const std::string& target_field,
                                 const KeyPhrase& target_phrase,
                                 const KeyPhraseConfig& phrases,
                                 const FieldSwapOptions& options);

/// Full FieldSwap generation (Fig. 3 step 2): for every training document
/// and every source-to-target pair whose source field is present with a
/// matching key phrase, emit one synthetic document per target key phrase.
std::vector<Document> GenerateSyntheticDocuments(
    const std::vector<Document>& train_docs, const KeyPhraseConfig& phrases,
    const std::vector<FieldPair>& pairs, const FieldSwapOptions& options,
    SwapStats* stats = nullptr);

}  // namespace fieldswap

#endif  // FIELDSWAP_CORE_SWAP_H_
