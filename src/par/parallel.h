#ifndef FIELDSWAP_PAR_PARALLEL_H_
#define FIELDSWAP_PAR_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace fieldswap {
namespace par {

/// Deterministic parallel execution layer.
///
/// Determinism contract: every task is a pure function of its index — it
/// reads shared immutable inputs, draws randomness only from an Rng that
/// was `Split` off the parent stream *before* the parallel region (keyed by
/// the task index), and writes only to its own output slot. Under that
/// contract `ParallelFor`/`ParallelMap` produce bit-identical results for
/// any thread count, including the serial `threads=1` fallback, so
/// `FIELDSWAP_THREADS=1` and `FIELDSWAP_THREADS=4` runs of the same seed
/// generate identical corpora and identical trained models.
///
/// Thread count resolution (first match wins):
///   1. `SetThreads(n)` — programmatic override, used by tests and benches.
///   2. `FIELDSWAP_THREADS` env var (read once, at first use).
///   3. 1 when built with -DFIELDSWAP_SANITIZE (serial fallback keeps
///      sanitizer reports focused on intentionally-concurrent tests).
///   4. std::thread::hardware_concurrency().

/// Effective worker count (>= 1).
int Threads();

/// Overrides the worker count (clamped to >= 1) and resizes the shared
/// pool. Not safe to call concurrently with running parallel regions.
void SetThreads(int n);

/// True while the calling thread is executing a pool task. Nested parallel
/// regions detect this and degrade to the serial path (the outer region
/// already owns the workers; blocking a worker on an inner region would
/// deadlock the pool).
bool InParallelRegion();

/// Runs fn(i) for every i in [0, n) and blocks until all calls finished.
/// Serial (and loop-ordered) when Threads() == 1, n <= 1, or called from
/// inside another parallel region. The first exception thrown by a task is
/// rethrown on the calling thread after the region drains.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

/// Ordering-preserving map: returns {fn(0), fn(1), ..., fn(n-1)} with each
/// call placed at its own index, regardless of completion order.
/// R must be default-constructible.
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn) -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> results(n);
  ParallelFor(n, [&](size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace par
}  // namespace fieldswap

#endif  // FIELDSWAP_PAR_PARALLEL_H_
