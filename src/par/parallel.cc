#include "par/parallel.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "par/lock_validator.h"
#include "util/strings.h"
#include "util/thread_annotations.h"

namespace fieldswap {
namespace par {
namespace {

thread_local bool t_in_region = false;

/// Times one task and feeds the fieldswap.par.* instrumentation. Shared by
/// the serial fallback and the pool workers so both paths are observable.
void RunOneTask(const std::function<void(size_t)>& fn, size_t i) {
  auto start = std::chrono::steady_clock::now();
  fn(i);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  obs::HistogramObserve("fieldswap.par.task_ms", ms);
}

/// One indexed batch of tasks. Each Run call gets its own Batch held by
/// shared_ptr: a worker that wakes late (or lingers after the batch is
/// drained) only ever touches the batch it captured, whose claim counter
/// is already exhausted — it can never claim indices of a newer batch or
/// run a function whose captures have been destroyed.
struct Batch {
  std::function<void(size_t)> fn;
  size_t n = 0;
  std::atomic<size_t> next_index{0};
  std::atomic<size_t> tasks_completed{0};
  // Guarded by the owning pool's mu_ (the annotation names it by base).
  std::exception_ptr first_error FS_GUARDED_BY(mu_);
};

/// Fixed-size pool of worker threads executing one indexed batch at a
/// time. The thread that calls Run participates as an extra worker, so a
/// pool built for `threads` uses `threads - 1` dedicated workers. Indices
/// are claimed dynamically (atomic counter); determinism comes from tasks
/// writing only to their own output slot, not from scheduling order.
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers) {
    workers_.reserve(static_cast<size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<util::OrderedMutex> lock(mu_);
      shutdown_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, n) across the workers plus the calling
  /// thread; blocks until every task completed. One batch at a time.
  void Run(size_t n, const std::function<void(size_t)>& fn) {
    std::lock_guard<util::OrderedMutex> run_lock(run_mu_);
    auto batch = std::make_shared<Batch>();
    batch->fn = fn;  // batch-owned copy: workers never see a dangling ref
    batch->n = n;
    {
      std::lock_guard<util::OrderedMutex> lock(mu_);
      current_batch_ = batch;
      ++generation_;
    }
    job_cv_.notify_all();
    DrainTasks(*batch);
    std::exception_ptr error;
    {
      std::unique_lock<util::OrderedMutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return batch->tasks_completed.load(std::memory_order_acquire) == n;
      });
      error = std::exchange(batch->first_error, nullptr);
      current_batch_.reset();
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<util::OrderedMutex> lock(mu_);
        job_cv_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        batch = current_batch_;
      }
      if (batch != nullptr) DrainTasks(*batch);
    }
  }

  /// Claims and runs indices until the batch is exhausted. Marks the thread
  /// as inside a parallel region so nested ParallelFor degrades to serial
  /// instead of deadlocking the pool.
  void DrainTasks(Batch& batch) {
    bool was_in_region = std::exchange(t_in_region, true);
    for (;;) {
      size_t i = batch.next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.n) break;
      try {
        RunOneTask(batch.fn, i);
      } catch (...) {
        std::lock_guard<util::OrderedMutex> lock(mu_);
        if (!batch.first_error) batch.first_error = std::current_exception();
      }
      if (batch.tasks_completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          batch.n) {
        std::lock_guard<util::OrderedMutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
    t_in_region = was_in_region;
  }

  // Serializes concurrent external Run calls; always acquired before mu_
  // (tools/lock_order.txt: ThreadPool::run_mu_ -> ThreadPool::mu_).
  util::OrderedMutex run_mu_{"ThreadPool::run_mu_"};

  util::OrderedMutex mu_{"ThreadPool::mu_"};
  std::condition_variable_any job_cv_;
  std::condition_variable_any done_cv_;
  bool shutdown_ FS_GUARDED_BY(mu_) = false;
  uint64_t generation_ FS_GUARDED_BY(mu_) = 0;
  std::shared_ptr<Batch> current_batch_ FS_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
};

int& ThreadOverride() {
  static int override_threads = 0;  // 0 = unset
  return override_threads;
}

int EnvThreads() {
  static int env_threads = [] {
    const char* value = std::getenv("FIELDSWAP_THREADS");
    if (value == nullptr || *value == '\0') return 0;
    int parsed = ParseInt(value, 0);
    return parsed > 0 ? parsed : 0;
  }();
  return env_threads;
}

int DefaultThreads() {
#ifdef FIELDSWAP_SANITIZE_BUILD
  // Serial fallback under sanitizers: keeps reports focused on the tests
  // that exercise concurrency on purpose. FIELDSWAP_THREADS still wins.
  return 1;
#else
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
#endif
}

util::OrderedMutex& PoolMutex() {
  static util::OrderedMutex mu{"parallel::PoolMutex()"};
  return mu;
}

/// Shared pool, lazily created and resized when the thread count changes.
ThreadPool& PoolFor(int threads) {
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard<util::OrderedMutex> lock(PoolMutex());
  if (pool == nullptr || pool->num_workers() != threads - 1) {
    pool.reset();  // join old workers before spawning the new set
    pool = std::make_unique<ThreadPool>(threads - 1);
  }
  return *pool;
}

}  // namespace

int Threads() {
  if (ThreadOverride() > 0) return ThreadOverride();
  if (EnvThreads() > 0) return EnvThreads();
  return DefaultThreads();
}

void SetThreads(int n) { ThreadOverride() = n < 1 ? 1 : n; }

bool InParallelRegion() { return t_in_region; }

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const int threads = Threads();
  obs::GaugeSet("fieldswap.par.pool_size", threads);
  obs::CounterAdd("fieldswap.par.tasks", static_cast<int64_t>(n));
  if (threads <= 1 || n <= 1 || t_in_region) {
    obs::CounterAdd("fieldswap.par.serial_batches");
    bool was_in_region = std::exchange(t_in_region, true);
    for (size_t i = 0; i < n; ++i) RunOneTask(fn, i);
    t_in_region = was_in_region;
    return;
  }
  obs::CounterAdd("fieldswap.par.batches");
  PoolFor(threads).Run(n, fn);
}

}  // namespace par
}  // namespace fieldswap
