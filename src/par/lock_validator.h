#ifndef FIELDSWAP_PAR_LOCK_VALIDATOR_H_
#define FIELDSWAP_PAR_LOCK_VALIDATOR_H_

#include <mutex>
#include <string>

namespace fieldswap {
namespace par {

/// Runtime lock-order validator: the dynamic half of the concurrency story
/// (fslint's `lock-order` rule is the static half; DESIGN.md "Concurrency
/// analysis"). Each thread keeps a stack of the named locks it holds;
/// every acquisition records a `held -> acquired` edge in a global graph.
/// Acquiring A while the graph already shows a path A ->* H for some held
/// lock H is an executed acquisition-order inversion: the validator fails
/// with a message naming BOTH chains — the one running now and the one
/// recorded earlier — before any actual deadlock can bite in production.
///
/// Disabled by default (the fast path is one relaxed atomic load). Enable
/// with the environment variable `FS_VALIDATE_LOCKS=1` (read once) or
/// SetEnabledForTesting. check_sanitizers.sh runs the test suite with it
/// on, so CI executes every acquisition order under validation.
class LockValidator {
 public:
  /// True when validation is active (env FS_VALIDATE_LOCKS=1 or a test
  /// override).
  static bool Enabled();

  /// Forces validation on/off, overriding the environment. For tests.
  static void SetEnabledForTesting(bool enabled);

  /// Drops the SetEnabledForTesting override so Enabled() follows the
  /// environment again. Tests call this in teardown rather than forcing
  /// `false`, so a FS_VALIDATE_LOCKS=1 ctest run keeps validating the
  /// suites that come after them.
  static void ClearEnabledOverrideForTesting();

  /// Called on an inversion with a message naming both conflicting
  /// acquisition chains. The default handler prints to stderr and aborts.
  /// Tests install their own to capture the message. Returns the previous
  /// handler.
  using FailureHandler = void (*)(const std::string& message);
  static FailureHandler SetFailureHandler(FailureHandler handler);

  /// Records that the calling thread is acquiring `mutex` (known as
  /// `name`), validating the order against the global graph first.
  static void OnAcquire(const void* mutex, const char* name);

  /// Records that the calling thread released `mutex`.
  static void OnRelease(const void* mutex);

  /// Forgets every recorded edge (not the per-thread held stacks). For
  /// tests that exercise conflicting orders back to back.
  static void ResetForTesting();
};

}  // namespace par

namespace util {

/// A named std::mutex that reports acquisitions to par::LockValidator.
/// Drop-in BasicLockable/Lockable replacement for std::mutex in the
/// annotated serving tree — pair it with std::condition_variable_any
/// (std::condition_variable only accepts std::mutex).
///
/// Declared here rather than in src/util because the layering DAG
/// (tools/layers.txt) makes util a leaf: util must not include par, while
/// serve — the layer that instantiates these — may. The class lives in
/// namespace util because it is vocabulary, not parallel machinery.
class OrderedMutex {
 public:
  /// `name` must outlive the mutex and should be globally unique; the
  /// convention is the qualified member name ("ExtractionServer::mu_"),
  /// matching the identifiers in tools/lock_order.txt.
  explicit OrderedMutex(const char* name) : name_(name) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() {
    // Validate before blocking: the inversion report must come from the
    // thread that would deadlock, while it can still report anything.
    par::LockValidator::OnAcquire(this, name_);
    mu_.lock();
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    par::LockValidator::OnAcquire(this, name_);
    return true;
  }

  void unlock() {
    mu_.unlock();
    par::LockValidator::OnRelease(this);
  }

  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const char* name_;
};

}  // namespace util
}  // namespace fieldswap

#endif  // FIELDSWAP_PAR_LOCK_VALIDATOR_H_
