#include "par/lock_validator.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace fieldswap {
namespace par {
namespace {

/// One lock the calling thread currently holds.
struct HeldLock {
  const void* mutex;
  const char* name;
};

thread_local std::vector<HeldLock> t_held;

/// A directed acquisition-order edge with the chain that first produced
/// it, e.g. "ExtractionServer::mu_ -> ModelCache::mu_ (thread held
/// ExtractionServer::mu_, then acquired ModelCache::mu_)".
struct EdgeWitness {
  std::string chain;
};

/// Global acquisition graph. g_graph_mu guards g_edges; it is a plain
/// std::mutex (never an OrderedMutex — the validator cannot validate
/// itself without recursing).
std::mutex g_graph_mu;
std::map<std::pair<std::string, std::string>, EdgeWitness> g_edges;

void DefaultFailureHandler(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  std::abort();
}

std::atomic<LockValidator::FailureHandler> g_failure_handler{
    &DefaultFailureHandler};

// -1 = follow the environment, 0 = forced off, 1 = forced on.
std::atomic<int> g_enabled_override{-1};

bool EnvEnabled() {
  static const bool enabled = [] {
    const char* value = std::getenv("FS_VALIDATE_LOCKS");
    return value != nullptr && value[0] == '1';
  }();
  return enabled;
}

/// True when `from` can reach `to` in g_edges. Caller holds g_graph_mu.
/// Appends the path's witness chains (one per edge) to `chains`.
bool FindPathLocked(const std::string& from, const std::string& to,
                    std::vector<std::string>* chains) {
  if (from == to) return true;
  for (const auto& [edge, witness] : g_edges) {
    if (edge.first != from) continue;
    chains->push_back(witness.chain);
    if (FindPathLocked(edge.second, to, chains)) return true;
    chains->pop_back();
  }
  return false;
}

std::string HeldChainString(const char* acquiring) {
  std::ostringstream out;
  out << "held ";
  for (size_t i = 0; i < t_held.size(); ++i) {
    if (i > 0) out << " -> ";
    out << "'" << t_held[i].name << "'";
  }
  out << ", acquiring '" << acquiring << "'";
  return out.str();
}

}  // namespace

bool LockValidator::Enabled() {
  int forced = g_enabled_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return EnvEnabled();
}

void LockValidator::SetEnabledForTesting(bool enabled) {
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void LockValidator::ClearEnabledOverrideForTesting() {
  g_enabled_override.store(-1, std::memory_order_relaxed);
}

LockValidator::FailureHandler LockValidator::SetFailureHandler(
    FailureHandler handler) {
  if (handler == nullptr) handler = &DefaultFailureHandler;
  return g_failure_handler.exchange(handler);
}

void LockValidator::OnAcquire(const void* mutex, const char* name) {
  if (!Enabled()) return;
  std::string failure;
  {
    std::lock_guard<std::mutex> graph_lock(g_graph_mu);
    // A recursive-acquisition attempt of the same named lock is its own
    // inversion (self-deadlock for a non-recursive mutex).
    for (const HeldLock& held : t_held) {
      if (held.mutex == mutex) {
        failure = "lock-order violation: recursive acquisition of '" +
                  std::string(name) + "' (" + HeldChainString(name) + ")";
        break;
      }
    }
    for (const HeldLock& held : t_held) {
      if (!failure.empty()) break;
      // Acquiring `name` while holding `held` requires the order
      // held -> name; a recorded path name ->* held means some other
      // execution used the opposite order.
      std::vector<std::string> reverse_chains;
      if (FindPathLocked(name, held.name, &reverse_chains)) {
        std::ostringstream out;
        out << "lock-order violation: this thread " << HeldChainString(name)
            << "; conflicting order previously recorded: ";
        for (size_t i = 0; i < reverse_chains.size(); ++i) {
          if (i > 0) out << "; ";
          out << reverse_chains[i];
        }
        out << " — see tools/lock_order.txt for the canonical order";
        failure = out.str();
        break;
      }
    }
    if (failure.empty()) {
      for (const HeldLock& held : t_held) {
        auto key = std::make_pair(std::string(held.name), std::string(name));
        if (g_edges.find(key) == g_edges.end()) {
          g_edges.emplace(std::move(key),
                          EdgeWitness{HeldChainString(name)});
          obs::CounterAdd("fieldswap.par.lockval.edges");
        }
      }
    }
  }
  if (!failure.empty()) {
    obs::CounterAdd("fieldswap.par.lockval.violations");
    g_failure_handler.load()(failure);
    return;  // a test handler may not abort; do not record the bad edge
  }
  t_held.push_back(HeldLock{mutex, name});
}

void LockValidator::OnRelease(const void* mutex) {
  if (!Enabled()) return;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mutex) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void LockValidator::ResetForTesting() {
  std::lock_guard<std::mutex> graph_lock(g_graph_mu);
  g_edges.clear();
}

}  // namespace par
}  // namespace fieldswap
