// Corpus export / import and offline augmentation: generates a corpus,
// writes it to JSONL, reloads it, augments it with FieldSwap, and writes
// originals + synthetics back out — the workflow a downstream training
// pipeline would use to consume this library's output from another stack.
//
//   $ ./build/examples/export_and_augment [domain] [count] [out_dir]
//   e.g. ./build/examples/export_and_augment earnings 25 /tmp

#include <cstdlib>
#include <iostream>

#include "api/fieldswap_api.h"
#include "util/argparse.h"
#include "util/strings.h"

using namespace fieldswap;

int main(int argc, char** argv) {
  util::ArgParser args(
      "export_and_augment",
      "Generates a corpus, round-trips it through JSONL, augments it with "
      "FieldSwap, and writes originals + synthetics back out.");
  std::string domain, count_text, out_dir;
  args.AddPositional("domain", "earnings", "synthetic domain", &domain);
  args.AddPositional("count", "25", "documents to generate", &count_text);
  args.AddPositional("out_dir", ".", "output directory", &out_dir);
  if (!args.Parse(argc, argv)) return args.help_requested() ? 0 : 2;
  int count = ParseInt(count_text.c_str(), 25);

  DomainSpec spec = SpecByName(domain);
  auto docs = GenerateCorpus(spec, count, /*seed=*/20240704, domain);

  std::string original_path = out_dir + "/" + domain + "_train.jsonl";
  if (!SaveCorpusJsonl(original_path, docs)) {
    std::cerr << "failed to write " << original_path << "\n";
    return 1;
  }
  std::cout << "Wrote " << docs.size() << " documents to " << original_path
            << "\n";

  // Round-trip through disk, as an external pipeline would.
  auto loaded = LoadCorpusJsonl(original_path);
  if (!loaded.has_value()) {
    std::cerr << "failed to re-read " << original_path << "\n";
    return 1;
  }

  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  options.swap.max_synthetics = 500;
  AugmentationResult result = RunFieldSwap(*loaded, spec, nullptr, options);

  std::vector<Document> augmented = *loaded;
  for (Document& synthetic : result.synthetics) {
    augmented.push_back(std::move(synthetic));
  }
  std::string augmented_path = out_dir + "/" + domain + "_augmented.jsonl";
  if (!SaveCorpusJsonl(augmented_path, augmented)) {
    std::cerr << "failed to write " << augmented_path << "\n";
    return 1;
  }
  std::cout << "FieldSwap generated " << result.stats.generated
            << " synthetics (" << result.stats.discarded_unchanged
            << " discarded); wrote " << augmented.size() << " documents to "
            << augmented_path << "\n"
            << "Train your extractor on the augmented file; every line is "
               "one JSON document with tokens, boxes, lines, and labels.\n";
  return 0;
}
