// Corpus export / import and offline augmentation: streams a generated
// corpus to disk through a format driver, reopens it via auto-
// identification, augments it with FieldSwap, and streams originals +
// synthetics back out — the workflow a downstream training pipeline would
// use to consume this library's output from another stack.
//
//   $ ./build/examples/export_and_augment [domain] [count] [out_dir] [format]
//   e.g. ./build/examples/export_and_augment earnings 25 /tmp native

#include <cstdlib>
#include <iostream>
#include <memory>

#include "api/fieldswap_api.h"
#include "util/argparse.h"
#include "util/strings.h"

using namespace fieldswap;

int main(int argc, char** argv) {
  util::ArgParser args(
      "export_and_augment",
      "Generates a corpus, round-trips it through a corpus format driver, "
      "augments it with FieldSwap, and writes originals + synthetics back "
      "out.");
  std::string domain, count_text, out_dir, format;
  args.AddPositional("domain", "earnings", "synthetic domain", &domain);
  args.AddPositional("count", "25", "documents to generate", &count_text);
  args.AddPositional("out_dir", ".", "output directory", &out_dir);
  args.AddPositional("format", "jsonl",
                     "output corpus format (jsonl or native)", &format);
  if (!args.Parse(argc, argv)) return args.help_requested() ? 0 : 2;
  int count = ParseInt(count_text.c_str(), 25);

  DomainSpec spec = SpecByName(domain);
  const std::string extension = format == "native" ? ".fsc" : ".jsonl";

  // Stream generator -> writer: no corpus vector exists at any point.
  std::string original_path = out_dir + "/" + domain + "_train" + extension;
  doc::CorpusStatus status;
  std::unique_ptr<doc::CorpusReader> generated =
      api::GenerateCorpusStream(domain, count, /*seed=*/20240704, domain);
  std::unique_ptr<doc::CorpusWriter> writer =
      api::WriteCorpus(original_path, format, &status);
  if (writer == nullptr) {
    std::cerr << "failed to open " << original_path << " for writing: "
              << status.ToString() << "\n";
    return 1;
  }
  doc::ForEachDocument(*generated,
                       [&](const Document& doc, size_t) { writer->Add(doc); });
  if (!writer->Finish()) {
    std::cerr << "failed to write " << original_path << ": "
              << writer->status().ToString() << "\n";
    return 1;
  }
  std::cout << "Wrote " << writer->docs_written() << " documents to "
            << original_path << " (" << writer->format() << ")\n";

  // Round-trip through disk, as an external pipeline would; the registry
  // identifies the format from the file itself.
  std::unique_ptr<doc::CorpusReader> loaded =
      api::OpenCorpus(original_path, "", &status);
  if (loaded == nullptr) {
    std::cerr << "failed to re-read " << original_path << ": "
              << status.ToString() << "\n";
    return 1;
  }

  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  options.swap.max_synthetics = 500;
  AugmentationResult result = api::Augment(*loaded, spec, options);

  std::string augmented_path =
      out_dir + "/" + domain + "_augmented" + extension;
  std::unique_ptr<doc::CorpusWriter> augmented_writer =
      api::WriteCorpus(augmented_path, format, &status);
  if (augmented_writer == nullptr) {
    std::cerr << "failed to open " << augmented_path << " for writing: "
              << status.ToString() << "\n";
    return 1;
  }
  doc::ForEachDocument(*loaded, [&](const Document& doc, size_t) {
    augmented_writer->Add(doc);
  });
  for (const Document& synthetic : result.synthetics) {
    augmented_writer->Add(synthetic);
  }
  if (!augmented_writer->Finish()) {
    std::cerr << "failed to write " << augmented_path << ": "
              << augmented_writer->status().ToString() << "\n";
    return 1;
  }
  std::cout << "FieldSwap generated " << result.stats.generated
            << " synthetics (" << result.stats.discarded_unchanged
            << " discarded); wrote " << augmented_writer->docs_written()
            << " documents to " << augmented_path << "\n"
            << "Train your extractor on the augmented file; each record is "
               "one document with tokens, boxes, lines, and labels.\n";
  return 0;
}
