// Prints a stable FNV-1a checksum of a seeded generated corpus for every
// evaluation domain. tools/check_determinism.sh runs this binary under
// different FIELDSWAP_THREADS values and diffs the output: any drift means
// the parallel layer broke the bit-identical determinism contract.
//
//   $ ./build/examples/corpus_checksum
//   $ FIELDSWAP_THREADS=4 ./build/examples/corpus_checksum
//
// Output is one `<name> <hex checksum>` line per corpus and a final
// `all <hex>` line combining them, so a plain `diff` of two runs pinpoints
// which corpus diverged.

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "api/fieldswap_api.h"

using fieldswap::AllEvalDomains;
using fieldswap::DomainSpec;
namespace api = fieldswap::api;
namespace doc = fieldswap::doc;

namespace {

std::string Hex(uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

}  // namespace

int main() {
  // stderr, so stdout is identical across thread counts and diffs clean
  std::cerr << "threads " << fieldswap::par::Threads() << "\n";
  uint64_t combined = 0xcbf29ce484222325ULL;
  for (const DomainSpec& spec : AllEvalDomains()) {
    // Streamed: documents materialize per block inside CorpusChecksum and
    // are dropped immediately — the fold matches the historical
    // vector-based loop byte for byte.
    std::unique_ptr<doc::CorpusReader> reader =
        api::GenerateCorpusStream(spec.name, 25, 4242, "chk");
    uint64_t checksum = doc::CorpusChecksum(*reader);
    combined = combined * 31 + checksum;
    std::cout << spec.name << " " << Hex(checksum) << "\n";
  }
  std::cout << "all " << Hex(combined) << "\n";
  return 0;
}
