// Prints a stable FNV-1a checksum of a seeded generated corpus for every
// evaluation domain. tools/check_determinism.sh runs this binary under
// different FIELDSWAP_THREADS values and diffs the output: any drift means
// the parallel layer broke the bit-identical determinism contract.
//
//   $ ./build/examples/corpus_checksum
//   $ FIELDSWAP_THREADS=4 ./build/examples/corpus_checksum
//
// Output is one `<name> <hex checksum>` line per corpus and a final
// `all <hex>` line combining them, so a plain `diff` of two runs pinpoints
// which corpus diverged.

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "api/fieldswap_api.h"
#include "util/hash.h"

using fieldswap::AllEvalDomains;
using fieldswap::Document;
using fieldswap::DocumentToJson;
using fieldswap::DomainSpec;
using fieldswap::Fnv1a64;
using fieldswap::GenerateCorpus;

namespace {

uint64_t CorpusChecksum(const std::vector<Document>& docs) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const Document& doc : docs) {
    hash = hash * 31 + Fnv1a64(DocumentToJson(doc));
  }
  return hash;
}

std::string Hex(uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

}  // namespace

int main() {
  // stderr, so stdout is identical across thread counts and diffs clean
  std::cerr << "threads " << fieldswap::par::Threads() << "\n";
  uint64_t combined = 0xcbf29ce484222325ULL;
  for (const DomainSpec& spec : AllEvalDomains()) {
    std::vector<Document> docs = GenerateCorpus(spec, 25, 4242, "chk");
    uint64_t checksum = CorpusChecksum(docs);
    combined = combined * 31 + checksum;
    std::cout << spec.name << " " << Hex(checksum) << "\n";
  }
  std::cout << "all " << Hex(combined) << "\n";
  return 0;
}
