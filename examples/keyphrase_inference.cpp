// Automatic key phrase inference (Sec. II-A of the paper), end to end:
//   1. pre-train the candidate scoring model on out-of-domain invoices;
//   2. apply it to a small in-domain (Earnings) training set;
//   3. print the per-example important tokens for one labeled instance and
//      the aggregated, ranked key phrases per field.
//
//   $ ./build/examples/keyphrase_inference

#include <iostream>

#include "api/fieldswap_api.h"
#include "util/strings.h"

using namespace fieldswap;

int main() {
  std::cout << "Pre-training the candidate model on synthetic invoices "
               "(out-of-domain, Sec. IV-B)...\n";
  CandidateScoringModel model =
      PretrainInvoiceCandidateModel(/*corpus_size=*/150, /*seed=*/99);

  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 20, 31337, "kp");

  // Per-example view: important tokens for one current.salary instance.
  for (const Document& doc : docs) {
    auto spans = doc.AnnotationsFor("current.salary");
    if (spans.empty()) continue;
    Candidate candidate = CandidateFromSpan(spans[0], FieldType::kMoney);
    auto important = ImportantTokens(model, doc, candidate,
                                     /*sparsemax_scale=*/8.0);
    std::cout << "\nImportant tokens for the current.salary instance \""
              << doc.TextOf(spans[0]) << "\" in " << doc.id() << ":\n";
    for (const TokenImportance& ti : important) {
      std::cout << "    \"" << doc.token(ti.token_index).text
                << "\"  score=" << FormatDouble(ti.score, 3) << "\n";
    }
    break;
  }

  // Corpus-level aggregation (Eq. 1) with the paper's hyperparameters.
  KeyPhraseInferenceOptions options;  // top-k 3, theta 0.2
  KeyPhraseConfig config = InferKeyPhrases(model, docs, spec.Schema(), options);

  std::cout << "\nInferred key phrases (top-" << options.top_k
            << ", theta=" << options.threshold << "):\n";
  for (const auto& [field, phrases] : config) {
    std::cout << "  " << field << ":";
    for (const KeyPhrase& phrase : phrases) {
      std::cout << "  [\"" << phrase.Text() << "\" "
                << FormatDouble(phrase.importance, 3) << "]";
    }
    std::cout << "\n";
  }
  std::cout << "\nCompare with the generator's true vocabularies — table-row "
               "labels (Base Salary, Overtime, ...) should rank on top;\n"
               "no-key-phrase fields (employee_name, employer_address) "
               "attract spurious phrases, the failure mode Fig. 6 studies.\n";
  return 0;
}
