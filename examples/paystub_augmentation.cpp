// Paystub augmentation: the motivating scenario from Fig. 1 of the paper.
// Generates a synthetic Earnings (paystub) corpus, runs the full FieldSwap
// pipeline in the human-expert configuration, and shows before/after
// documents including the contradictory-pair protection (the discarded
// current.vacation <-> year_to_date.vacation swap).
//
//   $ ./build/examples/paystub_augmentation

#include <iostream>

#include "api/fieldswap_api.h"

using namespace fieldswap;

namespace {

void PrintLines(const Document& doc, int max_lines = 40) {
  int shown = 0;
  for (const auto& line : doc.lines()) {
    if (shown++ >= max_lines) break;
    std::cout << "    ";
    for (int ti : line.token_indices) std::cout << doc.token(ti).text << " ";
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 8, /*seed=*/2024, "paystub");

  // Show one original paystub.
  const Document* sample = nullptr;
  for (const Document& doc : docs) {
    if (doc.HasField("current.salary")) {
      sample = &doc;
      break;
    }
  }
  if (sample == nullptr) sample = &docs[0];
  std::cout << "An original synthetic paystub (" << sample->id() << "):\n";
  PrintLines(*sample);

  // Run FieldSwap with the human expert configuration (Sec. III): curated
  // phrases, no-key-phrase fields excluded, current/ytd pairs pruned.
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  AugmentationResult result = RunFieldSwap(docs, spec, nullptr, options);

  std::cout << "\nHuman-expert FieldSwap on " << docs.size()
            << " paystubs generated " << result.stats.generated
            << " synthetics (discarded " << result.stats.discarded_unchanged
            << " unchanged swaps — the same-key-phrase protection of "
               "Sec. II-C).\n";

  std::cout << "\nField pairs (first 10 of " << result.pairs.size() << "):\n";
  int shown = 0;
  for (const FieldPair& pair : result.pairs) {
    if (pair.source == pair.target) continue;  // skip identity pairs
    if (shown++ >= 10) break;
    std::cout << "    " << pair.source << " -> " << pair.target << "\n";
  }

  // Show a synthetic derived from the sampled original.
  for (const Document& synthetic : result.synthetics) {
    if (synthetic.id().rfind(sample->id() + "#", 0) != 0) continue;
    std::cout << "\nOne synthetic derived from it (" << synthetic.id()
              << "):\n";
    PrintLines(synthetic);
    std::cout << "  relabeled annotations:\n";
    for (const auto& span : synthetic.annotations()) {
      std::cout << "    [" << span.field << "] = \""
                << synthetic.TextOf(span) << "\"\n";
    }
    break;
  }
  return 0;
}
