// Quickstart: build a tiny labeled document by hand, configure FieldSwap
// with explicit key phrases and a single source-to-target pair, print the
// synthetic documents it generates — then run the full automatic pipeline
// (key-phrase inference -> pairing -> swap -> training) on a small
// generated corpus so every stage shows up in the observability exports.
//
//   $ ./build/examples/quickstart
//   $ FS_LOG_LEVEL=warning ./build/examples/quickstart        # quieter logs
//   $ FS_TRACE_FILE=quickstart.trace.json ./build/examples/quickstart
//     (add FS_METRICS_FILE=quickstart.metrics.json for the metrics snapshot)
//
// The trace JSON loads in chrome://tracing (or https://ui.perfetto.dev)
// and shows the nested pipeline.* and train.* spans; the metrics JSON
// holds the fieldswap.* counter/gauge/histogram snapshot.

#include <iostream>

#include "api/fieldswap_api.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using fieldswap::BBox;
using fieldswap::DetectAndAssignLines;
using fieldswap::Document;
using fieldswap::EntitySpan;
using fieldswap::FieldPair;
using fieldswap::FieldSwapOptions;
using fieldswap::GenerateSyntheticDocuments;
using fieldswap::KeyPhrase;
using fieldswap::KeyPhraseConfig;
using fieldswap::SwapStats;

namespace {

void PrintDocument(const Document& doc) {
  for (const auto& line : doc.lines()) {
    std::cout << "    ";
    for (int ti : line.token_indices) std::cout << doc.token(ti).text << " ";
    std::cout << "\n";
  }
  for (const auto& span : doc.annotations()) {
    std::cout << "    [" << span.field << "] = \"" << doc.TextOf(span)
              << "\"\n";
  }
}

}  // namespace

int main() {
  // 1. A miniature invoice: two labeled amounts.
  //      Subtotal   $90.00
  //      Total Due  $94.50
  Document doc("invoice-1", "demo", 612, 792);
  doc.AddToken("Subtotal", BBox{40, 100, 90, 110});
  int subtotal_value = doc.AddToken("$90.00", BBox{200, 100, 240, 110});
  doc.AddToken("Total", BBox{40, 130, 70, 140});
  doc.AddToken("Due", BBox{74, 130, 94, 140});
  int total_value = doc.AddToken("$94.50", BBox{200, 130, 240, 140});
  DetectAndAssignLines(doc);  // the OCR "line" signal FieldSwap relies on
  doc.AddAnnotation(EntitySpan{"subtotal", subtotal_value, 1});
  doc.AddAnnotation(EntitySpan{"total_due", total_value, 1});

  std::cout << "Original document:\n";
  PrintDocument(doc);

  // 2. FieldSwap inputs: key phrases per field + source->target pairs.
  KeyPhraseConfig phrases;
  phrases["subtotal"] = {KeyPhrase{{"Subtotal"}, 1.0}};
  phrases["total_due"] = {KeyPhrase{{"Total", "Due"}, 1.0},
                          KeyPhrase{{"Amount", "Due"}, 1.0},
                          KeyPhrase{{"Balance", "Due"}, 1.0}};

  std::vector<FieldPair> pairs = {
      {"subtotal", "total_due"},  // make total_due examples from subtotal
      {"total_due", "total_due"}, // and vary total_due's own phrasing
  };

  // 3. Generate.
  SwapStats stats;
  auto synthetics = GenerateSyntheticDocuments(
      {doc}, phrases, pairs, FieldSwapOptions{}, &stats);

  std::cout << "\nGenerated " << stats.generated << " synthetic documents ("
            << stats.discarded_unchanged << " discarded as unchanged):\n";
  for (const Document& synthetic : synthetics) {
    std::cout << "\n  " << synthetic.id() << "\n";
    PrintDocument(synthetic);
  }

  // 4. The same pipeline end to end, fully automatic and instrumented:
  // generate a small FARA corpus, infer key phrases with a quickly
  // pre-trained out-of-domain candidate model, build type-to-type pairs,
  // swap, and train the sequence-labeling backbone on originals +
  // synthetics. Every stage emits trace spans and fieldswap.* metrics.
  {
    FS_TRACE_SPAN("quickstart.end_to_end");
    std::cout << "\n--- Automatic end-to-end run (instrumented) ---\n";
    fieldswap::DomainSpec spec = fieldswap::FaraSpec();
    std::vector<Document> corpus =
        fieldswap::GenerateCorpus(spec, 8, 42, "fara-demo");

    std::cout << "Pre-training a small out-of-domain candidate model...\n";
    fieldswap::CandidateScoringModel candidate_model =
        fieldswap::PretrainInvoiceCandidateModel(/*corpus_size=*/40,
                                                 /*seed=*/7);

    fieldswap::FieldSwapPipelineOptions options;
    options.strategy = fieldswap::MappingStrategy::kTypeToType;
    fieldswap::AugmentationResult augmented =
        fieldswap::RunFieldSwap(corpus, spec, &candidate_model, options);
    std::cout << "Automatic FieldSwap generated "
              << augmented.stats.generated << " synthetics from "
              << corpus.size() << " documents.\n";

    fieldswap::SequenceModelConfig model_config;
    model_config.seed = 5;
    fieldswap::SequenceLabelingModel model(model_config, spec.Schema());
    fieldswap::TrainOptions train;
    train.total_steps = 150;
    train.validate_every = 50;
    fieldswap::TrainResult result = fieldswap::TrainSequenceModel(
        model, corpus, augmented.synthetics, train);
    std::cout << "Trained " << result.steps
              << " steps; best validation micro-F1 = "
              << result.best_validation_f1 << "\n";
  }

  // 5. What the instrumentation collected.
  std::cout << "\nMetrics snapshot (fieldswap.* registry):\n"
            << fieldswap::obs::GlobalMetrics().ExportText()
            << "\nTrace spans recorded: "
            << fieldswap::obs::GlobalTrace().size()
            << "  (set FS_TRACE_FILE=quickstart.trace.json to export for "
               "chrome://tracing,\n   FS_METRICS_FILE=... for the JSON "
               "metrics snapshot, FS_LOG_LEVEL=warning to quiet logs)\n";
  return 0;
}
