// Quickstart: build a tiny labeled document by hand, configure FieldSwap
// with explicit key phrases and a single source-to-target pair, and print
// the synthetic documents it generates.
//
//   $ ./build/examples/quickstart
//
// This is the whole public API surface needed to use FieldSwap on your own
// documents: a Document with tokens/boxes/lines/annotations, a
// KeyPhraseConfig, a list of FieldPairs, and GenerateSyntheticDocuments.

#include <iostream>

#include "core/swap.h"
#include "ocr/line_detector.h"

using fieldswap::BBox;
using fieldswap::DetectAndAssignLines;
using fieldswap::Document;
using fieldswap::EntitySpan;
using fieldswap::FieldPair;
using fieldswap::FieldSwapOptions;
using fieldswap::GenerateSyntheticDocuments;
using fieldswap::KeyPhrase;
using fieldswap::KeyPhraseConfig;
using fieldswap::SwapStats;

namespace {

void PrintDocument(const Document& doc) {
  for (const auto& line : doc.lines()) {
    std::cout << "    ";
    for (int ti : line.token_indices) std::cout << doc.token(ti).text << " ";
    std::cout << "\n";
  }
  for (const auto& span : doc.annotations()) {
    std::cout << "    [" << span.field << "] = \"" << doc.TextOf(span)
              << "\"\n";
  }
}

}  // namespace

int main() {
  // 1. A miniature invoice: two labeled amounts.
  //      Subtotal   $90.00
  //      Total Due  $94.50
  Document doc("invoice-1", "demo", 612, 792);
  doc.AddToken("Subtotal", BBox{40, 100, 90, 110});
  int subtotal_value = doc.AddToken("$90.00", BBox{200, 100, 240, 110});
  doc.AddToken("Total", BBox{40, 130, 70, 140});
  doc.AddToken("Due", BBox{74, 130, 94, 140});
  int total_value = doc.AddToken("$94.50", BBox{200, 130, 240, 140});
  DetectAndAssignLines(doc);  // the OCR "line" signal FieldSwap relies on
  doc.AddAnnotation(EntitySpan{"subtotal", subtotal_value, 1});
  doc.AddAnnotation(EntitySpan{"total_due", total_value, 1});

  std::cout << "Original document:\n";
  PrintDocument(doc);

  // 2. FieldSwap inputs: key phrases per field + source->target pairs.
  KeyPhraseConfig phrases;
  phrases["subtotal"] = {KeyPhrase{{"Subtotal"}, 1.0}};
  phrases["total_due"] = {KeyPhrase{{"Total", "Due"}, 1.0},
                          KeyPhrase{{"Amount", "Due"}, 1.0},
                          KeyPhrase{{"Balance", "Due"}, 1.0}};

  std::vector<FieldPair> pairs = {
      {"subtotal", "total_due"},  // make total_due examples from subtotal
      {"total_due", "total_due"}, // and vary total_due's own phrasing
  };

  // 3. Generate.
  SwapStats stats;
  auto synthetics = GenerateSyntheticDocuments(
      {doc}, phrases, pairs, FieldSwapOptions{}, &stats);

  std::cout << "\nGenerated " << stats.generated << " synthetic documents ("
            << stats.discarded_unchanged << " discarded as unchanged):\n";
  for (const Document& synthetic : synthetics) {
    std::cout << "\n  " << synthetic.id() << "\n";
    PrintDocument(synthetic);
  }
  return 0;
}
