// Prints the canonical golden regression report (fixed-seed corpus
// checksums, augmentation counts, train/eval F1, attack-ladder numbers) to
// stdout. tools/update_goldens.sh redirects this into data/golden/
// golden.json; tests/golden_test.cc recomputes the same report and fails
// on any byte of drift.
//
//   $ ./build/examples/golden_dump > data/golden/golden.json
//
// Progress goes to stderr so stdout is exactly the report.

#include <iostream>

#include "api/fieldswap_api.h"

int main() {
  std::cerr << "[golden_dump] threads " << fieldswap::par::Threads()
            << " (report is thread-count invariant)\n";
  std::cout << fieldswap::ComputeGoldenReport();
  return 0;
}
