// End-to-end mini learning-curve experiment on one domain: trains the
// sequence-labeling backbone with and without FieldSwap augmentation and
// prints macro/micro F1 (a single point of the paper's Fig. 4/5 pipeline,
// sized to finish in about a minute). Per-step losses and validation
// micro-F1 for every run are recorded through obs::TrainingTelemetry and
// written as training_curves_telemetry.{jsonl,csv} for plotting.
//
//   $ ./build/examples/training_curves [domain] [train_size]
//   e.g. ./build/examples/training_curves earnings 10

#include <cstdlib>
#include <iostream>

#include "api/fieldswap_api.h"
#include "obs/telemetry.h"
#include "util/argparse.h"
#include "util/strings.h"

using namespace fieldswap;

int main(int argc, char** argv) {
  util::ArgParser args(
      "training_curves",
      "Trains the backbone with and without FieldSwap augmentation on one "
      "domain and records per-step telemetry for plotting.");
  std::string domain, train_size_text;
  args.AddPositional("domain", "earnings", "synthetic domain", &domain);
  args.AddPositional("train-size", "10", "original training documents",
                     &train_size_text);
  if (!args.Parse(argc, argv)) return args.help_requested() ? 0 : 2;
  int train_size = ParseInt(train_size_text.c_str(), 10);

  std::cout << "Pre-training / loading the candidate model...\n";
  CandidateScoringModel candidate_model = GetOrTrainCachedCandidateModel();

  ExperimentConfig config;
  config.train_sizes = {train_size};
  config.num_subsets = 1;
  config.num_trials = 1;
  config.test_size = 40;
  config.min_steps = 1500;
  ApplyEnvOverrides(config);

  // Every training run below streams per-step loss + validation micro-F1
  // into one telemetry recorder, labeled by setting.
  fieldswap::obs::TrainingTelemetry telemetry;
  config.train.telemetry = &telemetry;

  std::cout << "Domain: " << domain << ", train size: " << train_size
            << ", test docs: " << config.test_size << "\n\n";
  ExperimentRunner runner(SpecByName(domain), config, &candidate_model);

  for (const ExperimentSetting& setting :
       {BaselineSetting(), FieldSwapSetting(MappingStrategy::kTypeToType),
        FieldSwapSetting(MappingStrategy::kHumanExpert)}) {
    telemetry.BeginRun(setting.label);
    LearningCurve curve = runner.Run(setting);
    const PointResult& point = curve.by_size.at(train_size);
    std::cout << curve.setting_label << ":\n"
              << "    macro-F1 = " << FormatDouble(point.macro_f1_mean, 1)
              << "   micro-F1 = " << FormatDouble(point.micro_f1_mean, 1);
    if (setting.augmentation.has_value()) {
      std::cout << "   (synthetics used: "
                << FormatDouble(point.avg_synthetics, 0) << ")";
    }
    std::cout << "\n";
  }
  if (telemetry.WriteJsonl("training_curves_telemetry.jsonl") &&
      telemetry.WriteCsv("training_curves_telemetry.csv")) {
    std::cout << "\nWrote per-step training telemetry (" << telemetry.size()
              << " records) to training_curves_telemetry.{jsonl,csv}.\n";
  }
  std::cout << "\nExpected shape: FieldSwap >= baseline, with the largest "
               "margins at small train sizes (paper Fig. 4).\n";
  return 0;
}
