// Serving quickstart: the full public-API lifecycle in one file. Trains a
// small invoice model through fieldswap::api, stands up the batched
// ExtractionServer, serves a corpus twice (the second pass hits the result
// cache), and hot-swaps a retrained snapshot with zero downtime.
//
//   $ ./build/examples/serve_quickstart

#include <iostream>

#include "api/fieldswap_api.h"
#include "obs/metrics.h"

using namespace fieldswap;

int main() {
  // Train a deliberately small model — this is a serving demo, not an
  // accuracy run (see examples/quickstart.cpp for the paper protocol).
  DomainSpec spec = InvoicesSpec();
  auto train_docs = GenerateCorpus(spec, 16, /*seed=*/31, "invoice-train");
  SequenceLabelingModel model = api::NewModel("invoices");
  TrainOptions train;
  train.total_steps = 120;
  train.validate_every = 60;
  api::Train(model, train_docs, {}, train);

  // Stand up the server. The model moves into an immutable snapshot; the
  // server batches admitted requests and memoizes per-document work.
  serve::ServeOptions options;
  options.max_batch = 4;
  auto server = api::Serve(std::move(model), options, "v1");

  auto corpus = GenerateCorpus(spec, 8, /*seed=*/77, "invoice-serve");
  auto responses = server->ExtractBatch(corpus);
  std::cout << "Served " << responses.size() << " documents on snapshot "
            << responses[0].snapshot_version << ":\n";
  for (size_t i = 0; i < responses.size(); ++i) {
    std::cout << "  " << responses[i].doc_id << ": "
              << responses[i].spans.size() << " spans\n";
  }

  // Same corpus again: every document is a result-cache hit (the payloads
  // are bit-identical either way — caching is memoization, not a shortcut
  // with different answers).
  auto again = server->ExtractBatch(corpus);
  int hits = 0;
  for (const auto& response : again) hits += response.cache_hit ? 1 : 0;
  std::cout << "Second pass: " << hits << "/" << again.size()
            << " result-cache hits\n";

  // Zero-downtime refresh: retrain and swap. In-flight batches finish on
  // the old snapshot; the next batch uses v2, and the caches cannot serve
  // stale entries because their keys include the snapshot sequence.
  SequenceLabelingModel retrained = api::NewModel("invoices");
  train.total_steps = 240;
  api::Train(retrained, train_docs, {}, train);
  server->SwapSnapshot(serve::MakeSnapshot(std::move(retrained), "v2"));
  auto after_swap = server->Extract(corpus[0]);
  std::cout << "After hot-swap, " << after_swap.doc_id << " served by "
            << after_swap.snapshot_version << " (cache_hit="
            << (after_swap.cache_hit ? "true" : "false") << ")\n";

  auto& metrics = obs::GlobalMetrics();
  std::cout << "\nServing counters: requests="
            << metrics.CounterValue("fieldswap.serve.requests") << " batches="
            << metrics.CounterValue("fieldswap.serve.batches")
            << " result_cache_hits="
            << metrics.CounterValue("fieldswap.serve.result_cache_hits")
            << " encoded_cache_hits="
            << metrics.CounterValue("fieldswap.serve.encoded_cache_hits")
            << "\n";
  return 0;
}
