#!/usr/bin/env bash
# Concurrency gate: both halves of the lock-discipline story (DESIGN.md
# "Concurrency analysis").
#
#   1. Static: fslint's concurrency rules (guarded-by, lock-order,
#      no-lock-across-callback) over the whole tree, checking every
#      observed nested acquisition against the canonical order in
#      tools/lock_order.txt.
#   2. Drift report: `fslint --dump-lock-order` prints the observed
#      nested-acquisition graph — the exact lines a complete manifest
#      needs — so manifest drift is visible in the log.
#   3. Dynamic: the concurrency-heavy test suites with the runtime lock
#      validator enabled (FS_VALIDATE_LOCKS=1, src/par/lock_validator.h),
#      so every acquisition order actually executed is validated —
#      including edges that cross call boundaries the static walker
#      cannot see.
#
# Usage: tools/check_concurrency.sh [build_dir]   (default: build)
#
# Exits non-zero on any static violation or runtime inversion.

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

FSLINT_BIN="$BUILD_DIR/tools/fslint"
TEST_BIN="$BUILD_DIR/tests/fieldswap_unit_tests"
for bin in "$FSLINT_BIN" "$TEST_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built; run cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j first" >&2
    exit 2
  fi
done

echo "== static: fslint concurrency rules + tools/lock_order.txt =="
"$FSLINT_BIN" --root "$REPO_ROOT" --lock-order tools/lock_order.txt \
  src bench examples tests tools

echo
echo "== observed nested acquisitions (each must appear in tools/lock_order.txt) =="
"$FSLINT_BIN" --root "$REPO_ROOT" --dump-lock-order \
  src bench examples tests tools

echo
echo "== dynamic: runtime lock validator (FS_VALIDATE_LOCKS=1) =="
FS_VALIDATE_LOCKS=1 "$TEST_BIN" --gtest_brief=1 \
  --gtest_filter='LockValidatorTest.*:ParallelTest.*:ParallelDeterminismTest.*:ExtractionServerTest.*:MultiTenantServerTest.*:ModelRegistryTest.*:ShardedTenantServiceTest.*'

echo
echo "concurrency gate passed"
