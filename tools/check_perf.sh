#!/usr/bin/env bash
# Pre-merge performance gate (third leg of the trio next to
# check_determinism.sh and check_sanitizers.sh): records a fresh
# performance-trajectory point with tools/bench_trajectory and compares it
# against the checked-in baseline (BENCH_<n>.json with the highest n at the
# repo root). Exits nonzero when
#   - a deterministic metric drifted (counters, F1, span/batch counts), or
#   - a volatile metric (wall time, latency p99, kernel ns, peak RSS)
#     regressed beyond the tolerance.
#
# Usage: tools/check_perf.sh [build_dir] [tolerance]
#   build_dir  default: build
#   tolerance  default: 0.75 — generous because shared CI boxes are noisy;
#              tighten locally when chasing a specific regression.
#
# Record the NEXT checked-in trajectory point after an intentional perf
# change with:
#   build/tools/bench_trajectory --out BENCH_<n+1>.json

set -euo pipefail

BUILD_DIR="${1:-build}"
TOLERANCE="${2:-0.75}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

TRAJECTORY_BIN="$BUILD_DIR/tools/bench_trajectory"
if [[ ! -x "$TRAJECTORY_BIN" ]]; then
  echo "error: $TRAJECTORY_BIN not built; run cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j first" >&2
  exit 2
fi

# Baseline = highest-numbered checked-in BENCH_<n>.json.
BASELINE="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"
if [[ -z "$BASELINE" ]]; then
  echo "error: no BENCH_*.json baseline at the repo root" >&2
  exit 2
fi

# Interference noise is one-sided (a loaded box only slows things down),
# so a candidate that fails gets one fresh recording before the gate
# fails. Deterministic-metric drift is unaffected: it reproduces in every
# attempt by definition.
for attempt in 1 2; do
  CANDIDATE="$BUILD_DIR/bench_trajectory/candidate_$attempt.json"
  echo "=== recording candidate trajectory, attempt $attempt (baseline: $BASELINE) ==="
  "$TRAJECTORY_BIN" --build-dir "$BUILD_DIR" --out "$CANDIDATE" \
    --index 0 --threads 4
  echo "=== comparing against $BASELINE (tolerance $TOLERANCE) ==="
  if "$TRAJECTORY_BIN" --compare "$BASELINE" "$CANDIDATE" \
      --tolerance "$TOLERANCE"; then
    echo "OK: no performance regression beyond tolerance"
    exit 0
  fi
done

echo "FAIL: performance trajectory regressed vs $BASELINE (2 attempts)" >&2
echo "(if the change is intentional, record a new point: $TRAJECTORY_BIN --out BENCH_<n+1>.json)" >&2
exit 1
