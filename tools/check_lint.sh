#!/usr/bin/env bash
# Runs the in-tree static analysis suite:
#   1. fslint (src/lint) over src/, bench/, examples/, tests/, tools/
#      with the tools/layers.txt layering manifest and the
#      tools/lock_order.txt lock-order manifest — always. This includes
#      the concurrency rules (guarded-by, lock-order,
#      no-lock-across-callback); tools/check_concurrency.sh additionally
#      runs their dynamic counterpart, the FS_VALIDATE_LOCKS=1 runtime
#      lock validator.
#   2. clang-tidy over the compilation database — only when clang-tidy is
#      installed; skipped with a note otherwise so the script stays usable
#      in minimal containers.
#
# Usage: tools/check_lint.sh [build_dir]   (default: build)
#
# Exits non-zero on any fslint violation or clang-tidy diagnostic.

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

FSLINT_BIN="$BUILD_DIR/tools/fslint"
if [[ ! -x "$FSLINT_BIN" ]]; then
  echo "error: $FSLINT_BIN not built; run cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j first" >&2
  exit 2
fi

echo "== fslint =="
"$FSLINT_BIN" --root "$REPO_ROOT" src bench examples tests tools

echo
echo "== clang-tidy =="
COMPILE_DB="$BUILD_DIR/compile_commands.json"
if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "clang-tidy not installed; skipped (fslint result above still binding)"
  exit 0
fi
if [[ ! -f "$COMPILE_DB" ]]; then
  echo "error: $COMPILE_DB missing; reconfigure with cmake (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default)" >&2
  exit 2
fi

mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -quiet -p "$BUILD_DIR" "${TIDY_SOURCES[@]}"
else
  clang-tidy -quiet -p "$BUILD_DIR" "${TIDY_SOURCES[@]}"
fi
echo "clang-tidy clean"
