// fslint — in-tree static analyzer for the FieldSwap reproduction.
//
// Enforces the repo's determinism, numeric-safety, and layering
// invariants at lint time (see DESIGN.md "Static analysis" for the rule
// catalog and suppression etiquette):
//
//   $ fslint --root . src bench examples tests
//   $ fslint --root . --json src
//
// Exit codes: 0 clean, 1 violations found, 2 usage/environment error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/layers.h"
#include "lint/rules.h"
#include "obs/metrics.h"

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] <paths...>\n"
      << "\n"
      << "Lints C++ sources (.cc/.h/.cpp/...) for determinism, safety,\n"
      << "and layering violations. Paths are files or directories,\n"
      << "resolved relative to --root.\n"
      << "\n"
      << "options:\n"
      << "  --root DIR       repo root (default: current directory)\n"
      << "  --layers FILE    layer manifest (default: ROOT/tools/layers.txt)\n"
      << "  --no-layers      skip the layering rule entirely\n"
      << "  --json           emit a JSON report instead of text\n"
      << "  --exclude SUBSTR skip paths containing SUBSTR (repeatable)\n"
      << "  --no-default-excludes\n"
      << "                   also lint default-excluded paths"
      << " (lint_fixtures)\n"
      << "  --lock-order FILE\n"
      << "                   lock-order manifest"
      << " (default: ROOT/tools/lock_order.txt)\n"
      << "  --no-lock-order  skip the manifest-conformance half of"
      << " lock-order\n"
      << "  --dump-lock-order\n"
      << "                   print every observed nested acquisition as\n"
      << "                   manifest lines ('A -> B') and exit\n"
      << "  --list-rules     print the rule names and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using fieldswap::lint::LayerGraph;
  using fieldswap::lint::LintConfig;
  using fieldswap::lint::LintReport;

  LintConfig config;
  config.root = std::filesystem::current_path().string();
  std::string layers_file;
  bool use_layers = true;
  bool json = false;
  std::vector<std::string> paths;
  std::vector<std::string> extra_excludes;
  bool default_excludes = true;
  bool dump_lock_order = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "fslint: " << flag << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      config.root = next("--root");
    } else if (arg == "--layers") {
      layers_file = next("--layers");
    } else if (arg == "--no-layers") {
      use_layers = false;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--exclude") {
      extra_excludes.push_back(next("--exclude"));
    } else if (arg == "--no-default-excludes") {
      default_excludes = false;
    } else if (arg == "--lock-order") {
      config.lock_order_path = next("--lock-order");
    } else if (arg == "--no-lock-order") {
      config.check_lock_order = false;
    } else if (arg == "--dump-lock-order") {
      dump_lock_order = true;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : fieldswap::lint::RuleNames()) {
        std::cout << rule << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fslint: unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage(argv[0]);

  if (!default_excludes) config.exclude_substrings.clear();
  config.exclude_substrings.insert(config.exclude_substrings.end(),
                                   extra_excludes.begin(),
                                   extra_excludes.end());

  LayerGraph layers;
  if (use_layers) {
    if (layers_file.empty()) {
      layers_file =
          (std::filesystem::path(config.root) / "tools" / "layers.txt")
              .string();
    }
    std::ifstream in(layers_file);
    if (!in) {
      std::cerr << "fslint: cannot read layer manifest " << layers_file
                << " (pass --layers FILE or --no-layers)\n";
      return 2;
    }
    std::ostringstream manifest;
    manifest << in.rdbuf();
    std::string error;
    if (!LayerGraph::Parse(manifest.str(), &layers, &error)) {
      std::cerr << "fslint: invalid layer manifest: " << error << "\n";
      return 2;
    }
    config.layers = &layers;
  }

  LintReport report = fieldswap::lint::LintPaths(config, paths);
  if (dump_lock_order) {
    for (const std::string& edge : report.observed_lock_edges) {
      std::cout << edge << "\n";
    }
    return 0;
  }
  fieldswap::lint::PublishLintMetrics(report);
  std::cout << (json ? RenderJson(report) : RenderText(report));
  if (report.files_scanned == 0) {
    std::cerr << "fslint: no lintable files under the given paths\n";
    return 2;
  }
  return report.clean() ? 0 : 1;
}
