#!/usr/bin/env bash
# Verifies the src/par determinism contract: the full test suite must pass
# and a seeded generated corpus must checksum identically whether the
# parallel layer runs serially (FIELDSWAP_THREADS=1) or on a pool
# (FIELDSWAP_THREADS=4).
#
# Usage: tools/check_determinism.sh [build_dir]   (default: build)
#
# Exits non-zero if either ctest pass fails or the corpus checksums drift.

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found; run cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j first" >&2
  exit 2
fi

CHECKSUM_BIN="$BUILD_DIR/examples/corpus_checksum"
if [[ ! -x "$CHECKSUM_BIN" ]]; then
  echo "error: $CHECKSUM_BIN not built" >&2
  exit 2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for threads in 1 4; do
  echo "=== ctest with FIELDSWAP_THREADS=$threads ==="
  (cd "$BUILD_DIR" && FIELDSWAP_THREADS=$threads ctest --output-on-failure -j)

  echo "=== corpus checksum with FIELDSWAP_THREADS=$threads ==="
  FIELDSWAP_THREADS=$threads "$CHECKSUM_BIN" | tee "$tmpdir/checksum_$threads.txt"
done

echo "=== diffing corpus checksums (threads=1 vs threads=4) ==="
if diff "$tmpdir/checksum_1.txt" "$tmpdir/checksum_4.txt"; then
  echo "OK: corpus bit-identical across thread counts"
else
  echo "FAIL: generated corpus differs between FIELDSWAP_THREADS=1 and 4" >&2
  exit 1
fi
