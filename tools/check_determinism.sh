#!/usr/bin/env bash
# Verifies the src/par determinism contract: the full test suite must pass,
# a seeded generated corpus must checksum identically whether the parallel
# layer runs serially (FIELDSWAP_THREADS=1) or on a pool
# (FIELDSWAP_THREADS=4), and the batched extraction server must emit
# byte-identical JSONL responses at 1 thread / batch 1 vs 8 threads /
# batch 16 — the last check repeated per kernel backend (scalar, avx2,
# ...): within a backend, thread count and batch size must never change a
# served byte, in both float and int8 inference. A final corpus-streaming
# leg converts a lazy .synth spec through the native and JSONL format
# drivers and requires the sharded corpus checksum to be bit-identical
# across thread counts and across all three formats.
#
# Usage: tools/check_determinism.sh [build_dir]   (default: build)
#
# Exits non-zero if any ctest pass fails or any output pair drifts.

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found; run cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j first" >&2
  exit 2
fi

CHECKSUM_BIN="$BUILD_DIR/examples/corpus_checksum"
if [[ ! -x "$CHECKSUM_BIN" ]]; then
  echo "error: $CHECKSUM_BIN not built" >&2
  exit 2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for threads in 1 4; do
  echo "=== ctest with FIELDSWAP_THREADS=$threads ==="
  (cd "$BUILD_DIR" && FIELDSWAP_THREADS=$threads ctest --output-on-failure -j)

  echo "=== corpus checksum with FIELDSWAP_THREADS=$threads ==="
  FIELDSWAP_THREADS=$threads "$CHECKSUM_BIN" | tee "$tmpdir/checksum_$threads.txt"
done

echo "=== diffing corpus checksums (threads=1 vs threads=4) ==="
if diff "$tmpdir/checksum_1.txt" "$tmpdir/checksum_4.txt"; then
  echo "OK: corpus bit-identical across thread counts"
else
  echo "FAIL: generated corpus differs between FIELDSWAP_THREADS=1 and 4" >&2
  exit 1
fi

SERVE_BIN="$BUILD_DIR/tools/fieldswap_serve"
if [[ ! -x "$SERVE_BIN" ]]; then
  echo "error: $SERVE_BIN not built" >&2
  exit 2
fi

# Serve leg: the same corpus through the batched ExtractionServer must
# produce byte-identical JSONL whether it runs serially one document at a
# time or pooled in large batches (stderr carries the timings; stdout is
# the determinism contract). The contract is per kernel backend — scalar
# and SIMD may differ from each other by bounded ulps (tests/kernels_test.cc
# pins the bound), but WITHIN a backend thread count, batch size, and the
# int8 path must be bit-stable, so the whole pair runs once per available
# backend and once more for int8 inference on the best backend.
serve_pair() {
  local label="$1"; shift
  echo "=== serve responses [$label] with FIELDSWAP_THREADS=1, batch 1 ==="
  FIELDSWAP_THREADS=1 "$SERVE_BIN" --domain invoices --generate 12 --batch 1 \
    --train-docs 12 --train-steps 40 --repeat 2 "$@" \
    > "$tmpdir/serve_serial.jsonl"
  echo "=== serve responses [$label] with FIELDSWAP_THREADS=8, batch 16 ==="
  FIELDSWAP_THREADS=8 "$SERVE_BIN" --domain invoices --generate 12 --batch 16 \
    --train-docs 12 --train-steps 40 --repeat 2 "$@" \
    > "$tmpdir/serve_pooled.jsonl"
  echo "=== diffing serve JSONL [$label] (1 thread/batch 1 vs 8 threads/batch 16) ==="
  if diff "$tmpdir/serve_serial.jsonl" "$tmpdir/serve_pooled.jsonl"; then
    echo "OK [$label]: served responses bit-identical across threads and batches"
  else
    echo "FAIL [$label]: fieldswap_serve output differs across threads/batch size" >&2
    exit 1
  fi
}

backends="$("$SERVE_BIN" --list-kernel-backends)"
echo "=== kernel backends available: $(echo $backends | tr '\n' ' ')==="
for backend in $backends; do
  serve_pair "backend=$backend" --kernel-backend "$backend"
done

# Int8 inference on the best backend (the first listed). Quantization error
# shifts which spans are predicted, but determinism must hold regardless.
best_backend="$(echo "$backends" | head -n1)"
serve_pair "backend=$best_backend,int8" --kernel-backend "$best_backend" --int8

# Multi-tenant leg: two tenants through the registry server, submission
# order shuffled (seed-deterministic), 1 thread/batch 1 vs 8 threads/
# batch 16. Per-tenant responses — and therefore the whole tenant-tagged
# stream — must be byte-identical: DRR scheduling and cross-tenant packing
# decide which batch serves a document, never the response bytes.
cat > "$tmpdir/tenants.json" <<'MANIFEST'
{"tenants": [
  {"name": "acme",   "domain": "invoices", "seed": 11},
  {"name": "globex", "domain": "earnings", "seed": 12,
   "queue_capacity": 32, "batch_quantum": 8}
]}
MANIFEST
echo "=== multi-tenant serve with FIELDSWAP_THREADS=1, batch 1 ==="
FIELDSWAP_THREADS=1 "$SERVE_BIN" --tenant-manifest "$tmpdir/tenants.json" \
  --order shuffled --generate 10 --batch 1 --train-docs 12 --train-steps 40 \
  --repeat 2 > "$tmpdir/tenant_serial.jsonl"
echo "=== multi-tenant serve with FIELDSWAP_THREADS=8, batch 16 ==="
FIELDSWAP_THREADS=8 "$SERVE_BIN" --tenant-manifest "$tmpdir/tenants.json" \
  --order shuffled --generate 10 --batch 16 --train-docs 12 --train-steps 40 \
  --repeat 2 > "$tmpdir/tenant_pooled.jsonl"
echo "=== diffing multi-tenant JSONL (per-tenant streams) ==="
for tenant in acme globex; do
  grep "\"tenant\": \"$tenant\"" "$tmpdir/tenant_serial.jsonl" \
    > "$tmpdir/tenant_serial_$tenant.jsonl"
  grep "\"tenant\": \"$tenant\"" "$tmpdir/tenant_pooled.jsonl" \
    > "$tmpdir/tenant_pooled_$tenant.jsonl"
  if diff "$tmpdir/tenant_serial_$tenant.jsonl" \
          "$tmpdir/tenant_pooled_$tenant.jsonl"; then
    echo "OK [tenant=$tenant]: responses bit-identical across threads and batches"
  else
    echo "FAIL [tenant=$tenant]: multi-tenant serve output differs" >&2
    exit 1
  fi
done
if diff "$tmpdir/tenant_serial.jsonl" "$tmpdir/tenant_pooled.jsonl" > /dev/null; then
  echo "OK [multi-tenant]: full interleaved stream bit-identical"
else
  echo "FAIL [multi-tenant]: interleaved stream differs across threads/batch size" >&2
  exit 1
fi

# Corpus-streaming leg: the format-driver stack (see DESIGN.md "Format
# drivers and corpus streaming") must hold the same contract. A .synth
# spec streams the generator lazily; converting it to native and JSONL and
# checksumming each at FIELDSWAP_THREADS=1 vs 4 must produce identical
# `info` output per format, and all three formats must agree on the
# corpus checksum (JSON quantizes doubles to %.3f on write, the binary
# codec stores raw f64 bits — both land on the same canonical JSON at
# checksum time).
CORPUS_BIN="$BUILD_DIR/tools/fieldswap_corpus"
if [[ ! -x "$CORPUS_BIN" ]]; then
  echo "error: $CORPUS_BIN not built" >&2
  exit 2
fi
cat > "$tmpdir/stream.synth" <<'SPEC'
{"fieldswap_synthetic": 1, "domain": "earnings", "count": 60,
 "seed": 777, "id_prefix": "det"}
SPEC
echo "=== corpus streaming: convert .synth -> native and jsonl ==="
"$CORPUS_BIN" convert "$tmpdir/stream.synth" "$tmpdir/stream.fsc"
"$CORPUS_BIN" convert "$tmpdir/stream.synth" "$tmpdir/stream.jsonl"
for corpus in stream.synth stream.fsc stream.jsonl; do
  for threads in 1 4; do
    echo "=== corpus info --checksum [$corpus] with FIELDSWAP_THREADS=$threads ==="
    FIELDSWAP_THREADS=$threads "$CORPUS_BIN" info "$tmpdir/$corpus" --checksum \
      | tee "$tmpdir/info_${corpus}_${threads}.txt"
  done
  echo "=== diffing corpus info [$corpus] (threads=1 vs threads=4) ==="
  if diff "$tmpdir/info_${corpus}_1.txt" "$tmpdir/info_${corpus}_4.txt"; then
    echo "OK [$corpus]: sharded corpus checksum bit-identical across thread counts"
  else
    echo "FAIL [$corpus]: corpus checksum differs between FIELDSWAP_THREADS=1 and 4" >&2
    exit 1
  fi
done
echo "=== cross-format corpus checksum equality ==="
synth_sum="$(grep '^corpus_checksum' "$tmpdir/info_stream.synth_1.txt")"
native_sum="$(grep '^corpus_checksum' "$tmpdir/info_stream.fsc_1.txt")"
jsonl_sum="$(grep '^corpus_checksum' "$tmpdir/info_stream.jsonl_1.txt")"
if [[ "$synth_sum" == "$native_sum" && "$native_sum" == "$jsonl_sum" ]]; then
  echo "OK [cross-format]: synthetic, native, and jsonl agree on $synth_sum"
else
  echo "FAIL [cross-format]: checksums diverge across formats:" >&2
  echo "  synth:  $synth_sum" >&2
  echo "  native: $native_sum" >&2
  echo "  jsonl:  $jsonl_sum" >&2
  exit 1
fi
