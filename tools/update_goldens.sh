#!/usr/bin/env bash
# Regenerates the golden regression fixture (data/golden/golden.json) from
# the current build. Run this ONLY when a behaviour change is intentional,
# and commit the new fixture together with the change that explains it —
# tests/golden_test.cc fails on any byte of drift until you do.
#
# Usage: tools/update_goldens.sh [build_dir]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

DUMP_BIN="$BUILD_DIR/examples/golden_dump"
if [[ ! -x "$DUMP_BIN" ]]; then
  echo "error: $DUMP_BIN not built; run cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j first" >&2
  exit 2
fi

# Goldens must never be regenerated from a tree that fails static analysis:
# a lint violation (unseeded RNG, wall-clock read, unordered iteration, ...)
# is exactly the kind of bug that bakes nondeterminism into the fixture.
FSLINT_BIN="$BUILD_DIR/tools/fslint"
if [[ ! -x "$FSLINT_BIN" ]]; then
  echo "error: $FSLINT_BIN not built; build the tree before updating goldens" >&2
  exit 2
fi
if ! "$FSLINT_BIN" --root "$REPO_ROOT" src bench examples tests; then
  echo "FAIL: fslint violations above; fix or justify-suppress them before" >&2
  echo "      regenerating goldens" >&2
  exit 1
fi

mkdir -p data/golden

# The report must be thread-count invariant; regenerate at two thread
# counts and refuse to update if they disagree (a nondeterministic report
# would make the golden suite flaky instead of protective).
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
FIELDSWAP_THREADS=1 "$DUMP_BIN" > "$tmpdir/golden_1.json"
FIELDSWAP_THREADS=4 "$DUMP_BIN" > "$tmpdir/golden_4.json"
if ! diff -q "$tmpdir/golden_1.json" "$tmpdir/golden_4.json" > /dev/null; then
  echo "FAIL: golden report differs between FIELDSWAP_THREADS=1 and 4;" >&2
  echo "      fix the determinism regression before updating fixtures" >&2
  diff "$tmpdir/golden_1.json" "$tmpdir/golden_4.json" >&2 || true
  exit 1
fi

if [[ -f data/golden/golden.json ]] \
    && diff -q "$tmpdir/golden_1.json" data/golden/golden.json > /dev/null; then
  echo "data/golden/golden.json is already up to date"
  exit 0
fi

cp "$tmpdir/golden_1.json" data/golden/golden.json
echo "updated data/golden/golden.json:"
git --no-pager diff --stat -- data/golden/golden.json || true
echo "review the diff and commit the fixture with the change that caused it"
