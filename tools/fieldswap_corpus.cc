// fieldswap_corpus — inspect and convert corpus files through the format
// driver registry (ISSUE 10).
//
// Subcommands:
//   convert <in> <out>   stream every document from <in> into <out>
//                        (formats auto-identified / picked by extension;
//                        force with --format / --out-format; cap with
//                        --limit). Conversion is streaming: memory stays
//                        bounded by one document regardless of corpus size.
//   info <in>            corpus summary: format, document count, and the
//                        driver's storage details (header fields, byte
//                        counts). --checksum adds the deterministic corpus
//                        checksum (same value at any FIELDSWAP_THREADS).
//   index <in>           one `<i> <offset> <bytes>` line per record, from
//                        the driver's random-access index (file-backed
//                        formats only).
//   formats              list the registered corpus formats.
//
//   $ fieldswap_corpus convert corpus.jsonl corpus.fsc
//   $ fieldswap_corpus convert spec.synth sample.jsonl --limit 100
//   $ fieldswap_corpus info corpus.fsc --checksum
//   $ fieldswap_corpus index corpus.fsc | head
//   $ fieldswap_corpus formats

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "api/fieldswap_api.h"
#include "util/argparse.h"
#include "util/strings.h"

namespace api = fieldswap::api;
namespace doc = fieldswap::doc;
namespace par = fieldswap::par;
namespace util = fieldswap::util;
using fieldswap::Document;

namespace {

std::string Hex(uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << value;
  return out.str();
}

int Fail(const std::string& message) {
  std::cerr << "fieldswap_corpus: " << message << "\n";
  return 2;
}

std::unique_ptr<doc::CorpusReader> OpenOrFail(const std::string& path,
                                              const std::string& format) {
  doc::CorpusStatus status;
  std::unique_ptr<doc::CorpusReader> reader =
      api::OpenCorpus(path, format, &status);
  if (reader == nullptr) {
    Fail("cannot open " + path + ": " + status.ToString());
  }
  return reader;
}

int RunFormats() {
  for (const doc::FormatInfo& info : api::ListFormats()) {
    std::cout << info.name << "\t" << info.extension << "\t"
              << (info.can_write ? "read-write" : "read-only") << "\t"
              << info.description << "\n";
  }
  return 0;
}

int RunConvert(const std::string& in_path, const std::string& out_path,
               const std::string& in_format, const std::string& out_format,
               int limit) {
  std::unique_ptr<doc::CorpusReader> reader = OpenOrFail(in_path, in_format);
  if (reader == nullptr) return 2;
  doc::CorpusStatus status;
  std::unique_ptr<doc::CorpusWriter> writer =
      api::WriteCorpus(out_path, out_format, &status);
  if (writer == nullptr) {
    return Fail("cannot create " + out_path + ": " + status.ToString());
  }
  const doc::CorpusSlice slice(
      *reader, limit >= 0 ? static_cast<size_t>(limit) : reader->size());
  bool write_failed = false;
  doc::ForEachDocument(slice, [&](const Document& document, size_t) {
    if (!write_failed && !writer->Add(document)) write_failed = true;
  });
  if (write_failed || !writer->Finish()) {
    return Fail("write to " + out_path + " failed: " +
                writer->status().ToString());
  }
  std::cerr << "fieldswap_corpus: " << writer->docs_written()
            << " documents, " << reader->format() << " -> "
            << writer->format() << "\n";
  return 0;
}

int RunInfo(const std::string& in_path, const std::string& in_format,
            bool checksum) {
  std::unique_ptr<doc::CorpusReader> reader = OpenOrFail(in_path, in_format);
  if (reader == nullptr) return 2;
  std::cout << "path " << in_path << "\n"
            << "format " << reader->format() << "\n"
            << "documents " << reader->size() << "\n";
  std::cout << reader->storage_info();
  if (checksum) {
    std::cout << "corpus_checksum " << Hex(doc::CorpusChecksum(*reader))
              << "\n";
  }
  return 0;
}

int RunIndex(const std::string& in_path, const std::string& in_format) {
  std::unique_ptr<doc::CorpusReader> reader = OpenOrFail(in_path, in_format);
  if (reader == nullptr) return 2;
  uint64_t offset = 0, bytes = 0;
  if (reader->size() > 0 && !reader->RecordSpan(0, &offset, &bytes)) {
    return Fail("format '" + reader->format() +
                "' has no per-record file extents to index");
  }
  for (size_t i = 0; i < reader->size(); ++i) {
    if (!reader->RecordSpan(i, &offset, &bytes)) {
      return Fail("record " + std::to_string(i) + " has no extent");
    }
    std::cout << i << " " << offset << " " << bytes << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "fieldswap_corpus",
      "Inspect and convert corpus files (convert/info/index/formats) "
      "through the pluggable format drivers.");
  std::string command, in_path, out_path, in_format, out_format;
  int limit = -1, threads = 0;
  bool checksum = false;
  args.AddPositional("command", "",
                     "convert | info | index | formats", &command);
  args.AddPositional("input", "", "input corpus path", &in_path);
  args.AddPositional("output", "", "output corpus path (convert only)",
                     &out_path);
  args.AddString("format", "",
                 "input format (native, jsonl, synthetic); empty "
                 "auto-identifies by magic bytes, then extension",
                 &in_format);
  args.AddString("out-format", "",
                 "output format for convert; empty picks by the output "
                 "path's extension, defaulting to native",
                 &out_format);
  args.AddInt("limit", -1,
              "convert at most this many documents (-1 = all)", &limit);
  args.AddInt("threads", 0,
              "FIELDSWAP_THREADS override for --checksum (0 = keep)",
              &threads);
  args.AddBool("checksum",
               "info: add the deterministic corpus checksum (folds "
               "DocumentToJson FNV per document; identical at any thread "
               "count)",
               &checksum);
  if (!args.Parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (threads > 0) par::SetThreads(threads);

  if (command == "formats") return RunFormats();
  if (command.empty() || in_path.empty()) {
    return Fail("usage: fieldswap_corpus <convert|info|index|formats> "
                "<input> [output] (see --help)");
  }
  if (command == "convert") {
    if (out_path.empty()) {
      return Fail("convert needs an output path");
    }
    return RunConvert(in_path, out_path, in_format, out_format, limit);
  }
  if (command == "info") return RunInfo(in_path, in_format, checksum);
  if (command == "index") return RunIndex(in_path, in_format);
  return Fail("unknown command '" + command +
              "' (expected convert, info, index, or formats)");
}
