// fieldswap_serve — serve a document corpus through the batched
// ExtractionServer.
//
// Documents come from a JSONL file (--input corpus.jsonl, or '-' for
// stdin) or are generated synthetically (--generate N). The model is
// loaded from a checkpoint (--model ckpt.bin, paired with --domain) or
// quick-trained in-process. One JSON object per document goes to stdout;
// all timings and serving statistics go to stderr, so stdout is
// byte-identical for a fixed corpus and seed at any FIELDSWAP_THREADS or
// batch size (scripts/check_determinism.sh relies on this).
//
//   $ fieldswap_serve --domain paystubs --generate 12 --batch 4
//   $ fieldswap_serve --input corpus.jsonl --model ckpt.bin --repeat 3

#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/fieldswap_api.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timing.h"
#include "util/argparse.h"

namespace {

using fieldswap::Document;
using fieldswap::serve::ExtractResponse;

std::string EscapeJson(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string ResponseToJson(const Document& doc,
                           const ExtractResponse& response) {
  std::ostringstream os;
  os << "{\"doc\": \"" << EscapeJson(response.doc_id) << "\", \"status\": \""
     << fieldswap::serve::ServeStatusName(response.status) << "\"";
  if (!response.error.empty()) {
    os << ", \"error\": \"" << EscapeJson(response.error) << "\"";
  }
  os << ", \"spans\": [";
  for (size_t i = 0; i < response.spans.size(); ++i) {
    const fieldswap::EntitySpan& span = response.spans[i];
    if (i > 0) os << ", ";
    os << "{\"field\": \"" << EscapeJson(span.field) << "\", \"text\": \""
       << EscapeJson(doc.TextOf(span)) << "\", \"first_token\": "
       << span.first_token << ", \"num_tokens\": " << span.num_tokens << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  namespace api = fieldswap::api;
  namespace obs = fieldswap::obs;
  namespace serve = fieldswap::serve;
  namespace util = fieldswap::util;

  util::ArgParser args(
      "fieldswap_serve",
      "Serve a JSONL corpus through the batched extraction server "
      "(responses to stdout, timings to stderr).");
  std::string domain, input, model_path, kernel_backend;
  int generate = 0, batch = 0, queue = 0, train_docs = 0, train_steps = 0,
      seed = 0, repeat = 0;
  double deadline_ms = 0;
  bool stats = false, int8 = false, list_kernel_backends = false;
  args.AddString("domain", "invoices",
                 "synthetic domain (invoices, paystubs, utility_bills)",
                 &domain);
  args.AddString("input", "",
                 "JSONL corpus to serve ('-' reads stdin; empty generates "
                 "--generate synthetic documents)",
                 &input);
  args.AddString("model", "",
                 "checkpoint to load (must match --domain); empty "
                 "quick-trains a model in-process",
                 &model_path);
  args.AddInt("generate", 8, "documents to generate when --input is empty",
              &generate);
  args.AddInt("batch", 16, "max documents coalesced per batch", &batch);
  args.AddInt("queue", 64, "admission queue capacity", &queue);
  args.AddDouble("deadline-ms", 0, "per-request deadline (0 = none)",
                 &deadline_ms);
  args.AddInt("train-docs", 24,
              "training corpus size for the in-process model", &train_docs);
  args.AddInt("train-steps", 120,
              "training steps for the in-process model", &train_steps);
  args.AddInt("seed", 17, "corpus and training seed", &seed);
  args.AddInt("repeat", 1,
              "serve the corpus this many times (repeats exercise the "
              "encoded-doc and result caches)",
              &repeat);
  args.AddBool("stats",
               "dump the metrics registry + span profile as one JSON object "
               "on stderr at exit (stdout stays the deterministic JSONL "
               "response stream)",
               &stats);
  args.AddString("kernel-backend", "",
                 "compute kernel backend (scalar, avx2, neon; empty/'auto' "
                 "picks the best available, same as FIELDSWAP_KERNEL_BACKEND)",
                 &kernel_backend);
  args.AddBool("list-kernel-backends",
               "print the kernel backends usable in this process (best "
               "first) and exit",
               &list_kernel_backends);
  args.AddBool("int8",
               "serve from the snapshot's int8-quantized weights instead of "
               "the float forward (per-tensor symmetric quantization, built "
               "at snapshot time)",
               &int8);
  if (!args.Parse(argc, argv)) return args.help_requested() ? 0 : 2;

  if (list_kernel_backends) {
    for (const std::string& name : fieldswap::nn::AvailableKernelBackends()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (!kernel_backend.empty() &&
      !fieldswap::nn::SetKernelBackend(kernel_backend)) {
    std::cerr << "fieldswap_serve: kernel backend '" << kernel_backend
              << "' is not available here (try --list-kernel-backends)\n";
    return 2;
  }

  fieldswap::DomainSpec spec = fieldswap::SpecByName(domain);
  uint64_t seed64 = static_cast<uint64_t>(seed);

  // The corpus to serve.
  std::vector<Document> docs;
  if (input.empty()) {
    docs = fieldswap::GenerateCorpus(spec, generate, seed64 ^ 0x5e7feULL,
                                     domain + "-serve");
  } else if (input == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      std::optional<Document> doc = fieldswap::DocumentFromJson(line);
      if (!doc.has_value()) {
        std::cerr << "fieldswap_serve: unparsable JSONL document on line "
                  << (docs.size() + 1) << "\n";
        return 2;
      }
      docs.push_back(std::move(*doc));
    }
  } else {
    std::optional<std::vector<Document>> loaded =
        fieldswap::LoadCorpusJsonl(input);
    if (!loaded.has_value()) {
      std::cerr << "fieldswap_serve: cannot load corpus " << input << "\n";
      return 2;
    }
    docs = std::move(*loaded);
  }
  if (docs.empty()) {
    std::cerr << "fieldswap_serve: no documents to serve\n";
    return 2;
  }

  // The model: checkpoint, or a quick in-process train.
  obs::Stopwatch setup_timer;
  fieldswap::SequenceLabelingModel model = api::NewModel(domain);
  if (!model_path.empty()) {
    if (!api::LoadModel(model_path, model)) {
      std::cerr << "fieldswap_serve: cannot load checkpoint " << model_path
                << " (wrong --domain or config?)\n";
      return 2;
    }
  } else {
    std::vector<Document> train_corpus = fieldswap::GenerateCorpus(
        spec, train_docs, seed64, domain + "-train");
    fieldswap::TrainOptions train;
    train.total_steps = train_steps;
    train.validate_every = std::min(train.validate_every, train_steps);
    train.seed = seed64 ^ 0x5eedULL;
    api::Train(model, train_corpus, {}, train);
  }
  std::cerr << "fieldswap_serve: model ready in " << setup_timer.ElapsedMs()
            << " ms (" << (model_path.empty() ? "in-process training"
                                              : model_path)
            << ")\n";

  serve::ServeOptions options;
  options.max_batch = batch;
  options.queue_capacity = queue;
  options.default_deadline_ms = deadline_ms;
  options.int8_inference = int8;
  std::unique_ptr<serve::ExtractionServer> server =
      api::Serve(std::move(model), options);
  std::cerr << "fieldswap_serve: kernel backend "
            << fieldswap::nn::KernelBackendName()
            << (int8 ? ", int8 inference" : "") << "\n";

  obs::Stopwatch serve_timer;
  int served = 0;
  for (int round = 0; round < repeat; ++round) {
    std::vector<ExtractResponse> responses = server->ExtractBatch(docs);
    for (size_t i = 0; i < responses.size(); ++i) {
      std::cout << ResponseToJson(docs[i], responses[i]) << "\n";
      ++served;
    }
  }
  double elapsed_ms = serve_timer.ElapsedMs();

  fieldswap::obs::MetricsRegistry& metrics = fieldswap::obs::GlobalMetrics();
  std::cerr << "fieldswap_serve: " << served << " responses in " << elapsed_ms
            << " ms (" << (elapsed_ms > 0 ? served * 1000.0 / elapsed_ms : 0)
            << " docs/s), batches="
            << metrics.CounterValue("fieldswap.serve.batches")
            << ", result_cache_hits="
            << metrics.CounterValue("fieldswap.serve.result_cache_hits")
            << ", encoded_cache_hits="
            << metrics.CounterValue("fieldswap.serve.encoded_cache_hits")
            << "\n";
  if (stats) {
    // Serve runs become observable without FS_METRICS_FILE/FS_TRACE_FILE
    // plumbing: one self-describing JSON object on stderr.
    obs::PublishProcessGauges();
    std::cerr << "{\"schema_version\": 1, \"metrics\": "
              << metrics.ExportJson()
              << ", \"profile\": " << obs::BuildGlobalProfile().ToJson()
              << "}\n";
  }
  return 0;
}
