// fieldswap_serve — serve a document corpus through the batched
// ExtractionServer, or a fleet of tenants through the multi-tenant
// registry server.
//
// Documents come from any registered corpus format — native .fsc, .jsonl,
// or a .synth generator spec, auto-identified or forced with --format
// (--input corpus.fsc, or '-' for JSONL on stdin) — or are generated
// synthetically (--generate N). The model is
// loaded from a checkpoint (--model ckpt.bin, paired with --domain) or
// quick-trained in-process. One JSON object per document goes to stdout;
// all timings and serving statistics go to stderr, so stdout is
// byte-identical for a fixed corpus and seed at any FIELDSWAP_THREADS or
// batch size (scripts/check_determinism.sh relies on this).
//
// With --tenant-manifest, the tool instead publishes one model per tenant
// into a serve::ModelRegistry and routes interleaved traffic through a
// MultiTenantServer: every stdout line gains "tenant" and
// "tenant_version" keys, responses print in submission order (round-robin
// across tenants, or a seed-deterministic shuffle with --order shuffled),
// and per-tenant serving statistics land on stderr. The manifest is JSON:
//
//   {"tenants": [
//     {"name": "acme",   "domain": "invoices", "seed": 11},
//     {"name": "globex", "domain": "paystubs", "seed": 12,
//      "queue_capacity": 32, "batch_quantum": 8}]}
//
// (per-tenant keys: name required; domain/seed/generate/train-docs/
// train-steps default to the corresponding flags; model names a
// checkpoint to load instead of quick-training; queue_capacity and
// batch_quantum override the tenant's admission quota.)
//
//   $ fieldswap_serve --domain paystubs --generate 12 --batch 4
//   $ fieldswap_serve --input corpus.jsonl --model ckpt.bin --repeat 3
//   $ fieldswap_serve --tenant-manifest tenants.json --order shuffled

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/fieldswap_api.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timing.h"
#include "util/argparse.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using fieldswap::Document;
using fieldswap::serve::ExtractResponse;

std::string EscapeJson(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string ResponseToJson(const Document& doc,
                           const ExtractResponse& response) {
  std::ostringstream os;
  os << "{\"doc\": \"" << EscapeJson(response.doc_id) << "\", \"status\": \""
     << fieldswap::serve::ServeStatusName(response.status) << "\"";
  if (!response.tenant.empty()) {
    os << ", \"tenant\": \"" << EscapeJson(response.tenant)
       << "\", \"tenant_version\": " << response.tenant_version;
  }
  if (!response.error.empty()) {
    os << ", \"error\": \"" << EscapeJson(response.error) << "\"";
  }
  os << ", \"spans\": [";
  for (size_t i = 0; i < response.spans.size(); ++i) {
    const fieldswap::EntitySpan& span = response.spans[i];
    if (i > 0) os << ", ";
    os << "{\"field\": \"" << EscapeJson(span.field) << "\", \"text\": \""
       << EscapeJson(doc.TextOf(span)) << "\", \"first_token\": "
       << span.first_token << ", \"num_tokens\": " << span.num_tokens << "}";
  }
  os << "]}";
  return os.str();
}

/// One tenant from the --tenant-manifest file, with flag defaults already
/// folded in.
struct TenantSetup {
  std::string name;
  std::string domain;
  std::string model_path;  // empty: quick-train in-process
  uint64_t seed = 0;
  int generate = 0;
  int train_docs = 0;
  int train_steps = 0;
  int queue_capacity = 0;  // 0: registry default
  int batch_quantum = 0;   // 0: registry default
};

int IntField(const fieldswap::util::JsonValue& object, const std::string& key,
             int fallback) {
  const fieldswap::util::JsonValue* field = object.Find(key);
  return field != nullptr && field->is_number()
             ? static_cast<int>(field->number_value())
             : fallback;
}

std::string StringField(const fieldswap::util::JsonValue& object,
                        const std::string& key, const std::string& fallback) {
  const fieldswap::util::JsonValue* field = object.Find(key);
  return field != nullptr && field->is_string() ? field->string_value()
                                                : fallback;
}

/// Parses the tenant manifest; empty vector (with a message on stderr)
/// when the file is unreadable or malformed.
std::vector<TenantSetup> ParseTenantManifest(
    const std::string& path, const std::string& default_domain,
    int default_seed, int default_generate, int default_train_docs,
    int default_train_steps) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fieldswap_serve: cannot read tenant manifest " << path
              << "\n";
    return {};
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::optional<fieldswap::util::JsonValue> parsed =
      fieldswap::util::JsonValue::Parse(text);
  const fieldswap::util::JsonValue* tenants =
      parsed.has_value() ? parsed->Find("tenants") : nullptr;
  if (tenants == nullptr || !tenants->is_array() ||
      tenants->array_items().empty()) {
    std::cerr << "fieldswap_serve: tenant manifest " << path
              << " must be a JSON object with a non-empty \"tenants\" "
                 "array\n";
    return {};
  }
  std::vector<TenantSetup> setups;
  for (const fieldswap::util::JsonValue& entry : tenants->array_items()) {
    TenantSetup setup;
    setup.name = StringField(entry, "name", "");
    if (setup.name.empty()) {
      std::cerr << "fieldswap_serve: every manifest tenant needs a name\n";
      return {};
    }
    setup.domain = StringField(entry, "domain", default_domain);
    setup.model_path = StringField(entry, "model", "");
    setup.seed = static_cast<uint64_t>(IntField(entry, "seed", default_seed));
    setup.generate = IntField(entry, "generate", default_generate);
    setup.train_docs = IntField(entry, "train_docs", default_train_docs);
    setup.train_steps = IntField(entry, "train_steps", default_train_steps);
    setup.queue_capacity = IntField(entry, "queue_capacity", 0);
    setup.batch_quantum = IntField(entry, "batch_quantum", 0);
    setups.push_back(std::move(setup));
  }
  return setups;
}

}  // namespace

int main(int argc, char** argv) {
  namespace api = fieldswap::api;
  namespace obs = fieldswap::obs;
  namespace serve = fieldswap::serve;
  namespace util = fieldswap::util;

  util::ArgParser args(
      "fieldswap_serve",
      "Serve a JSONL corpus through the batched extraction server "
      "(responses to stdout, timings to stderr).");
  std::string domain, input, corpus_format, model_path, kernel_backend,
      tenant_manifest, order;
  int generate = 0, batch = 0, queue = 0, train_docs = 0, train_steps = 0,
      seed = 0, repeat = 0;
  double deadline_ms = 0;
  bool stats = false, int8 = false, list_kernel_backends = false,
       list_formats = false;
  args.AddString("domain", "invoices",
                 "synthetic domain (invoices, fara, fcc_forms, "
                 "brokerage_statements, earnings, loan_payments)",
                 &domain);
  args.AddString("input", "",
                 "corpus to serve — native .fsc, .jsonl, or .synth spec, "
                 "auto-identified ('-' reads JSONL from stdin; empty "
                 "generates --generate synthetic documents)",
                 &input);
  args.AddString("format", "",
                 "corpus format of --input (native, jsonl, synthetic); "
                 "empty auto-identifies by magic bytes, then extension",
                 &corpus_format);
  args.AddBool("list-formats",
               "print the registered corpus formats and exit", &list_formats);
  args.AddString("model", "",
                 "checkpoint to load (must match --domain); empty "
                 "quick-trains a model in-process",
                 &model_path);
  args.AddInt("generate", 8, "documents to generate when --input is empty",
              &generate);
  args.AddInt("batch", 16, "max documents coalesced per batch", &batch);
  args.AddInt("queue", 64, "admission queue capacity", &queue);
  args.AddDouble("deadline-ms", 0, "per-request deadline (0 = none)",
                 &deadline_ms);
  args.AddInt("train-docs", 24,
              "training corpus size for the in-process model", &train_docs);
  args.AddInt("train-steps", 120,
              "training steps for the in-process model", &train_steps);
  args.AddInt("seed", 17, "corpus and training seed", &seed);
  args.AddInt("repeat", 1,
              "serve the corpus this many times (repeats exercise the "
              "encoded-doc and result caches)",
              &repeat);
  args.AddBool("stats",
               "dump the metrics registry + span profile as one JSON object "
               "on stderr at exit (stdout stays the deterministic JSONL "
               "response stream)",
               &stats);
  args.AddString("kernel-backend", "",
                 "compute kernel backend (scalar, avx2, neon; empty/'auto' "
                 "picks the best available, same as FIELDSWAP_KERNEL_BACKEND)",
                 &kernel_backend);
  args.AddBool("list-kernel-backends",
               "print the kernel backends usable in this process (best "
               "first) and exit",
               &list_kernel_backends);
  args.AddBool("int8",
               "serve from the snapshot's int8-quantized weights instead of "
               "the float forward (per-tensor symmetric quantization, built "
               "at snapshot time)",
               &int8);
  args.AddString("tenant-manifest", "",
                 "JSON manifest of tenants to serve through the multi-tenant "
                 "registry server (see the header comment for the format); "
                 "each response line gains tenant/tenant_version keys",
                 &tenant_manifest);
  args.AddString("order", "roundrobin",
                 "submission order across tenants: roundrobin, or shuffled "
                 "(seed-deterministic) — multi-tenant mode only",
                 &order);
  if (!args.Parse(argc, argv)) return args.help_requested() ? 0 : 2;

  if (list_kernel_backends) {
    for (const std::string& name : fieldswap::nn::AvailableKernelBackends()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (list_formats) {
    for (const fieldswap::doc::FormatInfo& info : api::ListFormats()) {
      std::cout << info.name << "\t" << info.extension << "\t"
                << (info.can_write ? "read-write" : "read-only") << "\t"
                << info.description << "\n";
    }
    return 0;
  }
  if (!kernel_backend.empty() &&
      !fieldswap::nn::SetKernelBackend(kernel_backend)) {
    std::cerr << "fieldswap_serve: kernel backend '" << kernel_backend
              << "' is not available here (try --list-kernel-backends)\n";
    return 2;
  }

  // ---- Multi-tenant mode ---------------------------------------------------
  if (!tenant_manifest.empty()) {
    if (!input.empty()) {
      std::cerr << "fieldswap_serve: --tenant-manifest generates per-tenant "
                   "corpora; it cannot be combined with --input\n";
      return 2;
    }
    if (order != "roundrobin" && order != "shuffled") {
      std::cerr << "fieldswap_serve: --order must be roundrobin or shuffled\n";
      return 2;
    }
    std::vector<TenantSetup> setups = ParseTenantManifest(
        tenant_manifest, domain, seed, generate, train_docs, train_steps);
    if (setups.empty()) return 2;

    obs::Stopwatch setup_timer;
    std::shared_ptr<serve::ModelRegistry> registry = api::NewRegistry();
    std::vector<std::vector<Document>> corpora;
    for (const TenantSetup& tenant : setups) {
      fieldswap::DomainSpec tenant_spec = fieldswap::SpecByName(tenant.domain);
      fieldswap::SequenceLabelingModel model = api::NewModel(tenant.domain);
      if (!tenant.model_path.empty()) {
        if (!api::LoadModel(tenant.model_path, model)) {
          std::cerr << "fieldswap_serve: cannot load checkpoint "
                    << tenant.model_path << " for tenant " << tenant.name
                    << " (wrong domain or config?)\n";
          return 2;
        }
      } else {
        std::vector<Document> train_corpus = fieldswap::GenerateCorpus(
            tenant_spec, tenant.train_docs, tenant.seed,
            tenant.name + "-train");
        fieldswap::TrainOptions train;
        train.total_steps = tenant.train_steps;
        train.validate_every =
            std::min(train.validate_every, tenant.train_steps);
        train.seed = tenant.seed ^ 0x5eedULL;
        api::Train(model, train_corpus, {}, train);
      }
      api::PublishModel(*registry, tenant.name, std::move(model), "", int8);
      if (tenant.queue_capacity > 0 || tenant.batch_quantum > 0) {
        serve::TenantQuota quota = registry->Quota(tenant.name);
        if (tenant.queue_capacity > 0) {
          quota.queue_capacity = tenant.queue_capacity;
        }
        if (tenant.batch_quantum > 0) quota.batch_quantum = tenant.batch_quantum;
        registry->SetQuota(tenant.name, quota);
      }
      corpora.push_back(fieldswap::GenerateCorpus(
          tenant_spec, tenant.generate, tenant.seed ^ 0x5e7feULL,
          tenant.name + "-serve"));
    }
    std::cerr << "fieldswap_serve: " << setups.size() << " tenants ready in "
              << setup_timer.ElapsedMs() << " ms\n";

    serve::ServeOptions options;
    options.max_batch = batch;
    options.queue_capacity = queue;
    options.default_deadline_ms = deadline_ms;
    options.int8_inference = int8;
    std::unique_ptr<serve::MultiTenantServer> server =
        api::ServeTenants(registry, options);
    std::cerr << "fieldswap_serve: kernel backend "
              << fieldswap::nn::KernelBackendName()
              << (int8 ? ", int8 inference" : "") << "\n";

    // Submission plan: round-robin interleave across tenants, optionally
    // shuffled with a seed-deterministic Fisher-Yates. The plan (and so
    // stdout) depends only on the manifest, --seed, and --order — never on
    // thread count or batch size.
    std::vector<std::pair<size_t, size_t>> plan;
    size_t max_docs = 0;
    for (const std::vector<Document>& corpus : corpora) {
      max_docs = std::max(max_docs, corpus.size());
    }
    for (size_t d = 0; d < max_docs; ++d) {
      for (size_t t = 0; t < corpora.size(); ++t) {
        if (d < corpora[t].size()) plan.push_back({t, d});
      }
    }
    if (order == "shuffled") {
      fieldswap::Rng rng(static_cast<uint64_t>(seed) ^ 0x0dde5ULL);
      rng.Shuffle(plan);
    }

    obs::Stopwatch serve_timer;
    int served = 0;
    for (int round = 0; round < repeat; ++round) {
      std::vector<int64_t> ids;
      ids.reserve(plan.size());
      for (const auto& [t, d] : plan) {
        ids.push_back(server->Submit(setups[t].name, corpora[t][d]));
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        ExtractResponse response = server->Wait(ids[i]);
        std::cout << ResponseToJson(corpora[plan[i].first][plan[i].second],
                                    response)
                  << "\n";
        ++served;
      }
    }
    double elapsed_ms = serve_timer.ElapsedMs();

    for (const TenantSetup& tenant : setups) {
      fieldswap::serve::TenantStats tenant_stats =
          server->stats(tenant.name);
      std::cerr << "fieldswap_serve: tenant " << tenant.name
                << ": served=" << tenant_stats.served
                << ", rejected_quota=" << tenant_stats.rejected_quota
                << ", turn_batches=" << tenant_stats.turn_batches
                << ", packed_docs=" << tenant_stats.packed_docs
                << ", max_batches_waited=" << tenant_stats.max_batches_waited
                << "\n";
    }
    fieldswap::obs::MetricsRegistry& metrics = fieldswap::obs::GlobalMetrics();
    std::cerr << "fieldswap_serve: " << served << " responses in "
              << elapsed_ms << " ms ("
              << (elapsed_ms > 0 ? served * 1000.0 / elapsed_ms : 0)
              << " docs/s), batches=" << server->batches_run()
              << ", result_cache_hits="
              << metrics.CounterValue(
                     "fieldswap.serve.tenant.result_cache_hits")
              << "\n";
    if (stats) {
      obs::PublishProcessGauges();
      std::cerr << "{\"schema_version\": 1, \"metrics\": "
                << metrics.ExportJson()
                << ", \"profile\": " << obs::BuildGlobalProfile().ToJson()
                << "}\n";
    }
    return 0;
  }

  fieldswap::DomainSpec spec = fieldswap::SpecByName(domain);
  uint64_t seed64 = static_cast<uint64_t>(seed);

  // The corpus to serve.
  std::vector<Document> docs;
  if (input.empty()) {
    docs = fieldswap::GenerateCorpus(spec, generate, seed64 ^ 0x5e7feULL,
                                     domain + "-serve");
  } else if (input == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      std::optional<Document> doc = fieldswap::DocumentFromJson(line);
      if (!doc.has_value()) {
        std::cerr << "fieldswap_serve: unparsable JSONL document on line "
                  << (docs.size() + 1) << "\n";
        return 2;
      }
      docs.push_back(std::move(*doc));
    }
  } else {
    // Any registered format works here: the driver registry sniffs the
    // file (or honors --format) and hands back a reader; serving then
    // materializes it because the server replays the corpus --repeat
    // times.
    fieldswap::doc::CorpusStatus corpus_status;
    std::unique_ptr<fieldswap::doc::CorpusReader> reader =
        api::OpenCorpus(input, corpus_format, &corpus_status);
    if (reader == nullptr) {
      std::cerr << "fieldswap_serve: cannot open corpus " << input << ": "
                << corpus_status.ToString() << "\n";
      return 2;
    }
    docs = fieldswap::doc::ReadAllDocuments(*reader);
  }
  if (docs.empty()) {
    std::cerr << "fieldswap_serve: no documents to serve\n";
    return 2;
  }

  // The model: checkpoint, or a quick in-process train.
  obs::Stopwatch setup_timer;
  fieldswap::SequenceLabelingModel model = api::NewModel(domain);
  if (!model_path.empty()) {
    if (!api::LoadModel(model_path, model)) {
      std::cerr << "fieldswap_serve: cannot load checkpoint " << model_path
                << " (wrong --domain or config?)\n";
      return 2;
    }
  } else {
    std::vector<Document> train_corpus = fieldswap::GenerateCorpus(
        spec, train_docs, seed64, domain + "-train");
    fieldswap::TrainOptions train;
    train.total_steps = train_steps;
    train.validate_every = std::min(train.validate_every, train_steps);
    train.seed = seed64 ^ 0x5eedULL;
    api::Train(model, train_corpus, {}, train);
  }
  std::cerr << "fieldswap_serve: model ready in " << setup_timer.ElapsedMs()
            << " ms (" << (model_path.empty() ? "in-process training"
                                              : model_path)
            << ")\n";

  serve::ServeOptions options;
  options.max_batch = batch;
  options.queue_capacity = queue;
  options.default_deadline_ms = deadline_ms;
  options.int8_inference = int8;
  std::unique_ptr<serve::ExtractionServer> server =
      api::Serve(std::move(model), options);
  std::cerr << "fieldswap_serve: kernel backend "
            << fieldswap::nn::KernelBackendName()
            << (int8 ? ", int8 inference" : "") << "\n";

  obs::Stopwatch serve_timer;
  int served = 0;
  for (int round = 0; round < repeat; ++round) {
    std::vector<ExtractResponse> responses = server->ExtractBatch(docs);
    for (size_t i = 0; i < responses.size(); ++i) {
      std::cout << ResponseToJson(docs[i], responses[i]) << "\n";
      ++served;
    }
  }
  double elapsed_ms = serve_timer.ElapsedMs();

  fieldswap::obs::MetricsRegistry& metrics = fieldswap::obs::GlobalMetrics();
  std::cerr << "fieldswap_serve: " << served << " responses in " << elapsed_ms
            << " ms (" << (elapsed_ms > 0 ? served * 1000.0 / elapsed_ms : 0)
            << " docs/s), batches="
            << metrics.CounterValue("fieldswap.serve.batches")
            << ", result_cache_hits="
            << metrics.CounterValue("fieldswap.serve.result_cache_hits")
            << ", encoded_cache_hits="
            << metrics.CounterValue("fieldswap.serve.encoded_cache_hits")
            << "\n";
  if (stats) {
    // Serve runs become observable without FS_METRICS_FILE/FS_TRACE_FILE
    // plumbing: one self-describing JSON object on stderr.
    obs::PublishProcessGauges();
    std::cerr << "{\"schema_version\": 1, \"metrics\": "
              << metrics.ExportJson()
              << ", \"profile\": " << obs::BuildGlobalProfile().ToJson()
              << "}\n";
  }
  return 0;
}
