#!/usr/bin/env bash
# Runs the full ctest suite under sanitizers, in two configurations:
#
#   1. FIELDSWAP_SANITIZE=address,undefined  (ASan + UBSan: memory errors,
#      leaks, undefined behaviour)
#   2. FIELDSWAP_SANITIZE=thread             (TSan: data races in the
#      src/par pool and the obs registry)
#
# Together with tools/check_determinism.sh this is the pre-merge gate:
# both scripts must pass before landing changes (see DESIGN.md).
#
# Sanitizer builds define FIELDSWAP_SANITIZE_BUILD, so the parallel layer
# defaults to serial; intentionally-concurrent tests still exercise the
# pool under TSan via explicit SetThreads calls.
#
# Usage: tools/check_sanitizers.sh [asan|tsan]   (default: both)
# Build trees go to build-asan/ and build-tsan/ (kept for incremental
# reruns).

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

MODE="${1:-both}"

run_config() {
  local name="$1" sanitize="$2" build_dir="build-$1"
  echo "=== [$name] configure + build (FIELDSWAP_SANITIZE=$sanitize) ==="
  cmake -B "$build_dir" -S . -DFIELDSWAP_SANITIZE="$sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" -j
  echo "=== [$name] ctest (FS_VALIDATE_LOCKS=1) ==="
  # The runtime lock validator rides along: every acquisition order the
  # suite executes is checked against the global graph, so an inversion
  # surfaces as a named lock-order violation instead of a TSan-invisible
  # latent deadlock (src/par/lock_validator.h).
  (cd "$build_dir" && FS_VALIDATE_LOCKS=1 ctest --output-on-failure -j)
  echo "=== [$name] OK ==="
}

case "$MODE" in
  asan) run_config asan "address,undefined" ;;
  tsan) run_config tsan "thread" ;;
  both)
    run_config asan "address,undefined"
    run_config tsan "thread"
    ;;
  *)
    echo "usage: tools/check_sanitizers.sh [asan|tsan]" >&2
    exit 2
    ;;
esac

echo "sanitizer gate passed"
