// bench_trajectory — record and gate the performance trajectory.
//
// Record mode runs the bench suite (micro_ops, par_scaling,
// serve_throughput, attack_sweep), collects each binary's standardized
// `.metrics.json` sidecar (schema v2: metrics registry + span profile +
// process gauges), and emits one schema-versioned BENCH_<n>.json at the
// repo root: throughput, latency histogram summaries (p50/p90/p99 derived
// from exported bucket bounds+counts), kernel timings, corpus-gen rates,
// peak RSS, git SHA, and thread count. Object keys are sorted and numbers
// format shortest-round-trip, so two BENCH files from the same build are
// bit-identical except for the whitelisted timing fields
// (obs::IsVolatileMetric).
//
// Compare mode diffs two trajectory files and exits nonzero on regression:
// volatile metrics (wall seconds, latency ms, kernel ns, RSS kb, speedups)
// may move within --tolerance; everything else is covered by the
// determinism contract and must match exactly. Wired next to
// check_determinism.sh as a pre-merge gate via tools/check_perf.sh.
//
//   $ build/tools/bench_trajectory --out BENCH_1.json
//   $ build/tools/bench_trajectory --compare BENCH_1.json BENCH_2.json
//
// Extra FIELDSWAP_* env knobs are inherited by the bench children, so a
// quick trajectory (e.g. FIELDSWAP_ATTACK_TRAIN_DOCS=12) just needs the
// variables set when recording BOTH points being compared.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trajectory.h"
#include "util/argparse.h"
#include "util/json.h"

namespace {

namespace fs = std::filesystem;
using fieldswap::obs::CompareOptions;
using fieldswap::obs::CompareReport;
using fieldswap::util::JsonValue;

struct BenchSpec {
  const char* name;     // suite name and workdir component
  const char* binary;   // path under the build dir
  const char* sidecar;  // file the binary drops in its cwd
  // False when the binary's iteration count is timing-driven (Google
  // benchmark calibrates how often each kernel runs), which makes every
  // count-dependent section of the sidecar — counters, histograms, span
  // profile — nondeterministic across runs. Only wall time, peak RSS,
  // and gauges (last-write-wins) survive into the trajectory file then.
  bool deterministic_counts;
};

// The bench suite in trajectory order. Sidecar names are the PrintBanner
// artifact slugs — a renamed banner must be mirrored here.
const BenchSpec kSuite[] = {
    {"micro_ops", "bench/micro_ops",
     "micro_ops_kernel_timings.metrics.json", false},
    {"kernel_ops", "bench/kernel_ops",
     "kernel_ops_simd_backends_int8_serving.metrics.json", true},
    {"par_scaling", "bench/par_scaling",
     "parallel_scaling_src_par_hot_paths.metrics.json", true},
    {"serve_throughput", "bench/serve_throughput",
     "serving_throughput_batched_extractionserver.metrics.json", true},
    {"tenant_throughput", "bench/tenant_throughput",
     "multi_tenant_serving_throughput_registry_packing_flat_shards"
     ".metrics.json",
     true},
    {"attack_sweep", "bench/attack_sweep",
     "attack_sweep_f1_degradation_under_form_attacks.metrics.json", true},
    {"corpus_stream", "bench/corpus_stream",
     "corpus_streaming_format_drivers_bounded_memory.metrics.json", true},
};

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::optional<JsonValue> LoadJsonFile(const std::string& path) {
  std::optional<std::string> text = ReadFile(path);
  if (!text.has_value()) {
    std::cerr << "bench_trajectory: cannot read " << path << "\n";
    return std::nullopt;
  }
  std::optional<JsonValue> parsed = JsonValue::Parse(*text);
  if (!parsed.has_value()) {
    std::cerr << "bench_trajectory: " << path << " is not valid JSON\n";
  }
  return parsed;
}

std::string GitSha() {
  std::FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  std::string sha;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    for (char* p = buf; *p != '\0'; ++p) {
      if (*p == '\n' || *p == '\r') break;
      sha.push_back(*p);
    }
  }
  pclose(pipe);
  return sha.size() == 40 ? sha : std::string("unknown");
}

bool RunBench(const BenchSpec& spec, const fs::path& build_dir,
              const fs::path& repo_data_dir, int threads, JsonValue* out) {
  fs::path workdir = build_dir / "bench_trajectory" / spec.name;
  std::error_code ec;
  fs::create_directories(workdir, ec);
  if (ec) {
    std::cerr << "bench_trajectory: cannot create " << workdir << "\n";
    return false;
  }
  // Benches resolve cached models at data/ relative to their cwd; point
  // the workdir at the repo's data directory so runs share the cache.
  fs::path data_link = workdir / "data";
  if (!fs::exists(data_link, ec)) {
    fs::create_directory_symlink(repo_data_dir, data_link, ec);
  }
  fs::path sidecar = workdir / spec.sidecar;
  fs::remove(sidecar, ec);

  fs::path binary = build_dir / spec.binary;
  if (!fs::exists(binary)) {
    std::cerr << "bench_trajectory: " << binary
              << " not built (cmake --build first)\n";
    return false;
  }
  std::ostringstream cmd;
  cmd << "cd '" << workdir.string() << "' && FIELDSWAP_THREADS=" << threads
      << " '" << fs::absolute(binary).string() << "' > bench.log 2>&1";
  std::cerr << "[bench_trajectory] running " << spec.name << "...\n";
  int status = std::system(cmd.str().c_str());
  bool exited_clean = status != -1 && WIFEXITED(status) &&
                      WEXITSTATUS(status) == 0;
  if (!exited_clean) {
    std::cerr << "bench_trajectory: " << spec.name << " failed; see "
              << (workdir / "bench.log") << "\n";
    return false;
  }
  std::optional<JsonValue> parsed = LoadJsonFile(sidecar.string());
  if (!parsed.has_value()) return false;
  std::optional<JsonValue> summary = fieldswap::obs::SummarizeSidecar(*parsed);
  if (!summary.has_value()) {
    std::cerr << "bench_trajectory: " << sidecar
              << " does not match the sidecar schema\n";
    return false;
  }
  if (!spec.deterministic_counts) {
    JsonValue trimmed = JsonValue::MakeObject();
    for (const char* key : {"wall_time_s", "peak_rss_kb", "gauges"}) {
      if (const JsonValue* field = summary->Find(key); field != nullptr) {
        trimmed.Set(key, *field);
      }
    }
    *summary = std::move(trimmed);
  }
  *out = std::move(*summary);
  return true;
}

int Record(const std::string& build, const std::string& out_path, int index,
           int threads, const std::string& only) {
  fs::path build_dir(build);
  fs::path repo_data_dir = fs::absolute("data");

  JsonValue benches = JsonValue::MakeObject();
  for (const BenchSpec& spec : kSuite) {
    if (!only.empty() && only.find(spec.name) == std::string::npos) {
      std::cerr << "[bench_trajectory] skipping " << spec.name
                << " (not in --only)\n";
      continue;
    }
    JsonValue summary;
    if (!RunBench(spec, build_dir, repo_data_dir, threads, &summary)) {
      return 2;
    }
    benches.Set(spec.name, std::move(summary));
  }
  if (benches.object_items().empty()) {
    std::cerr << "bench_trajectory: --only matched no benches\n";
    return 2;
  }

  // Derive the trajectory index from the BENCH_<n>.json filename when the
  // flag was left at 0.
  if (index == 0) {
    std::string stem = fs::path(out_path).stem().string();
    size_t underscore = stem.rfind('_');
    if (underscore != std::string::npos) {
      const std::string digits = stem.substr(underscore + 1);
      if (!digits.empty() &&
          digits.find_first_not_of("0123456789") == std::string::npos) {
        index = static_cast<int>(std::strtol(digits.c_str(), nullptr, 10));
      }
    }
  }

  JsonValue root = JsonValue::MakeObject();
  root.Set("schema_version",
           JsonValue::MakeNumber(fieldswap::obs::kTrajectorySchemaVersion));
  root.Set("kind", JsonValue::MakeString("fieldswap-bench-trajectory"));
  root.Set("index", JsonValue::MakeNumber(index));
  root.Set("git_sha", JsonValue::MakeString(GitSha()));
  root.Set("threads", JsonValue::MakeNumber(threads));
  root.Set("benches", std::move(benches));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_trajectory: cannot write " << out_path << "\n";
    return 2;
  }
  out << root.Dump(2) << "\n";
  std::cerr << "[bench_trajectory] wrote " << out_path << "\n";
  return 0;
}

int Compare(const std::string& baseline_path, const std::string& candidate_path,
            double tolerance, double absolute_floor) {
  std::optional<JsonValue> baseline = LoadJsonFile(baseline_path);
  std::optional<JsonValue> candidate = LoadJsonFile(candidate_path);
  if (!baseline.has_value() || !candidate.has_value()) return 2;

  CompareOptions options;
  options.tolerance = tolerance;
  options.absolute_floor = absolute_floor;
  CompareReport report =
      fieldswap::obs::CompareTrajectories(*baseline, *candidate, options);
  std::cout << "comparing " << baseline_path << " (baseline) vs "
            << candidate_path << " (candidate), tolerance "
            << static_cast<int>(tolerance * 100.0) << "%\n";
  std::cout << report.ToText();
  return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  namespace util = fieldswap::util;
  util::ArgParser args(
      "bench_trajectory",
      "Record a BENCH_<n>.json performance-trajectory point from the bench "
      "suite, or compare two trajectory files and fail on regression.");
  std::string build, out_path, only, baseline, candidate;
  bool compare = false;
  int index = 0, threads = 0;
  double tolerance = 0, absolute_floor = 0;
  args.AddString("build-dir", "build", "CMake build directory", &build);
  args.AddString("out", "BENCH_1.json",
                 "trajectory file to write (record mode)", &out_path);
  args.AddInt("index", 0,
              "trajectory point index (0 = derive from the --out filename)",
              &index);
  args.AddInt("threads", 4,
              "FIELDSWAP_THREADS for the bench children (recorded in the "
              "file; compare like against like)",
              &threads);
  args.AddString("only", "",
                 "comma-separated subset of benches to run "
                 "(micro_ops,par_scaling,serve_throughput,tenant_throughput,"
                 "attack_sweep)",
                 &only);
  args.AddBool("compare",
               "compare two trajectory files instead of recording", &compare);
  args.AddDouble("tolerance", 0.35,
                 "allowed relative worsening of volatile (timing) metrics",
                 &tolerance);
  args.AddDouble("absolute-floor", 0.05,
                 "ignore volatile regressions smaller than this absolute "
                 "delta (in the metric's own unit; guards zero baselines)",
                 &absolute_floor);
  args.AddPositional("baseline", "", "baseline BENCH file (compare mode)",
                     &baseline);
  args.AddPositional("candidate", "", "candidate BENCH file (compare mode)",
                     &candidate);
  if (!args.Parse(argc, argv)) return args.help_requested() ? 0 : 2;

  if (compare) {
    if (baseline.empty() || candidate.empty()) {
      std::cerr << "bench_trajectory: --compare needs two positional "
                   "trajectory files\n"
                << args.Usage();
      return 2;
    }
    return Compare(baseline, candidate, tolerance, absolute_floor);
  }
  return Record(build, out_path, index, threads, only);
}
