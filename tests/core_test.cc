#include <gtest/gtest.h>

#include <set>

#include "core/field_pairs.h"
#include "core/human_expert.h"
#include "core/key_phrases.h"
#include "core/pipeline.h"
#include "core/swap.h"
#include "ocr/line_detector.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace {

KeyPhrase MakePhrase(std::vector<std::string> words, double importance = 1.0) {
  KeyPhrase phrase;
  phrase.words = std::move(words);
  phrase.importance = importance;
  return phrase;
}

/// A paystub-like row pair sharing the row label, plus an unrelated item:
///   "Base Salary   $100.00   $900.00"   <- current.salary / ytd.salary
///   "Net Pay: $70.00"
Document PayRowDoc() {
  Document doc("p", "test", 612, 792);
  doc.AddToken("Base", BBox{0, 0, 25, 10});
  doc.AddToken("Salary", BBox{30, 0, 65, 10});
  doc.AddToken("$100.00", BBox{200, 0, 245, 10});
  doc.AddToken("$900.00", BBox{330, 0, 375, 10});
  doc.AddToken("Net", BBox{0, 30, 20, 40});
  doc.AddToken("Pay:", BBox{24, 30, 48, 40});
  doc.AddToken("$70.00", BBox{54, 30, 90, 40});
  DetectAndAssignLines(doc);
  doc.AddAnnotation(EntitySpan{"current.salary", 2, 1});
  doc.AddAnnotation(EntitySpan{"year_to_date.salary", 3, 1});
  doc.AddAnnotation(EntitySpan{"net_pay", 6, 1});
  return doc;
}

KeyPhraseConfig PayRowConfig() {
  KeyPhraseConfig config;
  config["current.salary"] = {MakePhrase({"Base", "Salary"}),
                              MakePhrase({"Base"})};
  config["year_to_date.salary"] = {MakePhrase({"Base", "Salary"})};
  config["current.bonus"] = {MakePhrase({"Bonus"}),
                             MakePhrase({"Incentive", "Pay"})};
  config["net_pay"] = {MakePhrase({"Net", "Pay"})};
  return config;
}

// ---- CollectSourceMatches -------------------------------------------------

TEST(CollectSourceMatchesTest, LongestMatchWinsOnOverlap) {
  Document doc = PayRowDoc();
  // "Base Salary" (tokens 0-1) and "Base" (token 0) overlap; the longer
  // phrase must win and the shorter must be suppressed.
  std::vector<PhraseMatch> matches = CollectSourceMatches(
      doc, {MakePhrase({"Base", "Salary"}), MakePhrase({"Base"})});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].first_token, 0);
  EXPECT_EQ(matches[0].num_tokens, 2);
}

TEST(CollectSourceMatchesTest, EqualLengthTieBreaksOnEarlierStart) {
  Document doc = PayRowDoc();
  // "Salary $100.00" would match tokens 1-2 but token 2 is annotated, so
  // build the tie on the unannotated "Net Pay:" row instead: "Net Pay"
  // (tokens 4-5) vs "Pay $70.00" — token 6 is annotated too. Use a doc
  // without annotations to isolate pure tie-breaking.
  Document plain("t", "test", 612, 792);
  plain.AddToken("Gross", BBox{0, 0, 30, 10});
  plain.AddToken("Pay", BBox{34, 0, 54, 10});
  plain.AddToken("Rate", BBox{58, 0, 80, 10});
  DetectAndAssignLines(plain);
  // Two 2-token matches overlap at token 1; equal length, so the earlier
  // start (tokens 0-1) is kept.
  std::vector<PhraseMatch> matches = CollectSourceMatches(
      plain, {MakePhrase({"Pay", "Rate"}), MakePhrase({"Gross", "Pay"})});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].first_token, 0);
  EXPECT_EQ(matches[0].num_tokens, 2);
}

TEST(CollectSourceMatchesTest, ExcludesMatchesOverlappingAnnotations) {
  Document doc = PayRowDoc();
  // "$100.00" is token 2, the annotated current.salary value: key phrases
  // are labels, so a match on a value span must be excluded.
  EXPECT_TRUE(CollectSourceMatches(doc, {MakePhrase({"$100.00"})}).empty());
  // A phrase straddling label and value ("Salary $100.00") is excluded for
  // the same reason.
  EXPECT_TRUE(
      CollectSourceMatches(doc, {MakePhrase({"Salary", "$100.00"})}).empty());
}

TEST(CollectSourceMatchesTest, DisjointMatchesReturnInTokenOrder) {
  Document doc = PayRowDoc();
  std::vector<PhraseMatch> matches = CollectSourceMatches(
      doc, {MakePhrase({"Net", "Pay"}), MakePhrase({"Base", "Salary"})});
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].first_token, 0);
  EXPECT_EQ(matches[1].first_token, 4);
}

// ---- SwapOnce -------------------------------------------------------------

TEST(SwapOnceTest, ReplacesPhraseAndRelabels) {
  Document doc = PayRowDoc();
  FieldSwapOptions options;
  auto synthetic =
      SwapOnce(doc, "current.salary", "current.bonus", MakePhrase({"Bonus"}),
               PayRowConfig(), options);
  ASSERT_TRUE(synthetic.has_value());
  EXPECT_EQ(synthetic->token(0).text, "Bonus");
  EXPECT_EQ(synthetic->token(1).text, "$100.00");
  // current.salary relabeled; net_pay untouched.
  EXPECT_TRUE(synthetic->HasField("current.bonus"));
  EXPECT_FALSE(synthetic->HasField("current.salary"));
  EXPECT_TRUE(synthetic->HasField("net_pay"));
  EXPECT_EQ(synthetic->TextOf(synthetic->AnnotationsFor("current.bonus")[0]),
            "$100.00");
}

TEST(SwapOnceTest, DropsAffectedSiblingField) {
  Document doc = PayRowDoc();
  FieldSwapOptions options;
  auto synthetic =
      SwapOnce(doc, "current.salary", "current.bonus", MakePhrase({"Bonus"}),
               PayRowConfig(), options);
  ASSERT_TRUE(synthetic.has_value());
  // year_to_date.salary's key phrase ("Base Salary") was replaced by a
  // phrase that is not year_to_date.salary's -> its label is dropped.
  EXPECT_FALSE(synthetic->HasField("year_to_date.salary"));
}

TEST(SwapOnceTest, KeepsSiblingWhenFilterDisabled) {
  Document doc = PayRowDoc();
  FieldSwapOptions options;
  options.drop_affected_fields = false;  // the paper's simplest variant
  auto synthetic =
      SwapOnce(doc, "current.salary", "current.bonus", MakePhrase({"Bonus"}),
               PayRowConfig(), options);
  ASSERT_TRUE(synthetic.has_value());
  EXPECT_TRUE(synthetic->HasField("year_to_date.salary"));
}

TEST(SwapOnceTest, FieldToFieldVariantKeepsSibling) {
  Document doc = PayRowDoc();
  FieldSwapOptions options;
  // "Base" is also a key phrase of current.salary (variant swap). The
  // sibling ytd.salary's phrase list contains "Base Salary" but not "Base";
  // per the filter rule the sibling is dropped only when the incoming
  // phrase is foreign to it — here it IS foreign, so add it first.
  KeyPhraseConfig config = PayRowConfig();
  config["year_to_date.salary"].push_back(MakePhrase({"Base"}));
  auto synthetic = SwapOnce(doc, "current.salary", "current.salary",
                            MakePhrase({"Base"}), config, options);
  ASSERT_TRUE(synthetic.has_value());
  EXPECT_EQ(synthetic->token(0).text, "Base");
  EXPECT_EQ(synthetic->token(1).text, "$100.00");
  EXPECT_TRUE(synthetic->HasField("current.salary"));
  EXPECT_TRUE(synthetic->HasField("year_to_date.salary"));
}

TEST(SwapOnceTest, DiscardsUnchangedDocument) {
  Document doc = PayRowDoc();
  FieldSwapOptions options;
  // Replacing "Base Salary" with "Base Salary" changes nothing -> discard.
  auto synthetic =
      SwapOnce(doc, "current.salary", "year_to_date.salary",
               MakePhrase({"Base", "Salary"}), PayRowConfig(), options);
  EXPECT_FALSE(synthetic.has_value());
}

TEST(SwapOnceTest, KeepsUnchangedWhenDiscardDisabled) {
  Document doc = PayRowDoc();
  FieldSwapOptions options;
  options.discard_unchanged = false;
  auto synthetic =
      SwapOnce(doc, "current.salary", "year_to_date.salary",
               MakePhrase({"Base", "Salary"}), PayRowConfig(), options);
  ASSERT_TRUE(synthetic.has_value());
  // The (contradictory) relabeling happened even though text is unchanged.
  EXPECT_EQ(synthetic->AnnotationsFor("year_to_date.salary").size(), 2u);
}

TEST(SwapOnceTest, NoMatchReturnsNullopt) {
  Document doc = PayRowDoc();
  KeyPhraseConfig config = PayRowConfig();
  config["current.salary"] = {MakePhrase({"Regular", "Pay"})};  // absent
  auto synthetic =
      SwapOnce(doc, "current.salary", "current.bonus", MakePhrase({"Bonus"}),
               config, FieldSwapOptions{});
  EXPECT_FALSE(synthetic.has_value());
}

TEST(SwapOnceTest, SourceFieldAbsentReturnsNullopt) {
  Document doc = PayRowDoc();
  auto synthetic =
      SwapOnce(doc, "current.vacation", "current.bonus",
               MakePhrase({"Bonus"}), PayRowConfig(), FieldSwapOptions{});
  EXPECT_FALSE(synthetic.has_value());
}

TEST(SwapOnceTest, PrefersLongestMatchOnOverlap) {
  Document doc = PayRowDoc();
  // Source phrases: "Base Salary" and "Base" overlap; the longer one wins,
  // so both tokens are replaced by the target phrase once.
  auto synthetic =
      SwapOnce(doc, "current.salary", "current.bonus",
               MakePhrase({"Incentive", "Pay"}), PayRowConfig(),
               FieldSwapOptions{});
  ASSERT_TRUE(synthetic.has_value());
  EXPECT_EQ(synthetic->token(0).text, "Incentive");
  EXPECT_EQ(synthetic->token(1).text, "Pay");
  EXPECT_EQ(synthetic->token(2).text, "$100.00");
  EXPECT_EQ(synthetic->num_tokens(), doc.num_tokens());
}

TEST(SwapOnceTest, PreservesTrailingColon) {
  Document doc = PayRowDoc();
  KeyPhraseConfig config = PayRowConfig();
  auto synthetic =
      SwapOnce(doc, "net_pay", "net_pay", MakePhrase({"Take", "Home", "Pay"}),
               config, FieldSwapOptions{});
  ASSERT_TRUE(synthetic.has_value());
  // "Net Pay:" -> "Take Home Pay:" keeps the label colon styling.
  int last_label = 0;
  for (int i = 0; i < synthetic->num_tokens(); ++i) {
    if (synthetic->token(i).text.starts_with("Pay")) last_label = i;
  }
  EXPECT_EQ(synthetic->token(last_label).text, "Pay:");
}

TEST(SwapOnceTest, ReplacesAllOccurrences) {
  Document doc("m", "test", 612, 792);
  doc.AddToken("Total", BBox{0, 0, 30, 10});
  doc.AddToken("$1.00", BBox{40, 0, 70, 10});
  doc.AddToken("Total", BBox{0, 30, 30, 40});
  doc.AddToken("$2.00", BBox{40, 30, 70, 40});
  DetectAndAssignLines(doc);
  doc.AddAnnotation(EntitySpan{"total", 1, 1});
  KeyPhraseConfig config;
  config["total"] = {MakePhrase({"Total"})};
  config["subtotal"] = {MakePhrase({"Subtotal"})};
  auto synthetic = SwapOnce(doc, "total", "subtotal",
                            MakePhrase({"Subtotal"}), config,
                            FieldSwapOptions{});
  ASSERT_TRUE(synthetic.has_value());
  EXPECT_EQ(synthetic->token(0).text, "Subtotal");
  EXPECT_EQ(synthetic->token(2).text, "Subtotal");
}

TEST(SwapOnceTest, NeverReplacesValueTokens) {
  // The value text coincides with a key phrase word; annotated tokens must
  // not be treated as phrase matches.
  Document doc("v", "test", 612, 792);
  doc.AddToken("Station", BBox{0, 0, 40, 10});
  doc.AddToken("Station", BBox{100, 0, 140, 10});  // the value, annotated
  DetectAndAssignLines(doc);
  doc.AddAnnotation(EntitySpan{"station", 1, 1});
  KeyPhraseConfig config;
  config["station"] = {MakePhrase({"Station"})};
  config["agency"] = {MakePhrase({"Agency"})};
  auto synthetic = SwapOnce(doc, "station", "agency", MakePhrase({"Agency"}),
                            config, FieldSwapOptions{});
  ASSERT_TRUE(synthetic.has_value());
  EXPECT_EQ(synthetic->token(0).text, "Agency");
  EXPECT_EQ(synthetic->token(1).text, "Station") << "value must be intact";
}

// ---- Field pairs ----------------------------------------------------------

KeyPhraseConfig PhrasesForAll(const DomainSchema& schema) {
  KeyPhraseConfig config;
  for (const FieldSpec& field : schema.fields()) {
    config[field.name] = {MakePhrase({field.name})};
  }
  return config;
}

TEST(FieldPairsTest, FieldToFieldIsIdentity) {
  DomainSchema schema = FaraSpec().Schema();
  auto pairs = BuildFieldPairs(schema, MappingStrategy::kFieldToField,
                               PhrasesForAll(schema));
  EXPECT_EQ(pairs.size(), schema.num_fields());
  for (const FieldPair& pair : pairs) EXPECT_EQ(pair.source, pair.target);
}

TEST(FieldPairsTest, TypeToTypeOnlySameType) {
  DomainSchema schema = FaraSpec().Schema();
  auto pairs = BuildFieldPairs(schema, MappingStrategy::kTypeToType,
                               PhrasesForAll(schema));
  // FARA: 1 date, 1 number, 4 string -> 1 + 1 + 16 = 18 ordered pairs.
  EXPECT_EQ(pairs.size(), 18u);
  for (const FieldPair& pair : pairs) {
    EXPECT_EQ(schema.TypeOf(pair.source), schema.TypeOf(pair.target));
  }
}

TEST(FieldPairsTest, AllToAllIsFullSquare) {
  DomainSchema schema = FaraSpec().Schema();
  auto pairs = BuildFieldPairs(schema, MappingStrategy::kAllToAll,
                               PhrasesForAll(schema));
  EXPECT_EQ(pairs.size(), 36u);
}

TEST(FieldPairsTest, FieldsWithoutPhrasesExcluded) {
  DomainSchema schema = FaraSpec().Schema();
  KeyPhraseConfig config = PhrasesForAll(schema);
  config.erase("signer_name");
  config["registrant_name"].clear();
  auto pairs = BuildFieldPairs(schema, MappingStrategy::kTypeToType, config);
  for (const FieldPair& pair : pairs) {
    EXPECT_NE(pair.source, "signer_name");
    EXPECT_NE(pair.target, "signer_name");
    EXPECT_NE(pair.source, "registrant_name");
    EXPECT_NE(pair.target, "registrant_name");
  }
}

TEST(FieldPairsTest, StrategyNames) {
  EXPECT_EQ(MappingStrategyName(MappingStrategy::kFieldToField),
            "field-to-field");
  EXPECT_EQ(MappingStrategyName(MappingStrategy::kTypeToType),
            "type-to-type");
  EXPECT_EQ(MappingStrategyName(MappingStrategy::kAllToAll), "all-to-all");
  EXPECT_EQ(MappingStrategyName(MappingStrategy::kHumanExpert),
            "human expert");
}

// ---- Human expert ---------------------------------------------------------

TEST(HumanExpertTest, ExcludesNoPhraseFields) {
  HumanExpertConfig config = MakeHumanExpertConfig(EarningsSpec());
  EXPECT_EQ(config.phrases.count("employee_name"), 0u);
  EXPECT_EQ(config.phrases.count("employer_address"), 0u);
  for (const FieldPair& pair : config.pairs) {
    EXPECT_NE(pair.source, "employee_name");
    EXPECT_NE(pair.target, "employer_address");
  }
}

TEST(HumanExpertTest, SuppliesFullVocabulary) {
  DomainSpec spec = EarningsSpec();
  HumanExpertConfig config = MakeHumanExpertConfig(spec);
  const auto& phrases = config.phrases.at("current.sales_pay");
  EXPECT_EQ(phrases.size(), spec.Find("current.sales_pay")->phrases.size());
}

TEST(HumanExpertTest, PrunesContradictoryCrossColumnPairs) {
  HumanExpertConfig config = MakeHumanExpertConfig(EarningsSpec());
  for (const FieldPair& pair : config.pairs) {
    bool src_current = pair.source.starts_with("current.");
    bool tgt_current = pair.target.starts_with("current.");
    bool src_ytd = pair.source.starts_with("year_to_date.");
    bool tgt_ytd = pair.target.starts_with("year_to_date.");
    EXPECT_EQ(src_current, tgt_current) << pair.source << "->" << pair.target;
    EXPECT_EQ(src_ytd, tgt_ytd) << pair.source << "->" << pair.target;
  }
}

TEST(HumanExpertTest, PairsRespectBaseTypes) {
  DomainSpec spec = LoanPaymentsSpec();
  DomainSchema schema = spec.Schema();
  HumanExpertConfig config = MakeHumanExpertConfig(spec);
  EXPECT_FALSE(config.pairs.empty());
  for (const FieldPair& pair : config.pairs) {
    EXPECT_EQ(schema.TypeOf(pair.source), schema.TypeOf(pair.target));
  }
}

// ---- GenerateSyntheticDocuments --------------------------------------------

TEST(GenerateSyntheticsTest, TypeToTypeProducesMoreThanFieldToField) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 15, 7, "g");
  HumanExpertConfig expert = MakeHumanExpertConfig(spec);
  DomainSchema schema = spec.Schema();

  SwapStats f2f_stats, t2t_stats;
  auto f2f = GenerateSyntheticDocuments(
      docs, expert.phrases,
      BuildFieldPairs(schema, MappingStrategy::kFieldToField, expert.phrases),
      FieldSwapOptions{}, &f2f_stats);
  auto t2t = GenerateSyntheticDocuments(
      docs, expert.phrases,
      BuildFieldPairs(schema, MappingStrategy::kTypeToType, expert.phrases),
      FieldSwapOptions{}, &t2t_stats);
  EXPECT_GT(t2t.size(), 2 * f2f.size()) << "Table III shape: t2t >> f2f";
  EXPECT_EQ(static_cast<int64_t>(f2f.size()), f2f_stats.generated);
  EXPECT_EQ(static_cast<int64_t>(t2t.size()), t2t_stats.generated);
  EXPECT_GT(t2t_stats.discarded_unchanged, 0)
      << "same-phrase cross-column swaps must be discarded";
}

TEST(GenerateSyntheticsTest, MaxSyntheticsCapsOutput) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 10, 8, "g");
  HumanExpertConfig expert = MakeHumanExpertConfig(spec);
  FieldSwapOptions options;
  options.max_synthetics = 25;
  auto synthetics = GenerateSyntheticDocuments(
      docs, expert.phrases,
      BuildFieldPairs(spec.Schema(), MappingStrategy::kTypeToType,
                      expert.phrases),
      options);
  EXPECT_EQ(synthetics.size(), 25u);
}

TEST(GenerateSyntheticsTest, SyntheticIdsEncodeProvenance) {
  DomainSpec spec = FaraSpec();
  auto docs = GenerateCorpus(spec, 5, 9, "g");
  HumanExpertConfig expert = MakeHumanExpertConfig(spec);
  auto synthetics = GenerateSyntheticDocuments(
      docs, expert.phrases,
      BuildFieldPairs(spec.Schema(), MappingStrategy::kFieldToField,
                      expert.phrases),
      FieldSwapOptions{});
  for (const Document& doc : synthetics) {
    EXPECT_NE(doc.id().find("#swap:"), std::string::npos) << doc.id();
  }
}

TEST(GenerateSyntheticsTest, EmptyInputsProduceNothing) {
  EXPECT_TRUE(GenerateSyntheticDocuments({}, {}, {}, FieldSwapOptions{})
                  .empty());
  DomainSpec spec = FaraSpec();
  auto docs = GenerateCorpus(spec, 3, 10, "g");
  EXPECT_TRUE(
      GenerateSyntheticDocuments(docs, {}, {}, FieldSwapOptions{}).empty());
}

// ---- Key phrase inference (structure-level checks) ---------------------------

TEST(KeyPhraseTest, TextJoinsWords) {
  EXPECT_EQ(MakePhrase({"Amount", "Due"}).Text(), "Amount Due");
}

TEST(KeyPhraseTest, ImportantTokensAreSparse) {
  CandidateModelConfig config;
  config.num_neighbors = 16;
  CandidateScoringModel model(config, {"f"});
  Document doc = GenerateDocument(EarningsSpec(), "x", 0, Rng(11));
  ASSERT_FALSE(doc.annotations().empty());
  Candidate cand =
      CandidateFromSpan(doc.annotations().back(), FieldType::kMoney);
  auto important = ImportantTokens(model, doc, cand, /*sparsemax_scale=*/8.0);
  EXPECT_FALSE(important.empty());
  EXPECT_LT(important.size(), 16u) << "sparsemax must zero out some tokens";
  double sum = 0;
  for (const TokenImportance& ti : important) {
    EXPECT_GT(ti.score, 0.0);
    sum += ti.score;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(KeyPhraseTest, InferenceExcludesGroundTruthTokens) {
  // An untrained model still must never emit a phrase containing another
  // field's value tokens (Sec. II-A5 exclusion is structural).
  CandidateModelConfig config;
  CandidateScoringModel model(config, {"f"});
  DomainSpec spec = FaraSpec();
  auto docs = GenerateCorpus(spec, 6, 12, "kp");
  KeyPhraseInferenceOptions options;
  options.threshold = 0.0;
  options.top_k = 10;
  KeyPhraseConfig inferred =
      InferKeyPhrases(model, docs, spec.Schema(), options);
  // Collect all ground-truth texts.
  std::set<std::string> gt_texts;
  for (const Document& doc : docs) {
    for (const EntitySpan& span : doc.annotations()) {
      gt_texts.insert(doc.TextOf(span));
    }
  }
  for (const auto& [field, phrases] : inferred) {
    for (const KeyPhrase& phrase : phrases) {
      EXPECT_EQ(gt_texts.count(phrase.Text()), 0u)
          << field << ": " << phrase.Text();
    }
  }
}

TEST(KeyPhraseTest, TopKLimitsPhraseCount) {
  CandidateModelConfig config;
  CandidateScoringModel model(config, {"f"});
  DomainSpec spec = FaraSpec();
  auto docs = GenerateCorpus(spec, 8, 13, "kp");
  KeyPhraseInferenceOptions options;
  options.top_k = 2;
  options.threshold = 0.0;
  KeyPhraseConfig inferred =
      InferKeyPhrases(model, docs, spec.Schema(), options);
  for (const auto& [field, phrases] : inferred) {
    EXPECT_LE(phrases.size(), 2u) << field;
  }
}

TEST(KeyPhraseTest, ThresholdFiltersWeakPhrases) {
  CandidateModelConfig config;
  CandidateScoringModel model(config, {"f"});
  DomainSpec spec = FaraSpec();
  auto docs = GenerateCorpus(spec, 8, 13, "kp");
  KeyPhraseInferenceOptions loose;
  loose.threshold = 0.0;
  loose.top_k = 100;
  KeyPhraseInferenceOptions strict = loose;
  strict.threshold = 0.95;
  auto all = InferKeyPhrases(model, docs, spec.Schema(), loose);
  auto filtered = InferKeyPhrases(model, docs, spec.Schema(), strict);
  size_t total_all = 0, total_filtered = 0;
  for (const auto& [f, p] : all) total_all += p.size();
  for (const auto& [f, p] : filtered) {
    total_filtered += p.size();
    for (const KeyPhrase& phrase : p) {
      EXPECT_GE(phrase.importance, 0.95);
    }
  }
  EXPECT_LT(total_filtered, total_all);
}

// ---- Pipeline -------------------------------------------------------------

TEST(PipelineTest, HumanExpertNeedsNoModel) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 8, 14, "pl");
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  AugmentationResult result =
      RunFieldSwap(docs, spec, /*candidate_model=*/nullptr, options);
  EXPECT_FALSE(result.phrases.empty());
  EXPECT_FALSE(result.pairs.empty());
  EXPECT_GT(result.synthetics.size(), 0u);
  EXPECT_EQ(result.stats.generated,
            static_cast<int64_t>(result.synthetics.size()));
}

TEST(PipelineTest, SyntheticsPreserveDomainAndGeometry) {
  DomainSpec spec = EarningsSpec();
  auto docs = GenerateCorpus(spec, 6, 15, "pl");
  FieldSwapPipelineOptions options;
  options.strategy = MappingStrategy::kHumanExpert;
  AugmentationResult result = RunFieldSwap(docs, spec, nullptr, options);
  for (const Document& doc : result.synthetics) {
    EXPECT_EQ(doc.domain(), "earnings");
    EXPECT_GT(doc.num_tokens(), 0);
    for (const EntitySpan& span : doc.annotations()) {
      EXPECT_LE(span.end_token(), doc.num_tokens());
    }
  }
}

}  // namespace
}  // namespace fieldswap
