// Tests for the src/obs observability subsystem: metric semantics,
// concurrent registry access (run under -DFIELDSWAP_SANITIZE=thread to
// verify data-race freedom), trace span nesting, telemetry JSONL
// round-trip, and log severity filtering through a pluggable sink.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace fieldswap {
namespace {

using obs::HistogramData;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TelemetryRecord;
using obs::TraceEvent;
using obs::TraceRecorder;
using obs::TraceSpan;
using obs::TrainingTelemetry;

TEST(MetricsRegistryTest, CounterSemantics) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("fieldswap.test.count"), 0);
  registry.CounterAdd("fieldswap.test.count");
  registry.CounterAdd("fieldswap.test.count", 4);
  EXPECT_EQ(registry.CounterValue("fieldswap.test.count"), 5);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.count("fieldswap.test.count"), 1u);
  EXPECT_EQ(snapshot.counters.at("fieldswap.test.count"), 5);

  registry.Reset();
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  registry.GaugeSet("fieldswap.test.gauge", 1.5);
  registry.GaugeSet("fieldswap.test.gauge", -2.25);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("fieldswap.test.gauge"), -2.25);
}

TEST(MetricsRegistryTest, HistogramBucketsAndStats) {
  MetricsRegistry registry;
  std::vector<double> bounds = {1.0, 10.0, 100.0};
  registry.HistogramObserve("h", 0.5, bounds);   // bucket 0
  registry.HistogramObserve("h", 1.0, bounds);   // bucket 0 (inclusive bound)
  registry.HistogramObserve("h", 7.0, bounds);   // bucket 1
  registry.HistogramObserve("h", 500.0, bounds); // overflow

  HistogramData hist = registry.Snapshot().histograms.at("h");
  ASSERT_EQ(hist.bucket_counts.size(), 4u);
  EXPECT_EQ(hist.bucket_counts[0], 2);
  EXPECT_EQ(hist.bucket_counts[1], 1);
  EXPECT_EQ(hist.bucket_counts[2], 0);
  EXPECT_EQ(hist.bucket_counts[3], 1);
  EXPECT_EQ(hist.count, 4);
  EXPECT_DOUBLE_EQ(hist.sum, 508.5);
  EXPECT_DOUBLE_EQ(hist.min, 0.5);
  EXPECT_DOUBLE_EQ(hist.max, 500.0);
}

TEST(MetricsRegistryTest, HistogramLayoutFixedByFirstObservation) {
  MetricsRegistry registry;
  registry.HistogramObserve("h", 2.0, {1.0, 3.0});
  registry.HistogramObserve("h", 2.0, {100.0});  // layout ignored
  HistogramData hist = registry.Snapshot().histograms.at("h");
  EXPECT_EQ(hist.bounds, (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(hist.count, 2);
}

TEST(MetricsRegistryTest, ExportsContainMetrics) {
  MetricsRegistry registry;
  registry.CounterAdd("fieldswap.test.applied", 3);
  registry.GaugeSet("fieldswap.test.rate", 0.5);
  registry.HistogramObserve("fieldswap.test.ms", 2.0, {1.0, 4.0});

  std::string text = registry.ExportText();
  EXPECT_NE(text.find("fieldswap.test.applied 3"), std::string::npos);
  EXPECT_NE(text.find("fieldswap.test.rate 0.5"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);

  std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"fieldswap.test.applied\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [0, 1, 0]"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  // fslint: allow(no-raw-thread): this test exists to hammer the registry
  // from raw concurrent threads; par's deterministic pool would serialize
  // the contention away.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIters; ++i) {
        registry.CounterAdd("fieldswap.test.concurrent");
        registry.GaugeSet("fieldswap.test.gauge", static_cast<double>(t));
        registry.HistogramObserve("fieldswap.test.hist",
                                  static_cast<double>(i % 16), {4.0, 8.0});
      }
    });
  }
  // fslint: allow(no-raw-thread): joining the raw test threads above.
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.CounterValue("fieldswap.test.concurrent"),
            kThreads * kIters);
  HistogramData hist = registry.Snapshot().histograms.at("fieldswap.test.hist");
  EXPECT_EQ(hist.count, kThreads * kIters);
}

TEST(TraceTest, SpansNestAndRecordOnScopeExit) {
  TraceRecorder recorder;
  EXPECT_EQ(TraceSpan::CurrentDepth(), 0);
  {
    TraceSpan outer("outer", &recorder);
    EXPECT_EQ(TraceSpan::CurrentDepth(), 1);
    {
      TraceSpan inner("inner", &recorder);
      EXPECT_EQ(TraceSpan::CurrentDepth(), 2);
    }
    // The inner span is recorded as soon as it closes; outer is still open.
    EXPECT_EQ(recorder.size(), 1u);
  }
  EXPECT_EQ(TraceSpan::CurrentDepth(), 0);

  std::vector<TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  // RAII order: children complete before parents.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  // The parent encloses the child in time.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
}

TEST(TraceTest, DisabledRecorderSkipsSpans) {
  TraceRecorder recorder;
  recorder.set_enabled(false);
  {
    TraceSpan span("skipped", &recorder);
    EXPECT_EQ(TraceSpan::CurrentDepth(), 0);
  }
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TraceTest, ChromeJsonExportShape) {
  TraceRecorder recorder;
  { TraceSpan span("phase \"x\"", &recorder); }
  std::string json = recorder.ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("phase \\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
}

TEST(TraceTest, GlobalMacroRecordsIntoGlobalRecorder) {
  size_t before = obs::GlobalTrace().size();
  { FS_TRACE_SPAN("obs_test.macro_span"); }
  std::vector<TraceEvent> events = obs::GlobalTrace().events();
  ASSERT_GT(events.size(), before);
  EXPECT_EQ(events.back().name, "obs_test.macro_span");
}

TEST(TelemetryTest, JsonlRoundTrip) {
  TrainingTelemetry telemetry;
  telemetry.BeginRun("baseline");
  telemetry.RecordStep(1, 2.5, 0.75);
  telemetry.RecordStep(2, 1.25, 0.5);
  telemetry.BeginRun("fieldswap \"t2t\"");
  telemetry.RecordValidation(200, 0.875, true);
  telemetry.RecordValidation(400, 0.75, false);

  std::string jsonl = telemetry.ExportJsonl();
  TrainingTelemetry parsed;
  ASSERT_TRUE(TrainingTelemetry::ParseJsonl(jsonl, &parsed));

  std::vector<TelemetryRecord> original = telemetry.records();
  std::vector<TelemetryRecord> round = parsed.records();
  ASSERT_EQ(round.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(round[i].run, original[i].run);
    EXPECT_EQ(round[i].kind, original[i].kind);
    EXPECT_EQ(round[i].step, original[i].step);
    EXPECT_DOUBLE_EQ(round[i].loss, original[i].loss);
    EXPECT_DOUBLE_EQ(round[i].step_ms, original[i].step_ms);
    EXPECT_DOUBLE_EQ(round[i].micro_f1, original[i].micro_f1);
    EXPECT_EQ(round[i].improved, original[i].improved);
  }
}

TEST(TelemetryTest, ParseRejectsMalformedLines) {
  TrainingTelemetry out;
  EXPECT_FALSE(TrainingTelemetry::ParseJsonl("{\"run\": \"x\"}\n", &out));
  EXPECT_FALSE(TrainingTelemetry::ParseJsonl(
      "{\"run\": \"x\", \"kind\": \"bogus\", \"step\": 1}\n", &out));
}

TEST(TelemetryTest, CsvHasHeaderAndRows) {
  TrainingTelemetry telemetry;
  telemetry.BeginRun("r");
  telemetry.RecordStep(1, 0.5, 1.0);
  telemetry.RecordValidation(10, 0.25, true);
  std::string csv = telemetry.ExportCsv();
  EXPECT_NE(csv.find("run,kind,step,loss,step_ms,micro_f1,improved"),
            std::string::npos);
  EXPECT_NE(csv.find("r,step,1,"), std::string::npos);
  EXPECT_NE(csv.find("r,validation,10,"), std::string::npos);
}

/// Captures formatted log lines for assertions.
class CaptureSink : public LogSink {
 public:
  void Write(LogSeverity severity, std::string_view line) override {
    severities.push_back(severity);
    lines.emplace_back(line);
  }
  std::vector<LogSeverity> severities;
  std::vector<std::string> lines;
};

class LoggingFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_sink_ = SetLogSink(&sink_);
    previous_min_ = MinLogSeverity();
  }
  void TearDown() override {
    SetLogSink(previous_sink_);
    SetMinLogSeverity(previous_min_);
  }
  CaptureSink sink_;
  LogSink* previous_sink_ = nullptr;
  LogSeverity previous_min_ = LogSeverity::kInfo;
};

TEST_F(LoggingFilterTest, MinSeverityFiltersThroughSink) {
  SetMinLogSeverity(LogSeverity::kWarning);
  FS_LOG(Info) << "suppressed";
  FS_LOG(Warning) << "kept warning";
  FS_LOG(Error) << "kept error";
  ASSERT_EQ(sink_.lines.size(), 2u);
  EXPECT_EQ(sink_.severities[0], LogSeverity::kWarning);
  EXPECT_NE(sink_.lines[0].find("kept warning"), std::string::npos);
  EXPECT_NE(sink_.lines[0].find("obs_test.cc"), std::string::npos);
  EXPECT_EQ(sink_.severities[1], LogSeverity::kError);
}

TEST_F(LoggingFilterTest, InfoPassesAtDefaultLevel) {
  SetMinLogSeverity(LogSeverity::kInfo);
  FS_LOG(Info) << "visible";
  ASSERT_EQ(sink_.lines.size(), 1u);
  EXPECT_NE(sink_.lines[0].find("visible"), std::string::npos);
}

TEST(LoggingTest, ParseLogSeverityNames) {
  LogSeverity severity = LogSeverity::kInfo;
  EXPECT_TRUE(ParseLogSeverity("warning", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  EXPECT_TRUE(ParseLogSeverity("WARN", &severity));
  EXPECT_EQ(severity, LogSeverity::kWarning);
  EXPECT_TRUE(ParseLogSeverity("Error", &severity));
  EXPECT_EQ(severity, LogSeverity::kError);
  EXPECT_TRUE(ParseLogSeverity("fatal", &severity));
  EXPECT_EQ(severity, LogSeverity::kFatal);
  EXPECT_TRUE(ParseLogSeverity("info", &severity));
  EXPECT_EQ(severity, LogSeverity::kInfo);
  EXPECT_FALSE(ParseLogSeverity("verbose", &severity));
  EXPECT_EQ(severity, LogSeverity::kInfo);
}

TEST(LoggingTest, ChecksBindCorrectlyUnderDanglingElse) {
  // Regression for the dangling-else hazard: before the fix, the `else`
  // below would have bound to FS_CHECK's internal if. With the expression
  // form, this must compile and take the `if` branch only.
  bool took_else = false;
  if (true)
    FS_CHECK(1 + 1 == 2);
  else
    took_else = true;
  EXPECT_FALSE(took_else);

  if (false)
    FS_CHECK_EQ(1, 2);  // must not evaluate/abort
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

TEST(LoggingDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(FS_CHECK(false) << "boom", "Check failed: false");
  EXPECT_DEATH(FS_CHECK_EQ(2, 3), "Check failed: 2 == 3");
}

}  // namespace
}  // namespace fieldswap
