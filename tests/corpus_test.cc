// Format drivers and corpus streaming (ISSUE 10; DESIGN.md "Format
// drivers and corpus streaming"): per-driver round-trip byte-identity,
// hostile-input rejection for the native container, cross-format checksum
// equivalence, registry identification, and reader-vs-vector bit-identity
// of the migrated train/eval paths across thread counts.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/perturbation.h"
#include "doc/corpus.h"
#include "doc/document.h"
#include "doc/formats/record_file.h"
#include "doc/serialize.h"
#include "eval/metrics.h"
#include "model/sequence_model.h"
#include "model/trainer.h"
#include "par/parallel.h"
#include "synth/corpus_stream.h"
#include "synth/domains.h"
#include "synth/generator.h"

namespace fieldswap {
namespace {

namespace fs = std::filesystem;

// Every test writes under its own fresh directory so parallel ctest
// shards and leftover files cannot interact.
class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::RegisterSyntheticCorpusDriver();
    dir_ = fs::temp_directory_path() /
           ("fieldswap_corpus_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
};

std::vector<std::string> CorpusJson(const doc::CorpusReader& reader) {
  std::vector<std::string> out;
  doc::ForEachDocument(reader, [&](const Document& doc, size_t) {
    out.push_back(DocumentToJson(doc));
  });
  return out;
}

std::vector<std::string> CorpusJson(const std::vector<Document>& docs) {
  std::vector<std::string> out;
  for (const Document& doc : docs) out.push_back(DocumentToJson(doc));
  return out;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void WriteAll(doc::CorpusWriter& writer, const std::vector<Document>& docs) {
  for (const Document& doc : docs) {
    ASSERT_TRUE(writer.Add(doc)) << writer.status().ToString();
  }
  ASSERT_TRUE(writer.Finish()) << writer.status().ToString();
}

SequenceModelConfig TinySeqConfig() {
  SequenceModelConfig config;
  config.d_model = 16;
  config.spatial_neighbors = 6;
  return config;
}

// Restores the ambient thread count even when an assertion fails mid-test.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) : saved_(par::Threads()) {
    par::SetThreads(n);
  }
  ~ScopedThreads() { par::SetThreads(saved_); }

 private:
  int saved_;
};

// ---- Per-driver round-trips across all five eval domains ------------------

// write -> read -> write must be byte-identical at the FILE level for each
// writable driver: the first write pins the encoding, the read proves the
// decode inverts it, and the second write proves no information was lost
// (raw f64 geometry for native, %.3f-quantized JSON for JSONL — the
// quantized values are fixed points of another round-trip).
TEST_F(CorpusTest, NativeRoundTripByteIdenticalPerDomain) {
  for (const DomainSpec& spec : AllEvalDomains()) {
    std::vector<Document> docs = GenerateCorpus(spec, 8, 41, "rt");
    const std::string first = Path(spec.name + "_1.fsc");
    const std::string second = Path(spec.name + "_2.fsc");
    {
      auto writer = doc::CreateCorpus(first, "native");
      ASSERT_NE(writer, nullptr);
      WriteAll(*writer, docs);
    }
    doc::CorpusStatus status;
    auto reader = doc::OpenCorpus(first, "native", &status);
    ASSERT_NE(reader, nullptr) << status.ToString();
    ASSERT_EQ(reader->size(), docs.size());
    EXPECT_EQ(CorpusJson(*reader), CorpusJson(docs)) << spec.name;
    {
      auto writer = doc::CreateCorpus(second, "native");
      ASSERT_NE(writer, nullptr);
      WriteAll(*writer, doc::ReadAllDocuments(*reader));
    }
    EXPECT_EQ(FileBytes(first), FileBytes(second)) << spec.name;
  }
}

TEST_F(CorpusTest, JsonlRoundTripByteIdenticalPerDomain) {
  for (const DomainSpec& spec : AllEvalDomains()) {
    std::vector<Document> docs = GenerateCorpus(spec, 8, 42, "rt");
    const std::string first = Path(spec.name + "_1.jsonl");
    const std::string second = Path(spec.name + "_2.jsonl");
    {
      auto writer = doc::CreateCorpus(first, "jsonl");
      ASSERT_NE(writer, nullptr);
      WriteAll(*writer, docs);
    }
    doc::CorpusStatus status;
    auto reader = doc::OpenCorpus(first, "jsonl", &status);
    ASSERT_NE(reader, nullptr) << status.ToString();
    ASSERT_EQ(reader->size(), docs.size());
    {
      auto writer = doc::CreateCorpus(second, "jsonl");
      ASSERT_NE(writer, nullptr);
      WriteAll(*writer, doc::ReadAllDocuments(*reader));
    }
    EXPECT_EQ(FileBytes(first), FileBytes(second)) << spec.name;
  }
}

// The lazy synthetic reader must be indistinguishable from the corpus
// GenerateCorpus materializes — same documents at every index, at any
// thread count (golden.json's checksums also pin this, but here the
// comparison is per-document and names the offender).
TEST_F(CorpusTest, SyntheticReaderMatchesGenerateCorpus) {
  for (const DomainSpec& spec : AllEvalDomains()) {
    std::vector<Document> eager = GenerateCorpus(spec, 17, 1234, "gen");
    auto lazy = synth::MakeSyntheticCorpusReader(spec, 17, 1234, "gen");
    ASSERT_EQ(lazy->size(), eager.size());
    EXPECT_EQ(CorpusJson(*lazy), CorpusJson(eager)) << spec.name;
  }
}

// Converting JSONL -> native -> JSONL must preserve the corpus checksum:
// JSON writes doubles quantized to %.3f, the native codec stores raw f64
// bits, and the checksum folds canonical JSON — so all representations of
// the same corpus agree.
TEST_F(CorpusTest, CrossFormatConversionPreservesChecksum) {
  std::vector<Document> docs = GenerateCorpus(SpecByName("earnings"),
                                              12, 7, "conv");
  const std::string jsonl1 = Path("a.jsonl");
  const std::string native = Path("b.fsc");
  const std::string jsonl2 = Path("c.jsonl");
  {
    auto writer = doc::CreateCorpus(jsonl1);
    ASSERT_NE(writer, nullptr);
    WriteAll(*writer, docs);
  }
  auto from_jsonl = doc::OpenCorpus(jsonl1);
  ASSERT_NE(from_jsonl, nullptr);
  {
    auto writer = doc::CreateCorpus(native);
    ASSERT_NE(writer, nullptr);
    WriteAll(*writer, doc::ReadAllDocuments(*from_jsonl));
  }
  auto from_native = doc::OpenCorpus(native);
  ASSERT_NE(from_native, nullptr);
  {
    auto writer = doc::CreateCorpus(jsonl2);
    ASSERT_NE(writer, nullptr);
    WriteAll(*writer, doc::ReadAllDocuments(*from_native));
  }
  auto back = doc::OpenCorpus(jsonl2);
  ASSERT_NE(back, nullptr);
  const uint64_t reference = doc::CorpusChecksum(*from_jsonl);
  EXPECT_EQ(doc::CorpusChecksum(*from_native), reference);
  EXPECT_EQ(doc::CorpusChecksum(*back), reference);
  EXPECT_EQ(FileBytes(jsonl1), FileBytes(jsonl2));
}

// ---- Hostile input: the native container rejects, never crashes -----------

TEST_F(CorpusTest, TruncatedNativeRejectedCleanly) {
  const std::string path = Path("corpus.fsc");
  {
    auto writer = doc::CreateCorpus(path, "native");
    ASSERT_NE(writer, nullptr);
    WriteAll(*writer,
             GenerateCorpus(SpecByName("earnings"), 4, 3, "t"));
  }
  const std::string full = FileBytes(path);
  ASSERT_GT(full.size(), doc::formats::kRecordHeaderSize);
  // Truncation at the header, mid-records, and just-shy-of-complete must
  // all fail at open with a message — not at some later Get.
  for (size_t keep : {size_t{0}, size_t{16}, size_t{63},
                      doc::formats::kRecordHeaderSize, full.size() / 2,
                      full.size() - 1}) {
    const std::string cut = Path("cut.fsc");
    WriteFile(cut, full.substr(0, keep));
    doc::CorpusStatus status;
    auto reader = doc::OpenCorpus(cut, "native", &status);
    EXPECT_EQ(reader, nullptr) << "kept " << keep << " bytes";
    EXPECT_FALSE(status.ok()) << "kept " << keep << " bytes";
  }
}

TEST_F(CorpusTest, BitFlippedNativeRejectedCleanly) {
  const std::string path = Path("corpus.fsc");
  {
    auto writer = doc::CreateCorpus(path, "native");
    ASSERT_NE(writer, nullptr);
    WriteAll(*writer,
             GenerateCorpus(SpecByName("earnings"), 4, 3, "t"));
  }
  const std::string full = FileBytes(path);
  // Flip one bit in the record region (past the header): the body
  // checksum catches it at open.
  for (size_t at : {doc::formats::kRecordHeaderSize + 5, full.size() / 2,
                    full.size() - 3}) {
    std::string bad = full;
    bad[at] = static_cast<char>(bad[at] ^ 0x20);
    const std::string flipped = Path("flipped.fsc");
    WriteFile(flipped, bad);
    doc::CorpusStatus status;
    auto reader = doc::OpenCorpus(flipped, "native", &status);
    EXPECT_EQ(reader, nullptr) << "flip at byte " << at;
    EXPECT_FALSE(status.ok()) << "flip at byte " << at;
  }
}

TEST_F(CorpusTest, DecodeDocumentBinaryRejectsHostileBytes) {
  Document doc = GenerateDocument(SpecByName("earnings"), "h", 0,
                                  Rng(9));
  std::string good;
  doc::EncodeDocumentBinary(doc, &good);
  Document out;
  ASSERT_TRUE(doc::DecodeDocumentBinary(good, &out));

  doc::CorpusStatus status;
  // Empty and every strict prefix: bounds checks must fire, not UB.
  EXPECT_FALSE(doc::DecodeDocumentBinary("", &out, &status));
  EXPECT_FALSE(status.ok());
  for (size_t keep = 1; keep < good.size(); keep += 7) {
    EXPECT_FALSE(doc::DecodeDocumentBinary(
        std::string_view(good.data(), keep), &out))
        << "prefix " << keep;
  }
  // Trailing garbage is corruption, not slack.
  EXPECT_FALSE(doc::DecodeDocumentBinary(good + "x", &out, &status));
  EXPECT_FALSE(status.ok());
  // A hostile count field (0xFFFFFFFF tokens) must be rejected against
  // the remaining byte budget instead of driving an allocation. The token
  // count sits after the two length-prefixed id/domain strings and the
  // two f64 page dimensions.
  std::string bad = good;
  size_t cursor = 4 + doc.id().size() + 4 + doc.domain().size() + 16;
  ASSERT_LE(cursor + 4, bad.size());
  bad[cursor] = '\xff';
  bad[cursor + 1] = '\xff';
  bad[cursor + 2] = '\xff';
  bad[cursor + 3] = '\xff';
  EXPECT_FALSE(doc::DecodeDocumentBinary(bad, &out, &status));
  EXPECT_FALSE(status.ok());
}

// ---- Registry: identification and actionable failure -----------------------

TEST_F(CorpusTest, RegistryIdentifiesByMagicRegardlessOfExtension) {
  std::vector<Document> docs =
      GenerateCorpus(SpecByName("earnings"), 3, 5, "id");
  const std::string native_odd = Path("corpus.bin");
  const std::string jsonl_odd = Path("corpus.txt");
  {
    auto writer = doc::CreateCorpus(native_odd, "native");
    ASSERT_NE(writer, nullptr);
    WriteAll(*writer, docs);
  }
  {
    auto writer = doc::CreateCorpus(jsonl_odd, "jsonl");
    ASSERT_NE(writer, nullptr);
    WriteAll(*writer, docs);
  }
  doc::CorpusStatus status;
  auto native_reader = doc::OpenCorpus(native_odd, "", &status);
  ASSERT_NE(native_reader, nullptr) << status.ToString();
  EXPECT_EQ(native_reader->format(), "native");
  auto jsonl_reader = doc::OpenCorpus(jsonl_odd, "", &status);
  ASSERT_NE(jsonl_reader, nullptr) << status.ToString();
  EXPECT_EQ(jsonl_reader->format(), "jsonl");
}

TEST_F(CorpusTest, UnidentifiableFileNamesTheKnownFormats) {
  const std::string path = Path("mystery.xyz");
  WriteFile(path, "certainly not a corpus\n");
  doc::CorpusStatus status;
  auto reader = doc::OpenCorpus(path, "", &status);
  EXPECT_EQ(reader, nullptr);
  EXPECT_NE(status.message.find("native"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message.find("jsonl"), std::string::npos)
      << status.ToString();
}

TEST_F(CorpusTest, UnknownFormatNameNamesTheKnownFormats) {
  doc::CorpusStatus status;
  auto reader = doc::OpenCorpus(Path("whatever.fsc"), "parquet", &status);
  EXPECT_EQ(reader, nullptr);
  EXPECT_NE(status.message.find("parquet"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message.find("native"), std::string::npos)
      << status.ToString();
  // Writing through a read-only driver is refused up front.
  auto writer = doc::CreateCorpus(Path("out.synth"), "synthetic", &status);
  EXPECT_EQ(writer, nullptr);
  EXPECT_FALSE(status.ok());
}

TEST_F(CorpusTest, ListFormatsCoversTheThreeDrivers) {
  std::vector<doc::FormatInfo> formats =
      doc::FormatDriverRegistry::Global().ListFormats();
  bool native = false, jsonl = false, synthetic = false;
  for (const doc::FormatInfo& info : formats) {
    if (info.name == "native") native = info.can_write;
    if (info.name == "jsonl") jsonl = info.can_write;
    if (info.name == "synthetic") synthetic = !info.can_write;
  }
  EXPECT_TRUE(native) << "native driver missing or read-only";
  EXPECT_TRUE(jsonl) << "jsonl driver missing or read-only";
  EXPECT_TRUE(synthetic) << "synthetic driver missing or writable";
}

// ---- JSONL failures carry the line number ----------------------------------

TEST_F(CorpusTest, LoadCorpusJsonlReportsFailingLine) {
  std::vector<Document> docs =
      GenerateCorpus(SpecByName("earnings"), 2, 5, "ln");
  const std::string path = Path("bad.jsonl");
  WriteFile(path, DocumentToJson(docs[0]) + "\n" + "{\"id\": \"broken\"\n" +
                      DocumentToJson(docs[1]) + "\n");
  doc::CorpusStatus status;
  std::optional<std::vector<Document>> loaded =
      LoadCorpusJsonl(path, &status);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(status.line, 2) << status.ToString();
  EXPECT_FALSE(status.message.empty());

  // The streaming reader indexes lines at open but parses lazily, so the
  // same failure surfaces at Get(1) with the same line number.
  auto reader = doc::OpenCorpus(path, "jsonl", &status);
  ASSERT_NE(reader, nullptr) << status.ToString();
  ASSERT_EQ(reader->size(), 3u);
  Document out;
  EXPECT_TRUE(reader->Get(0, &out));
  doc::CorpusStatus get_status;
  EXPECT_FALSE(reader->Get(1, &out, &get_status));
  EXPECT_EQ(get_status.line, 2) << get_status.ToString();
}

// ---- Synthetic .synth specs ------------------------------------------------

TEST_F(CorpusTest, SyntheticSpecOpensAndStreams) {
  const std::string path = Path("spec.synth");
  WriteFile(path,
            "{\"fieldswap_synthetic\": 1, \"domain\": \"earnings\", "
            "\"count\": 9, \"seed\": 6, \"id_prefix\": \"sp\"}\n");
  doc::CorpusStatus status;
  auto reader = doc::OpenCorpus(path, "", &status);  // by magic
  ASSERT_NE(reader, nullptr) << status.ToString();
  EXPECT_EQ(reader->format(), "synthetic");
  ASSERT_EQ(reader->size(), 9u);
  EXPECT_EQ(CorpusJson(*reader),
            CorpusJson(GenerateCorpus(SpecByName("earnings"), 9, 6,
                                      "sp")));
}

TEST_F(CorpusTest, SyntheticSpecErrorsAreActionable) {
  const std::string unknown = Path("unknown.synth");
  WriteFile(unknown,
            "{\"fieldswap_synthetic\": 1, \"domain\": \"tax_forms\", "
            "\"count\": 3}\n");
  doc::CorpusStatus status;
  EXPECT_EQ(doc::OpenCorpus(unknown, "synthetic", &status), nullptr);
  // The error names the known domains so a typo is self-correcting.
  EXPECT_NE(status.message.find("earnings"), std::string::npos)
      << status.ToString();

  const std::string bad_count = Path("bad_count.synth");
  WriteFile(bad_count,
            "{\"fieldswap_synthetic\": 1, \"domain\": \"earnings\", "
            "\"count\": -4}\n");
  EXPECT_EQ(doc::OpenCorpus(bad_count, "synthetic", &status), nullptr);
  EXPECT_FALSE(status.ok());
}

// ---- Writer atomicity ------------------------------------------------------

TEST_F(CorpusTest, WritersLandAtomicallyViaTempAndRename) {
  std::vector<Document> docs =
      GenerateCorpus(SpecByName("earnings"), 3, 8, "at");
  for (const std::string format : {"native", "jsonl"}) {
    const std::string ext = format == std::string("native") ? ".fsc"
                                                            : ".jsonl";
    const std::string path = Path(std::string("atomic") + ext);
    {
      auto writer = doc::CreateCorpus(path, format);
      ASSERT_NE(writer, nullptr);
      for (const Document& doc : docs) ASSERT_TRUE(writer->Add(doc));
      // Before Finish, a concurrent reader must not see the final path.
      EXPECT_FALSE(fs::exists(path)) << format;
      ASSERT_TRUE(writer->Finish());
      EXPECT_TRUE(fs::exists(path)) << format;
    }
    // An abandoned writer (no Finish) leaves neither the final file nor
    // its temp sibling behind.
    const std::string abandoned = Path(std::string("abandoned") + ext);
    {
      auto writer = doc::CreateCorpus(abandoned, format);
      ASSERT_NE(writer, nullptr);
      ASSERT_TRUE(writer->Add(docs[0]));
    }
    EXPECT_FALSE(fs::exists(abandoned)) << format;
    EXPECT_TRUE(fs::is_empty(dir_) ||
                !fs::exists(abandoned + ".tmp")) << format;
  }
}

// ---- Record spans ----------------------------------------------------------

TEST_F(CorpusTest, NativeRecordSpansTileTheRecordRegion) {
  const std::string path = Path("spans.fsc");
  std::vector<Document> docs =
      GenerateCorpus(SpecByName("earnings"), 5, 2, "sp");
  {
    auto writer = doc::CreateCorpus(path, "native");
    ASSERT_NE(writer, nullptr);
    WriteAll(*writer, docs);
  }
  auto reader = doc::OpenCorpus(path);
  ASSERT_NE(reader, nullptr);
  uint64_t expected_offset = doc::formats::kRecordHeaderSize;
  for (size_t i = 0; i < reader->size(); ++i) {
    uint64_t offset = 0, bytes = 0;
    ASSERT_TRUE(reader->RecordSpan(i, &offset, &bytes)) << i;
    EXPECT_EQ(offset, expected_offset) << i;
    EXPECT_GT(bytes, 4u) << i;  // length prefix + payload
    expected_offset += bytes;
  }
  // Formats without file extents say so instead of inventing offsets.
  doc::VectorCorpusReader vec(std::move(docs));
  uint64_t offset = 0, bytes = 0;
  EXPECT_FALSE(vec.RecordSpan(0, &offset, &bytes));
}

// ---- Blocked iteration and slices ------------------------------------------

TEST_F(CorpusTest, BlockedIterationMatchesSerialAtAnyBlockSize) {
  std::vector<Document> docs =
      GenerateCorpus(SpecByName("earnings"), 13, 11, "blk");
  doc::VectorCorpusReaderView view(docs);
  const uint64_t reference = doc::CorpusChecksum(view, 1);
  for (size_t block : {size_t{2}, size_t{5}, size_t{13}, size_t{64}}) {
    EXPECT_EQ(doc::CorpusChecksum(view, block), reference)
        << "block " << block;
  }
  doc::CorpusSlice firstfive(view, 5);
  EXPECT_EQ(firstfive.size(), 5u);
  doc::CorpusSlice overlong(view, 99);
  EXPECT_EQ(overlong.size(), docs.size());
  std::vector<Document> head = doc::ReadAllDocuments(firstfive);
  ASSERT_EQ(head.size(), 5u);
  EXPECT_EQ(DocumentToJson(head[4]), DocumentToJson(docs[4]));
}

TEST_F(CorpusTest, ShardedChecksumBitIdenticalAcrossThreadCounts) {
  auto reader = synth::MakeSyntheticCorpusReader(
      SpecByName("earnings"), 40, 77, "thr");
  uint64_t serial = 0, pooled = 0;
  {
    ScopedThreads one(1);
    serial = doc::CorpusChecksum(*reader, 7);
  }
  {
    ScopedThreads eight(8);
    pooled = doc::CorpusChecksum(*reader, 7);
  }
  EXPECT_EQ(serial, pooled);
}

// ---- Reader-based train/eval == vector-based, across thread counts --------

TEST_F(CorpusTest, ReaderAndVectorTrainEvalBitIdentical) {
  const DomainSpec spec = SpecByName("earnings");
  std::vector<Document> train_docs = GenerateCorpus(spec, 12, 21, "tr");
  std::vector<Document> test_docs = GenerateCorpus(spec, 8, 22, "te");
  TrainOptions options;
  options.total_steps = 60;
  options.validate_every = 30;
  options.seed = 99;

  // Baseline: the legacy vector path, serial.
  SequenceLabelingModel vector_model(TinySeqConfig(), spec.Schema());
  TrainResult vector_result;
  EvalResult vector_eval;
  {
    ScopedThreads one(1);
    vector_result =
        TrainSequenceModel(vector_model, train_docs, {}, options);
    vector_eval = EvaluateModel(vector_model, test_docs);
  }

  // Candidate: the reader path (through a file, not just a view), pooled.
  const std::string path = Path("train.fsc");
  {
    auto writer = doc::CreateCorpus(path, "native");
    ASSERT_NE(writer, nullptr);
    WriteAll(*writer, train_docs);
  }
  auto train_reader = doc::OpenCorpus(path);
  ASSERT_NE(train_reader, nullptr);
  SequenceLabelingModel reader_model(TinySeqConfig(), spec.Schema());
  TrainResult reader_result;
  EvalResult reader_eval;
  {
    ScopedThreads eight(8);
    reader_result =
        TrainSequenceModel(reader_model, *train_reader, nullptr, options);
    doc::VectorCorpusReaderView test_view(test_docs);
    reader_eval = EvaluateModel(reader_model, test_view);
  }

  // Bit-identical, not approximately equal: same RNG stream, same
  // reduction order, same doubles.
  EXPECT_EQ(vector_result.final_loss, reader_result.final_loss);
  EXPECT_EQ(vector_result.best_validation_f1,
            reader_result.best_validation_f1);
  EXPECT_EQ(vector_result.steps, reader_result.steps);
  EXPECT_EQ(vector_eval.macro_f1, reader_eval.macro_f1);
  EXPECT_EQ(vector_eval.micro_f1, reader_eval.micro_f1);
  ASSERT_EQ(vector_eval.per_field.size(), reader_eval.per_field.size());
}

// ---- Streaming perturbation == vector perturbation -------------------------

TEST_F(CorpusTest, PerturbStreamMatchesVectorAtAnyBlockSize) {
  const DomainSpec spec = SpecByName("earnings");
  std::vector<Document> docs = GenerateCorpus(spec, 11, 31, "atk");
  attack::AttackSuite suite = attack::BuildAttackSuite(spec);
  ASSERT_FALSE(suite.empty());
  const attack::DocumentPerturbation& perturbation = *suite.front();
  std::vector<Document> expected =
      attack::PerturbCorpus(docs, perturbation, 0.5, 17);
  doc::VectorCorpusReaderView view(docs);
  for (size_t block : {size_t{3}, size_t{11}, size_t{256}}) {
    doc::VectorCorpusWriter out;
    uint64_t written =
        attack::PerturbCorpusStream(view, perturbation, 0.5, 17, out, block);
    EXPECT_EQ(written, docs.size()) << "block " << block;
    EXPECT_EQ(CorpusJson(out.docs()), CorpusJson(expected))
        << "block " << block;
  }
}

}  // namespace
}  // namespace fieldswap
